#!/usr/bin/env bash
# Root-artifact drift guard: bench binaries drop BENCH_*.json into their
# working directory, so running one from the repo root leaves an untracked
# copy behind.  A stale root copy that disagrees with bench/golden/ is a
# trap — a later `cp` into bench/golden/ or an accidental `git add` would
# smuggle drifted numbers past the benchdiff accept gates.  This guard
# diffs every root BENCH_*.json that has a golden counterpart through
# benchdiff (same tolerance, same metrics-ignore rule) and fails on any
# mismatch; a clean root passes trivially.
#
# usage: check_root_artifacts.sh <benchdiff-binary>
set -euo pipefail

BENCHDIFF=${1:?usage: check_root_artifacts.sh <benchdiff-binary>}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
GOLDEN_DIR="$ROOT/bench/golden"

status=0
found=0
for artifact in "$ROOT"/BENCH_*.json; do
    [ -e "$artifact" ] || continue
    found=1
    name=$(basename "$artifact")
    golden="$GOLDEN_DIR/$name"
    if [ ! -f "$golden" ]; then
        echo "warn: root $name has no golden counterpart — new bench?" \
             "(check it into bench/golden/ or delete the stray copy)" >&2
        continue
    fi
    if "$BENCHDIFF" "$golden" "$artifact" >/dev/null; then
        echo "ok: root $name matches bench/golden/$name"
    else
        echo "FAIL: root $name drifted from bench/golden/$name — delete" \
             "the stale copy or regenerate the golden deliberately" >&2
        status=1
    fi
done
if [ "$found" -eq 0 ]; then
    echo "ok: no untracked BENCH_*.json at the repo root"
fi
exit $status
