#!/usr/bin/env bash
# Chaos soak for petd (docs/service.md): start the daemon with transient
# link faults enabled, hammer it through petctl's seeded chaos client
# (frame drops, bit flips, connection closes), then SIGTERM it and require
# a clean exit.  Pass criteria:
#   * petctl soak exits 0 (server answered liveness pings throughout —
#     no crash, no hang, typed errors only);
#   * petd exits 0 after SIGTERM within the watchdog budget (graceful
#     drain, socket unlinked).
# Run under ASan (the sanitizers CI job builds the same binaries) this is
# the memory-safety soak the service ctest label wires in.
#
# usage: service_soak.sh <petd> <petctl> [seconds]
#   SOAK_SECONDS overrides the default 5 s budget (CI uses 30).
set -euo pipefail

PETD=${1:?usage: service_soak.sh <petd> <petctl> [seconds]}
PETCTL=${2:?usage: service_soak.sh <petd> <petctl> [seconds]}
BUDGET=${3:-${SOAK_SECONDS:-5}}
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/petd-soak-XXXXXX.sock")

"$PETD" --socket="$SOCK" --max-inflight=64 --retry-attempts=4 \
        --link-loss=0.05 &
PETD_PID=$!
cleanup() {
  kill -9 "$PETD_PID" 2>/dev/null || true
  rm -f "$SOCK"
}
trap cleanup EXIT

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  if ! kill -0 "$PETD_PID" 2>/dev/null; then
    echo "service_soak: petd died during startup" >&2
    exit 1
  fi
  sleep 0.1
done
if [ ! -S "$SOCK" ]; then
  echo "service_soak: petd socket never appeared" >&2
  exit 1
fi

"$PETCTL" --socket="$SOCK" soak --seconds="$BUDGET" --populations=8 \
          --tags=3000 --chaos-loss=0.15 --chaos-noise=0.15 --chaos-close=0.05

# Graceful shutdown: SIGTERM, with a watchdog that turns a hung drain into
# a hard failure instead of a hung test.
kill -TERM "$PETD_PID"
(
  sleep 30
  kill -9 "$PETD_PID" 2>/dev/null || true
) &
WATCHDOG=$!
set +e
wait "$PETD_PID"
RC=$?
set -e
kill "$WATCHDOG" 2>/dev/null || true
if [ "$RC" -ne 0 ]; then
  echo "service_soak: petd exited with $RC after SIGTERM" >&2
  exit 1
fi
echo "service_soak: passed (${BUDGET}s chaos, clean shutdown)"
