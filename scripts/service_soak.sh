#!/usr/bin/env bash
# Chaos soak for petd (docs/service.md): start the daemon with transient
# link faults enabled, hammer it through petctl's seeded chaos client
# (frame drops, bit flips, connection closes), then SIGTERM it and require
# a clean exit.  Pass criteria:
#   * petctl soak exits 0 (server answered liveness pings throughout —
#     no crash, no hang, typed errors only);
#   * petctl top --once renders the live kMetrics dashboard (or reports the
#     export as unavailable on a PET_OBS=OFF build — also exit 0);
#   * SIGUSR1 produces a non-empty Prometheus exposition dump, validated by
#     obscheck --prom when an obscheck binary is supplied;
#   * petd exits 0 after SIGTERM within the watchdog budget (graceful
#     drain, socket unlinked).
# Run under ASan (the sanitizers CI job builds the same binaries) this is
# the memory-safety soak the service ctest label wires in.
#
# usage: service_soak.sh <petd> <petctl> [obscheck]
#   SOAK_SECONDS overrides the default 5 s budget (CI uses 30).
set -euo pipefail

PETD=${1:?usage: service_soak.sh <petd> <petctl> [obscheck]}
PETCTL=${2:?usage: service_soak.sh <petd> <petctl> [obscheck]}
OBSCHECK=${3:-}
BUDGET=${SOAK_SECONDS:-5}
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/petd-soak-XXXXXX.sock")
PROM_OUT=$(mktemp -u "${TMPDIR:-/tmp}/petd-soak-XXXXXX.prom")

"$PETD" --socket="$SOCK" --max-inflight=64 --retry-attempts=4 \
        --link-loss=0.05 --prom-out="$PROM_OUT" &
PETD_PID=$!
cleanup() {
  kill -9 "$PETD_PID" 2>/dev/null || true
  rm -f "$SOCK" "$PROM_OUT"
}
trap cleanup EXIT

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  if ! kill -0 "$PETD_PID" 2>/dev/null; then
    echo "service_soak: petd died during startup" >&2
    exit 1
  fi
  sleep 0.1
done
if [ ! -S "$SOCK" ]; then
  echo "service_soak: petd socket never appeared" >&2
  exit 1
fi

"$PETCTL" --socket="$SOCK" soak --seconds="$BUDGET" --populations=8 \
          --tags=3000 --chaos-loss=0.15 --chaos-noise=0.15 --chaos-close=0.05

# Observability plane: the live dashboard must render one frame against the
# still-running daemon (on PET_OBS=OFF builds it prints a notice, exit 0).
"$PETCTL" --socket="$SOCK" top --once

# SIGUSR1 triggers an atomic Prometheus exposition dump; the accept loop
# services it within one 200 ms poll tick.
kill -USR1 "$PETD_PID"
for _ in $(seq 1 50); do
  [ -s "$PROM_OUT" ] && break
  sleep 0.1
done
if [ ! -s "$PROM_OUT" ]; then
  echo "service_soak: SIGUSR1 produced no prometheus dump" >&2
  exit 1
fi
if [ -n "$OBSCHECK" ]; then
  "$OBSCHECK" --prom="$PROM_OUT"
fi

# Graceful shutdown: SIGTERM, with a watchdog that turns a hung drain into
# a hard failure instead of a hung test.
kill -TERM "$PETD_PID"
(
  sleep 30
  kill -9 "$PETD_PID" 2>/dev/null || true
) &
WATCHDOG=$!
set +e
wait "$PETD_PID"
RC=$?
set -e
kill "$WATCHDOG" 2>/dev/null || true
if [ "$RC" -ne 0 ]; then
  echo "service_soak: petd exited with $RC after SIGTERM" >&2
  exit 1
fi
echo "service_soak: passed (${BUDGET}s chaos, clean shutdown)"
