#!/usr/bin/env bash
# Coverage gate with a ratcheted floor: builds the test suite with gcc
# --coverage, runs it, aggregates gcov line coverage over the library
# sources (src/ only — tests, tools and benches are drivers, not the
# surface being ratcheted), and fails if coverage dropped below the floor.
#
# The floor only moves UP: when a PR raises coverage meaningfully, raise
# COVERAGE_FLOOR here to just below the new figure so later PRs cannot
# silently shed tests.
#
# usage: scripts/coverage_floor.sh [build-dir]   (default build-cov)
set -euo pipefail

# Ratchet: measured 84.5% line coverage (gcc 12 gcov, 14384 src/ lines)
# when introduced; keep a small margin for compiler-version jitter in
# gcov accounting.
FLOOR="${COVERAGE_FLOOR:-82.5}"
BUILD_DIR="${1:-build-cov}"

command -v gcov >/dev/null || { echo "coverage: gcov required" >&2; exit 1; }
command -v python3 >/dev/null || { echo "coverage: python3 required" >&2; exit 1; }

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." \
        -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS=--coverage \
        -DCMAKE_EXE_LINKER_FLAGS=--coverage
fi
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -j "$(nproc)" --output-on-failure

# The gen2 MAC substrate must be exercised by the suite, not merely
# linked: require gcov data for the src/gen2 objects before aggregating.
find "$BUILD_DIR/src" -path '*gen2*' -name '*.gcda' | grep -q . ||
    { echo "coverage: no gcov data for src/gen2 — were the gen2 tests run?" >&2; exit 1; }

# Same for the construction fast path: the SIMD hash tiers, the dispatch
# cap, the parallel radix partition and its pool executor are covered by
# tests/simd_parity_test and tests/parallel_build_test (label `simd`).
for unit in hash_simd simd radix parallel_exec; do
    find "$BUILD_DIR/src" -name "${unit}.cpp.gcda" -o -name "${unit}*.gcda" | grep -q . ||
        { echo "coverage: no gcov data for ${unit}.cpp — were the simd tests run?" >&2; exit 1; }
done

# And for the service observability plane: the flight recorder, the
# kMetrics document renderer, and the Prometheus exposition writer are
# covered by tests/service_test and tests/obs_test (labels service/obs).
for unit in flight metrics_export prom; do
    find "$BUILD_DIR/src" -name "${unit}.cpp.gcda" -o -name "${unit}*.gcda" | grep -q . ||
        { echo "coverage: no gcov data for ${unit}.cpp — were the service/obs tests run?" >&2; exit 1; }
done

# And for the sharded execution plane: the population-affine shard set and
# the deterministic result cache are covered by tests/service_test (the
# byte-identity, isolation, churn-race and eviction cases).
for unit in shard cache; do
    find "$BUILD_DIR/src" -name "${unit}.cpp.gcda" -o -name "${unit}*.gcda" | grep -q . ||
        { echo "coverage: no gcov data for ${unit}.cpp — were the sharding tests run?" >&2; exit 1; }
done

# Sum "Lines executed" over every instrumented object in src/.
find "$BUILD_DIR/src" -name '*.gcda' -print0 |
    xargs -0 gcov -n 2>/dev/null |
    python3 -c '
import re, sys

covered = total = 0.0
for line in sys.stdin:
    m = re.match(r"Lines executed:([0-9.]+)% of (\d+)", line)
    if m:
        total += int(m.group(2))
        covered += float(m.group(1)) / 100.0 * int(m.group(2))
if total == 0:
    sys.exit("coverage: no gcov data found — was the build instrumented?")
pct = 100.0 * covered / total
floor = float(sys.argv[1])
print(f"coverage: {pct:.1f}% of {int(total)} library lines (floor {floor:.1f}%)")
if pct < floor:
    sys.exit(f"coverage: {pct:.1f}% is below the ratcheted floor {floor:.1f}%")
' "$FLOOR"
