#!/usr/bin/env bash
# Reproduction gate: runs the quick (30-run) harness and asserts the paper's
# qualitative results still hold.  Intended for CI; exits nonzero with a
# message on the first violated claim.
#
# usage: scripts/check_repro.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench"
BENCHDIFF="$BUILD_DIR/tools/benchdiff"
GOLDEN_DIR="$(cd "$(dirname "$0")/.." && pwd)/bench/golden"
fail() { echo "REPRO CHECK FAILED: $*" >&2; exit 1; }

command -v python3 >/dev/null || fail "python3 required"
[ -x "$BENCH/table4_eps_slots" ] || fail "benches not built in $BUILD_DIR"
[ -x "$BENCHDIFF" ] || fail "benchdiff not built in $BUILD_DIR"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== claim 1: PET uses < half the slots of FNEB and LoF (Table 4) =="
"$BENCH/table4_eps_slots" --quick --csv \
    --json="$WORK/BENCH_table4_eps_slots.json" > "$WORK/table4.csv"
python3 - "$WORK/table4.csv" <<'EOF'
import csv, sys
with open(sys.argv[1]) as f:
    rows = [r for r in csv.reader(f) if r and not r[0].startswith('#')]
header, data = rows[0], rows[1:]
assert len(data) == 4, f"expected 4 eps rows, got {len(data)}"
for row in data:
    eps, pet, fneb, lof = row[0], float(row[1]), float(row[2]), float(row[3])
    assert pet < 0.5 * fneb, f"eps={eps}: PET {pet} !< FNEB/2 {fneb/2}"
    assert pet < 0.5 * lof, f"eps={eps}: PET {pet} !< LoF/2 {lof/2}"
    in_interval = float(row[6])
    assert in_interval >= 0.93, f"eps={eps}: PET in-interval {in_interval}"
print("ok: PET < 0.5x baselines at every eps, contract held")
EOF

echo "== claim 2: Table 3 slot arithmetic is exactly 5m =="
"$BENCH/table3_pet_slots" --quick --csv \
    --json="$WORK/BENCH_table3_pet_slots.json" > "$WORK/table3.csv"
python3 - "$WORK/table3.csv" <<'EOF'
import csv, sys
with open(sys.argv[1]) as f:
    rows = [r for r in csv.reader(f) if r and not r[0].startswith('#')]
for row in rows[1:]:
    m, analytic, measured = int(row[0]), int(row[1]), float(row[2])
    assert analytic == 5 * m and abs(measured - analytic) < 1e-6, row
print("ok: slots == 5m for every m")
EOF

echo "== claim 3: normalized sigma ~0.2 at m = 64, independent of n (Fig 4c) =="
"$BENCH/fig4_pet_rounds" --quick --csv \
    --json="$WORK/BENCH_fig4_pet_rounds.json" > "$WORK/fig4.csv"
python3 - "$WORK/fig4.csv" <<'EOF'
import sys
with open(sys.argv[1]) as f:
    text = f.read().splitlines()
# Third CSV block is Fig 4c.
blocks, cur = [], []
for line in text:
    if line.startswith('#'):
        if cur: blocks.append(cur)
        cur = []
    elif line:
        cur.append(line)
if cur: blocks.append(cur)
rows = [r.split(',') for r in blocks[2]]
m64 = next(r for r in rows[1:] if r[0] == '64')
values = [float(x) for x in m64[1:]]
for v in values:
    assert 0.12 <= v <= 0.28, f"Fig4c at m=64: {v} outside [0.12, 0.28]"
spread = max(values) - min(values)
assert spread < 0.08, f"Fig4c at m=64 varies with n by {spread}"
print("ok: normalized sigma at m=64 =", [round(v, 3) for v in values])
EOF

echo "== claim 4: PET tag memory flat at 32 bits; baselines 10^3..10^5 (Fig 7) =="
"$BENCH/fig7_memory" --csv --json="$WORK/BENCH_fig7_memory.json" > "$WORK/fig7.csv"
python3 - "$WORK/fig7.csv" <<'EOF'
import csv, sys
with open(sys.argv[1]) as f:
    rows = [r for r in csv.reader(f) if r and not r[0].startswith('#')]
for row in rows:
    if row[0] in ('eps', 'delta'):
        continue
    pet, fneb, lof = int(row[1]), int(row[2]), int(row[3])
    assert pet == 32, f"PET memory {pet} != 32"
    assert 1000 <= fneb <= 100000 and 1000 <= lof <= 100000, row
print("ok: PET 32 bits everywhere; baselines in the paper's band")
EOF

echo "== claim 5: BENCH artifacts match the checked-in goldens (no silent drift) =="
for target in table3_pet_slots table4_eps_slots fig4_pet_rounds fig7_memory; do
    "$BENCHDIFF" "$GOLDEN_DIR/BENCH_$target.json" "$WORK/BENCH_$target.json" \
        || fail "$target drifted from bench/golden (regenerate deliberately if intended)"
done
echo "ok: all four artifacts within tolerance of bench/golden/"

echo "== claim 6: fast-round pipeline is bit-identical to the reference =="
# Same build, same seeds, --fast-path toggled; rows and summary stats must
# agree *exactly* (rtol 0), not just within tolerance (docs/performance.md).
"$BENCH/table3_pet_slots" --quick --quiet --fast-path=on \
    --json="$WORK/BENCH_t3_fast_on.json" > /dev/null
"$BENCH/table3_pet_slots" --quick --quiet --fast-path=off \
    --json="$WORK/BENCH_t3_fast_off.json" > /dev/null
"$BENCHDIFF" "$WORK/BENCH_t3_fast_on.json" "$WORK/BENCH_t3_fast_off.json" \
    --rtol=0 --atol=0 \
    || fail "fast-path on/off artifacts diverge (see docs/performance.md)"
echo "ok: fast path reproduces the reference sweep bit for bit"

echo "== claim 7: robustness tables match the checked-in golden =="
# The robustness sweep (iid loss / false-busy noise / burst fading) is the
# evidence behind docs/robustness.md; its artifact is golden-gated like the
# paper tables so estimator or fault-model drift cannot land silently.
"$BENCH/robustness_bench" --quick --csv --quiet \
    --json="$WORK/BENCH_robustness_bench.json" > /dev/null
"$BENCHDIFF" "$GOLDEN_DIR/BENCH_robustness_bench.json" \
    "$WORK/BENCH_robustness_bench.json" \
    || fail "robustness_bench drifted from bench/golden (regenerate deliberately if intended)"
echo "ok: robustness artifact within tolerance of bench/golden/"

echo "== claim 8: the (eps, delta) contract survives the measured Gen2 MAC =="
# PET/FNEB/LoF over gen2::Gen2PrefixChannel (Select+Query on the real EPC
# C1G2 MAC): the artifacts are golden-gated, and the capture-invariance /
# noise-sensitivity physics of docs/gen2.md must hold qualitatively —
# capture rows identical to clean, false-busy noise degrading accuracy.
"$BENCH/latency_gen2" --quick --csv --quiet \
    --json="$WORK/BENCH_latency_gen2.json" > /dev/null
"$BENCHDIFF" "$GOLDEN_DIR/BENCH_latency_gen2.json" \
    "$WORK/BENCH_latency_gen2.json" \
    || fail "latency_gen2 drifted from bench/golden (regenerate deliberately if intended)"
"$BENCH/gen2_contract_bench" --quick --csv --quiet \
    --json="$WORK/BENCH_gen2_contract_bench.json" > "$WORK/gen2_contract.csv"
"$BENCHDIFF" "$GOLDEN_DIR/BENCH_gen2_contract_bench.json" \
    "$WORK/BENCH_gen2_contract_bench.json" \
    || fail "gen2_contract_bench drifted from bench/golden (regenerate deliberately if intended)"
python3 - "$WORK/gen2_contract.csv" <<'EOF'
import csv, sys
with open(sys.argv[1]) as f:
    rows = [r for r in csv.reader(f) if r and not r[0].startswith('#')]
header, data = rows[0], rows[1:]
cells = {(r[0], r[1]): r for r in data}
for proto in ("PET", "FNEB", "LoF"):
    # Capture only re-decodes collisions; estimation probes sense busy vs
    # idle, so the capture rows must equal the clean rows column for column.
    assert cells[("capture 0.6", proto)][2:] == cells[("clean", proto)][2:], \
        f"{proto}: capture perturbed the estimate"
    assert cells[("capture+loss", proto)][2:] == cells[("loss 3%", proto)][2:], \
        f"{proto}: capture masked (or added to) the loss bias"
clean_pet, noisy_pet = cells[("clean", "PET")], cells[("noise 1%", "PET")]
assert float(clean_pet[3]) >= 0.90, f"clean PET in-eps {clean_pet[3]}"
assert float(noisy_pet[3]) < float(clean_pet[3]), \
    "false-busy noise failed to degrade the PET contract"
print("ok: capture invariant, noise degrading, artifacts match golden")
EOF

echo "== claim 9: SIMD batch hashing is bit-identical to scalar dispatch =="
# Same build, same seeds, PET_SIMD=off pinning the scalar fallback; the
# rows must agree exactly (rtol 0).  Runs on top of --fast-path=on so the
# gate covers the production pipeline end to end: batch hash -> radix
# partition -> oracle rounds (docs/performance.md).  The on-dispatch
# artifact reuses claim 6's run.
PET_SIMD=off "$BENCH/table3_pet_slots" --quick --quiet --fast-path=on \
    --json="$WORK/BENCH_t3_simd_off.json" > /dev/null
"$BENCHDIFF" "$WORK/BENCH_t3_fast_on.json" "$WORK/BENCH_t3_simd_off.json" \
    --rtol=0 --atol=0 \
    || fail "SIMD on/off artifacts diverge (see docs/performance.md)"
echo "ok: SIMD dispatch reproduces the scalar sweep bit for bit"

echo
echo "ALL REPRODUCTION CLAIMS HOLD"
