# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "5000")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_warehouse_audit "/root/repo/build/examples/warehouse_audit")
set_tests_properties(example_warehouse_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_conference_attendance "/root/repo/build/examples/conference_attendance")
set_tests_properties(example_conference_attendance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_monitoring "/root/repo/build/examples/dynamic_monitoring")
set_tests_properties(example_dynamic_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_monitor "/root/repo/build/examples/streaming_monitor")
set_tests_properties(example_streaming_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cross_site_analytics "/root/repo/build/examples/cross_site_analytics")
set_tests_properties(example_cross_site_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
