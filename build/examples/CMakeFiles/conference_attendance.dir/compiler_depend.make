# Empty compiler generated dependencies file for conference_attendance.
# This may be replaced when dependencies are built.
