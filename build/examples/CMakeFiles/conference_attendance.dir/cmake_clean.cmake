file(REMOVE_RECURSE
  "CMakeFiles/conference_attendance.dir/conference_attendance.cpp.o"
  "CMakeFiles/conference_attendance.dir/conference_attendance.cpp.o.d"
  "conference_attendance"
  "conference_attendance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conference_attendance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
