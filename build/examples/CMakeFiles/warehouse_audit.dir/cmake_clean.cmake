file(REMOVE_RECURSE
  "CMakeFiles/warehouse_audit.dir/warehouse_audit.cpp.o"
  "CMakeFiles/warehouse_audit.dir/warehouse_audit.cpp.o.d"
  "warehouse_audit"
  "warehouse_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
