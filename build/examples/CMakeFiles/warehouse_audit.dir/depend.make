# Empty dependencies file for warehouse_audit.
# This may be replaced when dependencies are built.
