file(REMOVE_RECURSE
  "CMakeFiles/cross_site_analytics.dir/cross_site_analytics.cpp.o"
  "CMakeFiles/cross_site_analytics.dir/cross_site_analytics.cpp.o.d"
  "cross_site_analytics"
  "cross_site_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_site_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
