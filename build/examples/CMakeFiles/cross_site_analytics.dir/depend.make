# Empty dependencies file for cross_site_analytics.
# This may be replaced when dependencies are built.
