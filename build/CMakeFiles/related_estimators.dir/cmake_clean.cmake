file(REMOVE_RECURSE
  "CMakeFiles/related_estimators.dir/bench/related_estimators.cpp.o"
  "CMakeFiles/related_estimators.dir/bench/related_estimators.cpp.o.d"
  "bench/related_estimators"
  "bench/related_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
