# Empty dependencies file for related_estimators.
# This may be replaced when dependencies are built.
