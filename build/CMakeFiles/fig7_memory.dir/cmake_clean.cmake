file(REMOVE_RECURSE
  "CMakeFiles/fig7_memory.dir/bench/fig7_memory.cpp.o"
  "CMakeFiles/fig7_memory.dir/bench/fig7_memory.cpp.o.d"
  "bench/fig7_memory"
  "bench/fig7_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
