file(REMOVE_RECURSE
  "CMakeFiles/robustness_bench.dir/bench/robustness_bench.cpp.o"
  "CMakeFiles/robustness_bench.dir/bench/robustness_bench.cpp.o.d"
  "bench/robustness_bench"
  "bench/robustness_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
