# Empty dependencies file for robustness_bench.
# This may be replaced when dependencies are built.
