file(REMOVE_RECURSE
  "CMakeFiles/fig4_pet_rounds.dir/bench/fig4_pet_rounds.cpp.o"
  "CMakeFiles/fig4_pet_rounds.dir/bench/fig4_pet_rounds.cpp.o.d"
  "bench/fig4_pet_rounds"
  "bench/fig4_pet_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pet_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
