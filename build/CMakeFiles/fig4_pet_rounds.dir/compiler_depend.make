# Empty compiler generated dependencies file for fig4_pet_rounds.
# This may be replaced when dependencies are built.
