
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_pet_rounds.cpp" "CMakeFiles/fig4_pet_rounds.dir/bench/fig4_pet_rounds.cpp.o" "gcc" "CMakeFiles/fig4_pet_rounds.dir/bench/fig4_pet_rounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/pet_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/pet_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/multireader/CMakeFiles/pet_multireader.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/pet_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tags/CMakeFiles/pet_tags.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pet_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
