# Empty compiler generated dependencies file for multireader_bench.
# This may be replaced when dependencies are built.
