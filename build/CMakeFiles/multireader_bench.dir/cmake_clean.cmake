file(REMOVE_RECURSE
  "CMakeFiles/multireader_bench.dir/bench/multireader_bench.cpp.o"
  "CMakeFiles/multireader_bench.dir/bench/multireader_bench.cpp.o.d"
  "bench/multireader_bench"
  "bench/multireader_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multireader_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
