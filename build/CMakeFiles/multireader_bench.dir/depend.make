# Empty dependencies file for multireader_bench.
# This may be replaced when dependencies are built.
