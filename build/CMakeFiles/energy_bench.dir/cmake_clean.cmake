file(REMOVE_RECURSE
  "CMakeFiles/energy_bench.dir/bench/energy_bench.cpp.o"
  "CMakeFiles/energy_bench.dir/bench/energy_bench.cpp.o.d"
  "bench/energy_bench"
  "bench/energy_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
