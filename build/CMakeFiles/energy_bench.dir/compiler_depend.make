# Empty compiler generated dependencies file for energy_bench.
# This may be replaced when dependencies are built.
