file(REMOVE_RECURSE
  "CMakeFiles/fig5_time_comparison.dir/bench/fig5_time_comparison.cpp.o"
  "CMakeFiles/fig5_time_comparison.dir/bench/fig5_time_comparison.cpp.o.d"
  "bench/fig5_time_comparison"
  "bench/fig5_time_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_time_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
