# Empty compiler generated dependencies file for fig5_time_comparison.
# This may be replaced when dependencies are built.
