# Empty compiler generated dependencies file for table3_pet_slots.
# This may be replaced when dependencies are built.
