file(REMOVE_RECURSE
  "CMakeFiles/table3_pet_slots.dir/bench/table3_pet_slots.cpp.o"
  "CMakeFiles/table3_pet_slots.dir/bench/table3_pet_slots.cpp.o.d"
  "bench/table3_pet_slots"
  "bench/table3_pet_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_pet_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
