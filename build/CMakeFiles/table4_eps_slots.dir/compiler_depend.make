# Empty compiler generated dependencies file for table4_eps_slots.
# This may be replaced when dependencies are built.
