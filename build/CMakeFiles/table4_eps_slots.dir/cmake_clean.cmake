file(REMOVE_RECURSE
  "CMakeFiles/table4_eps_slots.dir/bench/table4_eps_slots.cpp.o"
  "CMakeFiles/table4_eps_slots.dir/bench/table4_eps_slots.cpp.o.d"
  "bench/table4_eps_slots"
  "bench/table4_eps_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_eps_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
