# Empty dependencies file for table5_delta_slots.
# This may be replaced when dependencies are built.
