file(REMOVE_RECURSE
  "CMakeFiles/table5_delta_slots.dir/bench/table5_delta_slots.cpp.o"
  "CMakeFiles/table5_delta_slots.dir/bench/table5_delta_slots.cpp.o.d"
  "bench/table5_delta_slots"
  "bench/table5_delta_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_delta_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
