file(REMOVE_RECURSE
  "CMakeFiles/ablation_scaling.dir/bench/ablation_scaling.cpp.o"
  "CMakeFiles/ablation_scaling.dir/bench/ablation_scaling.cpp.o.d"
  "bench/ablation_scaling"
  "bench/ablation_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
