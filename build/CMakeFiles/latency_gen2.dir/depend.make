# Empty dependencies file for latency_gen2.
# This may be replaced when dependencies are built.
