file(REMOVE_RECURSE
  "CMakeFiles/latency_gen2.dir/bench/latency_gen2.cpp.o"
  "CMakeFiles/latency_gen2.dir/bench/latency_gen2.cpp.o.d"
  "bench/latency_gen2"
  "bench/latency_gen2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_gen2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
