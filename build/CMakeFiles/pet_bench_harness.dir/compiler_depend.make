# Empty compiler generated dependencies file for pet_bench_harness.
# This may be replaced when dependencies are built.
