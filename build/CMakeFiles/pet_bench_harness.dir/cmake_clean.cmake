file(REMOVE_RECURSE
  "CMakeFiles/pet_bench_harness.dir/bench/harness/experiment.cpp.o"
  "CMakeFiles/pet_bench_harness.dir/bench/harness/experiment.cpp.o.d"
  "CMakeFiles/pet_bench_harness.dir/bench/harness/options.cpp.o"
  "CMakeFiles/pet_bench_harness.dir/bench/harness/options.cpp.o.d"
  "CMakeFiles/pet_bench_harness.dir/bench/harness/table.cpp.o"
  "CMakeFiles/pet_bench_harness.dir/bench/harness/table.cpp.o.d"
  "libpet_bench_harness.a"
  "libpet_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pet_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
