file(REMOVE_RECURSE
  "libpet_bench_harness.a"
)
