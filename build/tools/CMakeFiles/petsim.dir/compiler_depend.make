# Empty compiler generated dependencies file for petsim.
# This may be replaced when dependencies are built.
