file(REMOVE_RECURSE
  "CMakeFiles/petsim.dir/petsim.cpp.o"
  "CMakeFiles/petsim.dir/petsim.cpp.o.d"
  "petsim"
  "petsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/petsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
