# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(petsim_plan "/root/repo/build/tools/petsim" "plan" "--eps=0.1" "--delta=0.05")
set_tests_properties(petsim_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(petsim_estimate_pet "/root/repo/build/tools/petsim" "estimate" "--protocol=pet" "--n=5000" "--eps=0.1" "--delta=0.05")
set_tests_properties(petsim_estimate_pet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(petsim_estimate_multireader "/root/repo/build/tools/petsim" "estimate" "--protocol=pet" "--n=5000" "--eps=0.1" "--delta=0.05" "--readers=3" "--overlap=0.2")
set_tests_properties(petsim_estimate_multireader PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(petsim_estimate_lof "/root/repo/build/tools/petsim" "estimate" "--protocol=lof" "--n=5000" "--eps=0.1" "--delta=0.05")
set_tests_properties(petsim_estimate_lof PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(petsim_identify "/root/repo/build/tools/petsim" "identify" "--protocol=treewalk" "--n=2000")
set_tests_properties(petsim_identify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(petsim_monitor "/root/repo/build/tools/petsim" "monitor" "--n=2000" "--steps=6")
set_tests_properties(petsim_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(petsim_sketch "/root/repo/build/tools/petsim" "sketch" "--n-a=4000" "--n-b=3000" "--shared=1000" "--rounds=500")
set_tests_properties(petsim_sketch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
