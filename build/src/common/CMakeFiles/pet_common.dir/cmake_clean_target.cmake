file(REMOVE_RECURSE
  "libpet_common.a"
)
