# Empty compiler generated dependencies file for pet_common.
# This may be replaced when dependencies are built.
