file(REMOVE_RECURSE
  "CMakeFiles/pet_common.dir/bitcode.cpp.o"
  "CMakeFiles/pet_common.dir/bitcode.cpp.o.d"
  "CMakeFiles/pet_common.dir/ensure.cpp.o"
  "CMakeFiles/pet_common.dir/ensure.cpp.o.d"
  "libpet_common.a"
  "libpet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
