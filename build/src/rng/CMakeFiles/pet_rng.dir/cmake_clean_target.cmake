file(REMOVE_RECURSE
  "libpet_rng.a"
)
