# Empty dependencies file for pet_rng.
# This may be replaced when dependencies are built.
