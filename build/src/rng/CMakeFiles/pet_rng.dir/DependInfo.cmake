
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rng/hash_family.cpp" "src/rng/CMakeFiles/pet_rng.dir/hash_family.cpp.o" "gcc" "src/rng/CMakeFiles/pet_rng.dir/hash_family.cpp.o.d"
  "/root/repo/src/rng/md5.cpp" "src/rng/CMakeFiles/pet_rng.dir/md5.cpp.o" "gcc" "src/rng/CMakeFiles/pet_rng.dir/md5.cpp.o.d"
  "/root/repo/src/rng/sha1.cpp" "src/rng/CMakeFiles/pet_rng.dir/sha1.cpp.o" "gcc" "src/rng/CMakeFiles/pet_rng.dir/sha1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
