file(REMOVE_RECURSE
  "CMakeFiles/pet_rng.dir/hash_family.cpp.o"
  "CMakeFiles/pet_rng.dir/hash_family.cpp.o.d"
  "CMakeFiles/pet_rng.dir/md5.cpp.o"
  "CMakeFiles/pet_rng.dir/md5.cpp.o.d"
  "CMakeFiles/pet_rng.dir/sha1.cpp.o"
  "CMakeFiles/pet_rng.dir/sha1.cpp.o.d"
  "libpet_rng.a"
  "libpet_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pet_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
