file(REMOVE_RECURSE
  "CMakeFiles/pet_sim.dir/devices.cpp.o"
  "CMakeFiles/pet_sim.dir/devices.cpp.o.d"
  "CMakeFiles/pet_sim.dir/energy.cpp.o"
  "CMakeFiles/pet_sim.dir/energy.cpp.o.d"
  "CMakeFiles/pet_sim.dir/gen2_timing.cpp.o"
  "CMakeFiles/pet_sim.dir/gen2_timing.cpp.o.d"
  "CMakeFiles/pet_sim.dir/medium.cpp.o"
  "CMakeFiles/pet_sim.dir/medium.cpp.o.d"
  "CMakeFiles/pet_sim.dir/simulator.cpp.o"
  "CMakeFiles/pet_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/pet_sim.dir/trace.cpp.o"
  "CMakeFiles/pet_sim.dir/trace.cpp.o.d"
  "libpet_sim.a"
  "libpet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
