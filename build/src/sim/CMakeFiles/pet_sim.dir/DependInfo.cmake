
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/devices.cpp" "src/sim/CMakeFiles/pet_sim.dir/devices.cpp.o" "gcc" "src/sim/CMakeFiles/pet_sim.dir/devices.cpp.o.d"
  "/root/repo/src/sim/energy.cpp" "src/sim/CMakeFiles/pet_sim.dir/energy.cpp.o" "gcc" "src/sim/CMakeFiles/pet_sim.dir/energy.cpp.o.d"
  "/root/repo/src/sim/gen2_timing.cpp" "src/sim/CMakeFiles/pet_sim.dir/gen2_timing.cpp.o" "gcc" "src/sim/CMakeFiles/pet_sim.dir/gen2_timing.cpp.o.d"
  "/root/repo/src/sim/medium.cpp" "src/sim/CMakeFiles/pet_sim.dir/medium.cpp.o" "gcc" "src/sim/CMakeFiles/pet_sim.dir/medium.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/pet_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/pet_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/pet_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/pet_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pet_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/tags/CMakeFiles/pet_tags.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
