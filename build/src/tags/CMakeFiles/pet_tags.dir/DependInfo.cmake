
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tags/cost_model.cpp" "src/tags/CMakeFiles/pet_tags.dir/cost_model.cpp.o" "gcc" "src/tags/CMakeFiles/pet_tags.dir/cost_model.cpp.o.d"
  "/root/repo/src/tags/mobility.cpp" "src/tags/CMakeFiles/pet_tags.dir/mobility.cpp.o" "gcc" "src/tags/CMakeFiles/pet_tags.dir/mobility.cpp.o.d"
  "/root/repo/src/tags/population.cpp" "src/tags/CMakeFiles/pet_tags.dir/population.cpp.o" "gcc" "src/tags/CMakeFiles/pet_tags.dir/population.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pet_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
