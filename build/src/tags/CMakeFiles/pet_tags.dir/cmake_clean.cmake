file(REMOVE_RECURSE
  "CMakeFiles/pet_tags.dir/cost_model.cpp.o"
  "CMakeFiles/pet_tags.dir/cost_model.cpp.o.d"
  "CMakeFiles/pet_tags.dir/mobility.cpp.o"
  "CMakeFiles/pet_tags.dir/mobility.cpp.o.d"
  "CMakeFiles/pet_tags.dir/population.cpp.o"
  "CMakeFiles/pet_tags.dir/population.cpp.o.d"
  "libpet_tags.a"
  "libpet_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pet_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
