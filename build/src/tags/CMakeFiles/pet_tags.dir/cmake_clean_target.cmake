file(REMOVE_RECURSE
  "libpet_tags.a"
)
