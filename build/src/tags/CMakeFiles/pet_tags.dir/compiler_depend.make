# Empty compiler generated dependencies file for pet_tags.
# This may be replaced when dependencies are built.
