file(REMOVE_RECURSE
  "libpet_stats.a"
)
