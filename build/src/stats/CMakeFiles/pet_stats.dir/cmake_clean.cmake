file(REMOVE_RECURSE
  "CMakeFiles/pet_stats.dir/histogram.cpp.o"
  "CMakeFiles/pet_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/pet_stats.dir/ks.cpp.o"
  "CMakeFiles/pet_stats.dir/ks.cpp.o.d"
  "CMakeFiles/pet_stats.dir/normal.cpp.o"
  "CMakeFiles/pet_stats.dir/normal.cpp.o.d"
  "libpet_stats.a"
  "libpet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
