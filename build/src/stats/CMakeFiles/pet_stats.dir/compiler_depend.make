# Empty compiler generated dependencies file for pet_stats.
# This may be replaced when dependencies are built.
