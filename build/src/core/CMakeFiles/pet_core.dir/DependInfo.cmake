
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anonymity.cpp" "src/core/CMakeFiles/pet_core.dir/anonymity.cpp.o" "gcc" "src/core/CMakeFiles/pet_core.dir/anonymity.cpp.o.d"
  "/root/repo/src/core/confidence.cpp" "src/core/CMakeFiles/pet_core.dir/confidence.cpp.o" "gcc" "src/core/CMakeFiles/pet_core.dir/confidence.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/pet_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/pet_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/fusion.cpp" "src/core/CMakeFiles/pet_core.dir/fusion.cpp.o" "gcc" "src/core/CMakeFiles/pet_core.dir/fusion.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/pet_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/pet_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/pet_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/pet_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/sketch.cpp" "src/core/CMakeFiles/pet_core.dir/sketch.cpp.o" "gcc" "src/core/CMakeFiles/pet_core.dir/sketch.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/core/CMakeFiles/pet_core.dir/theory.cpp.o" "gcc" "src/core/CMakeFiles/pet_core.dir/theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pet_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tags/CMakeFiles/pet_tags.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/pet_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
