file(REMOVE_RECURSE
  "CMakeFiles/pet_core.dir/anonymity.cpp.o"
  "CMakeFiles/pet_core.dir/anonymity.cpp.o.d"
  "CMakeFiles/pet_core.dir/confidence.cpp.o"
  "CMakeFiles/pet_core.dir/confidence.cpp.o.d"
  "CMakeFiles/pet_core.dir/estimator.cpp.o"
  "CMakeFiles/pet_core.dir/estimator.cpp.o.d"
  "CMakeFiles/pet_core.dir/fusion.cpp.o"
  "CMakeFiles/pet_core.dir/fusion.cpp.o.d"
  "CMakeFiles/pet_core.dir/monitor.cpp.o"
  "CMakeFiles/pet_core.dir/monitor.cpp.o.d"
  "CMakeFiles/pet_core.dir/planner.cpp.o"
  "CMakeFiles/pet_core.dir/planner.cpp.o.d"
  "CMakeFiles/pet_core.dir/sketch.cpp.o"
  "CMakeFiles/pet_core.dir/sketch.cpp.o.d"
  "CMakeFiles/pet_core.dir/theory.cpp.o"
  "CMakeFiles/pet_core.dir/theory.cpp.o.d"
  "libpet_core.a"
  "libpet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
