file(REMOVE_RECURSE
  "libpet_channel.a"
)
