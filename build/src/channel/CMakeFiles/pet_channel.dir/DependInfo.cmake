
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/device_channel.cpp" "src/channel/CMakeFiles/pet_channel.dir/device_channel.cpp.o" "gcc" "src/channel/CMakeFiles/pet_channel.dir/device_channel.cpp.o.d"
  "/root/repo/src/channel/exact_channel.cpp" "src/channel/CMakeFiles/pet_channel.dir/exact_channel.cpp.o" "gcc" "src/channel/CMakeFiles/pet_channel.dir/exact_channel.cpp.o.d"
  "/root/repo/src/channel/sampled_channel.cpp" "src/channel/CMakeFiles/pet_channel.dir/sampled_channel.cpp.o" "gcc" "src/channel/CMakeFiles/pet_channel.dir/sampled_channel.cpp.o.d"
  "/root/repo/src/channel/sorted_pet_channel.cpp" "src/channel/CMakeFiles/pet_channel.dir/sorted_pet_channel.cpp.o" "gcc" "src/channel/CMakeFiles/pet_channel.dir/sorted_pet_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/pet_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/tags/CMakeFiles/pet_tags.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
