file(REMOVE_RECURSE
  "CMakeFiles/pet_channel.dir/device_channel.cpp.o"
  "CMakeFiles/pet_channel.dir/device_channel.cpp.o.d"
  "CMakeFiles/pet_channel.dir/exact_channel.cpp.o"
  "CMakeFiles/pet_channel.dir/exact_channel.cpp.o.d"
  "CMakeFiles/pet_channel.dir/sampled_channel.cpp.o"
  "CMakeFiles/pet_channel.dir/sampled_channel.cpp.o.d"
  "CMakeFiles/pet_channel.dir/sorted_pet_channel.cpp.o"
  "CMakeFiles/pet_channel.dir/sorted_pet_channel.cpp.o.d"
  "libpet_channel.a"
  "libpet_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pet_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
