# Empty dependencies file for pet_channel.
# This may be replaced when dependencies are built.
