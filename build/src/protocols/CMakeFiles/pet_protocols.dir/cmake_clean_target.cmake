file(REMOVE_RECURSE
  "libpet_protocols.a"
)
