# Empty compiler generated dependencies file for pet_protocols.
# This may be replaced when dependencies are built.
