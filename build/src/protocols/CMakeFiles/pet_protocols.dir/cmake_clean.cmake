file(REMOVE_RECURSE
  "CMakeFiles/pet_protocols.dir/ezb.cpp.o"
  "CMakeFiles/pet_protocols.dir/ezb.cpp.o.d"
  "CMakeFiles/pet_protocols.dir/fneb.cpp.o"
  "CMakeFiles/pet_protocols.dir/fneb.cpp.o.d"
  "CMakeFiles/pet_protocols.dir/identification.cpp.o"
  "CMakeFiles/pet_protocols.dir/identification.cpp.o.d"
  "CMakeFiles/pet_protocols.dir/lof.cpp.o"
  "CMakeFiles/pet_protocols.dir/lof.cpp.o.d"
  "CMakeFiles/pet_protocols.dir/upe.cpp.o"
  "CMakeFiles/pet_protocols.dir/upe.cpp.o.d"
  "libpet_protocols.a"
  "libpet_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pet_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
