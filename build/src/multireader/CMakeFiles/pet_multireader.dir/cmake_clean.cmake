file(REMOVE_RECURSE
  "CMakeFiles/pet_multireader.dir/controller.cpp.o"
  "CMakeFiles/pet_multireader.dir/controller.cpp.o.d"
  "CMakeFiles/pet_multireader.dir/deployment.cpp.o"
  "CMakeFiles/pet_multireader.dir/deployment.cpp.o.d"
  "libpet_multireader.a"
  "libpet_multireader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pet_multireader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
