file(REMOVE_RECURSE
  "libpet_multireader.a"
)
