# Empty compiler generated dependencies file for pet_multireader.
# This may be replaced when dependencies are built.
