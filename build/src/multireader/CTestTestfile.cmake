# CMake generated Testfile for 
# Source directory: /root/repo/src/multireader
# Build directory: /root/repo/build/src/multireader
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
