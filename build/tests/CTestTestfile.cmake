# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/tags_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/protocols_test[1]_include.cmake")
include("/root/repo/build/tests/multireader_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/gen2_energy_test[1]_include.cmake")
include("/root/repo/build/tests/sketch_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_splitting_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/randomized_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
