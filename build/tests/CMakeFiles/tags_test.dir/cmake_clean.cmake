file(REMOVE_RECURSE
  "CMakeFiles/tags_test.dir/tags_test.cpp.o"
  "CMakeFiles/tags_test.dir/tags_test.cpp.o.d"
  "tags_test"
  "tags_test.pdb"
  "tags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
