# Empty dependencies file for gen2_energy_test.
# This may be replaced when dependencies are built.
