file(REMOVE_RECURSE
  "CMakeFiles/gen2_energy_test.dir/gen2_energy_test.cpp.o"
  "CMakeFiles/gen2_energy_test.dir/gen2_energy_test.cpp.o.d"
  "gen2_energy_test"
  "gen2_energy_test.pdb"
  "gen2_energy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen2_energy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
