file(REMOVE_RECURSE
  "CMakeFiles/fusion_splitting_test.dir/fusion_splitting_test.cpp.o"
  "CMakeFiles/fusion_splitting_test.dir/fusion_splitting_test.cpp.o.d"
  "fusion_splitting_test"
  "fusion_splitting_test.pdb"
  "fusion_splitting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_splitting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
