file(REMOVE_RECURSE
  "CMakeFiles/sketch_monitor_test.dir/sketch_monitor_test.cpp.o"
  "CMakeFiles/sketch_monitor_test.dir/sketch_monitor_test.cpp.o.d"
  "sketch_monitor_test"
  "sketch_monitor_test.pdb"
  "sketch_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
