// Quickstart: estimate the cardinality of an RFID tag population with PET.
//
//   $ ./quickstart [tag_count]
//
// Walks through the whole public API in ~40 lines: make a population, pick
// an accuracy contract, build a channel, run the estimator, inspect costs.
#include <cstdio>
#include <cstdlib>

#include "channel/sorted_pet_channel.hpp"
#include "core/estimator.hpp"
#include "core/planner.hpp"
#include "tags/population.hpp"

int main(int argc, char** argv) {
  using namespace pet;

  // 1. A population of passive tags.  Each tag's only protocol state is a
  //    preloaded 32-bit random code derived from its factory ID.
  const std::size_t tag_count =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50000;
  const auto population = tags::TagPopulation::generate(tag_count, /*seed=*/7);

  // 2. The accuracy contract of the paper's Section 3: the estimate must
  //    land within +/-5% of the truth with 99% probability.
  const stats::AccuracyRequirement requirement{0.05, 0.01};

  // 3. The protocol configuration: H = 32 tree, Algorithm 3 binary search
  //    (5 slots/round), preloaded codes.  plan() predicts the cost before
  //    touching the air.
  const core::PetConfig config;
  const core::PetPlan plan = core::plan(config, requirement);
  std::printf("plan: %llu rounds x %u slots = %llu slots, "
              "%llu bits of tag memory\n",
              static_cast<unsigned long long>(plan.rounds),
              plan.slots_per_round,
              static_cast<unsigned long long>(plan.total_slots),
              static_cast<unsigned long long>(plan.tag_memory_bits));

  // 4. A channel over the population and the estimator itself.
  chan::SortedPetChannel channel(
      {population.ids().begin(), population.ids().end()});
  const core::PetEstimator estimator(config, requirement);
  const core::EstimateResult result = estimator.estimate(channel, /*seed=*/1);

  // 5. Results and measured costs.
  std::printf("true count : %zu\n", population.size());
  std::printf("estimate   : %.0f  (accuracy %.4f)\n", result.n_hat,
              result.n_hat / static_cast<double>(population.size()));
  std::printf("cost       : %llu slots, %llu downlink bits, %.1f ms airtime\n",
              static_cast<unsigned long long>(result.ledger.total_slots()),
              static_cast<unsigned long long>(result.ledger.reader_bits),
              static_cast<double>(result.ledger.airtime_us) / 1000.0);
  const bool ok =
      result.n_hat >= requirement.interval_lo(static_cast<double>(tag_count)) &&
      result.n_hat <= requirement.interval_hi(static_cast<double>(tag_count));
  std::printf("within +/-5%% interval: %s\n", ok ? "yes" : "no");
  return 0;
}
