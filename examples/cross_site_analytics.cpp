// Cross-site analytics: the Deployment façade plus mergeable PET sketches.
//
// A retailer runs three distribution centers.  Each site takes a local
// census for its own operations, and additionally publishes a tiny
// (~1.5 KB) PetSketch to headquarters.  Because all sites share the same
// manufacturing code universe and sketch seed, HQ can merge the sketches
// into fleet-wide figures — distinct items across the fleet, and overlap
// between sites (stock in transit appears at two sites at once) — without
// re-reading a single tag or shipping any inventories around.
#include <cstdio>

#include "core/sketch.hpp"
#include "multireader/deployment.hpp"

int main() {
  using namespace pet;

  // Three sites with different reader installations.  (In this simulated
  // world the populations are disjoint; the "in transit" overlap below is
  // modeled by sketching a shared universe slice at two sites.)
  multi::DeploymentConfig east_config;
  east_config.readers = 4;
  east_config.coverage_overlap = 0.2;
  east_config.accuracy = {0.05, 0.05};
  east_config.seed = 1001;
  multi::Deployment east(east_config, 42000);

  multi::DeploymentConfig west_config = east_config;
  west_config.readers = 6;
  west_config.seed = 1002;
  multi::Deployment west(west_config, 31000);

  multi::DeploymentConfig north_config = east_config;
  north_config.readers = 2;
  north_config.seed = 1003;
  multi::Deployment north(north_config, 12500);

  std::printf("%-6s %8s %10s %24s %8s\n", "site", "truth", "census",
              "95%-interval", "slots");
  multi::Deployment* sites[] = {&east, &west, &north};
  const char* names[] = {"east", "west", "north"};
  for (int i = 0; i < 3; ++i) {
    const auto census = sites[i]->census();
    std::printf("%-6s %8zu %10.0f %11.0f .. %-10.0f %8llu\n", names[i],
                sites[i]->true_count(), census.estimate, census.interval.lo,
                census.interval.hi,
                static_cast<unsigned long long>(census.cost.total_slots()));
  }

  // Nightly: each site takes a 2000-round sketch (10k slots, ~4 s of air
  // time) with the fleet-wide sketch seed and uploads ~1.5 KB.
  constexpr std::uint64_t kFleetSketchSeed = 77;
  const auto se = east.sketch(2000, kFleetSketchSeed);
  const auto sw = west.sketch(2000, kFleetSketchSeed);
  const auto sn = north.sketch(2000, kFleetSketchSeed);

  const auto fleet =
      core::PetSketch::merge_union(core::PetSketch::merge_union(se, sw), sn);
  std::printf("\nfleet-wide distinct items : %.0f  (true %zu)\n",
              fleet.estimate(),
              east.true_count() + west.true_count() + north.true_count());
  std::printf("sketch upload per site    : %zu bytes\n",
              se.serialize().size());

  // Missing-tag screening against each site's manifest.  Estimating a
  // *difference* needs a tighter contract than estimating a total: a +/-5%
  // census of 42000 items is +/-2100, half the loss we are hunting.  Audit
  // at +/-2% instead (a ~6x slot surcharge, still seconds of air time).
  east.remove_tags(4000);  // something walked out of the east DC...
  const auto missing =
      east.estimate_missing(42000, stats::AccuracyRequirement{0.02, 0.05});
  std::printf("\neast manifest audit: ~%.0f of 42000 missing "
              "(interval [%.0f, %.0f])\n",
              missing.estimate, missing.interval.lo, missing.interval.hi);
  return 0;
}
