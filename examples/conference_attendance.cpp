// Conference attendance: the paper's RFID-badge scenario (Section 1) —
// count attendees across several exhibition halls, each covered by its own
// reader, with overlapping coverage near the doorways and people wandering
// between halls during the day.
//
// Demonstrates the multi-reader controller (Section 4.6.3): one fused
// estimate per session, never double-counting badges heard by two readers,
// and the anonymity property — the organizers learn the crowd size, not who
// is where.
#include <cstdio>
#include <memory>
#include <vector>

#include "channel/sorted_pet_channel.hpp"
#include "core/estimator.hpp"
#include "multireader/controller.hpp"
#include "tags/mobility.hpp"
#include "tags/population.hpp"

namespace {

pet::multi::MultiReaderController controller_for(
    const pet::tags::ZoneMap& halls) {
  std::vector<std::unique_ptr<pet::chan::PrefixChannel>> readers;
  for (std::size_t hall = 0; hall < halls.zone_count(); ++hall) {
    readers.push_back(std::make_unique<pet::chan::SortedPetChannel>(
        halls.audible_in(hall)));
  }
  return pet::multi::MultiReaderController(std::move(readers));
}

}  // namespace

int main() {
  using namespace pet;

  constexpr std::size_t kAttendees = 12000;
  constexpr std::size_t kHalls = 6;

  // Every attendee badge carries a preloaded 32-bit PET code.
  const auto badges = tags::TagPopulation::generate(kAttendees, 2026);
  tags::ZoneMap halls(kHalls, 42);
  halls.scatter(badges);
  halls.add_overlap(0.15);  // doorway overlap: some badges heard twice

  const stats::AccuracyRequirement requirement{0.05, 0.05};
  const core::PetEstimator estimator(core::PetConfig{}, requirement);

  std::printf("venue: %zu halls, %zu registered attendees, 15%% doorway "
              "overlap\n",
              kHalls, kAttendees);
  std::printf("contract: +/-5%% at 95%% confidence "
              "(%llu rounds x 5 slots per census)\n\n",
              static_cast<unsigned long long>(estimator.planned_rounds()));
  std::printf("%-10s %16s %10s %16s\n", "session", "distinct badges",
              "estimate", "controller slots");

  const char* sessions[] = {"keynote", "morning", "lunch", "afternoon",
                            "closing"};
  std::uint64_t seed = 1;
  for (const char* session : sessions) {
    auto controller = controller_for(halls);
    const auto result = estimator.estimate(controller, seed);
    std::printf("%-10s %16zu %10.0f %16llu\n", session, halls.distinct_tags(),
                result.n_hat,
                static_cast<unsigned long long>(result.ledger.total_slots()));
    // Between sessions a third of the crowd wanders to another hall.
    halls.step(0.33);
    ++seed;
  }

  std::printf("\nevery census costs the same 5 slots/round regardless of "
              "reader count,\nand no badge ever transmits its identity "
              "(Section 4.6.4).\n");
  return 0;
}
