// Warehouse audit: the paper's motivating cargo-shipping scenario
// (Sections 1 and 3).  A distribution center receives containers holding
// tens of thousands of tagged products and must verify the shipped amount
// quickly — the exact count is unnecessary, a +/-5% guarantee suffices.
//
// The example audits a sequence of inbound containers, comparing:
//   * PET estimation (seconds of air time), against
//   * full DFSA identification (the "count by reading every tag" way),
// and flags containers whose estimated quantity deviates from the manifest.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "channel/sorted_pet_channel.hpp"
#include "core/estimator.hpp"
#include "protocols/identification.hpp"
#include "tags/population.hpp"

int main() {
  using namespace pet;

  struct Container {
    const char* manifest_desc;
    std::size_t declared;  // units on the shipping manifest
    std::size_t actual;    // units actually inside
  };
  const std::vector<Container> shipment = {
      {"pallets of beverages", 42000, 42000},
      {"apparel cartons", 18000, 18000},
      {"electronics (pilfered!)", 30000, 24500},   // 18% missing
      {"pharma totes", 55000, 55000},
      {"spare parts (overpacked)", 8000, 9600},    // 20% extra
  };

  const stats::AccuracyRequirement requirement{0.05, 0.01};
  const core::PetConfig config;
  const core::PetEstimator estimator(config, requirement);
  const sim::SlotTiming timing;  // EPC-like 0.4 ms slots

  std::printf("dock-door audit: +/-5%% at 99%% confidence, "
              "%llu rounds x %u slots per container\n\n",
              static_cast<unsigned long long>(estimator.planned_rounds()),
              config.worst_case_slots_per_round());
  std::printf("%-28s %9s %9s %9s %8s %10s  %s\n", "container", "declared",
              "actual", "estimate", "PET(s)", "identify(s)", "verdict");

  std::uint64_t seed = 100;
  for (const Container& container : shipment) {
    const auto pop = tags::TagPopulation::generate(container.actual, seed);
    chan::SortedPetChannel channel({pop.ids().begin(), pop.ids().end()});
    const auto result = estimator.estimate(channel, seed);

    // What full identification of this container would cost (sampled DFSA:
    // same slot count distribution as reading every tag for real).
    const auto id = proto::identify_dfsa_sampled(container.actual,
                                                 proto::DfsaConfig{}, seed);
    const double pet_seconds =
        static_cast<double>(result.ledger.total_slots() * timing.slot_us()) /
        1e6;
    const double id_seconds =
        static_cast<double>(id.ledger.total_slots() * timing.slot_us()) / 1e6;

    // Accept iff the declared quantity lies inside the estimate's +/-eps
    // band around the estimate (equivalently |nhat - declared| <= eps*nhat
    // up to rounding; a real deployment would widen by the estimator's own
    // tolerance).
    const double declared = static_cast<double>(container.declared);
    const bool accept =
        std::abs(result.n_hat - declared) <= 0.07 * declared;
    std::printf("%-28s %9zu %9zu %9.0f %8.1f %10.1f  %s\n",
                container.manifest_desc, container.declared, container.actual,
                result.n_hat, pet_seconds, id_seconds,
                accept ? "ACCEPT" : "INSPECT");
    ++seed;
  }

  std::printf("\nPET verifies a container in seconds; identification would "
              "hold the dock for minutes.\n");
  return 0;
}
