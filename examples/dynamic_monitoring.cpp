// Dynamic monitoring: continuous cardinality tracking of a changing tag
// population — the "dynamic tag set" robustness requirement of Section 3.
//
// A logistics yard sees trucks arrive (tags join) and depart (tags leave)
// through a working day.  A monitoring loop re-estimates every epoch with a
// cheap, loose contract and escalates to a tight contract whenever the
// count swings by more than 20% — showing how PET's tunable accuracy
// (Fig. 4) maps to an operational knob.
#include <cstdio>
#include <cmath>

#include "channel/sorted_pet_channel.hpp"
#include "core/estimator.hpp"
#include "tags/population.hpp"

namespace {

double estimate_now(const pet::tags::TagPopulation& yard,
                    const pet::core::PetEstimator& estimator,
                    std::uint64_t seed, std::uint64_t* slots) {
  pet::chan::SortedPetChannel channel({yard.ids().begin(), yard.ids().end()});
  const auto result = estimator.estimate(channel, seed);
  *slots = result.ledger.total_slots();
  return result.n_hat;
}

}  // namespace

int main() {
  using namespace pet;

  tags::TagPopulation yard = tags::TagPopulation::generate(8000, 11);

  // Two operating points: a cheap tracking contract and a tight audit one.
  const core::PetEstimator tracker(core::PetConfig{}, {0.15, 0.10});
  const core::PetEstimator auditor(core::PetConfig{}, {0.05, 0.01});

  std::printf("yard monitor: loose contract (+/-15%% @ 90%%) every epoch, "
              "tight audit (+/-5%% @ 99%%) on >20%% swings\n\n");
  std::printf("%5s %8s %10s %10s %9s  %s\n", "epoch", "truth", "tracked",
              "audited", "slots", "events");

  struct Epoch {
    std::size_t join;
    std::size_t leave;
    const char* what;
  };
  const Epoch day[] = {
      {500, 300, "overnight trickle"},
      {6000, 200, "morning inbound convoy"},
      {400, 500, "midday balance"},
      {300, 9000, "afternoon outbound push"},
      {200, 100, "evening lull"},
      {12000, 0, "surprise bulk arrival"},
  };

  double last_estimate = static_cast<double>(yard.size());
  std::uint64_t seed = 1;
  int epoch = 0;
  for (const Epoch& e : day) {
    yard.join_fresh(e.join, 1000 + seed);
    yard.leave_random(e.leave, 2000 + seed);

    std::uint64_t slots = 0;
    const double tracked = estimate_now(yard, tracker, seed, &slots);

    const bool swing =
        std::abs(tracked - last_estimate) > 0.2 * last_estimate;
    double audited = std::nan("");
    if (swing) {
      std::uint64_t audit_slots = 0;
      audited = estimate_now(yard, auditor, seed + 5000, &audit_slots);
      slots += audit_slots;
    }
    last_estimate = swing ? audited : tracked;

    if (swing) {
      std::printf("%5d %8zu %10.0f %10.0f %9llu  %s  [AUDIT]\n", epoch,
                  yard.size(), tracked, audited,
                  static_cast<unsigned long long>(slots), e.what);
    } else {
      std::printf("%5d %8zu %10.0f %10s %9llu  %s\n", epoch, yard.size(),
                  tracked, "-", static_cast<unsigned long long>(slots),
                  e.what);
    }
    ++seed;
    ++epoch;
  }

  std::printf("\ntracking costs %llu slots/epoch; audits cost %llu — the "
              "accuracy/time trade of Fig. 4 as an operational knob.\n",
              static_cast<unsigned long long>(tracker.planned_rounds() * 5),
              static_cast<unsigned long long>(auditor.planned_rounds() * 5));
  return 0;
}
