// Streaming monitor: continuous, low-overhead cardinality tracking with
// automatic change detection — the StreamingMonitor API on a simulated
// retail stockroom.
//
// Each tick spends ONE PET round (5 slots); the monitor keeps a sliding
// window of depth observations, exposes a running estimate with a
// confidence interval, and flags statistically significant population
// jumps (deliveries, bulk removals) the moment the window disagrees with
// the recent past.
#include <cstdio>

#include "channel/sorted_pet_channel.hpp"
#include "core/monitor.hpp"
#include "tags/population.hpp"

int main() {
  using namespace pet;

  auto stockroom = tags::TagPopulation::generate(6000, 3);
  core::MonitorConfig config;
  config.window_rounds = 256;
  config.recent_rounds = 32;
  core::StreamingMonitor monitor(config, /*seed=*/9);

  std::printf("stockroom monitor: 5 slots per tick, window of %zu rounds\n\n",
              config.window_rounds);
  std::printf("%6s %8s %10s %22s  %s\n", "hour", "truth", "estimate",
              "95%-interval", "event");

  for (int hour = 0; hour < 24; ++hour) {
    // The stockroom's day.
    const char* note = "";
    if (hour == 6) {
      stockroom.join_fresh(14000, 100u + static_cast<unsigned>(hour));  // morning delivery
      note = "<- delivery (+14000)";
    }
    if (hour == 11) {
      stockroom.leave_random(4000, 200u + static_cast<unsigned>(hour));  // shelves restocked
      note = "<- restock (-4000)";
    }
    if (hour == 18) {
      stockroom.leave_random(12000, 300u + static_cast<unsigned>(hour));  // evening shipment out
      note = "<- shipment (-12000)";
    }

    // One hour = 64 monitor ticks (320 slots, ~0.2 s of Gen2 air time).
    chan::SortedPetChannel channel(
        {stockroom.ids().begin(), stockroom.ids().end()});
    bool changed = false;
    for (int tick = 0; tick < 64; ++tick) {
      changed = monitor.tick(channel) || changed;
    }

    const auto estimate = monitor.estimate();
    const auto interval = monitor.interval(0.05);
    char band[32] = "-";
    if (interval.has_value()) {
      std::snprintf(band, sizeof band, "[%.0f, %.0f]", interval->lo,
                    interval->hi);
    }
    std::printf("%6d %8zu %10.0f %22s  %s%s\n", hour, stockroom.size(),
                estimate.value_or(0.0), band,
                changed ? "CHANGE " : "", note);
  }

  std::printf("\nchange events flagged: %llu (the 3-sigma detector fires on "
              "the large jumps; gradual drifts are simply tracked)\n",
              static_cast<unsigned long long>(monitor.changes_detected()));
  return 0;
}
