// petsim — command-line front end to the PET RFID estimation library.
//
//   petsim plan     --eps=0.05 --delta=0.01
//   petsim estimate --protocol=pet --n=50000 --eps=0.05 --delta=0.01
//                   [--search=binary|strict|linear] [--loss=0.1]
//                   [--readers=4 --overlap=0.3] [--seed=1]
//                   [--runs=500 --threads=8 --quiet]
//                   [--mac=ideal|gen2 --capture=0.6]
//   petsim identify --protocol=dfsa|treewalk --n=20000 [--seed=1]
//   petsim monitor  --n=10000 --steps=40 [--seed=1]
//
// --runs > 1 replays that many independent trials on the pet::runtime
// parallel trial engine (--threads workers, default hardware concurrency)
// and reports the aggregate; results are bit-identical for any --threads
// (docs/runtime.md).  Everything is simulated on the slotted-MAC
// substrate; see README.md.
//
// Observability (docs/observability.md): --obs=off|counters|full selects
// the level, --metrics-out=FILE writes the pet.obs.v1 metrics document,
// --trace-jsonl=FILE streams span/event records.  Requesting an output
// upgrades the level to the one that produces it.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "channel/arena.hpp"
#include "channel/device_channel.hpp"
#include "common/fastpath.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "core/confidence.hpp"
#include "core/estimator.hpp"
#include "core/monitor.hpp"
#include "core/planner.hpp"
#include "core/robust_estimator.hpp"
#include "core/sketch.hpp"
#include "gen2/channel.hpp"
#include "multireader/controller.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "protocols/ezb.hpp"
#include "protocols/fneb.hpp"
#include "protocols/identification.hpp"
#include "protocols/lof.hpp"
#include "protocols/upe.hpp"
#include "rng/prng.hpp"
#include "runtime/cancel.hpp"
#include "runtime/parallel_exec.hpp"
#include "runtime/trial_runner.hpp"
#include "sim/gen2_timing.hpp"
#include "sim/trace.hpp"
#include "stats/accuracy.hpp"
#include "tags/mobility.hpp"
#include "tags/population.hpp"

namespace {

using namespace pet;

struct Args {
  std::map<std::string, std::string> kv;

  [[nodiscard]] double get(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  [[nodiscard]] std::uint64_t get(const std::string& key,
                                  std::uint64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback
                          : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const char* fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "petsim: bad argument '%s'\n", arg);
      std::exit(2);
    }
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) {
      args.kv[arg + 2] = "1";
    } else {
      args.kv[std::string(arg + 2, eq)] = eq + 1;
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  petsim plan     --eps=E --delta=D [--n=N]\n"
      "  petsim estimate --protocol=pet|fneb|lof|upe|ezb --n=N --eps=E "
      "--delta=D\n"
      "                  [--search=binary|strict|linear]\n"
      "                  [--fusion=paper|bias-corrected|median-of-means]\n"
      "                  [--mac=ideal|gen2] [--capture=P]\n"
      "                  [--loss=P] [--robust]\n"
      "                  [--readers=K --overlap=P] [--trace=FILE "
      "--trace-format=csv|jsonl] [--seed=S]\n"
      "                  [--runs=R --threads=T --quiet]\n"
      "  petsim identify --protocol=dfsa|treewalk --n=N [--seed=S]\n"
      "  petsim monitor  --n=N --steps=T [--seed=S]\n"
      "  petsim sketch   --n-a=N --n-b=M --shared=K [--rounds=R]\n"
      "\n"
      "performance (every command, docs/performance.md):\n"
      "  --fast-path=on|off        fast-round pipeline (default on; results\n"
      "                            are bit-identical either way)\n"
      "observability (every command):\n"
      "  --obs=off|counters|full   metrics level (default off)\n"
      "  --metrics-out=FILE        write pet.obs.v1 metrics JSON "
      "(implies counters)\n"
      "  --trace-jsonl=FILE        write span/event JSONL (implies full)\n");
  return 2;
}

/// Observability wiring for one petsim invocation: resolves the level from
/// --obs / --metrics-out / --trace-jsonl, installs the trace writer and the
/// trial hook, and writes the metrics document after the command returns.
struct ObsSession {
  std::string metrics_path;
  std::string trace_path;
  std::ofstream trace_file;
  std::unique_ptr<obs::TraceWriter> writer;
  obs::PhaseProfiler profiler;

  /// Returns 0, or 2 on a bad flag / unwritable trace path.
  int init(const Args& args) {
    metrics_path = args.get("metrics-out", "");
    trace_path = args.get("trace-jsonl", "");
    obs::Level level = obs::Level::kOff;
    const std::string requested = args.get("obs", "");
    if (!requested.empty()) {
      try {
        level = obs::parse_level(requested);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "petsim: %s\n", error.what());
        return 2;
      }
    }
    // Requesting an output implies the level that produces it.
    if (!metrics_path.empty() && level == obs::Level::kOff) {
      level = obs::Level::kCounters;
    }
    if (!trace_path.empty()) level = obs::Level::kFull;
    obs::set_level(level);
    if (level == obs::Level::kOff) return 0;

    obs::MetricsRegistry::instance().reset();
    if (level == obs::Level::kFull) {
      // Workers pin the logical trial coordinate so trace records from a
      // --runs sweep are attributable.
      runtime::set_trial_begin_hook(&obs::set_trace_trial);
      if (!trace_path.empty()) {
        trace_file.open(trace_path);
        if (!trace_file) {
          std::fprintf(stderr, "petsim: cannot open trace file '%s'\n",
                       trace_path.c_str());
          return 2;
        }
        writer = std::make_unique<obs::TraceWriter>(trace_file);
        obs::set_trace_writer(writer.get());
      }
    }
    return 0;
  }

  /// Simulated slots recorded so far (for phase slots/second).
  [[nodiscard]] static std::uint64_t recorded_slots() {
    const obs::Snapshot snapshot = obs::MetricsRegistry::instance().snapshot();
    return snapshot.counter("chan.ledger.idle_slots") +
           snapshot.counter("chan.ledger.singleton_slots") +
           snapshot.counter("chan.ledger.collision_slots") +
           snapshot.counter("chan.ledger.retry_slots");
  }

  void finish() {
    obs::set_trace_writer(nullptr);
    if (!obs::counters_enabled() || metrics_path.empty()) return;
    auto& runner = runtime::global_runner();
    const runtime::ThreadPool::Stats stats = runner.pool_stats();
    obs::PoolSample pool;
    pool.threads = runner.thread_count();
    pool.submitted = stats.submitted;
    pool.stolen = stats.stolen;
    pool.max_queue_depth = stats.max_queue_depth;
    pool.worker_tasks = stats.worker_tasks;
    try {
      obs::write_metrics_file(metrics_path, profiler.phases(), pool);
      std::fprintf(stderr, "wrote metrics to %s\n", metrics_path.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "petsim: metrics not written: %s\n", error.what());
    }
  }
};

double gen2_seconds(const sim::SlotLedger& ledger, std::uint64_t rounds) {
  const sim::Gen2LinkConfig link;
  return sim::gen2_session_us(link, ledger.singleton_slots +
                                        ledger.collision_slots,
                              ledger.idle_slots, 32, 1, rounds, 32) /
         1e6;
}

int cmd_plan(const Args& args) {
  const stats::AccuracyRequirement req{args.get("eps", 0.05),
                                       args.get("delta", 0.01)};
  const double n = args.get("n", 50000.0);
  const core::PetPlan pet = core::plan(core::PetConfig{}, req, n);
  const proto::FnebEstimator fneb(proto::FnebConfig{}, req);
  const proto::LofEstimator lof(proto::LofConfig{}, req);

  std::printf("accuracy contract: |nhat - n| <= %.1f%% n with probability "
              ">= %.1f%%\n\n",
              req.epsilon * 100, (1 - req.delta) * 100);
  std::printf("%-8s %10s %14s %14s %16s\n", "protocol", "rounds",
              "slots/round", "total slots", "tag memory bits");
  std::printf("%-8s %10llu %14u %14llu %16llu\n", "PET",
              static_cast<unsigned long long>(pet.rounds),
              pet.slots_per_round,
              static_cast<unsigned long long>(pet.total_slots),
              static_cast<unsigned long long>(pet.tag_memory_bits));
  const std::uint64_t fneb_spr =
      static_cast<std::uint64_t>(std::log2(16.0 * n)) + 1;
  std::printf("%-8s %10llu %14llu %14llu %16llu\n", "FNEB",
              static_cast<unsigned long long>(fneb.planned_rounds()),
              static_cast<unsigned long long>(fneb_spr),
              static_cast<unsigned long long>(fneb.planned_rounds() *
                                              fneb_spr),
              static_cast<unsigned long long>(32 * fneb.planned_rounds()));
  std::printf("%-8s %10llu %14u %14llu %16llu\n", "LoF",
              static_cast<unsigned long long>(lof.planned_rounds()), 32u,
              static_cast<unsigned long long>(32 * lof.planned_rounds()),
              static_cast<unsigned long long>(32 * lof.planned_rounds()));
  return 0;
}

/// --runs=R > 1: replay R independent trials of the plain single-reader
/// protocol on the parallel trial engine and report the aggregate.  Seed
/// streams mirror bench/harness/experiment.cpp, so a petsim sweep and the
/// bench harness agree estimate-for-estimate.
int cmd_estimate_many(const std::string& protocol, std::uint64_t n,
                      const stats::AccuracyRequirement& req,
                      const core::PetConfig& pet_config, std::uint64_t runs,
                      std::uint64_t seed) {
  stats::TrialSummary summary(static_cast<double>(n));
  double total_slots = 0.0;

  const auto pop = tags::TagPopulation::generate(n, 0xdecafULL);
  const std::vector<TagId> ids(pop.ids().begin(), pop.ids().end());
  const auto start = std::chrono::steady_clock::now();
  auto& runner = runtime::global_runner();

  // The runner reports how many trials actually folded: a SIGINT/SIGTERM
  // drain stops at a trial boundary and the aggregates below rescale to the
  // prefix that completed.
  std::uint64_t folded = 0;

  auto fold = [&](std::uint64_t, core::EstimateResult&& result) {
    summary.add(result.n_hat);
    total_slots += static_cast<double>(result.ledger.total_slots());
  };

  if (protocol == "pet") {
    const core::PetEstimator estimator(pet_config, req);
    const std::uint64_t m = estimator.planned_rounds();
    folded = runner.run<core::EstimateResult>(
        runs,
        [&](std::uint64_t run) {
          chan::SortedPetChannelConfig channel_config;
          channel_config.tree_height = pet_config.tree_height;
          channel_config.manufacturing_seed = rng::derive_seed(seed, 2 * run);
          // Per-thread arena: rebuild() re-keys the retained channel, bit-
          // identical to the per-trial construction the slow path keeps.
          std::optional<chan::SortedPetChannel> local;
          chan::SortedPetChannel& channel =
              fast_path_enabled()
                  ? chan::arena_sorted_pet_channel(ids, channel_config)
                  : local.emplace(ids, channel_config);
          auto result = estimator.estimate_with_rounds(
              channel, m, rng::derive_seed(seed, 2 * run + 1));
          channel.flush_obs();
          return result;
        },
        fold, "PET trials");
  } else {
    // The rehash-per-round baselines all run on the sampled channel; only
    // the estimator (and its historical seed stride) differs.
    auto sweep = [&](std::uint64_t stride, const auto& estimator) {
      folded = runner.run<core::EstimateResult>(
          runs,
          [&](std::uint64_t run) {
            const std::uint64_t chan_seed = rng::derive_seed(seed, stride * run);
            std::optional<chan::SampledChannel> local;
            chan::SampledChannel& channel =
                fast_path_enabled() ? chan::arena_sampled_channel(n, chan_seed)
                                    : local.emplace(n, chan_seed);
            return estimator.estimate(
                channel, rng::derive_seed(seed, stride * run + 1));
          },
          fold, protocol + " trials");
    };
    if (protocol == "fneb") {
      sweep(3, proto::FnebEstimator(proto::FnebConfig{}, req));
    } else if (protocol == "lof") {
      sweep(5, proto::LofEstimator(proto::LofConfig{}, req));
    } else if (protocol == "upe") {
      proto::UpeConfig config;
      config.expected_n = static_cast<double>(n);
      sweep(7, proto::UpeEstimator(config, req));
    } else if (protocol == "ezb") {
      sweep(11, proto::EzbEstimator(proto::EzbConfig{}, req));
    } else {
      return usage();
    }
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (folded == 0) {
    std::printf("%s sweep    : interrupted before any trial folded\n",
                protocol.c_str());
    return 130;
  }
  std::printf("%s sweep    : %llu trials, %u threads\n", protocol.c_str(),
              static_cast<unsigned long long>(folded), runner.thread_count());
  if (folded < runs) {
    std::printf("truncated    : %llu of %llu trials folded (shutdown)\n",
                static_cast<unsigned long long>(folded),
                static_cast<unsigned long long>(runs));
  }
  std::printf("mean nhat    : %.0f   (true %llu, accuracy %.4f)\n",
              summary.accuracy() * static_cast<double>(n),
              static_cast<unsigned long long>(n), summary.accuracy());
  std::printf("normalized sigma: %.4f\n", summary.normalized_deviation());
  std::printf("within eps   : %.3f (contract needs >= %.3f)\n",
              summary.fraction_within(req.epsilon), 1.0 - req.delta);
  std::printf("mean slots   : %.1f per estimate\n",
              total_slots / static_cast<double>(folded));
  std::printf("wall time    : %.3f s (%.1f trials/s)\n", wall,
              static_cast<double>(folded) / wall);
  return 0;
}

/// --mac=gen2 --runs=R: the same sweep over the measured EPC C1G2 MAC
/// (gen2::Gen2PrefixChannel — Select+Query probes, real command bits,
/// optional capture/loss impairments).  Seed strides mirror
/// cmd_estimate_many (derive(seed, 2 run) manufacturing, derive(seed,
/// 2 run + 1) estimation) plus the robustness-bench impairment stream
/// derive(seed, 500 + run).
int cmd_estimate_many_gen2(const std::string& protocol, std::uint64_t n,
                           const stats::AccuracyRequirement& req,
                           std::uint64_t runs, std::uint64_t seed,
                           double capture, double loss) {
  stats::TrialSummary summary(static_cast<double>(n));
  double total_slots = 0.0;
  double total_airtime_us = 0.0;

  const auto pop = tags::TagPopulation::generate(n, 0xdecafULL);
  const std::vector<TagId> ids(pop.ids().begin(), pop.ids().end());
  const auto start = std::chrono::steady_clock::now();
  auto& runner = runtime::global_runner();
  std::uint64_t folded = 0;

  auto fold = [&](std::uint64_t, core::EstimateResult&& result) {
    summary.add(result.n_hat);
    total_slots += static_cast<double>(result.ledger.total_slots());
    total_airtime_us += static_cast<double>(result.ledger.airtime_us);
  };
  auto sweep = [&](const auto& estimator) {
    folded = runner.run<core::EstimateResult>(
        runs,
        [&](std::uint64_t run) {
          gen2::Gen2ChannelConfig config;
          config.manufacturing_seed = rng::derive_seed(seed, 2 * run);
          config.impairments.capture.capture_prob = capture;
          config.impairments.reply_loss_prob = loss;
          config.impairments.seed = rng::derive_seed(seed, 500 + run);
          gen2::Gen2PrefixChannel channel(ids, config);
          return estimator.estimate(channel,
                                    rng::derive_seed(seed, 2 * run + 1));
        },
        fold, protocol + " gen2 trials");
  };

  if (protocol == "pet") {
    sweep(core::PetEstimator(core::PetConfig{}, req));
  } else if (protocol == "fneb") {
    sweep(proto::FnebEstimator(proto::FnebConfig{}, req));
  } else if (protocol == "lof") {
    sweep(proto::LofEstimator(proto::LofConfig{}, req));
  } else if (protocol == "upe") {
    proto::UpeConfig config;
    config.expected_n = static_cast<double>(n);
    sweep(proto::UpeEstimator(config, req));
  } else if (protocol == "ezb") {
    sweep(proto::EzbEstimator(proto::EzbConfig{}, req));
  } else {
    return usage();
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (folded == 0) {
    std::printf("%s gen2 sweep: interrupted before any trial folded\n",
                protocol.c_str());
    return 130;
  }
  std::printf("%s gen2 sweep: %llu trials, %u threads (capture %.2f, "
              "loss %.2f)\n",
              protocol.c_str(), static_cast<unsigned long long>(folded),
              runner.thread_count(), capture, loss);
  if (folded < runs) {
    std::printf("truncated    : %llu of %llu trials folded (shutdown)\n",
                static_cast<unsigned long long>(folded),
                static_cast<unsigned long long>(runs));
  }
  std::printf("mean nhat    : %.0f   (true %llu, accuracy %.4f)\n",
              summary.accuracy() * static_cast<double>(n),
              static_cast<unsigned long long>(n), summary.accuracy());
  std::printf("normalized sigma: %.4f\n", summary.normalized_deviation());
  std::printf("within eps   : %.3f (contract needs >= %.3f)\n",
              summary.fraction_within(req.epsilon), 1.0 - req.delta);
  std::printf("mean slots   : %.1f per estimate\n",
              total_slots / static_cast<double>(folded));
  std::printf("mean airtime : %.3f s per estimate (Tari 6.25us Miller-4)\n",
              total_airtime_us / static_cast<double>(folded) / 1e6);
  std::printf("wall time    : %.3f s (%.1f trials/s)\n", wall,
              static_cast<double>(folded) / wall);
  return 0;
}

/// --robust --runs=R: the hardened pipeline on the device-level channel
/// with optional iid reply loss.  Seed streams mirror
/// bench/robustness_bench.cpp (derive(seed, run) manufacturing,
/// derive(seed, 500 + run) impairments, derive(seed, 1000 + run)
/// estimation), so a petsim sweep reproduces the bench trial-for-trial.
int cmd_estimate_robust_many(std::uint64_t n,
                             const stats::AccuracyRequirement& req,
                             const core::RobustPetConfig& config,
                             std::uint64_t runs, std::uint64_t seed,
                             double loss) {
  stats::TrialSummary summary(static_cast<double>(n));
  double total_slots = 0.0;
  std::uint64_t rereads = 0;
  std::uint64_t at_risk = 0;

  const auto pop = tags::TagPopulation::generate(n, 0xdecafULL);
  const core::RobustPetEstimator estimator(config, req);
  const auto start = std::chrono::steady_clock::now();
  auto& runner = runtime::global_runner();

  const std::uint64_t folded = runner.run<core::RobustEstimateResult>(
      runs,
      [&](std::uint64_t run) {
        chan::DeviceChannelConfig device;
        device.manufacturing_seed = rng::derive_seed(seed, run);
        device.impairments.seed = rng::derive_seed(seed, 500 + run);
        device.impairments.reply_loss_prob = loss;
        chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet,
                                    device);
        return estimator.estimate(channel, rng::derive_seed(seed, 1000 + run));
      },
      [&](std::uint64_t, core::RobustEstimateResult&& result) {
        summary.add(result.n_hat());
        total_slots += static_cast<double>(result.base.ledger.total_slots());
        rereads += result.reread_slots;
        if (result.diagnostic.contract_at_risk()) ++at_risk;
      },
      "robust PET trials");

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (folded == 0) {
    std::printf("robust sweep : interrupted before any trial folded\n");
    return 130;
  }
  std::printf("robust sweep : %llu trials, %u threads, loss %.3f\n",
              static_cast<unsigned long long>(folded), runner.thread_count(),
              loss);
  if (folded < runs) {
    std::printf("truncated    : %llu of %llu trials folded (shutdown)\n",
                static_cast<unsigned long long>(folded),
                static_cast<unsigned long long>(runs));
  }
  std::printf("mean nhat    : %.0f   (true %llu, accuracy %.4f)\n",
              summary.accuracy() * static_cast<double>(n),
              static_cast<unsigned long long>(n), summary.accuracy());
  std::printf("within eps   : %.3f (contract needs >= %.3f)\n",
              summary.fraction_within(req.epsilon), 1.0 - req.delta);
  std::printf("mean slots   : %.1f per estimate\n",
              total_slots / static_cast<double>(folded));
  std::printf("rereads/run  : %.1f\n",
              static_cast<double>(rereads) / static_cast<double>(folded));
  std::printf("at-risk frac : %.3f\n",
              static_cast<double>(at_risk) / static_cast<double>(folded));
  std::printf("wall time    : %.3f s (%.1f trials/s)\n", wall,
              static_cast<double>(folded) / wall);
  return 0;
}

int cmd_estimate(const Args& args) {
  const std::string protocol = args.get("protocol", "pet");
  const std::uint64_t n = args.get("n", std::uint64_t{50000});
  const stats::AccuracyRequirement req{args.get("eps", 0.05),
                                       args.get("delta", 0.01)};
  const std::uint64_t seed = args.get("seed", std::uint64_t{1});
  const std::uint64_t runs = args.get("runs", std::uint64_t{1});
  const auto threads =
      static_cast<unsigned>(args.get("threads", std::uint64_t{0}));
  const bool quiet = args.kv.count("quiet") != 0;
  runtime::global_runner().configure(threads, !quiet && runs > 1);
  // The intra-trial parallel radix partition follows the same --threads
  // budget; pool-worker builds clamp to serial (runtime/parallel_exec.hpp).
  runtime::configure_build_parallelism(threads);

  // --mac=gen2 swaps the ideal perfect-detection channels for the measured
  // EPC C1G2 MAC (docs/gen2.md); --capture then sets the capture-effect
  // probability on that link.
  const std::string mac = args.get("mac", "ideal");
  if (mac != "ideal" && mac != "gen2") {
    std::fprintf(stderr, "petsim: --mac must be ideal or gen2\n");
    return 2;
  }
  const bool gen2_mac = mac == "gen2";
  const double capture = args.get("capture", 0.0);

  core::EstimateResult result;
  std::uint64_t rounds = 0;

  if (protocol == "pet") {
    core::PetConfig config;
    const std::string search = args.get("search", "binary");
    if (search == "strict") config.search = core::SearchMode::kBinaryStrict;
    if (search == "linear") config.search = core::SearchMode::kLinear;
    const std::string fusion = args.get("fusion", "paper");
    if (fusion == "bias-corrected") {
      config.fusion = core::FusionRule::kBiasCorrected;
    } else if (fusion == "median-of-means") {
      config.fusion = core::FusionRule::kMedianOfMeans;
    }
    const bool robust = args.kv.count("robust") != 0;
    if (gen2_mac && (robust || args.get("readers", std::uint64_t{1}) > 1 ||
                     !args.get("trace", "").empty())) {
      std::fprintf(stderr,
                   "petsim: --mac=gen2 supports only the plain single-reader "
                   "estimate\n");
      return 2;
    }
    if (runs > 1) {
      if (gen2_mac) {
        return cmd_estimate_many_gen2(protocol, n, req, runs, seed, capture,
                                      args.get("loss", 0.0));
      }
      if (robust) {
        core::RobustPetConfig robust_config;
        robust_config.base = config;
        return cmd_estimate_robust_many(n, req, robust_config, runs, seed,
                                        args.get("loss", 0.0));
      }
      if (args.get("loss", 0.0) > 0.0 ||
          args.get("readers", std::uint64_t{1}) > 1 ||
          !args.get("trace", "").empty()) {
        std::fprintf(stderr,
                     "petsim: --runs > 1 supports only the plain "
                     "single-reader channel (add --robust for lossy "
                     "sweeps)\n");
        return 2;
      }
      return cmd_estimate_many(protocol, n, req, config, runs, seed);
    }
    const core::PetEstimator estimator(config, req);
    rounds = estimator.planned_rounds();

    const double loss = args.get("loss", 0.0);
    const auto readers = args.get("readers", std::uint64_t{1});
    const std::string trace_path = args.get("trace", "");
    const auto pop = tags::TagPopulation::generate(n, seed);

    if (robust) {
      // Hardened single run: device-level channel (optionally lossy),
      // voting probes, health diagnostic.
      core::RobustPetConfig robust_config;
      robust_config.base = config;
      const core::RobustPetEstimator hardened(robust_config, req);
      chan::DeviceChannelConfig device;
      device.impairments.reply_loss_prob = loss;
      chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet, device);
      const core::RobustEstimateResult robust_result =
          hardened.estimate(channel, seed);
      result = robust_result.base;
      std::printf("robust PET   : %.0f   (true %llu)\n", robust_result.n_hat(),
                  static_cast<unsigned long long>(n));
      std::printf("%.0f%% interval: [%.0f, %.0f] (widening %.2fx)\n",
                  (1 - req.delta) * 100, robust_result.interval.lo,
                  robust_result.interval.hi,
                  robust_result.diagnostic.widening);
      std::printf("health       : %s (KS %.4f vs %.4f)\n",
                  std::string(to_string(robust_result.diagnostic.health))
                      .c_str(),
                  robust_result.diagnostic.ks_distance,
                  robust_result.diagnostic.ks_threshold);
      std::printf("voting       : %llu re-read slots, %llu probes "
                  "overturned%s\n",
                  static_cast<unsigned long long>(robust_result.reread_slots),
                  static_cast<unsigned long long>(
                      robust_result.overturned_probes),
                  robust_result.retry_budget_exhausted
                      ? " (budget exhausted)"
                      : "");
    } else if (gen2_mac) {
      gen2::Gen2ChannelConfig gen2_config;
      gen2_config.manufacturing_seed = rng::derive_seed(seed, 0);
      gen2_config.impairments.capture.capture_prob = capture;
      gen2_config.impairments.reply_loss_prob = loss;
      gen2_config.impairments.seed = rng::derive_seed(seed, 2);
      gen2::Gen2PrefixChannel channel(
          {pop.ids().begin(), pop.ids().end()}, gen2_config);
      result = estimator.estimate(channel, seed);
    } else if (loss > 0.0 || !trace_path.empty()) {
      // Lossy links and per-slot tracing need the device-level channel.
      chan::DeviceChannelConfig device;
      device.impairments.reply_loss_prob = loss;
      chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet, device);
      std::ofstream trace_file;
      std::unique_ptr<sim::TraceSink> sink;
      if (!trace_path.empty()) {
        trace_file.open(trace_path);
        if (!trace_file) {
          std::fprintf(stderr, "petsim: cannot open trace file '%s'\n",
                       trace_path.c_str());
          return 2;
        }
        const std::string format = args.get("trace-format", "csv");
        if (format != "csv" && format != "jsonl") {
          std::fprintf(stderr,
                       "petsim: --trace-format must be csv or jsonl\n");
          return 2;
        }
        sink = std::make_unique<sim::TraceSink>(
            trace_file, format == "jsonl" ? sim::TraceFormat::kJsonl
                                          : sim::TraceFormat::kCsv);
        channel.set_observer(sink->observer());
      }
      result = estimator.estimate(channel, seed);
      if (sink) {
        std::printf("trace        : %llu slots written to %s\n",
                    static_cast<unsigned long long>(sink->rows_written()),
                    trace_path.c_str());
      }
    } else if (readers > 1) {
      tags::ZoneMap zones(readers, seed);
      zones.scatter(pop);
      zones.add_overlap(args.get("overlap", 0.0));
      std::vector<std::unique_ptr<chan::PrefixChannel>> zone_channels;
      for (std::size_t z = 0; z < readers; ++z) {
        zone_channels.push_back(std::make_unique<chan::SortedPetChannel>(
            zones.audible_in(z)));
      }
      multi::MultiReaderController controller(std::move(zone_channels));
      result = estimator.estimate(controller, seed);
    } else {
      chan::SortedPetChannel channel({pop.ids().begin(), pop.ids().end()});
      result = estimator.estimate(channel, seed);
    }
    if (!robust) {
      // The robust branch already printed its own (widened) interval.
      const auto ci = core::confidence_interval(result, req.delta);
      std::printf("PET estimate : %.0f   (true %llu)\n", result.n_hat,
                  static_cast<unsigned long long>(n));
      std::printf("%.0f%% interval: [%.0f, %.0f]\n", (1 - req.delta) * 100,
                  ci.lo, ci.hi);
    }
  } else {
    if (runs > 1) {
      if (gen2_mac) {
        return cmd_estimate_many_gen2(protocol, n, req, runs, seed, capture,
                                      args.get("loss", 0.0));
      }
      return cmd_estimate_many(protocol, n, req, core::PetConfig{}, runs,
                               seed);
    }
    // Single run: the ideal occupancy-sampled channel, or the measured MAC
    // (Gen2PrefixChannel implements every baseline's channel contract).
    std::optional<chan::SampledChannel> sampled;
    std::optional<gen2::Gen2PrefixChannel> over_gen2;
    if (gen2_mac) {
      const auto pop = tags::TagPopulation::generate(n, seed);
      gen2::Gen2ChannelConfig gen2_config;
      gen2_config.manufacturing_seed = rng::derive_seed(seed, 0);
      gen2_config.impairments.capture.capture_prob = capture;
      gen2_config.impairments.reply_loss_prob = args.get("loss", 0.0);
      gen2_config.impairments.seed = rng::derive_seed(seed, 2);
      over_gen2.emplace(
          std::vector<TagId>(pop.ids().begin(), pop.ids().end()),
          gen2_config);
    } else {
      sampled.emplace(n, seed);
    }
    auto run_estimator = [&](const auto& estimator) {
      return gen2_mac ? estimator.estimate(*over_gen2, seed)
                      : estimator.estimate(*sampled, seed);
    };
    if (protocol == "fneb") {
      const proto::FnebEstimator estimator(proto::FnebConfig{}, req);
      rounds = estimator.planned_rounds();
      result = run_estimator(estimator);
    } else if (protocol == "lof") {
      const proto::LofEstimator estimator(proto::LofConfig{}, req);
      rounds = estimator.planned_rounds();
      result = run_estimator(estimator);
    } else if (protocol == "upe") {
      proto::UpeConfig config;
      config.expected_n = static_cast<double>(n);
      const proto::UpeEstimator estimator(config, req);
      rounds = estimator.planned_rounds();
      result = run_estimator(estimator);
    } else if (protocol == "ezb") {
      const proto::EzbEstimator estimator(proto::EzbConfig{}, req);
      result = run_estimator(estimator);
      rounds = result.rounds;
    } else {
      return usage();
    }
    std::printf("%s estimate : %.0f   (true %llu)\n", protocol.c_str(),
                result.n_hat, static_cast<unsigned long long>(n));
  }

  std::printf("cost         : %llu slots over %llu rounds "
              "(%llu idle / %llu busy)\n",
              static_cast<unsigned long long>(result.ledger.total_slots()),
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(result.ledger.idle_slots),
              static_cast<unsigned long long>(
                  result.ledger.singleton_slots +
                  result.ledger.collision_slots));
  // Under --mac=gen2 the ledger carries the airtime actually accumulated by
  // the measured MAC; otherwise convert the slot mix analytically.
  std::printf("gen2 airtime : %.2f s (Tari 6.25 us, Miller-4%s)\n",
              gen2_mac ? static_cast<double>(result.ledger.airtime_us) / 1e6
                       : gen2_seconds(result.ledger, rounds),
              gen2_mac ? ", measured" : "");
  return 0;
}

int cmd_identify(const Args& args) {
  const std::string protocol = args.get("protocol", "dfsa");
  const std::uint64_t n = args.get("n", std::uint64_t{20000});
  const std::uint64_t seed = args.get("seed", std::uint64_t{1});

  proto::IdentificationResult result;
  if (protocol == "dfsa") {
    proto::DfsaConfig config;
    config.max_frame_size =
        std::max<std::uint64_t>(config.max_frame_size, 2 * n);
    result = proto::identify_dfsa_sampled(n, config, seed);
  } else if (protocol == "treewalk") {
    result = proto::identify_treewalk_sampled(n, proto::TreeWalkConfig{},
                                              seed);
  } else {
    return usage();
  }
  std::printf("%s identified %llu / %llu tags in %llu slots\n",
              protocol.c_str(),
              static_cast<unsigned long long>(result.identified),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(result.ledger.total_slots()));
  return 0;
}

int cmd_sketch(const Args& args) {
  // Two sites with --n-a and --n-b tags of which --shared are stocked at
  // both (transfers in flight, say); headquarters merges the sketches.
  const std::uint64_t n_a = args.get("n-a", std::uint64_t{20000});
  const std::uint64_t n_b = args.get("n-b", std::uint64_t{15000});
  const std::uint64_t shared = args.get("shared", std::uint64_t{5000});
  const std::uint64_t rounds = args.get("rounds", std::uint64_t{2000});
  const std::uint64_t seed = args.get("seed", std::uint64_t{1});

  const auto universe =
      tags::TagPopulation::generate(n_a + n_b - shared, seed);
  const auto ids = universe.ids();
  const std::vector<TagId> site_a(ids.begin(), ids.begin() +
                                                   static_cast<std::ptrdiff_t>(n_a));
  const std::vector<TagId> site_b(ids.begin() +
                                      static_cast<std::ptrdiff_t>(n_a - shared),
                                  ids.end());

  const core::PetConfig config;
  chan::SortedPetChannel ca(site_a);
  chan::SortedPetChannel cb(site_b);
  const auto sa = core::PetSketch::take(ca, config, rounds, seed + 7);
  const auto sb = core::PetSketch::take(cb, config, rounds, seed + 7);
  const auto fleet = core::PetSketch::merge_union(sa, sb);

  std::printf("site A       : %.0f  (true %llu)\n", sa.estimate(),
              static_cast<unsigned long long>(n_a));
  std::printf("site B       : %.0f  (true %llu)\n", sb.estimate(),
              static_cast<unsigned long long>(n_b));
  std::printf("union        : %.0f  (true %llu)\n", fleet.estimate(),
              static_cast<unsigned long long>(n_a + n_b - shared));
  std::printf("intersection : %.0f  (true %llu)\n",
              core::PetSketch::estimate_intersection(sa, sb),
              static_cast<unsigned long long>(shared));
  std::printf("wire size    : %llu bytes per sketch\n",
              static_cast<unsigned long long>(sa.serialize().size()));
  return 0;
}

int cmd_monitor(const Args& args) {
  const std::uint64_t n0 = args.get("n", std::uint64_t{10000});
  const std::uint64_t steps = args.get("steps", std::uint64_t{40});
  const std::uint64_t seed = args.get("seed", std::uint64_t{1});

  auto pop = tags::TagPopulation::generate(n0, seed);
  core::StreamingMonitor monitor(core::MonitorConfig{}, seed);

  std::printf("%6s %8s %10s %s\n", "tick", "truth", "estimate", "event");
  for (std::uint64_t t = 0; t < steps; ++t) {
    // A population step every 10 ticks: +30% joins, then a 40% departure.
    if (t == steps / 3) pop.join_fresh(n0 * 3 / 10, seed + t);
    if (t == 2 * steps / 3) pop.leave_random(pop.size() * 2 / 5, seed + t);

    chan::SortedPetChannel channel({pop.ids().begin(), pop.ids().end()});
    bool changed = false;
    for (int burst = 0; burst < 16; ++burst) {
      changed = monitor.tick(channel) || changed;
    }
    const auto estimate = monitor.estimate();
    std::printf("%6llu %8zu %10.0f %s\n",
                static_cast<unsigned long long>(t), pop.size(),
                estimate.value_or(0.0), changed ? "CHANGE DETECTED" : "");
  }
  std::printf("changes detected: %llu\n",
              static_cast<unsigned long long>(monitor.changes_detected()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);

  // Same semantics as the bench harness flag: bit-identical results either
  // way, only wall time moves (docs/performance.md).
  const std::string fast = args.get("fast-path", "");
  if (!fast.empty()) {
    if (fast != "on" && fast != "off") {
      std::fprintf(stderr, "petsim: --fast-path must be on or off\n");
      return 2;
    }
    set_fast_path(fast == "on");
  }

  // Long sweeps drain gracefully: the first SIGINT/SIGTERM stops the trial
  // runner at a trial boundary and the aggregates rescale to the completed
  // prefix; a second signal force-exits.
  runtime::install_shutdown_handlers();
  runtime::global_runner().set_cancel_token(
      runtime::CancelToken::linked_to_shutdown());

  ObsSession obs_session;
  if (const int rc = obs_session.init(args); rc != 0) return rc;

  int rc = 2;
  {
    // One profile phase per command; slots/second comes from the slot
    // counters the run recorded (zero when obs is off — the phase then
    // reports wall/CPU only).
    obs::PhaseProfiler::Scope scope(obs_session.profiler, command);
    if (command == "plan") {
      rc = cmd_plan(args);
    } else if (command == "estimate") {
      rc = cmd_estimate(args);
    } else if (command == "identify") {
      rc = cmd_identify(args);
    } else if (command == "monitor") {
      rc = cmd_monitor(args);
    } else if (command == "sketch") {
      rc = cmd_sketch(args);
    } else {
      rc = usage();
    }
    if (obs::counters_enabled()) scope.add_slots(ObsSession::recorded_slots());
  }
  obs_session.finish();
  return rc;
}
