// petsim — command-line front end to the PET RFID estimation library.
//
//   petsim plan     --eps=0.05 --delta=0.01
//   petsim estimate --protocol=pet --n=50000 --eps=0.05 --delta=0.01
//                   [--search=binary|strict|linear] [--loss=0.1]
//                   [--readers=4 --overlap=0.3] [--seed=1]
//                   [--runs=500 --threads=8 --quiet]
//   petsim identify --protocol=dfsa|treewalk --n=20000 [--seed=1]
//   petsim monitor  --n=10000 --steps=40 [--seed=1]
//
// --runs > 1 replays that many independent trials on the pet::runtime
// parallel trial engine (--threads workers, default hardware concurrency)
// and reports the aggregate; results are bit-identical for any --threads
// (docs/runtime.md).  Everything is simulated on the slotted-MAC
// substrate; see README.md.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "channel/device_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "core/confidence.hpp"
#include "core/estimator.hpp"
#include "core/monitor.hpp"
#include "core/planner.hpp"
#include "core/sketch.hpp"
#include "multireader/controller.hpp"
#include "protocols/ezb.hpp"
#include "protocols/fneb.hpp"
#include "protocols/identification.hpp"
#include "protocols/lof.hpp"
#include "protocols/upe.hpp"
#include "rng/prng.hpp"
#include "runtime/trial_runner.hpp"
#include "sim/gen2_timing.hpp"
#include "sim/trace.hpp"
#include "stats/accuracy.hpp"
#include "tags/mobility.hpp"
#include "tags/population.hpp"

namespace {

using namespace pet;

struct Args {
  std::map<std::string, std::string> kv;

  [[nodiscard]] double get(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  [[nodiscard]] std::uint64_t get(const std::string& key,
                                  std::uint64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback
                          : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const char* fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "petsim: bad argument '%s'\n", arg);
      std::exit(2);
    }
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) {
      args.kv[arg + 2] = "1";
    } else {
      args.kv[std::string(arg + 2, eq)] = eq + 1;
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  petsim plan     --eps=E --delta=D [--n=N]\n"
      "  petsim estimate --protocol=pet|fneb|lof|upe|ezb --n=N --eps=E "
      "--delta=D\n"
      "                  [--search=binary|strict|linear]\n"
      "                  [--fusion=paper|bias-corrected|median-of-means]\n"
      "                  [--loss=P]\n"
      "                  [--readers=K --overlap=P] [--trace=FILE] [--seed=S]\n"
      "                  [--runs=R --threads=T --quiet]\n"
      "  petsim identify --protocol=dfsa|treewalk --n=N [--seed=S]\n"
      "  petsim monitor  --n=N --steps=T [--seed=S]\n"
      "  petsim sketch   --n-a=N --n-b=M --shared=K [--rounds=R]\n");
  return 2;
}

double gen2_seconds(const sim::SlotLedger& ledger, std::uint64_t rounds) {
  const sim::Gen2LinkConfig link;
  return sim::gen2_session_us(link, ledger.singleton_slots +
                                        ledger.collision_slots,
                              ledger.idle_slots, 32, 1, rounds, 32) /
         1e6;
}

int cmd_plan(const Args& args) {
  const stats::AccuracyRequirement req{args.get("eps", 0.05),
                                       args.get("delta", 0.01)};
  const double n = args.get("n", 50000.0);
  const core::PetPlan pet = core::plan(core::PetConfig{}, req, n);
  const proto::FnebEstimator fneb(proto::FnebConfig{}, req);
  const proto::LofEstimator lof(proto::LofConfig{}, req);

  std::printf("accuracy contract: |nhat - n| <= %.1f%% n with probability "
              ">= %.1f%%\n\n",
              req.epsilon * 100, (1 - req.delta) * 100);
  std::printf("%-8s %10s %14s %14s %16s\n", "protocol", "rounds",
              "slots/round", "total slots", "tag memory bits");
  std::printf("%-8s %10llu %14u %14llu %16llu\n", "PET",
              static_cast<unsigned long long>(pet.rounds),
              pet.slots_per_round,
              static_cast<unsigned long long>(pet.total_slots),
              static_cast<unsigned long long>(pet.tag_memory_bits));
  const std::uint64_t fneb_spr =
      static_cast<std::uint64_t>(std::log2(16.0 * n)) + 1;
  std::printf("%-8s %10llu %14llu %14llu %16llu\n", "FNEB",
              static_cast<unsigned long long>(fneb.planned_rounds()),
              static_cast<unsigned long long>(fneb_spr),
              static_cast<unsigned long long>(fneb.planned_rounds() *
                                              fneb_spr),
              static_cast<unsigned long long>(32 * fneb.planned_rounds()));
  std::printf("%-8s %10llu %14u %14llu %16llu\n", "LoF",
              static_cast<unsigned long long>(lof.planned_rounds()), 32u,
              static_cast<unsigned long long>(32 * lof.planned_rounds()),
              static_cast<unsigned long long>(32 * lof.planned_rounds()));
  return 0;
}

/// --runs=R > 1: replay R independent trials of the plain single-reader
/// protocol on the parallel trial engine and report the aggregate.  Seed
/// streams mirror bench/harness/experiment.cpp, so a petsim sweep and the
/// bench harness agree estimate-for-estimate.
int cmd_estimate_many(const std::string& protocol, std::uint64_t n,
                      const stats::AccuracyRequirement& req,
                      const core::PetConfig& pet_config, std::uint64_t runs,
                      std::uint64_t seed) {
  stats::TrialSummary summary(static_cast<double>(n));
  double mean_slots = 0.0;

  const auto pop = tags::TagPopulation::generate(n, 0xdecafULL);
  const std::vector<TagId> ids(pop.ids().begin(), pop.ids().end());
  const auto start = std::chrono::steady_clock::now();
  auto& runner = runtime::global_runner();

  auto fold = [&](std::uint64_t, core::EstimateResult&& result) {
    summary.add(result.n_hat);
    mean_slots += static_cast<double>(result.ledger.total_slots()) /
                  static_cast<double>(runs);
  };

  if (protocol == "pet") {
    const core::PetEstimator estimator(pet_config, req);
    const std::uint64_t m = estimator.planned_rounds();
    runner.run<core::EstimateResult>(
        runs,
        [&](std::uint64_t run) {
          chan::SortedPetChannelConfig channel_config;
          channel_config.tree_height = pet_config.tree_height;
          channel_config.manufacturing_seed = rng::derive_seed(seed, 2 * run);
          chan::SortedPetChannel channel(ids, channel_config);
          return estimator.estimate_with_rounds(
              channel, m, rng::derive_seed(seed, 2 * run + 1));
        },
        fold, "PET trials");
  } else {
    // The rehash-per-round baselines all run on the sampled channel; only
    // the estimator (and its historical seed stride) differs.
    auto sweep = [&](std::uint64_t stride, const auto& estimator) {
      runner.run<core::EstimateResult>(
          runs,
          [&](std::uint64_t run) {
            chan::SampledChannel channel(n,
                                         rng::derive_seed(seed, stride * run));
            return estimator.estimate(
                channel, rng::derive_seed(seed, stride * run + 1));
          },
          fold, protocol + " trials");
    };
    if (protocol == "fneb") {
      sweep(3, proto::FnebEstimator(proto::FnebConfig{}, req));
    } else if (protocol == "lof") {
      sweep(5, proto::LofEstimator(proto::LofConfig{}, req));
    } else if (protocol == "upe") {
      proto::UpeConfig config;
      config.expected_n = static_cast<double>(n);
      sweep(7, proto::UpeEstimator(config, req));
    } else if (protocol == "ezb") {
      sweep(11, proto::EzbEstimator(proto::EzbConfig{}, req));
    } else {
      return usage();
    }
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("%s sweep    : %llu trials, %u threads\n", protocol.c_str(),
              static_cast<unsigned long long>(runs), runner.thread_count());
  std::printf("mean nhat    : %.0f   (true %llu, accuracy %.4f)\n",
              summary.accuracy() * static_cast<double>(n),
              static_cast<unsigned long long>(n), summary.accuracy());
  std::printf("normalized sigma: %.4f\n", summary.normalized_deviation());
  std::printf("within eps   : %.3f (contract needs >= %.3f)\n",
              summary.fraction_within(req.epsilon), 1.0 - req.delta);
  std::printf("mean slots   : %.1f per estimate\n", mean_slots);
  std::printf("wall time    : %.3f s (%.1f trials/s)\n", wall,
              static_cast<double>(runs) / wall);
  return 0;
}

int cmd_estimate(const Args& args) {
  const std::string protocol = args.get("protocol", "pet");
  const std::uint64_t n = args.get("n", std::uint64_t{50000});
  const stats::AccuracyRequirement req{args.get("eps", 0.05),
                                       args.get("delta", 0.01)};
  const std::uint64_t seed = args.get("seed", std::uint64_t{1});
  const std::uint64_t runs = args.get("runs", std::uint64_t{1});
  const auto threads =
      static_cast<unsigned>(args.get("threads", std::uint64_t{0}));
  const bool quiet = args.kv.count("quiet") != 0;
  runtime::global_runner().configure(threads, !quiet && runs > 1);

  core::EstimateResult result;
  std::uint64_t rounds = 0;

  if (protocol == "pet") {
    core::PetConfig config;
    const std::string search = args.get("search", "binary");
    if (search == "strict") config.search = core::SearchMode::kBinaryStrict;
    if (search == "linear") config.search = core::SearchMode::kLinear;
    const std::string fusion = args.get("fusion", "paper");
    if (fusion == "bias-corrected") {
      config.fusion = core::FusionRule::kBiasCorrected;
    } else if (fusion == "median-of-means") {
      config.fusion = core::FusionRule::kMedianOfMeans;
    }
    if (runs > 1) {
      if (args.get("loss", 0.0) > 0.0 ||
          args.get("readers", std::uint64_t{1}) > 1 ||
          !args.get("trace", "").empty()) {
        std::fprintf(stderr,
                     "petsim: --runs > 1 supports only the plain "
                     "single-reader channel\n");
        return 2;
      }
      return cmd_estimate_many(protocol, n, req, config, runs, seed);
    }
    const core::PetEstimator estimator(config, req);
    rounds = estimator.planned_rounds();

    const double loss = args.get("loss", 0.0);
    const auto readers = args.get("readers", std::uint64_t{1});
    const std::string trace_path = args.get("trace", "");
    const auto pop = tags::TagPopulation::generate(n, seed);

    if (loss > 0.0 || !trace_path.empty()) {
      // Lossy links and per-slot tracing need the device-level channel.
      chan::DeviceChannelConfig device;
      device.impairments.reply_loss_prob = loss;
      chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet, device);
      std::ofstream trace_file;
      std::unique_ptr<sim::TraceSink> sink;
      if (!trace_path.empty()) {
        trace_file.open(trace_path);
        if (!trace_file) {
          std::fprintf(stderr, "petsim: cannot open trace file '%s'\n",
                       trace_path.c_str());
          return 2;
        }
        sink = std::make_unique<sim::TraceSink>(trace_file);
        channel.set_observer(sink->observer());
      }
      result = estimator.estimate(channel, seed);
      if (sink) {
        std::printf("trace        : %llu slots written to %s\n",
                    static_cast<unsigned long long>(sink->rows_written()),
                    trace_path.c_str());
      }
    } else if (readers > 1) {
      tags::ZoneMap zones(readers, seed);
      zones.scatter(pop);
      zones.add_overlap(args.get("overlap", 0.0));
      std::vector<std::unique_ptr<chan::PrefixChannel>> zone_channels;
      for (std::size_t z = 0; z < readers; ++z) {
        zone_channels.push_back(std::make_unique<chan::SortedPetChannel>(
            zones.audible_in(z)));
      }
      multi::MultiReaderController controller(std::move(zone_channels));
      result = estimator.estimate(controller, seed);
    } else {
      chan::SortedPetChannel channel({pop.ids().begin(), pop.ids().end()});
      result = estimator.estimate(channel, seed);
    }
    const auto ci = core::confidence_interval(result, req.delta);
    std::printf("PET estimate : %.0f   (true %llu)\n", result.n_hat,
                static_cast<unsigned long long>(n));
    std::printf("%.0f%% interval: [%.0f, %.0f]\n", (1 - req.delta) * 100,
                ci.lo, ci.hi);
  } else {
    if (runs > 1) {
      return cmd_estimate_many(protocol, n, req, core::PetConfig{}, runs,
                               seed);
    }
    chan::SampledChannel channel(n, seed);
    if (protocol == "fneb") {
      const proto::FnebEstimator estimator(proto::FnebConfig{}, req);
      rounds = estimator.planned_rounds();
      result = estimator.estimate(channel, seed);
    } else if (protocol == "lof") {
      const proto::LofEstimator estimator(proto::LofConfig{}, req);
      rounds = estimator.planned_rounds();
      result = estimator.estimate(channel, seed);
    } else if (protocol == "upe") {
      proto::UpeConfig config;
      config.expected_n = static_cast<double>(n);
      const proto::UpeEstimator estimator(config, req);
      rounds = estimator.planned_rounds();
      result = estimator.estimate(channel, seed);
    } else if (protocol == "ezb") {
      const proto::EzbEstimator estimator(proto::EzbConfig{}, req);
      result = estimator.estimate(channel, seed);
      rounds = result.rounds;
    } else {
      return usage();
    }
    std::printf("%s estimate : %.0f   (true %llu)\n", protocol.c_str(),
                result.n_hat, static_cast<unsigned long long>(n));
  }

  std::printf("cost         : %llu slots over %llu rounds "
              "(%llu idle / %llu busy)\n",
              static_cast<unsigned long long>(result.ledger.total_slots()),
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(result.ledger.idle_slots),
              static_cast<unsigned long long>(
                  result.ledger.singleton_slots +
                  result.ledger.collision_slots));
  std::printf("gen2 airtime : %.2f s (Tari 6.25 us, Miller-4)\n",
              gen2_seconds(result.ledger, rounds));
  return 0;
}

int cmd_identify(const Args& args) {
  const std::string protocol = args.get("protocol", "dfsa");
  const std::uint64_t n = args.get("n", std::uint64_t{20000});
  const std::uint64_t seed = args.get("seed", std::uint64_t{1});

  proto::IdentificationResult result;
  if (protocol == "dfsa") {
    proto::DfsaConfig config;
    config.max_frame_size =
        std::max<std::uint64_t>(config.max_frame_size, 2 * n);
    result = proto::identify_dfsa_sampled(n, config, seed);
  } else if (protocol == "treewalk") {
    result = proto::identify_treewalk_sampled(n, proto::TreeWalkConfig{},
                                              seed);
  } else {
    return usage();
  }
  std::printf("%s identified %llu / %llu tags in %llu slots\n",
              protocol.c_str(),
              static_cast<unsigned long long>(result.identified),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(result.ledger.total_slots()));
  return 0;
}

int cmd_sketch(const Args& args) {
  // Two sites with --n-a and --n-b tags of which --shared are stocked at
  // both (transfers in flight, say); headquarters merges the sketches.
  const std::uint64_t n_a = args.get("n-a", std::uint64_t{20000});
  const std::uint64_t n_b = args.get("n-b", std::uint64_t{15000});
  const std::uint64_t shared = args.get("shared", std::uint64_t{5000});
  const std::uint64_t rounds = args.get("rounds", std::uint64_t{2000});
  const std::uint64_t seed = args.get("seed", std::uint64_t{1});

  const auto universe =
      tags::TagPopulation::generate(n_a + n_b - shared, seed);
  const auto ids = universe.ids();
  const std::vector<TagId> site_a(ids.begin(), ids.begin() +
                                                   static_cast<std::ptrdiff_t>(n_a));
  const std::vector<TagId> site_b(ids.begin() +
                                      static_cast<std::ptrdiff_t>(n_a - shared),
                                  ids.end());

  const core::PetConfig config;
  chan::SortedPetChannel ca(site_a);
  chan::SortedPetChannel cb(site_b);
  const auto sa = core::PetSketch::take(ca, config, rounds, seed + 7);
  const auto sb = core::PetSketch::take(cb, config, rounds, seed + 7);
  const auto fleet = core::PetSketch::merge_union(sa, sb);

  std::printf("site A       : %.0f  (true %llu)\n", sa.estimate(),
              static_cast<unsigned long long>(n_a));
  std::printf("site B       : %.0f  (true %llu)\n", sb.estimate(),
              static_cast<unsigned long long>(n_b));
  std::printf("union        : %.0f  (true %llu)\n", fleet.estimate(),
              static_cast<unsigned long long>(n_a + n_b - shared));
  std::printf("intersection : %.0f  (true %llu)\n",
              core::PetSketch::estimate_intersection(sa, sb),
              static_cast<unsigned long long>(shared));
  std::printf("wire size    : %llu bytes per sketch\n",
              static_cast<unsigned long long>(sa.serialize().size()));
  return 0;
}

int cmd_monitor(const Args& args) {
  const std::uint64_t n0 = args.get("n", std::uint64_t{10000});
  const std::uint64_t steps = args.get("steps", std::uint64_t{40});
  const std::uint64_t seed = args.get("seed", std::uint64_t{1});

  auto pop = tags::TagPopulation::generate(n0, seed);
  core::StreamingMonitor monitor(core::MonitorConfig{}, seed);

  std::printf("%6s %8s %10s %s\n", "tick", "truth", "estimate", "event");
  for (std::uint64_t t = 0; t < steps; ++t) {
    // A population step every 10 ticks: +30% joins, then a 40% departure.
    if (t == steps / 3) pop.join_fresh(n0 * 3 / 10, seed + t);
    if (t == 2 * steps / 3) pop.leave_random(pop.size() * 2 / 5, seed + t);

    chan::SortedPetChannel channel({pop.ids().begin(), pop.ids().end()});
    bool changed = false;
    for (int burst = 0; burst < 16; ++burst) {
      changed = monitor.tick(channel) || changed;
    }
    const auto estimate = monitor.estimate();
    std::printf("%6llu %8zu %10.0f %s\n",
                static_cast<unsigned long long>(t), pop.size(),
                estimate.value_or(0.0), changed ? "CHANGE DETECTED" : "");
  }
  std::printf("changes detected: %llu\n",
              static_cast<unsigned long long>(monitor.changes_detected()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (command == "plan") return cmd_plan(args);
  if (command == "estimate") return cmd_estimate(args);
  if (command == "identify") return cmd_identify(args);
  if (command == "monitor") return cmd_monitor(args);
  if (command == "sketch") return cmd_sketch(args);
  return usage();
}
