// petverify — run the statistical conformance harness.
//
// Checks every statistical promise the library makes (theory identities,
// goodness-of-fit of all channel back ends against the exact depth law,
// estimator CI calibration) at fixed seeds and exits non-zero if any check
// fails.  docs/testing.md documents the methodology.
//
// Usage:
//   petverify [--quick] [--seed=N] [--threads=N] [--quiet] [--alpha=F]
//             [--filter=SUBSTR] [--inject-phi-bias=F] [--list]
//
// --inject-phi-bias arms the test-only estimator mutation hook
// (core::testing::set_phi_bias_for_tests); the mutation smoke test uses it
// to prove the calibration checks detect a real bias.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "core/theory.hpp"
#include "runtime/trial_runner.hpp"
#include "verify/conformance.hpp"

namespace {

struct Args {
  pet::verify::ConformanceOptions options;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  bool quiet = false;
  bool list = false;
  double phi_bias = 1.0;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: %s [--quick] [--seed=N] [--threads=N] [--quiet] [--alpha=F]\n"
      "          [--filter=SUBSTR] [--inject-phi-bias=F] [--list]\n",
      argv0);
  std::exit(code);
}

bool take_value(const std::string& arg, const char* flag, std::string& out) {
  const std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--quick") {
      args.options.quick = true;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg == "--list") {
      args.list = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else if (take_value(arg, "--seed", value)) {
      args.options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (take_value(arg, "--threads", value)) {
      args.threads = static_cast<unsigned>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (take_value(arg, "--alpha", value)) {
      args.options.family_alpha = std::strtod(value.c_str(), nullptr);
    } else if (take_value(arg, "--filter", value)) {
      args.options.filter = value;
    } else if (take_value(arg, "--inject-phi-bias", value)) {
      args.phi_bias = std::strtod(value.c_str(), nullptr);
    } else {
      std::fprintf(stderr, "petverify: unknown argument '%s'\n", arg.c_str());
      usage(argv[0], 2);
    }
  }
  if (args.options.family_alpha <= 0.0 || args.options.family_alpha >= 1.0) {
    std::fprintf(stderr, "petverify: --alpha must be in (0, 1)\n");
    std::exit(2);
  }
  if (args.phi_bias <= 0.0) {
    std::fprintf(stderr, "petverify: --inject-phi-bias must be positive\n");
    std::exit(2);
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  if (args.list) {
    for (const auto& name : pet::verify::conformance_check_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  try {
    pet::core::testing::ScopedPhiBias bias(args.phi_bias);
    if (args.phi_bias != 1.0 && !args.quiet) {
      std::printf("petverify: MUTATION ARMED, phi bias %.4f — the harness "
                  "is expected to fail\n",
                  args.phi_bias);
    }

    pet::runtime::TrialRunner runner(args.threads, false);
    const auto report = pet::verify::run_conformance(args.options, runner);

    for (const auto& check : report.checks) {
      if (args.quiet && check.passed) continue;
      std::printf("[%s] %-28s %s\n", check.passed ? "PASS" : "FAIL",
                  check.name.c_str(), check.detail.c_str());
    }
    std::printf("petverify: %zu/%zu checks passed (seed %llu, %s, %u "
                "threads)\n",
                report.checks.size() - report.failures(),
                report.checks.size(),
                static_cast<unsigned long long>(args.options.seed),
                args.options.quick ? "quick" : "full", runner.thread_count());
    if (report.checks.empty()) {
      std::fprintf(stderr, "petverify: filter '%s' matched no checks\n",
                   args.options.filter.c_str());
      return 2;
    }
    return report.all_passed() ? 0 : 1;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "petverify: fatal: %s\n", err.what());
    return 2;
  }
}
