// petctl: command-line client for petd (docs/service.md).
//
// Control-plane verbs (ping/register/estimate/monitor/unregister) speak one
// strict request-response exchange each.  `soak` is the chaos harness: it
// hammers a petd instance through a svc::ChaosLink — seeded frame drops,
// bit flips, and connection closes on the *client* side of the wire — and
// asserts the server stays live (ping round-trip) and consistent
// (monitor counters parse) the whole way.  Exit 0 means the daemon survived
// without a hang; any protocol stall exits nonzero.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/jsonlite.hpp"
#include "rng/prng.hpp"
#include "service/chaos.hpp"
#include "service/errors.hpp"
#include "service/flight.hpp"
#include "service/frame.hpp"
#include "service/messages.hpp"
#include "service/shard.hpp"

namespace {

using namespace pet;

int usage() {
  std::fprintf(
      stderr,
      "petctl -- client for the petd estimation daemon\n"
      "usage: petctl --socket=PATH <command> [options]\n"
      "commands:\n"
      "  ping\n"
      "  register   --id=I --tags=N [--pop-seed=S]\n"
      "  unregister --id=I\n"
      "  estimate   --id=I [--seed=S] [--eps=E] [--delta=D]\n"
      "             [--deadline-slots=N] [--vanilla]\n"
      "  monitor\n"
      "  top        [--interval=SECONDS] [--once] [--sort=KEY]\n"
      "             KEY: id|reqs|rate|p99|degraded|shed|cache|shard\n"
      "             (default id; descending except id/shard)\n"
      "  trace      REQUEST_ID   (hex 0x... or decimal; from error details\n"
      "             or a flight dump; each record shows its shard and\n"
      "             whether the result cache served it)\n"
      "  soak       [--seconds=T] [--populations=N] [--tags=N] [--seed=S]\n"
      "             [--chaos-loss=P] [--chaos-noise=P] [--chaos-close=P]\n"
      "             [--deadline-slots=N]\n");
  return 2;
}

/// Minimal --key=value map (mirrors petsim's idiom).
struct Args {
  std::string socket_path;
  std::string command;
  std::string operand;  ///< positional argument after the command (trace)
  std::vector<std::pair<std::string, std::string>> kv;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    return fallback;
  }
  [[nodiscard]] std::uint64_t get(const std::string& key,
                                  std::uint64_t fallback) const {
    const std::string v = get(key, std::string());
    return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
  }
  [[nodiscard]] double get(const std::string& key, double fallback) const {
    const std::string v = get(key, std::string());
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
  }
};

class Connection {
 public:
  ~Connection() { close(); }

  [[nodiscard]] bool open(const std::string& path) {
    close();
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      close();
      return false;
    }
    decoder_ = svc::Decoder{};
    return true;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  [[nodiscard]] bool send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
      if (n > 0) {
        done += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  /// Read until one frame decodes or `timeout_ms` elapses.  Decode errors
  /// on the return path are skipped (the soak's chaos only mangles the
  /// forward path, but a defensive client never trusts a byte stream).
  [[nodiscard]] std::optional<svc::Frame> recv_frame(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    svc::Frame frame;
    for (;;) {
      for (;;) {
        const svc::DecodeStatus status = decoder_.next(frame);
        if (status == svc::DecodeStatus::kFrame) return frame;
        if (status == svc::DecodeStatus::kNeedMoreData) break;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return std::nullopt;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return std::nullopt;
      std::uint8_t buffer[4096];
      const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
      if (n == 0) return std::nullopt;
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      decoder_.feed(buffer, static_cast<std::size_t>(n));
    }
  }

  /// Strict request-response round trip.
  [[nodiscard]] std::optional<svc::Frame> call(const svc::Frame& request,
                                               int timeout_ms = 30000) {
    if (!send_bytes(svc::encode_frame(request))) return std::nullopt;
    return recv_frame(timeout_ms);
  }

 private:
  int fd_ = -1;
  svc::Decoder decoder_;
};

void print_status(const svc::Frame& response) {
  const auto status = static_cast<svc::StatusCode>(response.status);
  std::printf("status: %s\n", std::string(svc::to_string(status)).c_str());
  if (status != svc::StatusCode::kOk && !response.payload.empty()) {
    std::printf("detail: %s\n", svc::error_detail(response).c_str());
  }
}

int cmd_ping(Connection& conn) {
  const auto response = conn.call(svc::make_request(svc::CommandId::kPing));
  if (!response) {
    std::fprintf(stderr, "petctl: no response to ping\n");
    return 1;
  }
  print_status(*response);
  return response->status == 0 ? 0 : 1;
}

int cmd_register(Connection& conn, const Args& args) {
  svc::RegisterRequest request;
  request.population_id = args.get("id", std::uint64_t{0});
  request.tag_count = args.get("tags", std::uint64_t{10000});
  request.population_seed = args.get("pop-seed", std::uint64_t{7});
  const auto response = conn.call(svc::make_request(
      svc::CommandId::kRegister, svc::encode(request)));
  if (!response) {
    std::fprintf(stderr, "petctl: no response to register\n");
    return 1;
  }
  print_status(*response);
  if (response->status != 0) return 1;
  const auto reply = svc::parse_register_reply(response->payload);
  if (!reply) return 1;
  std::printf("registered population %llu with %llu tags\n",
              static_cast<unsigned long long>(reply->population_id),
              static_cast<unsigned long long>(reply->tag_count));
  return 0;
}

int cmd_unregister(Connection& conn, const Args& args) {
  svc::UnregisterRequest request;
  request.population_id = args.get("id", std::uint64_t{0});
  const auto response = conn.call(svc::make_request(
      svc::CommandId::kUnregister, svc::encode(request)));
  if (!response) {
    std::fprintf(stderr, "petctl: no response to unregister\n");
    return 1;
  }
  print_status(*response);
  return response->status == 0 ? 0 : 1;
}

int cmd_estimate(Connection& conn, const Args& args) {
  svc::EstimateRequest request;
  request.population_id = args.get("id", std::uint64_t{0});
  request.seed = args.get("seed", std::uint64_t{1});
  request.epsilon = args.get("eps", 0.1);
  request.delta = args.get("delta", 0.05);
  request.deadline_slots = args.get("deadline-slots", std::uint64_t{0});
  request.robust = args.get("vanilla", std::string()).empty() ? 1 : 0;
  const auto response = conn.call(svc::make_request(
      svc::CommandId::kEstimate, svc::encode(request)));
  if (!response) {
    std::fprintf(stderr, "petctl: no response to estimate\n");
    return 1;
  }
  print_status(*response);
  if (response->status != 0) return 1;
  const auto reply = svc::parse_estimate_reply(response->payload);
  if (!reply) return 1;
  std::printf("n_hat     : %.1f  [%.1f, %.1f]\n", reply->n_hat, reply->ci_lo,
              reply->ci_hi);
  std::printf("rounds    : %llu of %llu planned (%llu slots)\n",
              static_cast<unsigned long long>(reply->rounds),
              static_cast<unsigned long long>(reply->planned_rounds),
              static_cast<unsigned long long>(reply->query_slots));
  std::printf("retries   : %u (%llu backoff slots)\n", reply->retries,
              static_cast<unsigned long long>(reply->backoff_slots));
  std::printf("degraded  : %s%s\n", reply->degraded != 0 ? "yes" : "no",
              reply->truncated != 0 ? " (deadline truncated rounds)" : "");
  return 0;
}

int cmd_monitor(Connection& conn) {
  const auto response = conn.call(svc::make_request(svc::CommandId::kMonitor));
  if (!response) {
    std::fprintf(stderr, "petctl: no response to monitor\n");
    return 1;
  }
  print_status(*response);
  if (response->status != 0) return 1;
  const auto reply = svc::parse_monitor_reply(response->payload);
  if (!reply) return 1;
  std::printf("populations     : %llu\n",
              static_cast<unsigned long long>(reply->populations));
  std::printf("inflight        : %llu\n",
              static_cast<unsigned long long>(reply->inflight));
  std::printf("accepted        : %llu\n",
              static_cast<unsigned long long>(reply->accepted));
  std::printf("completed       : %llu\n",
              static_cast<unsigned long long>(reply->completed));
  std::printf("shed            : %llu\n",
              static_cast<unsigned long long>(reply->shed));
  std::printf("degraded        : %llu\n",
              static_cast<unsigned long long>(reply->degraded));
  std::printf("deadline misses : %llu\n",
              static_cast<unsigned long long>(reply->deadline_misses));
  std::printf("retries         : %llu\n",
              static_cast<unsigned long long>(reply->retries));
  std::printf("malformed frames: %llu\n",
              static_cast<unsigned long long>(reply->malformed_frames));
  return 0;
}

// ---- kMetrics helpers (top / trace / soak summary) -----------------------

/// Numeric member lookup with a 0.0 default; jsonlite objects only.
double num_or(const obs::JsonValue* object, const char* key) {
  if (object == nullptr || !object->is_object()) return 0.0;
  const obs::JsonValue* value = object->find(key);
  return (value != nullptr && value->is_number()) ? value->number : 0.0;
}

/// Quantile label for a {"bounds":[...],"counts":[...]} latency histogram:
/// the upper slot bound of the bucket holding quantile q, ">B" for the
/// overflow bucket, "-" when the histogram is empty.
std::string latency_quantile(const obs::JsonValue* hist, double q) {
  if (hist == nullptr || !hist->is_object()) return "-";
  const obs::JsonValue* bounds = hist->find("bounds");
  const obs::JsonValue* counts = hist->find("counts");
  if (bounds == nullptr || counts == nullptr || !bounds->is_array() ||
      !counts->is_array()) {
    return "-";
  }
  double total = 0.0;
  for (const obs::JsonValue& c : counts->array) total += c.number;
  if (total <= 0.0) return "-";
  const double target = q * total;
  double seen = 0.0;
  for (std::size_t i = 0; i < counts->array.size(); ++i) {
    seen += counts->array[i].number;
    if (seen >= target) {
      if (i < bounds->array.size()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", bounds->array[i].number);
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), ">%.0f",
                    bounds->array.back().number);
      return buf;
    }
  }
  return "-";
}

/// One kMetrics round trip, parsed.  Returns nullopt on transport/parse
/// failure; `unsupported` is set when the daemon is a PET_OBS=OFF build.
std::optional<obs::JsonValue> fetch_metrics(Connection& conn,
                                            bool& unsupported) {
  unsupported = false;
  const auto response =
      conn.call(svc::make_request(svc::CommandId::kMetrics), 10000);
  if (!response) {
    std::fprintf(stderr, "petctl: no response to metrics\n");
    return std::nullopt;
  }
  if (static_cast<svc::StatusCode>(response->status) ==
      svc::StatusCode::kUnsupported) {
    unsupported = true;
    return std::nullopt;
  }
  if (response->status != 0) {
    print_status(*response);
    return std::nullopt;
  }
  try {
    return obs::parse_json(std::string(response->payload.begin(),
                                       response->payload.end()));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "petctl: metrics payload did not parse: %s\n",
                 error.what());
    return std::nullopt;
  }
}

/// Live per-population dashboard over kMetrics.  Renders req/s from the
/// delta between successive snapshots; p50/p99 come from the cumulative
/// slot-latency histograms (lifetime, not windowed — they are counters).
/// The shard column is computed client-side (svc::shard_of over the shard
/// count the kFull document reports), so it matches what the daemon routed
/// without a per-population wire field; cache% is the population's
/// cache-hit share of its requests.
int cmd_top(Connection& conn, const Args& args) {
  const double interval = args.get("interval", 2.0);
  const bool once = !args.get("once", std::string()).empty();
  const std::string sort_key = args.get("sort", std::string("id"));
  if (sort_key != "id" && sort_key != "reqs" && sort_key != "rate" &&
      sort_key != "p99" && sort_key != "degraded" && sort_key != "shed" &&
      sort_key != "cache" && sort_key != "shard") {
    std::fprintf(stderr, "petctl: unknown --sort key %s\n", sort_key.c_str());
    return 2;
  }

  std::map<std::string, double> prev_requests;
  auto prev_time = std::chrono::steady_clock::now();
  bool have_prev = false;
  for (;;) {
    bool unsupported = false;
    const auto root = fetch_metrics(conn, unsupported);
    if (unsupported) {
      std::fprintf(stderr,
                   "petctl: metrics export unavailable (PET_OBS=OFF build)\n");
      return 0;
    }
    if (!root) return 1;
    const auto now = std::chrono::steady_clock::now();
    const double dt =
        std::chrono::duration<double>(now - prev_time).count();

    const obs::JsonValue* service = root->find("service");
    const obs::JsonValue* totals =
        service != nullptr ? service->find("totals") : nullptr;
    const obs::JsonValue* pops =
        service != nullptr ? service->find("populations") : nullptr;
    const obs::JsonValue* connections =
        service != nullptr ? service->find("connections") : nullptr;
    const obs::JsonValue* cache =
        service != nullptr ? service->find("cache") : nullptr;
    const obs::JsonValue* shards =
        service != nullptr ? service->find("shards") : nullptr;
    if (totals == nullptr || pops == nullptr || !pops->is_object()) {
      std::fprintf(stderr, "petctl: metrics document has no service member\n");
      return 1;
    }
    const auto shard_count =
        static_cast<std::uint32_t>(num_or(shards, "count"));

    if (!once) std::printf("\x1b[2J\x1b[H");
    const double total_requests = num_or(totals, "requests");
    const double total_degraded = num_or(totals, "degraded");
    const double total_shed = num_or(totals, "shed");
    const double cache_hits = num_or(cache, "hits");
    const double cache_lookups = cache_hits + num_or(cache, "misses");
    std::printf("petd top  populations %zu  requests %.0f  degraded %.1f%%  "
                "shed %.1f%%  resyncs %.0f\n",
                pops->object.size(), total_requests,
                total_requests > 0 ? 100.0 * total_degraded / total_requests
                                   : 0.0,
                total_requests > 0 ? 100.0 * total_shed / total_requests
                                   : 0.0,
                num_or(connections, "resyncs"));
    std::printf("shards %u  cache hit%% %.1f  entries %.0f  bytes %.0f  "
                "evictions %.0f\n",
                shard_count,
                cache_lookups > 0 ? 100.0 * cache_hits / cache_lookups : 0.0,
                num_or(cache, "entries"), num_or(cache, "bytes"),
                num_or(cache, "evictions"));

    struct Row {
      std::string id;
      double requests = 0.0;
      double rate = 0.0;
      std::string p50;
      std::string p99;
      double p99_num = 0.0;
      double degraded_pct = 0.0;
      double shed_pct = 0.0;
      double cache_pct = 0.0;
      std::uint32_t shard = 0;
    };
    std::vector<Row> rows;
    rows.reserve(pops->object.size());
    for (const auto& [id, stats] : pops->object) {
      Row row;
      row.id = id;
      row.requests = num_or(&stats, "requests");
      if (have_prev && dt > 0.0) {
        const auto it = prev_requests.find(id);
        const double before = it != prev_requests.end() ? it->second : 0.0;
        row.rate = (row.requests - before) / dt;
      }
      const double degraded = num_or(&stats, "degraded");
      const double shed = num_or(&stats, "shed");
      const double pop_hits = num_or(&stats, "cache_hits");
      const obs::JsonValue* hist = stats.find("latency_slots");
      row.p50 = latency_quantile(hist, 0.50);
      row.p99 = latency_quantile(hist, 0.99);
      row.p99_num = std::strtod(row.p99.c_str(),
                                nullptr);  // ">B" parses as 0; "-" too
      if (row.requests > 0) {
        row.degraded_pct = 100.0 * degraded / row.requests;
        row.shed_pct = 100.0 * shed / row.requests;
        row.cache_pct = 100.0 * pop_hits / row.requests;
      }
      row.shard = svc::shard_of(
          std::strtoull(id.c_str(), nullptr, 10), shard_count);
      prev_requests[id] = row.requests;
      rows.push_back(std::move(row));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [&sort_key](const Row& a, const Row& b) {
                       if (sort_key == "reqs") return a.requests > b.requests;
                       if (sort_key == "rate") return a.rate > b.rate;
                       if (sort_key == "p99") return a.p99_num > b.p99_num;
                       if (sort_key == "degraded") {
                         return a.degraded_pct > b.degraded_pct;
                       }
                       if (sort_key == "shed") return a.shed_pct > b.shed_pct;
                       if (sort_key == "cache") {
                         return a.cache_pct > b.cache_pct;
                       }
                       if (sort_key == "shard") return a.shard < b.shard;
                       return false;  // "id": keep the document's order
                     });

    std::printf("%-12s %5s %10s %8s %10s %10s %9s %7s %6s\n", "population",
                "shard", "reqs", "req/s", "p50(slot)", "p99(slot)",
                "degraded%", "shed%", "cache%");
    for (const Row& row : rows) {
      std::printf("%-12s %5u %10.0f %8.1f %10s %10s %8.1f%% %6.1f%% %5.1f%%\n",
                  row.id.c_str(), row.shard, row.requests, row.rate,
                  row.p50.c_str(), row.p99.c_str(), row.degraded_pct,
                  row.shed_pct, row.cache_pct);
    }
    prev_time = now;
    have_prev = true;
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}

/// Fetch one request's flight-recorder records (or all with id 0).
int cmd_trace(Connection& conn, const Args& args) {
  svc::FlightDumpRequest request;
  if (!args.operand.empty()) {
    request.request_id = std::strtoull(args.operand.c_str(), nullptr, 0);
  }
  const auto response = conn.call(svc::make_request(
      svc::CommandId::kFlightDump, svc::encode(request)));
  if (!response) {
    std::fprintf(stderr, "petctl: no response to flight-dump\n");
    return 1;
  }
  if (static_cast<svc::StatusCode>(response->status) ==
      svc::StatusCode::kUnsupported) {
    std::fprintf(stderr,
                 "petctl: flight recorder unavailable (PET_OBS=OFF build)\n");
    return 0;
  }
  print_status(*response);
  if (response->status != 0) return 1;
  const auto reply = svc::parse_flight_dump_reply(response->payload);
  if (!reply) {
    std::fprintf(stderr, "petctl: flight-dump reply did not parse\n");
    return 1;
  }
  if (reply->records.empty()) {
    std::printf("no flight records%s\n",
                request.request_id != 0 ? " for that request id" : "");
    return request.request_id != 0 ? 1 : 0;
  }
  for (const svc::RequestRecord& record : reply->records) {
    std::printf(
        "%s cmd=%s status=%s pop=%llu shard=%u cache=%s degrade=%s "
        "rounds=%llu/%llu retries=%u backoff=%llu query=%llu latency=%llu "
        "slots queue=%lluus handle=%lluus\n",
        svc::format_request_id(record.request_id).c_str(),
        std::string(svc::to_string(
            static_cast<svc::CommandId>(record.command))).c_str(),
        std::string(svc::to_string(
            static_cast<svc::StatusCode>(record.status))).c_str(),
        static_cast<unsigned long long>(record.population_id),
        static_cast<unsigned>(record.shard),
        record.cache_hit != 0 ? "hit" : "miss",
        svc::degrade_mask_to_string(record.degrade_mask).c_str(),
        static_cast<unsigned long long>(record.rounds),
        static_cast<unsigned long long>(record.planned_rounds),
        record.retries,
        static_cast<unsigned long long>(record.backoff_slots),
        static_cast<unsigned long long>(record.query_slots),
        static_cast<unsigned long long>(record.latency_slots),
        static_cast<unsigned long long>(record.queue_us),
        static_cast<unsigned long long>(record.handle_us));
  }
  return 0;
}

/// Chaos soak: estimate traffic through a seeded ChaosLink.  The ChaosLink
/// sits on the request path — drops, bit flips, and closes are exactly the
/// garbage a hostile or flaky client would send — so the server-side
/// decoder, error taxonomy, and per-connection cleanup all get exercised.
/// Liveness is asserted out-of-band on a clean second connection.
int cmd_soak(const Args& args) {
  const auto seconds = args.get("seconds", std::uint64_t{5});
  const auto populations = args.get("populations", std::uint64_t{8});
  const auto tags = args.get("tags", std::uint64_t{5000});
  const auto seed = args.get("seed", std::uint64_t{1});
  const auto deadline_slots = args.get("deadline-slots", std::uint64_t{400});

  sim::ChannelImpairments chaos_impairments;
  chaos_impairments.reply_loss_prob = args.get("chaos-loss", 0.1);
  chaos_impairments.false_busy_prob = args.get("chaos-noise", 0.1);
  chaos_impairments.seed = rng::derive_seed(seed, 0xc4a05ull);
  const double close_prob = args.get("chaos-close", 0.02);
  svc::ChaosLink chaos(chaos_impairments);
  rng::Xoshiro256ss close_rng(rng::derive_seed(seed, 0xc705eull));

  Connection chaos_conn;
  Connection clean_conn;
  if (!chaos_conn.open(args.socket_path) ||
      !clean_conn.open(args.socket_path)) {
    std::fprintf(stderr, "petctl: cannot connect to %s\n",
                 args.socket_path.c_str());
    return 1;
  }

  // Populations registered on the clean connection: setup must not be
  // subject to chaos.
  for (std::uint64_t id = 0; id < populations; ++id) {
    svc::RegisterRequest request;
    request.population_id = id;
    request.tag_count = tags;
    request.population_seed = rng::derive_seed(seed, id);
    const auto response = clean_conn.call(svc::make_request(
        svc::CommandId::kRegister, svc::encode(request)));
    if (!response || (response->status != 0 &&
                      static_cast<svc::StatusCode>(response->status) !=
                          svc::StatusCode::kAlreadyExists)) {
      std::fprintf(stderr, "petctl: soak setup failed registering %llu\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(seconds);
  std::uint64_t sent = 0, answered = 0, reconnects = 0, liveness_checks = 0;
  std::uint64_t request_seed = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!chaos_conn.connected() && !chaos_conn.open(args.socket_path)) {
      std::fprintf(stderr, "petctl: reconnect failed\n");
      return 1;
    }

    svc::EstimateRequest request;
    request.population_id = request_seed % populations;
    request.seed = rng::derive_seed(seed, 5000 + request_seed);
    request.deadline_slots = deadline_slots;
    ++request_seed;
    std::vector<std::uint8_t> wire =
        svc::encode_frame(svc::make_request(svc::CommandId::kEstimate,
                                            svc::encode(request)));

    // Client-side connection close, independent of the frame-level chaos.
    if (close_prob > 0.0 &&
        static_cast<double>(close_rng() >> 11) * 0x1.0p-53 < close_prob) {
      chaos_conn.close();
      ++reconnects;
      continue;
    }

    switch (chaos.apply(wire)) {
      case svc::ChaosLink::Action::kCloseLink:
        chaos_conn.close();
        ++reconnects;
        break;
      case svc::ChaosLink::Action::kDropFrame:
        break;  // frame vanishes; server sees silence
      case svc::ChaosLink::Action::kCorruptBit:
      case svc::ChaosLink::Action::kDeliver: {
        ++sent;
        if (!chaos_conn.send_bytes(wire)) {
          chaos_conn.close();
          ++reconnects;
          break;
        }
        // Drain whatever comes back quickly; corrupted frames may yield
        // several error frames (one per resync step) or none that matter.
        while (chaos_conn.recv_frame(20)) ++answered;
        break;
      }
    }

    // Liveness probe every 64 iterations: a clean ping must round-trip
    // within its timeout or the server has hung — the one hard failure.
    if ((request_seed & 63u) == 0) {
      ++liveness_checks;
      const auto pong =
          clean_conn.call(svc::make_request(svc::CommandId::kPing), 10000);
      if (!pong || pong->status != 0) {
        std::fprintf(stderr, "petctl: liveness ping failed mid-soak\n");
        return 1;
      }
    }
  }

  const auto monitor =
      clean_conn.call(svc::make_request(svc::CommandId::kMonitor), 10000);
  if (!monitor || monitor->status != 0) {
    std::fprintf(stderr, "petctl: monitor failed after soak\n");
    return 1;
  }
  const auto stats = svc::parse_monitor_reply(monitor->payload);
  if (!stats) {
    std::fprintf(stderr, "petctl: monitor reply did not parse\n");
    return 1;
  }
  std::printf("soak done: %llu frames sent, %llu responses, %llu reconnects,"
              " %llu liveness pings\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(answered),
              static_cast<unsigned long long>(reconnects),
              static_cast<unsigned long long>(liveness_checks));
  std::printf("chaos: %llu frames, %llu dropped, %llu corrupted, %llu closes\n",
              static_cast<unsigned long long>(chaos.frames()),
              static_cast<unsigned long long>(chaos.dropped()),
              static_cast<unsigned long long>(chaos.corrupted()),
              static_cast<unsigned long long>(chaos.closes()));
  std::printf("server: completed %llu, shed %llu, degraded %llu, "
              "malformed %llu\n",
              static_cast<unsigned long long>(stats->completed),
              static_cast<unsigned long long>(stats->shed),
              static_cast<unsigned long long>(stats->degraded),
              static_cast<unsigned long long>(stats->malformed_frames));

  // Surface the chaos run's retry/resync story from the kMetrics export.
  // A PET_OBS=OFF daemon answers UNSUPPORTED; the soak verdict is about
  // liveness, so that (and any metrics hiccup) never fails the run.
  bool unsupported = false;
  if (const auto metrics = fetch_metrics(clean_conn, unsupported)) {
    const obs::JsonValue* counters = metrics->find("counters");
    const obs::JsonValue* service = metrics->find("service");
    const obs::JsonValue* connections =
        service != nullptr ? service->find("connections") : nullptr;
    std::printf("link: %.0f resyncs, %.0f retry attempts, %.0f backoff "
                "slots, %.0f retry-exhausted\n",
                num_or(connections, "resyncs"),
                num_or(counters, "svc.retry.attempts"),
                num_or(counters, "svc.retry.backoff_slots"),
                num_or(counters, "svc.retry.exhausted"));
  } else if (unsupported) {
    std::printf("link: metrics export unavailable (PET_OBS=OFF build)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage();
    if (arg.rfind("--socket=", 0) == 0) {
      args.socket_path = std::string(arg.substr(9));
    } else if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string_view::npos) {
        args.kv.emplace_back(std::string(arg.substr(2)), "1");
      } else {
        args.kv.emplace_back(std::string(arg.substr(2, eq - 2)),
                             std::string(arg.substr(eq + 1)));
      }
    } else if (args.command.empty()) {
      args.command = std::string(arg);
    } else if (args.operand.empty()) {
      args.operand = std::string(arg);
    } else {
      return usage();
    }
  }
  if (args.socket_path.empty() || args.command.empty()) return usage();

  if (args.command == "soak") return cmd_soak(args);

  Connection conn;
  if (!conn.open(args.socket_path)) {
    std::fprintf(stderr, "petctl: cannot connect to %s\n",
                 args.socket_path.c_str());
    return 1;
  }
  if (args.command == "ping") return cmd_ping(conn);
  if (args.command == "register") return cmd_register(conn, args);
  if (args.command == "unregister") return cmd_unregister(conn, args);
  if (args.command == "estimate") return cmd_estimate(conn, args);
  if (args.command == "monitor") return cmd_monitor(conn);
  if (args.command == "top") return cmd_top(conn, args);
  if (args.command == "trace") return cmd_trace(conn, args);
  return usage();
}
