# CTest driver for the golden BENCH regression (invoked via cmake -P).
#
# Default mode: regenerate the artifact with the bench binary (-DBENCH=...)
# and require benchdiff to accept it against the checked-in golden — this
# is the silent-drift gate.
#
# -DPERTURB=1: perturb one numeric golden cell past the tolerance and
# require benchdiff to *reject* it — proof the gate can actually fail.
# The cell defaults to the table3 golden's; other goldens pass their own
# -DPERTURB_FROM/-DPERTURB_TO pair.

file(MAKE_DIRECTORY "${WORK_DIR}")

if(PERTURB)
  if(NOT PERTURB_FROM)
    set(PERTURB_FROM "\"slots (analytic 5m)\": \"40\"")
    set(PERTURB_TO "\"slots (analytic 5m)\": \"44\"")
  endif()
  file(READ "${GOLDEN}" text)
  string(REPLACE "${PERTURB_FROM}" "${PERTURB_TO}" perturbed "${text}")
  if(perturbed STREQUAL text)
    message(FATAL_ERROR
      "perturbation did not apply — the golden changed; update the cell "
      "targeted by run_benchdiff_test.cmake")
  endif()
  set(candidate "${WORK_DIR}/BENCH_perturbed.json")
  file(WRITE "${candidate}" "${perturbed}")
  execute_process(COMMAND "${BENCHDIFF}" "${GOLDEN}" "${candidate}"
                  RESULT_VARIABLE rc)
  if(rc EQUAL 0)
    message(FATAL_ERROR "benchdiff accepted a perturbed golden")
  endif()
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "benchdiff exited ${rc} instead of the mismatch status 1")
  endif()
else()
  set(candidate "${WORK_DIR}/BENCH_fresh.json")
  execute_process(COMMAND "${BENCH}" --quick --csv --quiet
                          "--json=${candidate}"
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench binary failed with status ${rc}")
  endif()
  execute_process(COMMAND "${BENCHDIFF}" "${GOLDEN}" "${candidate}"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "fresh artifact drifted from the checked-in golden (benchdiff "
      "status ${rc}); regenerate bench/golden/ deliberately if the change "
      "is intended")
  endif()
endif()
