// petd: the PET estimation daemon (docs/service.md).
//
// Serves the pet::svc framed protocol over a Unix domain socket: register
// populations, answer estimate/monitor requests, shed overload with typed
// error frames, degrade gracefully under deadlines, and shut down cleanly
// on SIGINT/SIGTERM (drain in-flight requests, close connections, unlink
// the socket, exit 0).  Thread model: one acceptor + one thread per
// connection for framing; estimation itself runs on the service's
// pet::runtime pool, so slow estimates never block a connection's control
// frames behind another connection.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <exception>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "runtime/cancel.hpp"
#include "service/frame.hpp"
#include "service/messages.hpp"
#include "service/service.hpp"

namespace {

using namespace pet;

int usage() {
  std::fprintf(
      stderr,
      "petd -- PET estimation daemon\n"
      "usage: petd --socket=PATH [options]\n"
      "  --socket=PATH        Unix domain socket to listen on (required)\n"
      "  --threads=N          estimation pool width (default: hardware)\n"
      "  --shards=N           population-affine worker-pool shards; the\n"
      "                       inflight cap and threads split across them\n"
      "                       (default 0 = derived from the pool width)\n"
      "  --max-inflight=N     admission cap before shedding, split across\n"
      "                       shards into per-shard budgets (default 256)\n"
      "  --cache-entries=N    result-cache entry bound (default 1024;\n"
      "                       0 disables caching)\n"
      "  --cache-bytes=N      result-cache byte bound (default 4 MiB)\n"
      "  --tree-height=H      PET tree height for all populations (default 32)\n"
      "  --retry-attempts=N   attempts per estimate vs link faults (default 4)\n"
      "  --link-loss=P        transient link-fault probability per attempt\n"
      "  --link-outage=B,E    scripted link outage over attempts [B, E)\n"
      "  --fault-seed=S       link-fault stream seed (default 0x10551055)\n"
      "  --slot-us=U          wall-clock backstop: microseconds per slot\n"
      "                       (default 0 = slot budgets only, deterministic)\n"
      "  --flight-capacity=N  flight-recorder ring size (default 256)\n"
      "  --obs=LEVEL          metrics level: off|counters|full (default\n"
      "                       counters; exports serve zeros at off)\n"
      "  --prom-out=PATH      write Prometheus text exposition to PATH\n"
      "                       (atomically, on SIGUSR1 and on drain)\n"
      "  --quiet              suppress per-connection logging\n");
  return 2;
}

struct Options {
  std::string socket_path;
  std::string prom_out;
  svc::ServiceConfig service;
  bool quiet = false;
};

/// SIGUSR1 latch for the Prometheus dump; checked by the accept loop every
/// poll tick (a dump must not run inside the signal handler).
volatile std::sig_atomic_t g_prom_dump_requested = 0;

void on_sigusr1(int) { g_prom_dump_requested = 1; }

void dump_prometheus(const Options& options) {
  if (options.prom_out.empty()) return;
  try {
    obs::write_prometheus_file_atomic(
        options.prom_out,
        obs::prometheus_text(obs::MetricsRegistry::instance().snapshot()));
    if (!options.quiet) {
      std::fprintf(stderr, "petd: wrote prometheus exposition to %s\n",
                   options.prom_out.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "petd: prometheus dump failed: %s\n", e.what());
  }
}

bool parse_u64(std::string_view arg, std::string_view prefix,
               std::uint64_t& out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  out = std::strtoull(std::string(arg.substr(prefix.size())).c_str(), nullptr,
                      10);
  return true;
}

bool parse_double(std::string_view arg, std::string_view prefix, double& out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  out = std::strtod(std::string(arg.substr(prefix.size())).c_str(), nullptr);
  return true;
}

int parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::uint64_t u = 0;
    double d = 0.0;
    if (arg == "--help" || arg == "-h") return usage();
    if (arg.rfind("--socket=", 0) == 0) {
      options.socket_path = std::string(arg.substr(9));
    } else if (parse_u64(arg, "--threads=", u)) {
      options.service.worker_threads = static_cast<unsigned>(u);
    } else if (parse_u64(arg, "--shards=", u)) {
      options.service.shards = static_cast<unsigned>(u);
    } else if (parse_u64(arg, "--max-inflight=", u)) {
      options.service.max_inflight = static_cast<std::size_t>(u);
    } else if (parse_u64(arg, "--cache-entries=", u)) {
      options.service.cache_entries = static_cast<std::size_t>(u);
    } else if (parse_u64(arg, "--cache-bytes=", u)) {
      options.service.cache_bytes = static_cast<std::size_t>(u);
    } else if (parse_u64(arg, "--tree-height=", u)) {
      options.service.registry.tree_height = static_cast<unsigned>(u);
    } else if (parse_u64(arg, "--retry-attempts=", u)) {
      options.service.retry.max_attempts = static_cast<std::uint32_t>(u);
    } else if (parse_double(arg, "--link-loss=", d)) {
      options.service.link_faults.reply_loss_prob = d;
    } else if (arg.rfind("--link-outage=", 0) == 0) {
      const std::string spec(arg.substr(14));
      const std::size_t comma = spec.find(',');
      if (comma == std::string::npos) return usage();
      sim::ReaderOutage outage;
      outage.begin_slot = std::strtoull(spec.c_str(), nullptr, 10);
      const std::uint64_t end =
          std::strtoull(spec.c_str() + comma + 1, nullptr, 10);
      outage.duration_slots = end > outage.begin_slot ? end - outage.begin_slot
                                                      : 0;
      options.service.link_faults.script.outages.push_back(outage);
    } else if (parse_u64(arg, "--fault-seed=", u)) {
      options.service.link_faults.seed = u;
    } else if (parse_u64(arg, "--slot-us=", u)) {
      options.service.slot_us = u;
    } else if (parse_u64(arg, "--flight-capacity=", u)) {
      options.service.flight_capacity = static_cast<std::size_t>(u);
    } else if (arg.rfind("--obs=", 0) == 0) {
      try {
        obs::set_level(obs::parse_level(arg.substr(6)));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "petd: %s\n", e.what());
        return usage();
      }
    } else if (arg.rfind("--prom-out=", 0) == 0) {
      options.prom_out = std::string(arg.substr(11));
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      std::fprintf(stderr, "petd: unknown argument %s\n", argv[i]);
      return usage();
    }
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "petd: --socket is required\n");
    return usage();
  }
  return 0;
}

/// write() the whole buffer, riding out EINTR and partial writes.  Returns
/// false when the peer is gone (EPIPE/ECONNRESET) or the fd died.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Per-connection session: incremental decode, dispatch through the
/// service, write responses in request order.  Decode-level garbage gets a
/// typed MALFORMED_FRAME response (command 0) and the decoder resyncs — a
/// corrupt frame costs one frame, never the connection.
void serve_connection(int fd, svc::EstimationService& service, bool quiet) {
  svc::Decoder decoder;
  svc::Frame frame;
  std::uint8_t buffer[4096];
  service.note_connection_opened();
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (runtime::shutdown_requested()) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    decoder.feed(buffer, static_cast<std::size_t>(n));
    service.note_bytes_received(static_cast<std::size_t>(n));
    bool peer_alive = true;
    for (;;) {
      const svc::DecodeStatus status = decoder.next(frame);
      if (status == svc::DecodeStatus::kNeedMoreData) break;
      std::vector<std::uint8_t> wire;
      if (status == svc::DecodeStatus::kFrame) {
        service.note_frame_received();
        wire = svc::encode_frame(service.submit(std::move(frame)).get());
      } else {
        service.note_malformed_frame();
        wire = svc::encode_frame(svc::make_error(
            static_cast<svc::CommandId>(0),
            static_cast<std::uint16_t>(svc::StatusCode::kMalformedFrame),
            svc::to_string(status)));
      }
      if (!write_all(fd, wire.data(), wire.size())) {
        peer_alive = false;
        break;
      }
      service.note_frame_sent(wire.size());
    }
    if (!peer_alive) break;
  }
  ::close(fd);
  service.note_connection_closed();
  if (!quiet) std::fprintf(stderr, "petd: connection closed\n");
}

}  // namespace

int main(int argc, char** argv) {
  // A daemon whose exports serve zeros is useless, so counters are the
  // default; an explicit --obs=off during parse overrides this.
  obs::set_level(obs::Level::kCounters);
  Options options;
  // The daemon defaults to caching on — identical repeated requests are the
  // common monitoring pattern; libraries/tests opt in explicitly instead.
  options.service.cache_entries = 1024;
  if (const int rc = parse(argc, argv, options); rc != 0) return rc;

  runtime::install_shutdown_handlers();
  // Writes to half-closed sockets must surface as EPIPE, not kill petd.
  ::signal(SIGPIPE, SIG_IGN);
  // SIGUSR1 requests a Prometheus exposition dump at the next accept tick.
  std::signal(SIGUSR1, on_sigusr1);

  if (options.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "petd: socket path too long\n");
    return 2;
  }

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("petd: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    std::perror("petd: bind/listen");
    ::close(listen_fd);
    return 1;
  }

  svc::EstimationService service(options.service);
  if (!options.quiet) {
    std::fprintf(stderr,
                 "petd: listening on %s (%u workers, %u shards, cap %zu, "
                 "cache %zu entries)\n",
                 options.socket_path.c_str(),
                 options.service.resolved_worker_threads(),
                 service.shard_count(), options.service.max_inflight,
                 options.service.cache_entries);
  }

  std::vector<std::thread> sessions;
  std::mutex sessions_mutex;
  while (!runtime::shutdown_requested()) {
    if (g_prom_dump_requested) {
      g_prom_dump_requested = 0;
      dump_prometheus(options);
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout, EINTR, or spurious wake: recheck
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard lock(sessions_mutex);
    sessions.emplace_back(
        [fd, &service, quiet = options.quiet] {
          serve_connection(fd, service, quiet);
        });
  }

  // Graceful drain: refuse new work, let connection loops notice the latch
  // (they poll every 200 ms), join everything, remove the socket.
  if (!options.quiet) std::fprintf(stderr, "petd: draining\n");
  service.begin_shutdown();
  ::close(listen_fd);
  {
    std::lock_guard lock(sessions_mutex);
    for (std::thread& session : sessions) session.join();
  }
  ::unlink(options.socket_path.c_str());
  dump_prometheus(options);  // final exposition reflects the drained totals
  if (!options.quiet) {
    const svc::MonitorReply stats = service.stats();
    std::fprintf(stderr,
                 "petd: clean shutdown (accepted %llu, completed %llu, "
                 "shed %llu, degraded %llu)\n",
                 static_cast<unsigned long long>(stats.accepted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.shed),
                 static_cast<unsigned long long>(stats.degraded));
  }
  return 0;
}
