// benchdiff — tolerance-aware comparator for BENCH_<target>.json artifacts.
//
// Compares a candidate artifact against a checked-in golden: `target` and
// every row must agree (numeric cells within --rtol/--atol, other cells
// byte-for-byte); `threads` and `wall_seconds` are ignored because rows are
// thread-invariant under the determinism contract while wall time is
// machine noise.
//
// Exit status: 0 artifacts agree, 1 they differ, 2 usage/IO/parse error.
//
// Usage:
//   benchdiff GOLDEN.json CANDIDATE.json [--rtol=F] [--atol=F] [--quiet]

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "verify/benchjson.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s GOLDEN.json CANDIDATE.json [--rtol=F] [--atol=F] "
               "[--quiet]\n",
               argv0);
  std::exit(code);
}

bool take_value(const std::string& arg, const char* flag, std::string& out) {
  const std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  pet::verify::BenchDiffOptions options;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (take_value(arg, "--rtol", value)) {
      options.rtol = std::strtod(value.c_str(), nullptr);
    } else if (take_value(arg, "--atol", value)) {
      options.atol = std::strtod(value.c_str(), nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "benchdiff: unknown argument '%s'\n", arg.c_str());
      usage(argv[0], 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) usage(argv[0], 2);
  if (options.rtol < 0.0 || options.atol < 0.0) {
    std::fprintf(stderr, "benchdiff: tolerances must be non-negative\n");
    return 2;
  }

  try {
    const auto golden = pet::verify::load_bench_json(paths[0]);
    const auto candidate = pet::verify::load_bench_json(paths[1]);
    const auto diff = pet::verify::diff_bench(golden, candidate, options);
    if (diff.ok()) {
      if (!quiet) {
        std::printf("benchdiff: %s == %s (%zu rows, rtol %.3g, atol %.3g)\n",
                    paths[0].c_str(), paths[1].c_str(), golden.rows.size(),
                    options.rtol, options.atol);
      }
      return 0;
    }
    for (const auto& mismatch : diff.mismatches) {
      std::fprintf(stderr, "benchdiff: %s\n", mismatch.c_str());
    }
    std::fprintf(stderr, "benchdiff: %zu mismatch(es) between %s and %s\n",
                 diff.mismatches.size(), paths[0].c_str(), paths[1].c_str());
    return 1;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "benchdiff: %s\n", err.what());
    return 2;
  }
}
