// obscheck — structural validator for pet.obs.v1 artifacts (the
// metrics-schema smoke gate wired into CI; docs/observability.md).
//
//   obscheck --metrics=FILE   validate a petsim --metrics-out document
//   obscheck --bench=FILE     validate the "metrics" member of a
//                             BENCH_<target>.json artifact
//   obscheck --jsonl=FILE     validate a span/event/slot JSONL trace
//   obscheck --svc-metrics=FILE validate a petd kMetrics snapshot ("profile"
//                             optional — the deterministic scope omits it —
//                             plus the "service" member's shape)
//   obscheck --prom=FILE      validate a Prometheus text exposition dump
//   obscheck --require=PREFIX require at least one counter whose name
//                             starts with PREFIX (repeatable; applies to
//                             the last --metrics/--bench document given)
//
// Exit 0 when every file validates, 1 on a schema violation, 2 on usage
// errors.  Checks are structural (types, required keys, histogram shape),
// not numeric: values are run-dependent by design.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonlite.hpp"
#include "verify/benchjson.hpp"

namespace {

using pet::obs::JsonValue;

int usage() {
  std::fprintf(stderr,
               "usage: obscheck [--metrics=FILE] [--bench=FILE] "
               "[--jsonl=FILE] [--svc-metrics=FILE] [--prom=FILE] "
               "[--require=PREFIX]...\n");
  return 2;
}

bool g_ok = true;

void fail(const std::string& what) {
  std::fprintf(stderr, "obscheck: %s\n", what.c_str());
  g_ok = false;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Every member of `object` must map a string key to a number.
void check_numeric_object(const JsonValue* object, const std::string& where) {
  if (object == nullptr || !object->is_object()) {
    fail(where + " missing or not an object");
    return;
  }
  for (const auto& [key, value] : object->object) {
    if (!value.is_number()) {
      fail(where + "." + key + " is not a number");
    }
  }
}

void check_histograms(const JsonValue* histograms, const std::string& where) {
  if (histograms == nullptr || !histograms->is_object()) {
    fail(where + " missing or not an object");
    return;
  }
  for (const auto& [name, hist] : histograms->object) {
    const JsonValue* bounds = hist.find("bounds");
    const JsonValue* counts = hist.find("counts");
    if (bounds == nullptr || !bounds->is_array() || counts == nullptr ||
        !counts->is_array()) {
      fail(where + "." + name + " needs bounds/counts arrays");
      continue;
    }
    if (counts->array.size() != bounds->array.size() + 1) {
      fail(where + "." + name + " counts must have bounds+1 entries");
    }
  }
}

/// Validate one pet.obs.v1 document (already parsed).  The deterministic
/// scope of a petd kMetrics snapshot legitimately has no "profile" member;
/// `require_profile=false` relaxes that one check.
void check_metrics_document(const JsonValue& root, const std::string& where,
                            const std::vector<std::string>& required,
                            bool require_profile = true) {
  if (!root.is_object()) {
    fail(where + ": document is not an object");
    return;
  }
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "pet.obs.v1") {
    fail(where + ": schema is not \"pet.obs.v1\"");
  }
  const JsonValue* level = root.find("level");
  if (level == nullptr || !level->is_string() ||
      (level->string != "off" && level->string != "counters" &&
       level->string != "full")) {
    fail(where + ": level must be off|counters|full");
  }
  check_numeric_object(root.find("counters"), where + ": counters");
  check_numeric_object(root.find("gauges"), where + ": gauges");
  check_histograms(root.find("histograms"), where + ": histograms");

  const JsonValue* profile = root.find("profile");
  if (profile == nullptr || !profile->is_object()) {
    if (require_profile || profile != nullptr) {
      fail(where + ": profile missing or not an object");
    }
  } else {
    check_numeric_object(profile->find("counters"), where + ": profile.counters");
    const JsonValue* phases = profile->find("phases");
    if (phases != nullptr) {
      if (!phases->is_array()) {
        fail(where + ": profile.phases is not an array");
      } else {
        for (const JsonValue& phase : phases->array) {
          if (phase.find("name") == nullptr ||
              phase.find("wall_seconds") == nullptr) {
            fail(where + ": phase entry needs name/wall_seconds");
          }
        }
      }
    }
    const JsonValue* pool = profile->find("pool");
    if (pool != nullptr && pool->find("threads") == nullptr) {
      fail(where + ": profile.pool needs threads");
    }
  }

  const JsonValue* counters = root.find("counters");
  for (const std::string& prefix : required) {
    bool found = false;
    if (counters != nullptr && counters->is_object()) {
      for (const auto& [key, value] : counters->object) {
        (void)value;
        if (key.rfind(prefix, 0) == 0) { found = true; break; }
      }
    }
    if (!found) {
      fail(where + ": no counter with prefix '" + prefix + "'");
    }
  }
}

/// Shape of the petd kMetrics "service" member: per-population stats
/// objects (numeric fields + a latency_slots histogram), numeric totals,
/// numeric connection counters, and flight-recorder occupancy.
void check_service_member(const JsonValue* service, const std::string& where) {
  if (service == nullptr || !service->is_object()) {
    fail(where + " missing or not an object");
    return;
  }
  const JsonValue* populations = service->find("populations");
  if (populations == nullptr || !populations->is_object()) {
    fail(where + ".populations missing or not an object");
  } else {
    for (const auto& [id, stats] : populations->object) {
      const std::string pop_where = where + ".populations." + id;
      if (!stats.is_object()) {
        fail(pop_where + " is not an object");
        continue;
      }
      for (const auto& [key, value] : stats.object) {
        if (key == "latency_slots") continue;
        if (!value.is_number()) fail(pop_where + "." + key + " is not a number");
      }
      const JsonValue* hist = stats.find("latency_slots");
      if (hist == nullptr) {
        fail(pop_where + " has no latency_slots histogram");
      } else {
        // Reuse the histogram shape check via a one-entry wrapper object.
        JsonValue wrapper;
        wrapper.kind = JsonValue::Kind::kObject;
        wrapper.object.emplace_back("latency_slots", *hist);
        check_histograms(&wrapper, pop_where);
      }
    }
  }
  const JsonValue* totals = service->find("totals");
  if (totals == nullptr || !totals->is_object()) {
    fail(where + ".totals missing or not an object");
  } else {
    for (const auto& [key, value] : totals->object) {
      if (key == "latency_slots") continue;
      if (!value.is_number()) fail(where + ".totals." + key + " is not a number");
    }
  }
  check_numeric_object(service->find("connections"), where + ".connections");
  const JsonValue* flight = service->find("flight");
  if (flight == nullptr || !flight->is_object() ||
      flight->find("capacity") == nullptr ||
      flight->find("recorded") == nullptr) {
    fail(where + ".flight needs capacity/recorded");
  }
}

/// A petd kMetrics snapshot: pet.obs.v1 shape with "profile" optional (the
/// deterministic scope omits it) and, when present, a well-formed "service"
/// member.  Population-scope documents have neither — both stay optional.
void check_svc_metrics_document(const JsonValue& root, const std::string& where,
                                const std::vector<std::string>& required) {
  check_metrics_document(root, where, required, /*require_profile=*/false);
  if (!root.is_object()) return;
  const JsonValue* service = root.find("service");
  if (service != nullptr) check_service_member(service, where + ": service");
}

/// Prometheus text exposition: every non-comment line must be
/// `name[{labels}] value`, names restricted to [a-zA-Z_:][a-zA-Z0-9_:]*,
/// values numeric (or +Inf/-Inf/NaN), and at least one sample present.
void check_prometheus(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    fail("cannot open '" + path + "'");
    return;
  }
  const auto valid_name = [](const std::string& name) {
    if (name.empty()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         c == '_' || c == ':';
      const bool digit = c >= '0' && c <= '9';
      if (!(alpha || (digit && i > 0))) return false;
    }
    return true;
  };
  std::string line;
  std::size_t line_number = 0;
  std::size_t samples = 0;
  while (std::getline(file, line)) {
    ++line_number;
    const std::string where = path + ":" + std::to_string(line_number);
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# TYPE name kind" and "# HELP name text" comments are emitted.
      std::istringstream comment(line);
      std::string hash, keyword, name;
      comment >> hash >> keyword >> name;
      if (keyword != "TYPE" && keyword != "HELP") {
        fail(where + ": unknown comment keyword '" + keyword + "'");
      } else if (!valid_name(name)) {
        fail(where + ": invalid metric name '" + name + "'");
      }
      continue;
    }
    // Sample: name or name{labels}, one space, value.
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      fail(where + ": sample is not 'name value'");
      continue;
    }
    std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      if (name.back() != '}') {
        fail(where + ": unterminated label set");
        continue;
      }
      name = name.substr(0, brace);
    }
    if (!valid_name(name)) {
      fail(where + ": invalid metric name '" + name + "'");
      continue;
    }
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        fail(where + ": sample value '" + value + "' is not numeric");
        continue;
      }
    }
    ++samples;
  }
  if (samples == 0) fail(path + ": no samples");
}

void check_jsonl(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    fail("cannot open '" + path + "'");
    return;
  }
  std::string line;
  std::size_t line_number = 0;
  std::size_t records = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::string where =
        path + ":" + std::to_string(line_number);
    JsonValue record;
    try {
      record = pet::obs::parse_json(line);
    } catch (const std::exception& error) {
      fail(where + ": " + error.what());
      continue;
    }
    ++records;
    const JsonValue* type = record.find("type");
    if (type == nullptr || !type->is_string()) {
      fail(where + ": record has no \"type\"");
      continue;
    }
    const JsonValue* name = record.find("name");
    if (type->string == "span") {
      if (record.find("trial") == nullptr ||
          record.find("slot_begin") == nullptr ||
          record.find("slot_end") == nullptr || name == nullptr) {
        fail(where + ": span needs name/trial/slot_begin/slot_end");
      }
    } else if (type->string == "event") {
      if (record.find("trial") == nullptr || record.find("slot") == nullptr ||
          name == nullptr) {
        fail(where + ": event needs name/trial/slot");
      }
    } else if (type->string == "slot") {
      if (record.find("trial") == nullptr || record.find("slot") == nullptr ||
          record.find("command") == nullptr ||
          record.find("outcome") == nullptr) {
        fail(where + ": slot needs trial/slot/command/outcome");
      }
    } else {
      fail(where + ": unknown record type '" + type->string + "'");
    }
  }
  if (records == 0) fail(path + ": no JSONL records");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  // Two passes so --require applies regardless of flag order.
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--require=", 10) == 0) {
      required.emplace_back(argv[i] + 10);
    }
  }

  bool saw_input = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--metrics=", 0) == 0) {
        saw_input = true;
        const std::string path = arg.substr(10);
        check_metrics_document(pet::obs::parse_json(read_file(path)), path,
                               required);
      } else if (arg.rfind("--bench=", 0) == 0) {
        saw_input = true;
        const std::string path = arg.substr(8);
        const pet::verify::BenchArtifact artifact =
            pet::verify::load_bench_json(path);
        if (artifact.metrics_json.empty()) {
          fail(path + ": artifact has no \"metrics\" member");
        } else {
          check_metrics_document(pet::obs::parse_json(artifact.metrics_json),
                                 path + ": metrics", required);
        }
      } else if (arg.rfind("--jsonl=", 0) == 0) {
        saw_input = true;
        check_jsonl(arg.substr(8));
      } else if (arg.rfind("--svc-metrics=", 0) == 0) {
        saw_input = true;
        const std::string path = arg.substr(14);
        check_svc_metrics_document(pet::obs::parse_json(read_file(path)),
                                   path, required);
      } else if (arg.rfind("--prom=", 0) == 0) {
        saw_input = true;
        check_prometheus(arg.substr(7));
      } else if (arg.rfind("--require=", 0) == 0) {
        // collected above
      } else {
        return usage();
      }
    } catch (const std::exception& error) {
      fail(error.what());
    }
  }
  if (!saw_input) return usage();
  if (g_ok) std::printf("obscheck: ok\n");
  return g_ok ? 0 : 1;
}
