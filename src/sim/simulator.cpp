#include "sim/simulator.hpp"

namespace pet::sim {

void Simulator::schedule_at(SimTime at, Action action) {
  expects(at >= now_, "Simulator::schedule_at: cannot schedule in the past");
  expects(static_cast<bool>(action), "Simulator::schedule_at: empty action");
  queue_.push(Entry{at, next_seq_++, std::move(action)});
}

std::size_t Simulator::run(SimTime until) {
  std::size_t dispatched = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    // priority_queue::top() is const; the entry must be copied out before
    // pop.  Actions are cheap std::functions, so this is fine.
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.at;
    entry.action(*this);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace pet::sim
