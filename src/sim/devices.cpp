#include "sim/devices.hpp"

#include "common/ensure.hpp"

namespace pet::sim {

namespace {

/// Deterministic Bernoulli(p) draw keyed by (seed, id): true with
/// probability `p` under a uniform 64-bit hash.
bool keyed_coin(rng::HashKind hash, std::uint64_t seed, TagId id, double p) {
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const std::uint64_t h =
      rng::uniform64(hash, seed ^ 0xc01cc01cc01cc01cULL, to_underlying(id));
  // Compare against p scaled to the 64-bit range (exact enough for any
  // persistence the protocols use).
  const auto threshold = static_cast<std::uint64_t>(
      p * 18446744073709551615.0);
  return h <= threshold;
}

}  // namespace

PetTagDevice::PetTagDevice(TagId id, rng::HashKind hash, unsigned tree_height,
                           CodeMode mode, std::uint64_t manufacturing_seed)
    : TagDeviceBase(id, hash), tree_height_(tree_height), mode_(mode) {
  expects(tree_height >= 1 && tree_height <= BitCode::kMaxWidth,
          "PET tree height must be in [1, 64]");
  if (mode_ == CodeMode::kPreloaded) {
    // Factory-side hashing of the tag ID (Section 4.5); not charged to the
    // tag's runtime cost ledger.
    code_ = rng::uniform_code(hash_, manufacturing_seed, id_, tree_height_);
  }
}

std::optional<Reply> PetTagDevice::react(const Command& cmd) {
  if (const auto* begin = std::get_if<RoundBeginCmd>(&cmd)) {
    note_command(cmd);
    if (mode_ == CodeMode::kPerRound) {
      expects(begin->tags_rehash,
              "per-round PET tags require a rehash round begin");
      code_ = rng::uniform_code(hash_, begin->seed, id_, tree_height_);
      ++cost_.hash_evaluations;
    }
    return std::nullopt;
  }
  if (const auto* query = std::get_if<PrefixQueryCmd>(&cmd)) {
    note_command(cmd);
    ++cost_.prefix_compares;
    if (code_.matches_prefix(query->path, query->len)) {
      ++cost_.responses_sent;
      return Reply{id_, 0, 1};
    }
    return std::nullopt;
  }
  return std::nullopt;  // commands for other protocols: stay silent
}

std::optional<Reply> FnebTagDevice::react(const Command& cmd) {
  if (const auto* begin = std::get_if<FrameBeginCmd>(&cmd)) {
    note_command(cmd);
    slot_ = rng::uniform_slot(hash_, begin->seed, id_, begin->frame_size);
    ++cost_.hash_evaluations;
    return std::nullopt;
  }
  if (const auto* range = std::get_if<RangeQueryCmd>(&cmd)) {
    note_command(cmd);
    ++cost_.prefix_compares;
    if (slot_ <= range->bound) {
      ++cost_.responses_sent;
      return Reply{id_, 0, 1};
    }
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Reply> LofTagDevice::react(const Command& cmd) {
  if (const auto* begin = std::get_if<FrameBeginCmd>(&cmd)) {
    note_command(cmd);
    level_ = rng::geometric_level(hash_, begin->seed, id_,
                                  static_cast<unsigned>(begin->frame_size));
    ++cost_.hash_evaluations;
    return std::nullopt;
  }
  if (const auto* poll = std::get_if<SlotPollCmd>(&cmd)) {
    note_command(cmd);
    ++cost_.prefix_compares;
    if (level_ == poll->slot) {
      ++cost_.responses_sent;
      return Reply{id_, 0, 1};
    }
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Reply> AlohaTagDevice::react(const Command& cmd) {
  if (identified_) return std::nullopt;
  if (const auto* begin = std::get_if<FrameBeginCmd>(&cmd)) {
    note_command(cmd);
    participating_ = keyed_coin(hash_, begin->seed, id_, begin->persistence);
    if (participating_) {
      slot_ = rng::uniform_slot(hash_, begin->seed, id_, begin->frame_size);
    }
    ++cost_.hash_evaluations;
    return std::nullopt;
  }
  if (const auto* poll = std::get_if<SlotPollCmd>(&cmd)) {
    note_command(cmd);
    if (participating_ && slot_ == poll->slot) {
      ++cost_.responses_sent;
      const unsigned bits = transmit_id_ ? 64u : 1u;
      return Reply{id_, to_underlying(id_), bits};
    }
    return std::nullopt;
  }
  if (const auto* ack = std::get_if<AckCmd>(&cmd)) {
    note_command(cmd);
    if (ack->acked_id == to_underlying(id_)) identified_ = true;
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Reply> SplittingTagDevice::react(const Command& cmd) {
  if (identified_) return std::nullopt;
  if (const auto* query = std::get_if<SplitQueryCmd>(&cmd)) {
    note_command(cmd);
    session_seed_ = query->session_seed;
    transmitted_last_ = counter_ == 0;
    if (transmitted_last_) {
      ++cost_.responses_sent;
      return Reply{id_, to_underlying(id_), 64};
    }
    return std::nullopt;
  }
  if (const auto* feedback = std::get_if<SplitFeedbackCmd>(&cmd)) {
    note_command(cmd);
    if (feedback->previous == SlotOutcome::kCollision) {
      if (transmitted_last_) {
        // The colliding group splits: heads stay in the front group (0),
        // tails defer behind it (1).
        const bool tails = keyed_coin(hash_, session_seed_ + flips_, id_, 0.5);
        ++flips_;
        counter_ = tails ? 1 : 0;
      } else {
        // Everyone queued behind the split descends one level.
        ++counter_;
      }
    } else {
      // Idle or success: the front group is resolved; the queue advances.
      if (!transmitted_last_ && counter_ > 0) --counter_;
    }
    transmitted_last_ = false;
    return std::nullopt;
  }
  if (const auto* ack = std::get_if<AckCmd>(&cmd)) {
    note_command(cmd);
    if (ack->acked_id == to_underlying(id_)) identified_ = true;
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Reply> TreeWalkTagDevice::react(const Command& cmd) {
  if (identified_) return std::nullopt;
  if (const auto* query = std::get_if<IdPrefixQueryCmd>(&cmd)) {
    note_command(cmd);
    ++cost_.prefix_compares;
    if (id_code_.matches_prefix(query->prefix, query->prefix.width())) {
      ++cost_.responses_sent;
      return Reply{id_, to_underlying(id_), 64};
    }
    return std::nullopt;
  }
  if (const auto* ack = std::get_if<AckCmd>(&cmd)) {
    note_command(cmd);
    if (ack->acked_id == to_underlying(id_)) identified_ = true;
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace pet::sim
