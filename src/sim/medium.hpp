// The shared wireless medium: aggregates tag replies within one slot into
// the idle / singleton / collision trichotomy the reader's receiver can
// distinguish (Section 5.1), with optional link impairments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "obs/instruments.hpp"
#include "rng/prng.hpp"
#include "sim/command.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"

namespace pet::sim {

/// A tag's reply in one slot.  Estimation protocols only need presence;
/// identification protocols decode `payload` (the tag ID) from singletons.
struct Reply {
  TagId id{};
  std::uint64_t payload = 0;
  unsigned bits = 1;  ///< uplink bits occupied by this reply
};

/// Anything that reacts to reader commands; implemented by the tag device
/// models in sim/devices.hpp.
class Responder {
 public:
  virtual ~Responder() = default;

  /// Process a command; return a Reply to transmit in the reply window, or
  /// nullopt to keep silent.
  virtual std::optional<Reply> react(const Command& cmd) = 0;
};

// ChannelImpairments (plus the burst/noise/script fault models it now
// carries) lives in sim/faults.hpp and is re-exported via this include.

/// What the reader observed in one slot.
struct SlotObservation {
  SlotOutcome outcome = SlotOutcome::kIdle;
  std::size_t responders = 0;          ///< true transmitter count (pre-loss)
  std::size_t erased_replies = 0;      ///< replies lost to the channel
  bool during_outage = false;          ///< slot fell inside a reader outage
  bool captured = false;               ///< collision decoded via capture
  std::optional<Reply> decoded;        ///< set iff outcome == kSingleton
};

/// Running totals over a whole estimation/identification session.
struct SlotLedger {
  std::uint64_t idle_slots = 0;
  std::uint64_t singleton_slots = 0;
  std::uint64_t collision_slots = 0;
  std::uint64_t reader_bits = 0;  ///< downlink command bits
  std::uint64_t tag_bits = 0;     ///< uplink reply bits
  SimTime airtime_us = 0;
  // Fault / retry accounting.  retry_slots tags how many of the counted
  // slots were re-reads charged by a robust estimator (core::RobustPet-
  // Estimator); the other three are channel-side diagnostics.
  std::uint64_t retry_slots = 0;      ///< slots spent on voting re-reads
  std::uint64_t erased_replies = 0;   ///< replies erased by loss/bursts
  std::uint64_t noise_busy_slots = 0; ///< idle slots floored to busy
  std::uint64_t outage_slots = 0;     ///< slots burned while the reader was down

  [[nodiscard]] std::uint64_t total_slots() const noexcept {
    return idle_slots + singleton_slots + collision_slots;
  }

  [[nodiscard]] friend bool operator==(const SlotLedger&,
                                       const SlotLedger&) noexcept = default;

  /// Difference of two snapshots of the same ledger (later - earlier);
  /// used to attribute slots to one estimation session.
  [[nodiscard]] friend SlotLedger operator-(SlotLedger a,
                                            const SlotLedger& b) noexcept {
    a.idle_slots -= b.idle_slots;
    a.singleton_slots -= b.singleton_slots;
    a.collision_slots -= b.collision_slots;
    a.reader_bits -= b.reader_bits;
    a.tag_bits -= b.tag_bits;
    a.airtime_us -= b.airtime_us;
    a.retry_slots -= b.retry_slots;
    a.erased_replies -= b.erased_replies;
    a.noise_busy_slots -= b.noise_busy_slots;
    a.outage_slots -= b.outage_slots;
    return a;
  }

  SlotLedger& operator+=(const SlotLedger& o) noexcept {
    idle_slots += o.idle_slots;
    singleton_slots += o.singleton_slots;
    collision_slots += o.collision_slots;
    reader_bits += o.reader_bits;
    tag_bits += o.tag_bits;
    airtime_us += o.airtime_us;
    retry_slots += o.retry_slots;
    erased_replies += o.erased_replies;
    noise_busy_slots += o.noise_busy_slots;
    outage_slots += o.outage_slots;
    return *this;
  }
};

/// One reader's interrogation zone: a set of responders sharing one slotted
/// channel.  (Multi-reader deployments build one Medium per zone and fuse
/// observations at the controller; see src/multireader.)
class Medium {
 public:
  explicit Medium(ChannelImpairments impairments = {},
                  SlotTiming timing = {});

  /// Attach / detach responders (tags entering or leaving the zone).
  void attach(Responder* responder);
  void detach(Responder* responder);
  [[nodiscard]] std::size_t attached() const noexcept {
    return responders_.size();
  }

  /// Execute one Reader-Talks-First slot: broadcast `cmd`, collect replies,
  /// apply impairments, classify the outcome, and account slot costs.
  SlotObservation run_slot(const Command& cmd, Simulator& simulator);

  /// Downlink-only broadcast (e.g. a round-begin packet): delivers `cmd` to
  /// every tag, charges command bits and command airtime, but opens no
  /// reply window and counts no slot.  Matches the paper's accounting,
  /// where Table 3 counts only the 5 query slots per round.
  void broadcast(const Command& cmd, Simulator& simulator);

  [[nodiscard]] const SlotLedger& ledger() const noexcept { return ledger_; }
  void reset_ledger() noexcept { ledger_ = SlotLedger{}; }

  /// Charge `slots` of the already-counted slots to the retry sub-ledger
  /// (robust estimators' voting re-reads; see core::RobustPetEstimator).
  void note_retries(std::uint64_t slots) noexcept {
    ledger_.retry_slots += slots;
    if (obs::counters_enabled()) {
      obs::ledger_instruments().retry_slots.add(slots);
    }
  }

  /// The fault-model runtime (burst/noise chain state, slot index) for
  /// tests and tracing.
  [[nodiscard]] const FaultModel& faults() const noexcept { return faults_; }

  /// Responders currently parked outside the zone by scripted churn.
  [[nodiscard]] std::size_t departed() const noexcept {
    return departed_.size();
  }

  /// Install an eavesdropper: called after every slot with the command and
  /// the observable outcome.  Models an overhearing device for the
  /// anonymity analysis of Section 4.6.4.
  using Observer = std::function<void(const Command&, const SlotObservation&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

 private:
  void apply_due_churn();

  Observer observer_;
  std::vector<Responder*> responders_;
  std::vector<Responder*> departed_;  ///< churned out, may churn back in
  SlotTiming timing_;
  FaultModel faults_;
  SlotLedger ledger_;
};

}  // namespace pet::sim
