#include "sim/gen2_timing.hpp"

#include <cmath>

namespace pet::sim {

double gen2_slot_us(const Gen2LinkConfig& link, unsigned command_bits,
                    unsigned reply_bits) {
  link.validate();
  const double downlink = link.preamble_tari * link.tari_us +
                          command_bits * link.reader_bit_us();
  if (reply_bits == 0) {
    // Idle slot: the reader waits T1 plus a short carrier-sense timeout
    // (~3 T_pri) before declaring the reply window empty.
    return downlink + link.t1_us() + 3.0 / link.blf_per_us();
  }
  // Busy slot: T1, the backscattered reply (with a ~6-symbol pilot tone
  // folded into the bit count via +6), then T2 before the next command.
  const double uplink = (reply_bits + 6) * link.tag_bit_us();
  return downlink + link.t1_us() + uplink + link.t2_us();
}

SlotTiming gen2_slot_timing(const Gen2LinkConfig& link,
                            unsigned command_bits) {
  link.validate();
  const double downlink = link.preamble_tari * link.tari_us +
                          command_bits * link.reader_bit_us();
  const double reply = link.t1_us() + 7.0 * link.tag_bit_us() + link.t2_us();
  SlotTiming timing;
  timing.command_us = static_cast<SimTime>(std::llround(downlink));
  timing.reply_us = static_cast<SimTime>(std::llround(reply));
  return timing;
}

double gen2_session_us(const Gen2LinkConfig& link, std::uint64_t busy_slots,
                       std::uint64_t idle_slots, unsigned command_bits,
                       unsigned reply_bits, std::uint64_t rounds,
                       unsigned begin_bits) {
  link.validate();
  const double busy = gen2_slot_us(link, command_bits, reply_bits);
  const double idle = gen2_slot_us(link, command_bits, 0);
  const double begin = link.preamble_tari * link.tari_us +
                       begin_bits * link.reader_bit_us();
  return static_cast<double>(busy_slots) * busy +
         static_cast<double>(idle_slots) * idle +
         static_cast<double>(rounds) * begin;
}

}  // namespace pet::sim
