// EPC Class-1 Generation-2 link timing (EPCglobal [1] in the paper's
// references): derives realistic slot durations from PHY parameters instead
// of the fixed defaults, so the harness can report estimation latency in
// wall-clock terms a deployment engineer would recognize.
//
// Model (UHF air interface):
//   * Reader->tag (R=>T) uses PIE encoding: data-0 takes 1 Tari, data-1
//     takes between 1.5 and 2 Tari (we use the ratio configured);
//     each command is framed by a preamble/frame-sync of ~12.5 Tari.
//   * Tag->reader (T=>R) backscatter rate is BLF/M where BLF = DR/TRcal
//     and M is the Miller factor (1 = FM0, 2/4/8 = Miller subcarrier).
//   * T1 (reader-to-tag turnaround) ~= RTcal, T2 (tag-to-reader) ~= 3-20
//     T_pri; we use the nominal values from the standard's Table 6.16.
//
// All durations are in microseconds.  The defaults correspond to a common
// "fast" profile: Tari = 25 us would be slow; dense-reader deployments use
// Tari = 6.25 us with DR = 64/3 and M = 4.
#pragma once

#include <cstdint>

#include "common/ensure.hpp"
#include "sim/simulator.hpp"

namespace pet::sim {

struct Gen2LinkConfig {
  double tari_us = 6.25;        ///< reference interval (6.25, 12.5 or 25)
  double pie_ratio = 1.75;      ///< data-1 length in Tari (1.5 .. 2.0)
  double divide_ratio = 64.0 / 3.0;  ///< DR: 8 or 64/3
  double trcal_multiplier = 3.0;     ///< TRcal = multiplier * RTcal
  unsigned miller = 4;          ///< M: 1 (FM0), 2, 4 or 8
  double preamble_tari = 12.5;  ///< R=>T preamble + frame-sync length

  void validate() const {
    expects(tari_us >= 6.25 && tari_us <= 25.0,
            "Gen2: Tari must be in [6.25, 25] us");
    expects(pie_ratio >= 1.5 && pie_ratio <= 2.0,
            "Gen2: PIE ratio must be in [1.5, 2]");
    expects(miller == 1 || miller == 2 || miller == 4 || miller == 8,
            "Gen2: Miller factor must be 1, 2, 4 or 8");
    expects(divide_ratio > 0.0, "Gen2: divide ratio must be positive");
    expects(trcal_multiplier >= 1.1 && trcal_multiplier <= 3.0,
            "Gen2: TRcal is 1.1x .. 3x RTcal");
  }

  /// RTcal = data-0 + data-1 duration.
  [[nodiscard]] double rtcal_us() const noexcept {
    return tari_us * (1.0 + pie_ratio);
  }

  /// Backscatter link frequency in kHz-equivalent (1/us).
  [[nodiscard]] double blf_per_us() const noexcept {
    return divide_ratio / (trcal_multiplier * rtcal_us());
  }

  /// Average R=>T duration of one payload bit (PIE, equiprobable bits).
  [[nodiscard]] double reader_bit_us() const noexcept {
    return tari_us * (1.0 + pie_ratio) / 2.0;
  }

  /// T=>R duration of one payload bit.
  [[nodiscard]] double tag_bit_us() const noexcept {
    return static_cast<double>(miller) / blf_per_us();
  }

  /// T1: reader transmission to tag response turnaround (nominal).
  [[nodiscard]] double t1_us() const noexcept {
    // max(RTcal, 10/BLF) per the standard; nominal value.
    const double ten_tpri = 10.0 / blf_per_us();
    return rtcal_us() > ten_tpri ? rtcal_us() : ten_tpri;
  }

  /// T2: tag response to next reader command (nominal 10 T_pri).
  [[nodiscard]] double t2_us() const noexcept { return 10.0 / blf_per_us(); }
};

/// Payload sizes of the Gen2 inventory commands (standard §6.3.2.12),
/// excluding the PHY preamble/frame-sync (gen2_slot_us adds that).  Select
/// is variable-length: the fixed fields are Command(4) + Target(3) +
/// Action(3) + MemBank(2) + Pointer(8, one-byte EBV) + Length(8) +
/// Truncate(1) + CRC-16 = 45 bits, plus the mask itself.
struct Gen2CommandBits {
  unsigned query = 22;         ///< Query: full frame-start parameters + Q
  unsigned query_rep = 4;      ///< QueryRep: command + session only
  unsigned query_adjust = 9;   ///< QueryAdjust: command + session + UpDn
  unsigned ack = 18;           ///< ACK: command + echoed RN16
  unsigned select_base = 45;   ///< Select sans mask (fields above)
  unsigned rn16 = 16;          ///< tag's RN16 reply in an occupied slot

  /// Total Select command length for a `mask_bits`-bit mask.
  [[nodiscard]] unsigned select(unsigned mask_bits) const noexcept {
    return select_base + mask_bits;
  }
};

inline constexpr Gen2CommandBits kGen2CommandBits{};

/// Duration of one Reader-Talks-First slot that carries `command_bits`
/// downlink and expects a reply of `reply_bits` (reply_bits == 0 models an
/// idle slot, which still waits T1 for the absent response plus a detection
/// timeout of ~3 T_pri).
[[nodiscard]] double gen2_slot_us(const Gen2LinkConfig& link,
                                  unsigned command_bits, unsigned reply_bits);

/// A SlotTiming (the Medium's fixed-cost model) matched to the average cost
/// of a PET query slot under this link: command of `command_bits` bits and
/// a 1-bit presence reply.
[[nodiscard]] SlotTiming gen2_slot_timing(const Gen2LinkConfig& link,
                                          unsigned command_bits);

/// End-to-end air time of a full estimation session (convenience for the
/// latency tables): `busy_slots` carry a reply of `reply_bits`, idle slots
/// do not, and every round begins with one `begin_bits` broadcast.
[[nodiscard]] double gen2_session_us(const Gen2LinkConfig& link,
                                     std::uint64_t busy_slots,
                                     std::uint64_t idle_slots,
                                     unsigned command_bits,
                                     unsigned reply_bits,
                                     std::uint64_t rounds,
                                     unsigned begin_bits);

}  // namespace pet::sim
