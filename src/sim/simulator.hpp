// A minimal discrete-event simulation kernel.
//
// The slotted-MAC protocols in this library are synchronous, so most of the
// simulation advances slot by slot; the kernel exists to (a) timestamp those
// slots so experiments can report wall-clock estimation latency, (b)
// interleave asynchronous events (tag arrivals/departures, mobility steps,
// multi-reader coordination) with the slot schedule, and (c) make every run
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/ensure.hpp"

namespace pet::sim {

/// Simulation time in microseconds.
using SimTime = std::uint64_t;

class Simulator {
 public:
  using Action = std::function<void(Simulator&)>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `at` (>= now).  Events with
  /// equal timestamps run in scheduling order (stable FIFO).
  void schedule_at(SimTime at, Action action);

  /// Schedule `action` to run `delay` microseconds from now.
  void schedule_in(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Advance time by `delta` without dispatching (used by synchronous slot
  /// loops to account for slot airtime).
  void advance(SimTime delta) noexcept { now_ += delta; }

  /// Run until the event queue is empty or `until` is reached (whichever
  /// first).  Returns the number of events dispatched.
  std::size_t run(SimTime until = UINT64_MAX);

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

/// Air-interface timing of one Reader-Talks-First slot (Section 3).  The
/// defaults approximate an EPC C1G2 link (reader command plus tag backscatter
/// around 0.3 + 0.1 ms); the paper abstracts this to "one time slot", so all
/// paper metrics are *slot counts* and timing only feeds latency reporting.
struct SlotTiming {
  SimTime command_us = 300;
  SimTime reply_us = 100;

  [[nodiscard]] SimTime slot_us() const noexcept { return command_us + reply_us; }
};

}  // namespace pet::sim
