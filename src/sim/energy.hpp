// Energy accounting for estimation sessions, in the spirit of the paper's
// reference [38] (Zhou et al., ISLPED — power consumption of anti-collision
// protocols).
//
// The reader transmits a continuous wave throughout every slot (that is what
// powers passive tags), so reader energy is airtime-dominated.  Active tags
// additionally pay for receiving commands, computing (hashing/comparing),
// and transmitting replies; passive tags backscatter, whose marginal energy
// is ~zero but whose *availability* requires the reader's carrier.
#pragma once

#include <cstdint>

#include "common/ensure.hpp"
#include "sim/medium.hpp"
#include "tags/cost_model.hpp"

namespace pet::sim {

struct EnergyModel {
  // Reader side.
  double reader_tx_mw = 825.0;   ///< carrier + modulation (FCC-ish 30 dBm PA)
  double reader_rx_mw = 125.0;   ///< receive chain during reply windows

  // Active-tag side (battery-assisted).
  double tag_rx_mw = 0.9;        ///< command decode
  double tag_tx_mw = 1.8;        ///< reply transmission
  double tag_hash_uj = 0.45;     ///< energy per on-chip hash evaluation
  double tag_compare_nj = 25.0;  ///< energy per prefix/mask comparison

  void validate() const {
    expects(reader_tx_mw > 0 && reader_rx_mw > 0 && tag_rx_mw >= 0 &&
                tag_tx_mw >= 0 && tag_hash_uj >= 0 && tag_compare_nj >= 0,
            "EnergyModel: all components must be nonnegative");
  }
};

struct EnergyReport {
  double reader_mj = 0.0;       ///< reader energy for the whole session
  double tag_total_mj = 0.0;    ///< summed active-tag energy
  double tag_mean_uj = 0.0;     ///< mean per-tag energy in microjoules
};

/// Energy of a session given its slot ledger (airtime must be populated),
/// the aggregate tag cost ledger, and the number of tags.  For passive tags
/// pass `active_tags = false`: compute/tx components drop out and only the
/// reader budget remains.
[[nodiscard]] EnergyReport session_energy(const EnergyModel& model,
                                          const SlotLedger& slots,
                                          const tags::TagCostLedger& tag_cost,
                                          std::uint64_t tag_count,
                                          bool active_tags,
                                          SlotTiming timing = {});

}  // namespace pet::sim
