// Tag-side device models: the per-protocol state machines a real tag chip
// would implement.  Used by the DeviceChannel back end to run protocols at
// full air-interface fidelity, and by the cost tests to verify the paper's
// overhead claims (a preloaded-mode PET tag never hashes; baselines hash or
// preload per round).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bitcode.hpp"
#include "common/types.hpp"
#include "rng/hash_family.hpp"
#include "sim/medium.hpp"
#include "tags/cost_model.hpp"

namespace pet::sim {

/// Common bookkeeping for all tag devices.
class TagDeviceBase : public Responder {
 public:
  TagDeviceBase(TagId id, rng::HashKind hash) : id_(id), hash_(hash) {}

  [[nodiscard]] TagId id() const noexcept { return id_; }
  [[nodiscard]] const tags::TagCostLedger& cost() const noexcept {
    return cost_;
  }

 protected:
  void note_command(const Command& cmd) noexcept {
    cost_.command_bits_heard += advertised_bits(cmd);
  }

  TagId id_;
  rng::HashKind hash_;
  tags::TagCostLedger cost_;
};

/// PET tag (Algorithms 2 and 4).
class PetTagDevice final : public TagDeviceBase {
 public:
  enum class CodeMode : std::uint8_t {
    kPreloaded,  ///< Alg. 4: one manufacturing-time code for all rounds
    kPerRound,   ///< Alg. 2: rehash from the reader's per-round seed
  };

  PetTagDevice(TagId id, rng::HashKind hash, unsigned tree_height,
               CodeMode mode, std::uint64_t manufacturing_seed = 0);

  std::optional<Reply> react(const Command& cmd) override;

  [[nodiscard]] BitCode current_code() const noexcept { return code_; }

 private:
  unsigned tree_height_;
  CodeMode mode_;
  BitCode code_;
};

/// FNEB tag: hashes itself to a uniform frame slot each round and answers
/// range probes "is your slot <= bound?".
class FnebTagDevice final : public TagDeviceBase {
 public:
  FnebTagDevice(TagId id, rng::HashKind hash) : TagDeviceBase(id, hash) {}

  std::optional<Reply> react(const Command& cmd) override;

 private:
  std::uint64_t slot_ = 0;
};

/// LoF tag: draws a geometric lottery level each frame and replies in
/// exactly that slot of the frame.
class LofTagDevice final : public TagDeviceBase {
 public:
  LofTagDevice(TagId id, rng::HashKind hash) : TagDeviceBase(id, hash) {}

  std::optional<Reply> react(const Command& cmd) override;

 private:
  unsigned level_ = 0;
};

/// Framed-slotted-ALOHA tag (UPE/EZB estimation and DFSA identification):
/// per frame, participates with the advertised persistence probability,
/// picks a uniform slot, and — for identification — transmits its ID and
/// retires once ACKed.
class AlohaTagDevice final : public TagDeviceBase {
 public:
  AlohaTagDevice(TagId id, rng::HashKind hash, bool transmit_id = false)
      : TagDeviceBase(id, hash), transmit_id_(transmit_id) {}

  std::optional<Reply> react(const Command& cmd) override;

  [[nodiscard]] bool identified() const noexcept { return identified_; }

 private:
  bool transmit_id_;
  bool identified_ = false;
  bool participating_ = false;
  std::uint64_t slot_ = 0;
};

/// Binary-splitting (Capetanakis) identification tag: contends whenever its
/// split counter is zero, coin-flips on collisions, descends/ascends the
/// implicit stack on the reader's feedback, and retires once ACKed.
class SplittingTagDevice final : public TagDeviceBase {
 public:
  SplittingTagDevice(TagId id, rng::HashKind hash)
      : TagDeviceBase(id, hash) {}

  std::optional<Reply> react(const Command& cmd) override;

  [[nodiscard]] bool identified() const noexcept { return identified_; }
  [[nodiscard]] std::uint32_t counter() const noexcept { return counter_; }

 private:
  bool identified_ = false;
  bool transmitted_last_ = false;
  std::uint32_t counter_ = 0;
  std::uint64_t session_seed_ = 0;
  std::uint64_t flips_ = 0;
};

/// Binary tree-walking identification tag: answers ID-prefix probes with its
/// full ID and retires once ACKed.
class TreeWalkTagDevice final : public TagDeviceBase {
 public:
  TreeWalkTagDevice(TagId id, rng::HashKind hash)
      : TagDeviceBase(id, hash), id_code_(to_underlying(id), 64) {}

  std::optional<Reply> react(const Command& cmd) override;

  [[nodiscard]] bool identified() const noexcept { return identified_; }

 private:
  BitCode id_code_;
  bool identified_ = false;
};

}  // namespace pet::sim
