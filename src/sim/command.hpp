// Reader->tag command vocabulary for the device-level simulation.
//
// Every slot of every protocol in this library is one of these commands
// followed by a reply window.  Tags are dumb state machines reacting to the
// command stream; readers are the protocol drivers.
#pragma once

#include <cstdint>
#include <variant>

#include "common/bitcode.hpp"
#include "common/types.hpp"

namespace pet::sim {

/// PET (Algorithms 1/3): "tags whose code starts with the first `len` bits
/// of `path`, respond".  `advertised_bits` is how many downlink bits this
/// command costs under the active CommandEncoding.
struct PrefixQueryCmd {
  BitCode path;
  unsigned len = 0;
  unsigned advertised_bits = 0;
};

/// Start of a PET estimation round: broadcast the estimating path (and the
/// per-round hash seed when tags rehash each round, Algorithm 2).
struct RoundBeginCmd {
  BitCode path;
  std::uint64_t seed = 0;
  bool tags_rehash = false;
  unsigned advertised_bits = 0;
};

/// FNEB range probe: "tags whose frame slot is <= bound, respond".
struct RangeQueryCmd {
  std::uint64_t bound = 0;
  unsigned advertised_bits = 0;
};

/// Begin a frame for frame-based protocols (LoF/UPE/EZB/ALOHA): tags draw
/// their slot (or lottery level) from (seed, own ID) and optionally apply a
/// persistence probability.
struct FrameBeginCmd {
  std::uint64_t seed = 0;
  std::uint64_t frame_size = 0;
  double persistence = 1.0;
  unsigned advertised_bits = 0;
};

/// Poll slot `slot` (1-based) of the current frame.
struct SlotPollCmd {
  std::uint64_t slot = 0;
  unsigned advertised_bits = 0;
};

/// Identification protocols: acknowledge the singleton tag heard in the
/// previous slot so it stops participating (EPC-style ACK).
struct AckCmd {
  std::uint64_t acked_id = 0;
  unsigned advertised_bits = 0;
};

/// Tree-walking identification: "tags whose ID starts with `prefix`,
/// respond with your ID".
struct IdPrefixQueryCmd {
  BitCode prefix;
  unsigned advertised_bits = 0;
};

/// Binary-splitting (Capetanakis) identification: open one contention slot
/// for the tags whose split counter is zero.
struct SplitQueryCmd {
  std::uint64_t session_seed = 0;  ///< seeds the tags' coin flips
  unsigned advertised_bits = 0;
};

/// Binary-splitting feedback: the reader announces the previous slot's
/// outcome; tags update their split counters (collision: the active group
/// coin-flips, everyone else descends the stack; idle/success: the stack
/// pops).
struct SplitFeedbackCmd {
  SlotOutcome previous = SlotOutcome::kIdle;
  unsigned advertised_bits = 0;
};

using Command = std::variant<PrefixQueryCmd, RoundBeginCmd, RangeQueryCmd,
                             FrameBeginCmd, SlotPollCmd, AckCmd,
                             IdPrefixQueryCmd, SplitQueryCmd,
                             SplitFeedbackCmd>;

[[nodiscard]] constexpr unsigned advertised_bits(const Command& cmd) noexcept {
  return std::visit([](const auto& c) { return c.advertised_bits; }, cmd);
}

}  // namespace pet::sim
