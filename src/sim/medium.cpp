#include "sim/medium.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace pet::sim {

Medium::Medium(ChannelImpairments impairments, SlotTiming timing)
    : timing_(timing), faults_(impairments) {
  // FaultModel validates the impairments (probabilities in [0, 1], sane
  // fault script) via common/ensure; invalid configs throw here rather
  // than silently producing nonsense observations.
}

void Medium::attach(Responder* responder) {
  expects(responder != nullptr, "Medium::attach: null responder");
  responders_.push_back(responder);
}

void Medium::detach(Responder* responder) {
  const auto it = std::find(responders_.begin(), responders_.end(), responder);
  if (it != responders_.end()) {
    *it = responders_.back();
    responders_.pop_back();
    return;
  }
  // The responder may have been churned out of the zone; scrub it from the
  // departed pool so scripted arrivals cannot resurrect a dangling pointer.
  const auto parked =
      std::find(departed_.begin(), departed_.end(), responder);
  if (parked != departed_.end()) {
    *parked = departed_.back();
    departed_.pop_back();
  }
}

void Medium::apply_due_churn() {
  while (const ChurnEvent* event = faults_.consume_due_churn()) {
    auto& gen = faults_.churn_rng();
    std::uint32_t departed = 0;
    std::uint32_t arrived = 0;
    for (std::uint32_t i = 0; i < event->departures && !responders_.empty();
         ++i) {
      const std::size_t victim =
          static_cast<std::size_t>(gen() % responders_.size());
      departed_.push_back(responders_[victim]);
      responders_[victim] = responders_.back();
      responders_.pop_back();
      ++departed;
    }
    for (std::uint32_t i = 0; i < event->arrivals && !departed_.empty();
         ++i) {
      responders_.push_back(departed_.back());
      departed_.pop_back();
      ++arrived;
    }
    if (obs::counters_enabled()) {
      obs::fault_instruments().churn_departed.add(departed);
      obs::fault_instruments().churn_arrived.add(arrived);
    }
    if (obs::full_enabled()) {
      obs::trace_event("fault.churn",
                       {{"departed", std::to_string(departed)},
                        {"arrived", std::to_string(arrived)}});
    }
  }
}

void Medium::broadcast(const Command& cmd, Simulator& simulator) {
  // A downlink-only broadcast airs between reply-window slots; if the
  // upcoming slot falls in a scripted outage the reader is down and nothing
  // is transmitted (tags never hear the command), but the driver still
  // burns the airtime.
  const bool down = faults_.reader_down_at(faults_.slots_begun());
  if (!down) {
    for (Responder* responder : responders_) {
      const auto reply = responder->react(cmd);
      invariant(!reply.has_value(),
                "broadcast commands must not solicit replies");
    }
    ledger_.reader_bits += advertised_bits(cmd);
    if (obs::counters_enabled()) {
      obs::sim_instruments().downlink_bits.add(advertised_bits(cmd));
      obs::ledger_instruments().reader_bits.add(advertised_bits(cmd));
    }
  }
  ledger_.airtime_us += timing_.command_us;
  simulator.advance(timing_.command_us);
}

SlotObservation Medium::run_slot(const Command& cmd, Simulator& simulator) {
  faults_.begin_slot();
  apply_due_churn();

  SlotObservation obs;
  obs.during_outage = faults_.reader_down();

  if (obs.during_outage) {
    // Reader crash window: the command never airs, tags neither hear nor
    // reply, and the receiver reports silence.  The protocol driver cannot
    // tell this from a genuinely idle slot.
    obs.outcome = SlotOutcome::kIdle;
    ++ledger_.outage_slots;
    if (obs::counters_enabled()) obs::fault_instruments().outage_slots.add();
    if (obs::full_enabled()) obs::trace_event("fault.outage_slot");
  } else {
    std::optional<Reply> first_reply;
    std::size_t heard = 0;
    unsigned uplink_bits = 0;

    for (Responder* responder : responders_) {
      const auto reply = responder->react(cmd);
      if (!reply.has_value()) continue;
      ++obs.responders;
      if (faults_.erases_reply()) {
        ++obs.erased_replies;
        continue;
      }
      ++heard;
      uplink_bits += reply->bits;
      if (heard == 1) first_reply = reply;
    }
    ledger_.erased_replies += obs.erased_replies;

    if (heard == 0) {
      if (faults_.raises_noise_floor()) {
        obs.outcome = SlotOutcome::kCollision;
        ++ledger_.noise_busy_slots;
        if (obs::counters_enabled()) {
          obs::fault_instruments().noise_busy_slots.add();
        }
      } else {
        obs.outcome = SlotOutcome::kIdle;
      }
    } else if (heard == 1) {
      obs.outcome = SlotOutcome::kSingleton;
      obs.decoded = first_reply;
    } else if (faults_.captures_collision(heard)) {
      // Capture effect: one power-dominant reply survives the collision and
      // decodes as a singleton.  Attachment order stands in for signal
      // strength (the draw itself is the seeded capture stream).
      obs.outcome = SlotOutcome::kSingleton;
      obs.decoded = first_reply;
      obs.captured = true;
      if (obs::counters_enabled()) {
        obs::fault_instruments().captured_slots.add();
      }
      if (obs::full_enabled()) obs::trace_event("fault.capture");
    } else {
      obs.outcome = SlotOutcome::kCollision;
    }
    ledger_.reader_bits += advertised_bits(cmd);
    ledger_.tag_bits += uplink_bits;
    if (obs::counters_enabled()) {
      obs::sim_instruments().downlink_bits.add(advertised_bits(cmd));
      obs::sim_instruments().uplink_bits.add(uplink_bits);
      obs::ledger_instruments().reader_bits.add(advertised_bits(cmd));
      obs::ledger_instruments().tag_bits.add(uplink_bits);
      if (obs.erased_replies > 0) {
        obs::fault_instruments().erased_replies.add(obs.erased_replies);
      }
    }
  }

  switch (obs.outcome) {
    case SlotOutcome::kIdle: ++ledger_.idle_slots; break;
    case SlotOutcome::kSingleton: ++ledger_.singleton_slots; break;
    case SlotOutcome::kCollision: ++ledger_.collision_slots; break;
  }
  ledger_.airtime_us += timing_.slot_us();
  simulator.advance(timing_.slot_us());
  if (obs::counters_enabled()) {
    const obs::SimInstruments& si = obs::sim_instruments();
    const obs::LedgerInstruments& li = obs::ledger_instruments();
    switch (obs.outcome) {
      case SlotOutcome::kIdle:
        si.idle.add();
        li.idle_slots.add();
        break;
      case SlotOutcome::kSingleton:
        si.singleton.add();
        li.singleton_slots.add();
        break;
      case SlotOutcome::kCollision:
        si.collision.add();
        li.collision_slots.add();
        break;
    }
    si.responders.observe(static_cast<double>(obs.responders));
  }
  if (obs::full_enabled()) obs::advance_trace_slot();
  if (observer_) observer_(cmd, obs);
  return obs;
}

}  // namespace pet::sim
