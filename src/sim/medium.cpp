#include "sim/medium.hpp"

#include <algorithm>
#include <random>

#include "common/ensure.hpp"

namespace pet::sim {

Medium::Medium(ChannelImpairments impairments, SlotTiming timing)
    : impairments_(impairments), timing_(timing),
      noise_(impairments.seed) {
  expects(impairments.reply_loss_prob >= 0.0 &&
              impairments.reply_loss_prob <= 1.0,
          "reply_loss_prob must be a probability");
  expects(impairments.false_busy_prob >= 0.0 &&
              impairments.false_busy_prob <= 1.0,
          "false_busy_prob must be a probability");
}

void Medium::attach(Responder* responder) {
  expects(responder != nullptr, "Medium::attach: null responder");
  responders_.push_back(responder);
}

void Medium::detach(Responder* responder) {
  const auto it = std::find(responders_.begin(), responders_.end(), responder);
  if (it != responders_.end()) {
    *it = responders_.back();
    responders_.pop_back();
  }
}

void Medium::broadcast(const Command& cmd, Simulator& simulator) {
  for (Responder* responder : responders_) {
    const auto reply = responder->react(cmd);
    invariant(!reply.has_value(),
              "broadcast commands must not solicit replies");
  }
  ledger_.reader_bits += advertised_bits(cmd);
  ledger_.airtime_us += timing_.command_us;
  simulator.advance(timing_.command_us);
}

SlotObservation Medium::run_slot(const Command& cmd, Simulator& simulator) {
  SlotObservation obs;
  std::optional<Reply> sole_reply;
  std::size_t heard = 0;
  unsigned uplink_bits = 0;

  std::bernoulli_distribution lost(impairments_.reply_loss_prob);
  for (Responder* responder : responders_) {
    const auto reply = responder->react(cmd);
    if (!reply.has_value()) continue;
    ++obs.responders;
    if (impairments_.reply_loss_prob > 0.0 && lost(noise_)) continue;
    ++heard;
    uplink_bits += reply->bits;
    if (heard == 1) {
      sole_reply = reply;
    } else {
      sole_reply.reset();
    }
  }

  if (heard == 0) {
    const bool noise_floor =
        impairments_.false_busy_prob > 0.0 &&
        std::bernoulli_distribution(impairments_.false_busy_prob)(noise_);
    obs.outcome = noise_floor ? SlotOutcome::kCollision : SlotOutcome::kIdle;
  } else if (heard == 1) {
    obs.outcome = SlotOutcome::kSingleton;
    obs.decoded = sole_reply;
  } else {
    obs.outcome = SlotOutcome::kCollision;
  }

  switch (obs.outcome) {
    case SlotOutcome::kIdle: ++ledger_.idle_slots; break;
    case SlotOutcome::kSingleton: ++ledger_.singleton_slots; break;
    case SlotOutcome::kCollision: ++ledger_.collision_slots; break;
  }
  ledger_.reader_bits += advertised_bits(cmd);
  ledger_.tag_bits += uplink_bits;
  ledger_.airtime_us += timing_.slot_us();
  simulator.advance(timing_.slot_us());
  if (observer_) observer_(cmd, obs);
  return obs;
}

}  // namespace pet::sim
