// Fault injection for the simulated air interface.
//
// The paper's evaluation assumes a lossless link with perfect idle detection
// (Section 5.1).  Real Gen2 deployments see bursty fading, noise transients,
// reader restarts, and tag churn; this module models all four so protocols
// can be exercised — and hardened — against them:
//
//   * i.i.d. reply loss / false-busy noise (the original knobs, kept);
//   * GilbertElliottParams — a two-state (good/bad) Markov loss chain whose
//     bad state erases replies in bursts, the classic model for correlated
//     fading;
//   * NoiseTransientParams — a two-state (quiet/noisy) chain that raises the
//     receiver's noise floor for stretches of slots, flooring idle slots to
//     busy;
//   * FaultScript — scripted, replayable deployment faults: reader outages
//     (crash/restart windows during which nothing is transmitted or heard)
//     and tag churn (seeded random departures/arrivals at fixed slots).
//
// Everything is driven by seeded deterministic PRNG streams: the same
// ChannelImpairments value replays bit-for-bit, which is what makes fault
// scenarios regression-testable (see tests/robustness_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "rng/prng.hpp"

namespace pet::sim {

/// Gilbert–Elliott bursty-loss chain.  Each reply-window slot the chain
/// transitions (good -> bad with p_good_to_bad, bad -> good with
/// p_bad_to_good) and every reply in the slot is independently erased with
/// the loss probability of the state the chain is in.  Defaults are inert.
struct GilbertElliottParams {
  double p_good_to_bad = 0.0;  ///< per-slot transition into the burst state
  double p_bad_to_good = 1.0;  ///< per-slot recovery; 1/p is the mean burst
  double loss_good = 0.0;      ///< reply-erasure probability, good state
  double loss_bad = 1.0;       ///< reply-erasure probability, bad state
  bool start_bad = false;      ///< chain state before the first slot

  [[nodiscard]] bool enabled() const noexcept {
    return p_good_to_bad > 0.0 || start_bad;
  }
  /// Long-run fraction of slots spent in the bad state.
  [[nodiscard]] double stationary_bad_fraction() const noexcept;
  /// Long-run per-reply loss probability (for picking comparable i.i.d.
  /// settings in benches).
  [[nodiscard]] double stationary_loss() const noexcept;
  void validate() const;
};

/// Transient noise-floor chain: quiet -> noisy with p_start, noisy -> quiet
/// with p_stop.  While noisy, idle slots are additionally floored to busy
/// with noisy_false_busy_prob (on top of the baseline false_busy_prob).
struct NoiseTransientParams {
  double p_start = 0.0;
  double p_stop = 1.0;
  double noisy_false_busy_prob = 0.0;
  bool start_noisy = false;

  [[nodiscard]] bool enabled() const noexcept {
    return (p_start > 0.0 || start_noisy) && noisy_false_busy_prob > 0.0;
  }
  void validate() const;
};

/// Reader crash/restart: for reply-window slots [begin_slot, begin_slot +
/// duration_slots) the reader transmits nothing and hears nothing.  The
/// protocol driver still burns the slot (it cannot know the radio died) and
/// reads it as idle; tags never hear the command.
struct ReaderOutage {
  std::uint64_t begin_slot = 0;
  std::uint64_t duration_slots = 0;
};

/// Tag churn at a fixed slot: `departures` currently attached responders
/// (picked by the seeded churn stream) leave the zone; `arrivals` previously
/// departed responders re-enter.  Arrivals beyond the departed pool are
/// ignored (there is nobody to re-admit).
struct ChurnEvent {
  std::uint64_t at_slot = 0;
  std::uint32_t departures = 0;
  std::uint32_t arrivals = 0;
};

/// Capture effect: a power-imbalanced collision can still be decoded as the
/// strongest single reply.  With k >= 2 surviving transmitters the slot is
/// captured with probability capture_prob * extra_decay^(k - 2) — the usual
/// monotone model where every additional interferer makes capture less
/// likely.  Inert by default (capture_prob = 0: every collision garbles).
struct CaptureParams {
  double capture_prob = 0.0;  ///< 2-responder capture probability
  double extra_decay = 0.6;   ///< multiplicative factor per extra responder

  [[nodiscard]] bool enabled() const noexcept { return capture_prob > 0.0; }
  /// Capture probability for a `responders`-way collision.
  [[nodiscard]] double probability(std::size_t responders) const noexcept;
  void validate() const;
};

/// A replayable scripted fault scenario.
struct FaultScript {
  std::vector<ReaderOutage> outages;
  std::vector<ChurnEvent> churn;

  [[nodiscard]] bool empty() const noexcept {
    return outages.empty() && churn.empty();
  }
  void validate() const;
};

/// Channel impairments.  The defaults reproduce the paper's lossless link;
/// the robustness benches and fault tests turn the knobs.  Field order keeps
/// `{loss, noise, seed}` aggregate initialization working.
struct ChannelImpairments {
  double reply_loss_prob = 0.0;  ///< each reply independently erased
  double false_busy_prob = 0.0;  ///< an idle slot read as busy (noise)
  std::uint64_t seed = 0x10551055ULL;
  GilbertElliottParams burst{};        ///< bursty loss (inert by default)
  NoiseTransientParams noise_transient{};  ///< noise episodes (inert)
  FaultScript script{};                ///< scripted outages / churn
  CaptureParams capture{};             ///< collision capture (inert)

  /// Rejects probabilities outside [0, 1] and malformed scripts.  Called at
  /// Medium construction; throws PreconditionError.
  void validate() const;
};

/// The per-Medium runtime of the fault models above: owns one independent
/// seeded PRNG stream per fault source so adding or removing one source
/// never perturbs another's draws (replay stability).
class FaultModel {
 public:
  explicit FaultModel(const ChannelImpairments& impairments);

  /// Advance the per-slot chains; call exactly once at the top of every
  /// reply-window slot.  Returns the (0-based) index of the slot begun.
  std::uint64_t begin_slot();

  /// Slots begun so far.
  [[nodiscard]] std::uint64_t slots_begun() const noexcept { return slot_; }

  /// Sample whether one reply is erased in the current slot (i.i.d. loss
  /// OR'ed with the burst chain's state loss).
  [[nodiscard]] bool erases_reply();

  /// Sample whether an idle slot is floored to busy in the current slot.
  [[nodiscard]] bool raises_noise_floor();

  /// Sample whether a `responders`-way collision (responders >= 2) is
  /// captured: decoded as the strongest single reply instead of garble.
  [[nodiscard]] bool captures_collision(std::size_t responders);

  /// True while a scripted outage covers the current slot.
  [[nodiscard]] bool reader_down() const noexcept;

  /// True if a scripted outage covers reply-window slot index `slot`; used
  /// for downlink-only broadcasts, which air "between" slots and are lost
  /// when the reader is down for the upcoming slot.
  [[nodiscard]] bool reader_down_at(std::uint64_t slot) const noexcept;

  /// Burst-chain state (for tests and tracing).
  [[nodiscard]] bool in_burst() const noexcept { return burst_bad_; }
  /// Noise-chain state (for tests and tracing).
  [[nodiscard]] bool in_noise_episode() const noexcept { return noisy_; }

  /// The next unconsumed churn event due at or before the current slot, or
  /// nullptr.  Each event is returned exactly once.
  [[nodiscard]] const ChurnEvent* consume_due_churn();

  /// Seeded stream reserved for churn victim selection.
  [[nodiscard]] rng::Xoshiro256ss& churn_rng() noexcept { return churn_rng_; }

 private:
  ChannelImpairments impairments_;
  std::vector<ChurnEvent> churn_queue_;  ///< sorted by at_slot, ascending
  std::size_t next_churn_ = 0;
  std::uint64_t slot_ = 0;   ///< slots begun; current slot index is slot_ - 1
  bool burst_bad_ = false;
  bool noisy_ = false;
  rng::Xoshiro256ss loss_rng_;
  rng::Xoshiro256ss chain_rng_;
  rng::Xoshiro256ss noise_rng_;
  rng::Xoshiro256ss churn_rng_;
  rng::Xoshiro256ss capture_rng_;
};

}  // namespace pet::sim
