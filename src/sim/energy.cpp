#include "sim/energy.hpp"

namespace pet::sim {

EnergyReport session_energy(const EnergyModel& model, const SlotLedger& slots,
                            const tags::TagCostLedger& tag_cost,
                            std::uint64_t tag_count, bool active_tags,
                            SlotTiming timing) {
  model.validate();
  EnergyReport report;

  // Reader: carrier for the whole airtime, receiver during reply windows.
  const double airtime_s = static_cast<double>(slots.airtime_us) / 1e6;
  const double reply_s = static_cast<double>(slots.total_slots()) *
                         static_cast<double>(timing.reply_us) / 1e6;
  report.reader_mj =
      model.reader_tx_mw * airtime_s + model.reader_rx_mw * reply_s;

  if (active_tags && tag_count > 0) {
    // Receive: every tag decodes every command; approximate command airtime
    // by the ledger's command share of the slot.
    const double command_s = static_cast<double>(slots.total_slots()) *
                             static_cast<double>(timing.command_us) / 1e6;
    const double rx_mj =
        model.tag_rx_mw * command_s * static_cast<double>(tag_count);
    // Transmit: per recorded reply, one reply window.
    const double tx_mj = model.tag_tx_mw *
                         static_cast<double>(tag_cost.responses_sent) *
                         static_cast<double>(timing.reply_us) / 1e6;
    const double hash_mj =
        model.tag_hash_uj * static_cast<double>(tag_cost.hash_evaluations) /
        1000.0;
    const double cmp_mj = model.tag_compare_nj *
                          static_cast<double>(tag_cost.prefix_compares) /
                          1e6;
    report.tag_total_mj = rx_mj + tx_mj + hash_mj + cmp_mj;
    report.tag_mean_uj =
        report.tag_total_mj * 1000.0 / static_cast<double>(tag_count);
  }
  return report;
}

}  // namespace pet::sim
