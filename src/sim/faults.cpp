#include "sim/faults.hpp"

#include <algorithm>
#include <random>

#include "common/ensure.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace pet::sim {

namespace {

void expect_probability(double p, std::string_view what) {
  // NaN fails both comparisons, so it is rejected too.
  expects(p >= 0.0 && p <= 1.0, what);
}

}  // namespace

double GilbertElliottParams::stationary_bad_fraction() const noexcept {
  const double denom = p_good_to_bad + p_bad_to_good;
  if (denom <= 0.0) return start_bad ? 1.0 : 0.0;
  return p_good_to_bad / denom;
}

double GilbertElliottParams::stationary_loss() const noexcept {
  const double f = stationary_bad_fraction();
  return (1.0 - f) * loss_good + f * loss_bad;
}

void GilbertElliottParams::validate() const {
  expect_probability(p_good_to_bad,
                     "GilbertElliottParams: p_good_to_bad must be in [0, 1]");
  expect_probability(p_bad_to_good,
                     "GilbertElliottParams: p_bad_to_good must be in [0, 1]");
  expect_probability(loss_good,
                     "GilbertElliottParams: loss_good must be in [0, 1]");
  expect_probability(loss_bad,
                     "GilbertElliottParams: loss_bad must be in [0, 1]");
}

void NoiseTransientParams::validate() const {
  expect_probability(p_start, "NoiseTransientParams: p_start must be in [0, 1]");
  expect_probability(p_stop, "NoiseTransientParams: p_stop must be in [0, 1]");
  expect_probability(
      noisy_false_busy_prob,
      "NoiseTransientParams: noisy_false_busy_prob must be in [0, 1]");
}

double CaptureParams::probability(std::size_t responders) const noexcept {
  if (responders < 2) return 0.0;
  double p = capture_prob;
  for (std::size_t k = 2; k < responders; ++k) p *= extra_decay;
  return p;
}

void CaptureParams::validate() const {
  expect_probability(capture_prob,
                     "CaptureParams: capture_prob must be in [0, 1]");
  expect_probability(extra_decay,
                     "CaptureParams: extra_decay must be in [0, 1]");
}

void FaultScript::validate() const {
  for (const ReaderOutage& outage : outages) {
    expects(outage.duration_slots > 0,
            "FaultScript: outage duration must be positive");
    expects(outage.begin_slot + outage.duration_slots > outage.begin_slot,
            "FaultScript: outage window overflows");
  }
  for (const ChurnEvent& event : churn) {
    expects(event.departures > 0 || event.arrivals > 0,
            "FaultScript: churn event must move at least one tag");
  }
}

void ChannelImpairments::validate() const {
  expect_probability(reply_loss_prob,
                     "ChannelImpairments: reply_loss_prob must be in [0, 1]");
  expect_probability(false_busy_prob,
                     "ChannelImpairments: false_busy_prob must be in [0, 1]");
  burst.validate();
  noise_transient.validate();
  script.validate();
  capture.validate();
}

FaultModel::FaultModel(const ChannelImpairments& impairments)
    : impairments_(impairments),
      churn_queue_(impairments.script.churn),
      burst_bad_(impairments.burst.start_bad),
      noisy_(impairments.noise_transient.start_noisy),
      loss_rng_(rng::derive_seed(impairments.seed, 0)),
      chain_rng_(rng::derive_seed(impairments.seed, 1)),
      noise_rng_(rng::derive_seed(impairments.seed, 2)),
      churn_rng_(rng::derive_seed(impairments.seed, 3)),
      // Stream 4: capture.  A new source gets a new stream so enabling it
      // never perturbs replay of the loss/chain/noise/churn draws.
      capture_rng_(rng::derive_seed(impairments.seed, 4)) {
  impairments_.validate();
  std::stable_sort(churn_queue_.begin(), churn_queue_.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at_slot < b.at_slot;
                   });
}

std::uint64_t FaultModel::begin_slot() {
  // The chains advance unconditionally so that enabling or disabling one
  // fault source never shifts another's random stream.
  if (impairments_.burst.enabled()) {
    const double p = burst_bad_ ? impairments_.burst.p_bad_to_good
                                : impairments_.burst.p_good_to_bad;
    if (std::bernoulli_distribution(p)(chain_rng_)) {
      burst_bad_ = !burst_bad_;
      if (obs::counters_enabled()) {
        obs::fault_instruments().burst_transitions.add();
      }
      if (obs::full_enabled()) {
        obs::trace_event("fault.burst_transition",
                         {{"bad", burst_bad_ ? "true" : "false"}});
      }
    }
    if (burst_bad_ && obs::counters_enabled()) {
      obs::fault_instruments().burst_slots.add();
    }
  }
  if (impairments_.noise_transient.enabled()) {
    const double p = noisy_ ? impairments_.noise_transient.p_stop
                            : impairments_.noise_transient.p_start;
    if (std::bernoulli_distribution(p)(chain_rng_)) {
      noisy_ = !noisy_;
      if (obs::counters_enabled()) {
        obs::fault_instruments().noise_transitions.add();
      }
      if (obs::full_enabled()) {
        obs::trace_event("fault.noise_transition",
                         {{"noisy", noisy_ ? "true" : "false"}});
      }
    }
    if (noisy_ && obs::counters_enabled()) {
      obs::fault_instruments().noise_slots.add();
    }
  }
  return slot_++;
}

bool FaultModel::erases_reply() {
  const double iid = impairments_.reply_loss_prob;
  if (iid > 0.0 && std::bernoulli_distribution(iid)(loss_rng_)) return true;
  if (impairments_.burst.enabled()) {
    const double p = burst_bad_ ? impairments_.burst.loss_bad
                                : impairments_.burst.loss_good;
    if (p > 0.0 && std::bernoulli_distribution(p)(loss_rng_)) return true;
  }
  return false;
}

bool FaultModel::raises_noise_floor() {
  const double base = impairments_.false_busy_prob;
  if (base > 0.0 && std::bernoulli_distribution(base)(noise_rng_)) return true;
  if (noisy_) {
    const double p = impairments_.noise_transient.noisy_false_busy_prob;
    if (p > 0.0 && std::bernoulli_distribution(p)(noise_rng_)) return true;
  }
  return false;
}

bool FaultModel::captures_collision(std::size_t responders) {
  if (!impairments_.capture.enabled() || responders < 2) return false;
  const double p = impairments_.capture.probability(responders);
  return p > 0.0 && std::bernoulli_distribution(p)(capture_rng_);
}

bool FaultModel::reader_down() const noexcept {
  return slot_ > 0 && reader_down_at(slot_ - 1);
}

bool FaultModel::reader_down_at(std::uint64_t slot) const noexcept {
  for (const ReaderOutage& outage : impairments_.script.outages) {
    if (slot >= outage.begin_slot &&
        slot - outage.begin_slot < outage.duration_slots) {
      return true;
    }
  }
  return false;
}

const ChurnEvent* FaultModel::consume_due_churn() {
  if (slot_ == 0) return nullptr;
  const std::uint64_t current = slot_ - 1;
  if (next_churn_ < churn_queue_.size() &&
      churn_queue_[next_churn_].at_slot <= current) {
    return &churn_queue_[next_churn_++];
  }
  return nullptr;
}

}  // namespace pet::sim
