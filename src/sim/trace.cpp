#include "sim/trace.hpp"

#include "obs/trace.hpp"
#include "runtime/json.hpp"

namespace pet::sim {

namespace {

struct NameVisitor {
  std::string operator()(const PrefixQueryCmd&) const { return "prefix_query"; }
  std::string operator()(const RoundBeginCmd&) const { return "round_begin"; }
  std::string operator()(const RangeQueryCmd&) const { return "range_query"; }
  std::string operator()(const FrameBeginCmd&) const { return "frame_begin"; }
  std::string operator()(const SlotPollCmd&) const { return "slot_poll"; }
  std::string operator()(const AckCmd&) const { return "ack"; }
  std::string operator()(const IdPrefixQueryCmd&) const {
    return "id_prefix_query";
  }
  std::string operator()(const SplitQueryCmd&) const { return "split_query"; }
  std::string operator()(const SplitFeedbackCmd&) const {
    return "split_feedback";
  }
};

struct PayloadVisitor {
  std::string operator()(const PrefixQueryCmd& c) const {
    return c.path.prefix(c.len).to_string();
  }
  std::string operator()(const RoundBeginCmd& c) const {
    return c.path.to_string();
  }
  std::string operator()(const RangeQueryCmd& c) const {
    return std::to_string(c.bound);
  }
  std::string operator()(const FrameBeginCmd& c) const {
    return "f=" + std::to_string(c.frame_size);
  }
  std::string operator()(const SlotPollCmd& c) const {
    return std::to_string(c.slot);
  }
  std::string operator()(const AckCmd& c) const {
    return std::to_string(c.acked_id);
  }
  std::string operator()(const IdPrefixQueryCmd& c) const {
    return c.prefix.to_string();
  }
  std::string operator()(const SplitQueryCmd&) const { return ""; }
  std::string operator()(const SplitFeedbackCmd& c) const {
    switch (c.previous) {
      case SlotOutcome::kIdle: return "idle";
      case SlotOutcome::kSingleton: return "singleton";
      case SlotOutcome::kCollision: return "collision";
    }
    return "?";
  }
};

const char* outcome_name(SlotOutcome outcome) {
  switch (outcome) {
    case SlotOutcome::kIdle: return "idle";
    case SlotOutcome::kSingleton: return "singleton";
    case SlotOutcome::kCollision: return "collision";
  }
  return "?";
}

}  // namespace

std::string command_name(const Command& cmd) {
  return std::visit(NameVisitor{}, cmd);
}

std::string command_payload(const Command& cmd) {
  return std::visit(PayloadVisitor{}, cmd);
}

TraceSink::TraceSink(std::ostream& out, bool write_header)
    : TraceSink(out, TraceFormat::kCsv, write_header) {}

TraceSink::TraceSink(std::ostream& out, TraceFormat format, bool write_header)
    : out_(out), format_(format) {
  // JSONL is self-describing; only CSV needs a header row.
  if (format_ == TraceFormat::kCsv && write_header) {
    out_ << "slot,command,payload,outcome,responders,downlink_bits\n";
  }
}

Medium::Observer TraceSink::observer() {
  if (format_ == TraceFormat::kJsonl) {
    return [this](const Command& cmd, const SlotObservation& obs) {
      out_ << "{\"type\":\"slot\",\"trial\":" << pet::obs::trace_trial()
           << ",\"slot\":" << rows_ << ",\"command\":\""
           << runtime::json_escape(command_name(cmd)) << "\",\"payload\":\""
           << runtime::json_escape(command_payload(cmd))
           << "\",\"outcome\":\"" << outcome_name(obs.outcome)
           << "\",\"responders\":" << obs.responders
           << ",\"downlink_bits\":" << advertised_bits(cmd) << "}\n";
      ++rows_;
    };
  }
  return [this](const Command& cmd, const SlotObservation& obs) {
    out_ << rows_ << ',' << command_name(cmd) << ',' << command_payload(cmd)
         << ',' << outcome_name(obs.outcome) << ',' << obs.responders << ','
         << advertised_bits(cmd) << '\n';
    ++rows_;
  };
}

}  // namespace pet::sim
