// Per-slot protocol tracing: a Medium observer that renders every command
// and its observable outcome to a line-oriented stream (CSV), for protocol
// debugging and for auditing what actually crossed the air.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "sim/medium.hpp"

namespace pet::sim {

/// Human/CSV-friendly one-token name of a command.
[[nodiscard]] std::string command_name(const Command& cmd);

/// Render the command's protocol-relevant payload (path prefix, bound,
/// frame slot, ...) as a short string.
[[nodiscard]] std::string command_payload(const Command& cmd);

/// Streams one CSV row per slot:
///   slot_index,command,payload,outcome,responders,downlink_bits
/// The stream must outlive the Medium observation.
class TraceSink {
 public:
  explicit TraceSink(std::ostream& out, bool write_header = true);

  /// Install with Medium::set_observer(sink.observer()).
  [[nodiscard]] Medium::Observer observer();

  [[nodiscard]] std::uint64_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  std::uint64_t rows_ = 0;
};

}  // namespace pet::sim
