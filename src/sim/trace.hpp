// Per-slot protocol tracing: a Medium observer that renders every command
// and its observable outcome to a line-oriented stream, for protocol
// debugging and for auditing what actually crossed the air.
//
// Two formats share one schema:
//   kCsv    slot_index,command,payload,outcome,responders,downlink_bits
//   kJsonl  {"type":"slot","trial":T,"slot":S,"command":...,"payload":...,
//            "outcome":...,"responders":N,"downlink_bits":B}
// JSONL records carry the same logical-clock coordinates as pet::obs span
// and event records (docs/observability.md), so a slot trace and a span
// trace interleave into one timeline when sorted by (trial, slot).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "sim/medium.hpp"

namespace pet::sim {

/// Human/CSV-friendly one-token name of a command.
[[nodiscard]] std::string command_name(const Command& cmd);

/// Render the command's protocol-relevant payload (path prefix, bound,
/// frame slot, ...) as a short string.
[[nodiscard]] std::string command_payload(const Command& cmd);

enum class TraceFormat : std::uint8_t { kCsv, kJsonl };

/// Streams one line per slot.  The stream must outlive the Medium
/// observation.
class TraceSink {
 public:
  explicit TraceSink(std::ostream& out, bool write_header = true);
  TraceSink(std::ostream& out, TraceFormat format, bool write_header = true);

  /// Install with Medium::set_observer(sink.observer()).
  [[nodiscard]] Medium::Observer observer();

  [[nodiscard]] std::uint64_t rows_written() const noexcept { return rows_; }
  [[nodiscard]] TraceFormat format() const noexcept { return format_; }

 private:
  std::ostream& out_;
  TraceFormat format_ = TraceFormat::kCsv;
  std::uint64_t rows_ = 0;
};

}  // namespace pet::sim
