#include "obs/trace.hpp"

#include <atomic>

#include "runtime/json.hpp"

namespace pet::obs {

namespace {

std::atomic<TraceWriter*> g_writer{nullptr};

struct TraceContext {
  std::uint64_t trial = 0;
  std::uint64_t slot = 0;
};

TraceContext& context() {
  thread_local TraceContext ctx;
  return ctx;
}

void append_attrs(std::string& line,
                  std::initializer_list<TraceAttr> attrs) {
  for (const TraceAttr& attr : attrs) {
    line += ",\"";
    line += attr.first;
    line += "\":";
    line += attr.second;
  }
}

}  // namespace

std::string json_token(std::string_view text) {
  return '"' + runtime::json_escape(text) + '"';
}

void TraceWriter::write_line(std::string_view line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  (*out_) << line << '\n';
}

void set_trace_writer(TraceWriter* writer) noexcept {
  g_writer.store(writer, std::memory_order_release);
}

TraceWriter* trace_writer() noexcept {
  return g_writer.load(std::memory_order_acquire);
}

void set_trace_trial(std::uint64_t trial) noexcept {
  context().trial = trial;
  context().slot = 0;
}

void advance_trace_slot() noexcept { ++context().slot; }

void advance_trace_slots(std::uint64_t slots) noexcept {
  context().slot += slots;
}

std::uint64_t trace_trial() noexcept { return context().trial; }
std::uint64_t trace_slot() noexcept { return context().slot; }

void trace_event(std::string_view name,
                 std::initializer_list<TraceAttr> attrs) {
  if (!full_enabled()) return;
  TraceWriter* writer = trace_writer();
  if (writer == nullptr) return;
  const TraceContext& ctx = context();
  std::string line = "{\"type\":\"event\",\"name\":";
  line += json_token(name);
  line += ",\"trial\":" + std::to_string(ctx.trial);
  line += ",\"slot\":" + std::to_string(ctx.slot);
  append_attrs(line, attrs);
  line += '}';
  writer->write_line(line);
}

ScopedSpan::ScopedSpan(std::string_view name) : name_(name) {
  if (!full_enabled() || trace_writer() == nullptr) return;
  active_ = true;
  trial_ = context().trial;
  slot_begin_ = context().slot;
}

void ScopedSpan::add(std::string_view key, std::string value) {
  if (!active_) return;
  attrs_ += ",\"";
  attrs_ += key;
  attrs_ += "\":";
  attrs_ += value;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  // The writer may have been cleared while the span was open; re-check.
  TraceWriter* writer = trace_writer();
  if (writer == nullptr) return;
  std::string line = "{\"type\":\"span\",\"name\":";
  line += json_token(name_);
  line += ",\"trial\":" + std::to_string(trial_);
  line += ",\"slot_begin\":" + std::to_string(slot_begin_);
  line += ",\"slot_end\":" + std::to_string(context().slot);
  line += attrs_;
  line += '}';
  writer->write_line(line);
}

}  // namespace pet::obs
