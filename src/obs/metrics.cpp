#include "obs/metrics.hpp"

#include <algorithm>
#include <memory>

#include "common/ensure.hpp"

namespace pet::obs {

std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::kOff:
      return "off";
    case Level::kCounters:
      return "counters";
    case Level::kFull:
      return "full";
  }
  return "off";
}

Level parse_level(std::string_view text) {
  if (text == "off") return Level::kOff;
  if (text == "counters") return Level::kCounters;
  if (text == "full") return Level::kFull;
  expects(false, "--obs must be one of off|counters|full");
  return Level::kOff;  // unreachable
}

namespace {
enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
}  // namespace

struct MetricsRegistry::Metric {
  std::string name;
  Kind kind = Kind::kCounter;
  Domain domain = Domain::kDeterministic;
  std::uint32_t first_cell = 0;  ///< counters/histograms: shard cell index
  std::uint32_t cell_count = 0;  ///< 1 for counters, bounds+1 for histograms
  std::uint32_t gauge_index = 0;
  // Stable address: handles keep a pointer to this vector across
  // registrations, so it lives on the heap, owned by the metric entry.
  std::unique_ptr<std::vector<double>> bounds;
};

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: pool workers can retire shards while statics are
  // being torn down, so the registry must outlive every thread.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

// Thread-local shard lifetime: the handle registers its shard on first use
// and folds it into the retired accumulator when the thread exits.
struct MetricsRegistry::ShardHandle {
  Shard shard;
  ShardHandle() {
    MetricsRegistry& reg = instance();
    const std::lock_guard<std::mutex> lock(reg.mutex_);
    reg.shards_.push_back(&shard);
  }
  ~ShardHandle() { instance().retire(&shard); }
};

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  thread_local ShardHandle handle;
  return handle.shard;
}

void MetricsRegistry::retire(Shard* shard) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < kMaxCells; ++i) {
    retired_[i] += shard->cells[i].load(std::memory_order_relaxed);
  }
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                shards_.end());
}

Counter MetricsRegistry::counter(std::string_view name, Domain domain) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Metric& m : metrics_) {
    if (m.name == name) {
      expects(m.kind == Kind::kCounter && m.domain == domain,
              "metric re-registered with a different kind or domain");
      return Counter(m.first_cell);
    }
  }
  expects(next_cell_ + 1 <= kMaxCells, "MetricsRegistry cell budget exhausted");
  Metric m;
  m.name = std::string(name);
  m.kind = Kind::kCounter;
  m.domain = domain;
  m.first_cell = next_cell_;
  m.cell_count = 1;
  next_cell_ += 1;
  metrics_.push_back(std::move(m));
  return Counter(metrics_.back().first_cell);
}

Gauge MetricsRegistry::gauge(std::string_view name, Domain domain) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Metric& m : metrics_) {
    if (m.name == name) {
      expects(m.kind == Kind::kGauge && m.domain == domain,
              "metric re-registered with a different kind or domain");
      return Gauge(m.gauge_index);
    }
  }
  Metric m;
  m.name = std::string(name);
  m.kind = Kind::kGauge;
  m.domain = domain;
  m.gauge_index = static_cast<std::uint32_t>(gauge_values_.size());
  gauge_values_.push_back(0.0);
  gauge_assigned_.push_back(false);
  metrics_.push_back(std::move(m));
  return Gauge(metrics_.back().gauge_index);
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds, Domain domain) {
  expects(!bounds.empty(), "histogram needs at least one bucket bound");
  expects(std::is_sorted(bounds.begin(), bounds.end()),
          "histogram bounds must be ascending");
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Metric& m : metrics_) {
    if (m.name == name) {
      expects(m.kind == Kind::kHistogram && m.domain == domain &&
                  *m.bounds == bounds,
              "metric re-registered with a different kind, domain, or bounds");
      return Histogram(m.first_cell, m.bounds.get());
    }
  }
  const auto cells = static_cast<std::uint32_t>(bounds.size() + 1);
  expects(next_cell_ + cells <= kMaxCells,
          "MetricsRegistry cell budget exhausted");
  Metric m;
  m.name = std::string(name);
  m.kind = Kind::kHistogram;
  m.domain = domain;
  m.first_cell = next_cell_;
  m.cell_count = cells;
  m.bounds = std::make_unique<std::vector<double>>(std::move(bounds));
  next_cell_ += cells;
  metrics_.push_back(std::move(m));
  return Histogram(metrics_.back().first_cell, metrics_.back().bounds.get());
}

void MetricsRegistry::set_gauge(std::uint32_t index, double value) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index >= gauge_values_.size()) return;
  gauge_values_[index] = value;
  gauge_assigned_[index] = true;
}

Snapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Fold retired totals plus every live shard into one cell array.
  std::array<std::uint64_t, kMaxCells> cells = retired_;
  for (const Shard* shard : shards_) {
    for (std::size_t i = 0; i < kMaxCells; ++i) {
      cells[i] += shard->cells[i].load(std::memory_order_relaxed);
    }
  }
  Snapshot out;
  for (const Metric& m : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
        out.counters.push_back({m.name, m.domain, cells[m.first_cell]});
        break;
      case Kind::kGauge:
        out.gauges.push_back({m.name, m.domain,
                              gauge_assigned_[m.gauge_index],
                              gauge_values_[m.gauge_index]});
        break;
      case Kind::kHistogram: {
        Snapshot::HistogramValue h;
        h.name = m.name;
        h.domain = m.domain;
        h.bounds = *m.bounds;
        h.counts.assign(cells.begin() + m.first_cell,
                        cells.begin() + m.first_cell + m.cell_count);
        out.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void MetricsRegistry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  retired_.fill(0);
  for (Shard* shard : shards_) {
    for (std::size_t i = 0; i < kMaxCells; ++i) {
      shard->cells[i].store(0, std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < gauge_values_.size(); ++i) {
    gauge_values_[i] = 0.0;
    gauge_assigned_[i] = false;
  }
}

std::size_t MetricsRegistry::metric_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

std::uint64_t Snapshot::counter(std::string_view name) const noexcept {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const Snapshot::HistogramValue* Snapshot::histogram(
    std::string_view name) const noexcept {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace pet::obs
