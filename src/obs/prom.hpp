// Prometheus text-exposition rendering of a metrics Snapshot
// (docs/observability.md).  This is the pull-less variant: petd writes the
// exposition to a file (--prom-out) on SIGUSR1 and on drain, and a node
// exporter's textfile collector (or a curl-less scrape job) picks it up.
//
// Mapping rules:
//   - metric names: dots and other non-[a-zA-Z0-9_] bytes become '_', and
//     a "pet_" prefix is prepended unless the name already starts with
//     "pet." (so "svc.req.accepted" -> "pet_svc_req_accepted" and
//     "pet.svc.pop.requests" -> "pet_svc_pop_requests" — one flat family).
//   - counters (both domains) render as untyped samples with
//     `# TYPE <name> counter`; unassigned gauges are skipped.
//   - histograms render the cumulative `<name>_bucket{le="..."}` series
//     plus the `le="+Inf"` bucket and `<name>_count` (no `_sum`: the
//     registry's fixed-bucket histograms do not track one).
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace pet::obs {

/// Render the whole snapshot as Prometheus text exposition (format 0.0.4).
[[nodiscard]] std::string prometheus_text(const Snapshot& snapshot);

/// Write `text` to `path` atomically: the content lands in `path + ".tmp"`
/// first and is renamed into place, so a concurrently-scraping reader
/// never observes a torn file.  Throws std::runtime_error on I/O failure.
void write_prometheus_file_atomic(const std::string& path,
                                  const std::string& text);

}  // namespace pet::obs
