#include "obs/prom.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "runtime/json.hpp"

namespace pet::obs {

namespace {

constexpr int kValuePrecision = 6;

std::string prom_name(const std::string& name) {
  std::string out;
  if (name.rfind("pet.", 0) != 0) out = "pet_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    out += keep ? c : '_';
  }
  return out;
}

void append_type(std::string& out, const std::string& name,
                 const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_text(const Snapshot& snapshot) {
  std::string out;
  for (const Snapshot::CounterValue& c : snapshot.counters) {
    const std::string name = prom_name(c.name);
    append_type(out, name, "counter");
    out += name;
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }
  for (const Snapshot::GaugeValue& g : snapshot.gauges) {
    if (!g.assigned) continue;
    const std::string name = prom_name(g.name);
    append_type(out, name, "gauge");
    out += name;
    out += ' ';
    out += runtime::json_number(g.value, kValuePrecision);
    out += '\n';
  }
  for (const Snapshot::HistogramValue& h : snapshot.histograms) {
    const std::string name = prom_name(h.name);
    append_type(out, name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += name;
      out += "_bucket{le=\"";
      out += runtime::json_number(h.bounds[i], kValuePrecision);
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    if (h.counts.size() > h.bounds.size()) {
      cumulative += h.counts.back();  // overflow bucket
    }
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(cumulative);
    out += '\n';
    out += name;
    out += "_count ";
    out += std::to_string(cumulative);
    out += '\n';
  }
  return out;
}

void write_prometheus_file_atomic(const std::string& path,
                                  const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) {
      throw std::runtime_error("obs: cannot open '" + tmp + "' for writing");
    }
    file << text;
    file.flush();
    if (!file) {
      throw std::runtime_error("obs: short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("obs: cannot rename '" + tmp + "' over '" +
                             path + "'");
  }
}

}  // namespace pet::obs
