// A tiny generic JSON reader used by tools/obscheck and the obs tests to
// validate emitted documents structurally.  (verify/benchjson stays the
// schema-aware parser for BENCH artifacts; this one is shape-agnostic.)
// Accepts strict JSON; throws std::runtime_error with an offset on error.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pet::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }

  /// Member lookup on objects; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace pet::obs
