// The repo's metric catalogue in one place.  Instrumented code pulls a
// bundle (function-local static: registered once, cheap handles after) and
// bumps handles behind a counters_enabled() guard:
//
//   if (obs::counters_enabled()) obs::sim_instruments().idle.add();
//
// Naming scheme (docs/observability.md): dot-separated lowercase,
// <subsystem>.<object>.<measure>.  Deterministic by default; anything
// scheduling- or time-dependent must register with Domain::kProfile.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace pet::obs {

/// sim::Medium slot loop: outcomes, responder census, link bits.
struct SimInstruments {
  Counter idle;          ///< sim.slot.idle
  Counter singleton;     ///< sim.slot.singleton
  Counter collision;     ///< sim.slot.collision
  Counter downlink_bits; ///< sim.downlink.bits
  Counter uplink_bits;   ///< sim.uplink.bits
  Histogram responders;  ///< sim.slot.responders (true transmitter count)
};

inline const SimInstruments& sim_instruments() {
  static const SimInstruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    SimInstruments b;
    b.idle = reg.counter("sim.slot.idle");
    b.singleton = reg.counter("sim.slot.singleton");
    b.collision = reg.counter("sim.slot.collision");
    b.downlink_bits = reg.counter("sim.downlink.bits");
    b.uplink_bits = reg.counter("sim.uplink.bits");
    b.responders = reg.histogram("sim.slot.responders",
                                 {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0});
    return b;
  }();
  return bundle;
}

/// sim::FaultModel: impairment activity and loss-chain dynamics.
struct FaultInstruments {
  Counter erased_replies;     ///< sim.fault.erased_replies
  Counter noise_busy_slots;   ///< sim.fault.noise_busy_slots
  Counter outage_slots;       ///< sim.fault.outage_slots
  Counter burst_slots;        ///< sim.fault.burst_slots (slots in bad state)
  Counter noise_slots;        ///< sim.fault.noise_slots (slots in noisy state)
  Counter burst_transitions;  ///< sim.fault.burst_transitions
  Counter noise_transitions;  ///< sim.fault.noise_transitions
  Counter churn_departed;     ///< sim.fault.churn_departed
  Counter churn_arrived;      ///< sim.fault.churn_arrived
  Counter captured_slots;     ///< sim.fault.captured_slots
};

inline const FaultInstruments& fault_instruments() {
  static const FaultInstruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    FaultInstruments b;
    b.erased_replies = reg.counter("sim.fault.erased_replies");
    b.noise_busy_slots = reg.counter("sim.fault.noise_busy_slots");
    b.outage_slots = reg.counter("sim.fault.outage_slots");
    b.burst_slots = reg.counter("sim.fault.burst_slots");
    b.noise_slots = reg.counter("sim.fault.noise_slots");
    b.burst_transitions = reg.counter("sim.fault.burst_transitions");
    b.noise_transitions = reg.counter("sim.fault.noise_transitions");
    b.churn_departed = reg.counter("sim.fault.churn_departed");
    b.churn_arrived = reg.counter("sim.fault.churn_arrived");
    b.captured_slots = reg.counter("sim.fault.captured_slots");
    return b;
  }();
  return bundle;
}

/// SlotLedger mirror: one naming scheme for the same totals the ledger
/// carries, bumped wherever a ledger mutates (Medium and the in-memory
/// channel backends; the multi-reader controller's *fused* ledger reports
/// separately as chan.fused.* to avoid double-counting its zone Mediums).
struct LedgerInstruments {
  Counter idle_slots;       ///< chan.ledger.idle_slots
  Counter singleton_slots;  ///< chan.ledger.singleton_slots
  Counter collision_slots;  ///< chan.ledger.collision_slots
  Counter retry_slots;      ///< chan.ledger.retry_slots
  Counter reader_bits;      ///< chan.ledger.reader_bits
  Counter tag_bits;         ///< chan.ledger.tag_bits
};

inline const LedgerInstruments& ledger_instruments() {
  static const LedgerInstruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    LedgerInstruments b;
    b.idle_slots = reg.counter("chan.ledger.idle_slots");
    b.singleton_slots = reg.counter("chan.ledger.singleton_slots");
    b.collision_slots = reg.counter("chan.ledger.collision_slots");
    b.retry_slots = reg.counter("chan.ledger.retry_slots");
    b.reader_bits = reg.counter("chan.ledger.reader_bits");
    b.tag_bits = reg.counter("chan.ledger.tag_bits");
    return b;
  }();
  return bundle;
}

/// Per-backend channel activity under chan.<backend>.*; each backend keeps
/// one function-local static bundle (exact/sorted/sampled/device/fused).
struct ChannelInstruments {
  Counter rounds;       ///< chan.<backend>.rounds (begin_round calls)
  Counter probe_slots;  ///< chan.<backend>.probe_slots (prefix queries)
  Counter frame_slots;  ///< chan.<backend>.frame_slots (framed-ALOHA slots)
  Counter busy_slots;   ///< chan.<backend>.busy_slots (non-idle outcomes)

  explicit ChannelInstruments(std::string_view backend) {
    MetricsRegistry& reg = MetricsRegistry::instance();
    const std::string prefix = "chan." + std::string(backend) + ".";
    rounds = reg.counter(prefix + "rounds");
    probe_slots = reg.counter(prefix + "probe_slots");
    frame_slots = reg.counter(prefix + "frame_slots");
    busy_slots = reg.counter(prefix + "busy_slots");
  }
};

/// Mirror one accounted slot into the chan.ledger.* counters (call only
/// under counters_enabled(); shared by the in-memory channel backends —
/// Medium-backed runs mirror from Medium::run_slot instead).
inline void record_ledger_slot(std::size_t responders, unsigned downlink_bits,
                               std::uint64_t tag_bits) {
  const LedgerInstruments& li = ledger_instruments();
  if (responders == 0) {
    li.idle_slots.add();
  } else if (responders == 1) {
    li.singleton_slots.add();
  } else {
    li.collision_slots.add();
  }
  li.reader_bits.add(downlink_bits);
  li.tag_bits.add(tag_bits);
}

/// SortedPetChannel construction — the per-trial re-keying hot path
/// (docs/performance.md).  builds/codes fold deterministically; everything
/// else describes *how* the most recent build ran (SIMD tier, partition
/// shape, phase timing), which depends on the host CPU, PET_SIMD, and the
/// configured build parallelism — Domain::kProfile by the usual rule.
struct BuildInstruments {
  Counter builds;            ///< pet.build.builds (channel (re)builds)
  Counter codes;             ///< pet.build.codes (codes hashed + sorted)
  Gauge simd_lanes;          ///< pet.build.simd_lanes (profile: 1/2/4/8)
  Gauge partition_workers;   ///< pet.build.partition_workers (profile)
  Gauge partition_buckets;   ///< pet.build.partition_buckets (profile)
  Gauge bucket_skew_milli;   ///< pet.build.bucket_skew_milli (profile:
                             ///  1000 * max_bucket / mean_bucket)
  Counter hash_us;           ///< pet.build.hash_us (profile phase split)
  Counter sort_us;           ///< pet.build.sort_us (profile phase split)
};

inline const BuildInstruments& build_instruments() {
  static const BuildInstruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    BuildInstruments b;
    b.builds = reg.counter("pet.build.builds");
    b.codes = reg.counter("pet.build.codes");
    b.simd_lanes = reg.gauge("pet.build.simd_lanes", Domain::kProfile);
    b.partition_workers =
        reg.gauge("pet.build.partition_workers", Domain::kProfile);
    b.partition_buckets =
        reg.gauge("pet.build.partition_buckets", Domain::kProfile);
    b.bucket_skew_milli =
        reg.gauge("pet.build.bucket_skew_milli", Domain::kProfile);
    b.hash_us = reg.counter("pet.build.hash_us", Domain::kProfile);
    b.sort_us = reg.counter("pet.build.sort_us", Domain::kProfile);
    return b;
  }();
  return bundle;
}

/// pet::gen2 MAC layer: slot-outcome splits as the Gen2 reader decodes
/// them, Select/Query command census, Q-adaptation trajectory, and session
/// inventoried-flag dynamics.  `q_last` tracks whatever frame finished most
/// recently, which under the parallel trial engine depends on scheduling —
/// hence Domain::kProfile; everything else folds deterministically.
struct Gen2Instruments {
  Counter idle_slots;        ///< gen2.slot.idle
  Counter singleton_slots;   ///< gen2.slot.singleton
  Counter collision_slots;   ///< gen2.slot.collision
  Counter captured_slots;    ///< gen2.slot.captured
  Counter false_busy_slots;  ///< gen2.slot.false_busy
  Counter select_commands;   ///< gen2.select.commands
  Counter select_bits;       ///< gen2.select.bits
  Counter query_commands;    ///< gen2.query.commands (Query + QueryRep)
  Counter query_adjusts;     ///< gen2.query.adjusts (QueryAdjust commands)
  Counter session_flips;     ///< gen2.session.flips (A<->B transitions)
  Counter session_decays;    ///< gen2.session.decays (S1 timer expiries)
  Histogram q_values;        ///< gen2.query.q (Q issued per Query/Adjust)
  Gauge q_last;              ///< gen2.query.q_last (profile: latest Q)
};

inline const Gen2Instruments& gen2_instruments() {
  static const Gen2Instruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    Gen2Instruments b;
    b.idle_slots = reg.counter("gen2.slot.idle");
    b.singleton_slots = reg.counter("gen2.slot.singleton");
    b.collision_slots = reg.counter("gen2.slot.collision");
    b.captured_slots = reg.counter("gen2.slot.captured");
    b.false_busy_slots = reg.counter("gen2.slot.false_busy");
    b.select_commands = reg.counter("gen2.select.commands");
    b.select_bits = reg.counter("gen2.select.bits");
    b.query_commands = reg.counter("gen2.query.commands");
    b.query_adjusts = reg.counter("gen2.query.adjusts");
    b.session_flips = reg.counter("gen2.session.flips");
    b.session_decays = reg.counter("gen2.session.decays");
    b.q_values = reg.histogram("gen2.query.q",
                               {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 15.0});
    b.q_last = reg.gauge("gen2.query.q_last", Domain::kProfile);
    return b;
  }();
  return bundle;
}

/// core::RobustPetEstimator: voting re-reads, health verdicts, widenings.
struct RobustInstruments {
  Counter estimates;          ///< core.robust.estimates
  Counter reread_slots;       ///< core.robust.reread_slots
  Counter overturned_probes;  ///< core.robust.overturned_probes
  Counter budget_exhausted;   ///< core.robust.budget_exhausted
  Counter health_healthy;     ///< core.robust.health.healthy
  Counter health_degraded;    ///< core.robust.health.degraded
  Counter health_at_risk;     ///< core.robust.health.at_risk
  Counter ci_widened;         ///< core.robust.ci_widened
  Histogram widening;         ///< core.robust.widening (CI widening factor)
};

inline const RobustInstruments& robust_instruments() {
  static const RobustInstruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    RobustInstruments b;
    b.estimates = reg.counter("core.robust.estimates");
    b.reread_slots = reg.counter("core.robust.reread_slots");
    b.overturned_probes = reg.counter("core.robust.overturned_probes");
    b.budget_exhausted = reg.counter("core.robust.budget_exhausted");
    b.health_healthy = reg.counter("core.robust.health.healthy");
    b.health_degraded = reg.counter("core.robust.health.degraded");
    b.health_at_risk = reg.counter("core.robust.health.at_risk");
    b.ci_widened = reg.counter("core.robust.ci_widened");
    b.widening = reg.histogram("core.robust.widening",
                               {1.0, 1.1, 1.25, 1.5, 2.0, 3.0});
    return b;
  }();
  return bundle;
}

/// pet::svc (petd) request lifecycle: admission, shedding, retries,
/// degradation, framing hygiene.  Queue depth and latency depend on wall
/// clock and scheduling, so they live in Domain::kProfile; the lifecycle
/// counters are deterministic given the request stream.
struct SvcInstruments {
  Counter req_accepted;     ///< svc.req.accepted
  Counter req_completed;    ///< svc.req.completed
  Counter req_shed;         ///< svc.req.shed (RESOURCE_EXHAUSTED responses)
  Counter req_rejected;     ///< svc.req.rejected (typed non-shed errors)
  Counter req_degraded;     ///< svc.req.degraded (best-effort replies)
  Counter deadline_misses;  ///< svc.deadline.misses (truncated round loops)
  Counter retry_attempts;   ///< svc.retry.attempts
  Counter retry_backoff_slots;  ///< svc.retry.backoff_slots
  Counter retry_exhausted;  ///< svc.retry.exhausted (UNAVAILABLE responses)
  Counter frame_malformed;  ///< svc.frame.malformed (decode/parse errors)
  Counter frame_version_skew;  ///< svc.frame.version_skew
  Gauge queue_depth;        ///< svc.queue.depth (profile: inflight requests)
  Histogram latency_us;     ///< svc.req.latency_us (profile: wall clock)
};

inline const SvcInstruments& svc_instruments() {
  static const SvcInstruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    SvcInstruments b;
    b.req_accepted = reg.counter("svc.req.accepted");
    b.req_completed = reg.counter("svc.req.completed");
    b.req_shed = reg.counter("svc.req.shed");
    b.req_rejected = reg.counter("svc.req.rejected");
    b.req_degraded = reg.counter("svc.req.degraded");
    b.deadline_misses = reg.counter("svc.deadline.misses");
    b.retry_attempts = reg.counter("svc.retry.attempts");
    b.retry_backoff_slots = reg.counter("svc.retry.backoff_slots");
    b.retry_exhausted = reg.counter("svc.retry.exhausted");
    b.frame_malformed = reg.counter("svc.frame.malformed");
    b.frame_version_skew = reg.counter("svc.frame.version_skew");
    b.queue_depth = reg.gauge("svc.queue.depth", Domain::kProfile);
    b.latency_us = reg.histogram(
        "svc.req.latency_us",
        {100.0, 1000.0, 5000.0, 20000.0, 100000.0, 1000000.0},
        Domain::kProfile);
    return b;
  }();
  return bundle;
}

/// Slot-unit latency bounds shared by the pet.svc.pop.latency_slots
/// histogram below and the service's per-population aggregates
/// (svc::PopulationStats) — one histogram shape on both sides of the wire
/// export, in the deterministic domain (slots, not wall time).
inline constexpr std::array<double, 7> kSvcLatencySlotBounds = {
    0.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0};

/// Aggregate over every population the service has handled (the registry's
/// per-entry cells are the per-population breakdown; this bundle is the
/// obs-registry mirror that rides along in pet.obs.v1 documents and BENCH
/// "metrics" members).  Slot-unit and event-count cells only, so the whole
/// bundle is deterministic at any worker_threads.
struct SvcPopInstruments {
  Counter requests;        ///< pet.svc.pop.requests
  Counter ok;              ///< pet.svc.pop.ok
  Counter degraded;        ///< pet.svc.pop.degraded
  Counter truncated;       ///< pet.svc.pop.truncated
  Counter errors;          ///< pet.svc.pop.errors
  Counter shed;            ///< pet.svc.pop.shed
  Counter deadline_misses; ///< pet.svc.pop.deadline_misses
  Counter retries;         ///< pet.svc.pop.retries
  Counter backoff_slots;   ///< pet.svc.pop.backoff_slots
  Counter query_slots;     ///< pet.svc.pop.query_slots
  Counter rounds;          ///< pet.svc.pop.rounds
  Counter rounds_planned;  ///< pet.svc.pop.rounds_planned
  Counter cache_hits;      ///< pet.svc.pop.cache_hits
  Histogram latency_slots; ///< pet.svc.pop.latency_slots (deterministic)
};

inline const SvcPopInstruments& svc_pop_instruments() {
  static const SvcPopInstruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    SvcPopInstruments b;
    b.requests = reg.counter("pet.svc.pop.requests");
    b.ok = reg.counter("pet.svc.pop.ok");
    b.degraded = reg.counter("pet.svc.pop.degraded");
    b.truncated = reg.counter("pet.svc.pop.truncated");
    b.errors = reg.counter("pet.svc.pop.errors");
    b.shed = reg.counter("pet.svc.pop.shed");
    b.deadline_misses = reg.counter("pet.svc.pop.deadline_misses");
    b.retries = reg.counter("pet.svc.pop.retries");
    b.backoff_slots = reg.counter("pet.svc.pop.backoff_slots");
    b.query_slots = reg.counter("pet.svc.pop.query_slots");
    b.rounds = reg.counter("pet.svc.pop.rounds");
    b.rounds_planned = reg.counter("pet.svc.pop.rounds_planned");
    b.cache_hits = reg.counter("pet.svc.pop.cache_hits");
    b.latency_slots = reg.histogram(
        "pet.svc.pop.latency_slots",
        std::vector<double>(kSvcLatencySlotBounds.begin(),
                            kSvcLatencySlotBounds.end()));
    return b;
  }();
  return bundle;
}

/// svc::ResultCache in front of the estimation shards: hit/miss/eviction
/// traffic and resident size.  Hits, misses, and evictions are pure
/// functions of the request script (the cache is keyed on deterministic
/// request content), so the counters stay in the default domain; bytes is a
/// point-in-time residency gauge and is deterministic for the same reason,
/// but note that ANY cache counter differs between cache-on and cache-off
/// runs — the cross-configuration byte-identity contract covers response
/// frames and registry folds, not this bundle (docs/service.md).
struct SvcCacheInstruments {
  Counter hits;       ///< pet.svc.cache.hits
  Counter misses;     ///< pet.svc.cache.misses
  Counter evictions;  ///< pet.svc.cache.evictions
  Gauge bytes;        ///< pet.svc.cache.bytes (resident payload + overhead)
};

inline const SvcCacheInstruments& svc_cache_instruments() {
  static const SvcCacheInstruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    SvcCacheInstruments b;
    b.hits = reg.counter("pet.svc.cache.hits");
    b.misses = reg.counter("pet.svc.cache.misses");
    b.evictions = reg.counter("pet.svc.cache.evictions");
    b.bytes = reg.gauge("pet.svc.cache.bytes");
    return b;
  }();
  return bundle;
}

/// Population-affine shard plane (svc::ShardSet): admission pressure and
/// scheduling behaviour.  Everything here depends on which shard a request
/// lands on — a function of the configured shard *count* — or on thread
/// interleaving, so the whole bundle is Domain::kProfile: the deterministic
/// export must stay byte-identical at shards 1/2/8.
struct SvcShardInstruments {
  Gauge depth;    ///< pet.svc.shard.depth (deepest per-shard inflight)
  Counter shed;   ///< pet.svc.shard.shed (admission sheds charged per shard)
  Gauge steal;    ///< pet.svc.shard.steal (tasks stolen inside shard pools)
};

inline const SvcShardInstruments& svc_shard_instruments() {
  static const SvcShardInstruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    SvcShardInstruments b;
    b.depth = reg.gauge("pet.svc.shard.depth", Domain::kProfile);
    b.shed = reg.counter("pet.svc.shard.shed", Domain::kProfile);
    b.steal = reg.gauge("pet.svc.shard.steal", Domain::kProfile);
    return b;
  }();
  return bundle;
}

/// Transport-side connection hygiene reported by the petd accept loop:
/// session lifetimes, frame/byte volumes, decoder resyncs.  Byte and frame
/// counts depend on what clients send, so they are deterministic only for
/// a scripted client; they stay in the default domain because they carry
/// no timing.
struct SvcConnInstruments {
  Counter opened;     ///< pet.svc.conn.opened
  Counter closed;     ///< pet.svc.conn.closed
  Counter frames_rx;  ///< pet.svc.conn.frames_rx
  Counter frames_tx;  ///< pet.svc.conn.frames_tx
  Counter bytes_rx;   ///< pet.svc.conn.bytes_rx
  Counter bytes_tx;   ///< pet.svc.conn.bytes_tx
  Counter resyncs;    ///< pet.svc.conn.resyncs (decoder recoveries)
};

inline const SvcConnInstruments& svc_conn_instruments() {
  static const SvcConnInstruments bundle = [] {
    MetricsRegistry& reg = MetricsRegistry::instance();
    SvcConnInstruments b;
    b.opened = reg.counter("pet.svc.conn.opened");
    b.closed = reg.counter("pet.svc.conn.closed");
    b.frames_rx = reg.counter("pet.svc.conn.frames_rx");
    b.frames_tx = reg.counter("pet.svc.conn.frames_tx");
    b.bytes_rx = reg.counter("pet.svc.conn.bytes_rx");
    b.bytes_tx = reg.counter("pet.svc.conn.bytes_tx");
    b.resyncs = reg.counter("pet.svc.conn.resyncs");
    return b;
  }();
  return bundle;
}

}  // namespace pet::obs
