// pet::obs — the observability subsystem: a process-wide MetricsRegistry of
// named counters, gauges, and fixed-bucket histograms (docs/observability.md).
//
// Design constraints, in priority order:
//
//  1. **Determinism.**  Counters and histogram buckets are unsigned integer
//     sums of per-event contributions.  Integer addition is commutative and
//     associative, so the merged totals are identical for any thread count
//     and any scheduling order — enabling metrics can never perturb (or be
//     perturbed by) the TrialRunner bit-identity contract.  Anything that is
//     *not* scheduling-invariant (wall/CPU time, pool queue behaviour) is
//     quarantined in the `profile` domain and must never be compared against
//     goldens (docs/observability.md spells out the rules).
//  2. **Near-zero disabled cost.**  Every instrumentation site guards on one
//     relaxed atomic load of the global level (`counters_enabled()`); with
//     observability disabled the hot path pays a single predictable branch.
//     Compiling with -DPET_OBS_DISABLED (CMake option PET_OBS=OFF) removes
//     even that.
//  3. **Thread safety without locks on the hot path.**  Each thread owns a
//     fixed-size shard of relaxed atomic cells; registration and snapshot
//     take the registry mutex, increments never do.  Shards of exited
//     threads are folded into a retired accumulator so no count is lost.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#if defined(PET_OBS_DISABLED)
#define PET_OBS_COMPILED 0
#else
#define PET_OBS_COMPILED 1
#endif

namespace pet::obs {

/// Global observability level: kOff records nothing, kCounters activates
/// the metrics registry, kFull additionally enables span/event tracing.
enum class Level : std::uint8_t { kOff = 0, kCounters = 1, kFull = 2 };

[[nodiscard]] std::string_view to_string(Level level) noexcept;

/// Parse "off" | "counters" | "full"; throws PreconditionError otherwise.
[[nodiscard]] Level parse_level(std::string_view text);

namespace detail {
inline std::atomic<std::uint8_t> g_level{0};
}  // namespace detail

inline void set_level(Level level) noexcept {
  detail::g_level.store(static_cast<std::uint8_t>(level),
                        std::memory_order_relaxed);
}
[[nodiscard]] inline Level level() noexcept {
  return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}
/// The one branch every instrumentation site pays when observability is off.
[[nodiscard]] inline bool counters_enabled() noexcept {
#if PET_OBS_COMPILED
  return detail::g_level.load(std::memory_order_relaxed) >=
         static_cast<std::uint8_t>(Level::kCounters);
#else
  return false;
#endif
}
[[nodiscard]] inline bool full_enabled() noexcept {
#if PET_OBS_COMPILED
  return detail::g_level.load(std::memory_order_relaxed) >=
         static_cast<std::uint8_t>(Level::kFull);
#else
  return false;
#endif
}

/// Raw level byte for call sites that snapshot the level at a coarse
/// boundary (a channel's begin_round) and branch on the cached byte in
/// per-slot code: one plain load instead of an atomic load per slot, which
/// is what keeps the disabled hot path within the <= 2% overhead budget
/// (bench/micro_ops BM_PetRoundObsOff).  Level changes take effect at the
/// next boundary, never mid-round.  Always 0 when compiled out, so the
/// cached-byte guards below constant-fold away under PET_OBS=OFF.
[[nodiscard]] inline std::uint8_t level_byte() noexcept {
#if PET_OBS_COMPILED
  return detail::g_level.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}
[[nodiscard]] constexpr bool counters_enabled(std::uint8_t cached) noexcept {
  return cached >= static_cast<std::uint8_t>(Level::kCounters);
}
[[nodiscard]] constexpr bool full_enabled(std::uint8_t cached) noexcept {
  return cached >= static_cast<std::uint8_t>(Level::kFull);
}

/// Which export section a metric belongs to.  kDeterministic values are
/// scheduling-invariant and may be diffed against goldens; kProfile values
/// (timings, pool behaviour) are run descriptions and must not be.
enum class Domain : std::uint8_t { kDeterministic = 0, kProfile = 1 };

class MetricsRegistry;

/// Cheap copyable handle to a registered counter.  A default-constructed
/// handle is inert (add() is a no-op) so static bundles stay safe even if
/// registration is skipped in PET_OBS_DISABLED builds.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t delta = 1) const noexcept;

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint32_t slot) noexcept : slot_(slot) {}
  std::uint32_t slot_ = UINT32_MAX;
};

/// Last-write-wins scalar.  Gauges are registry-level (not sharded), so a
/// gauge that should stay deterministic must only be set from serial code —
/// see the determinism rules in docs/observability.md.
class Gauge {
 public:
  Gauge() = default;
  inline void set(double value) const noexcept;

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::uint32_t index) noexcept : index_(index) {}
  std::uint32_t index_ = UINT32_MAX;
};

/// Fixed-bucket histogram: `bounds` are ascending upper bounds (value v
/// lands in the first bucket with v <= bound; values beyond the last bound
/// land in the overflow bucket), so counts has bounds.size() + 1 entries.
class Histogram {
 public:
  Histogram() = default;
  inline void observe(double value) const noexcept;

 private:
  friend class MetricsRegistry;
  Histogram(std::uint32_t first_slot, const std::vector<double>* bounds) noexcept
      : first_slot_(first_slot), bounds_(bounds) {}
  std::uint32_t first_slot_ = UINT32_MAX;
  const std::vector<double>* bounds_ = nullptr;
};

/// Merged point-in-time view of the registry, deterministic iff every
/// contribution was (see Domain).  Metrics are sorted by name so the JSON
/// rendering is byte-stable.
struct Snapshot {
  struct CounterValue {
    std::string name;
    Domain domain = Domain::kDeterministic;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    Domain domain = Domain::kDeterministic;
    bool assigned = false;  ///< set() called at least once
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    Domain domain = Domain::kDeterministic;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
    [[nodiscard]] std::uint64_t total() const noexcept {
      std::uint64_t sum = 0;
      for (const std::uint64_t c : counts) sum += c;
      return sum;
    }
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Counter value by name; 0 when absent (convenience for tests/tools).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  [[nodiscard]] const HistogramValue* histogram(
      std::string_view name) const noexcept;
};

/// The process-wide registry.  Registration is idempotent by name (the
/// same name + kind returns the same handle; a kind or shape mismatch
/// throws), so instrumentation sites can use function-local statics.
class MetricsRegistry {
 public:
  /// Shard capacity: counters take one cell, histograms bounds+1 cells.
  /// The repo registers a few dozen metrics; 1024 leaves generous headroom
  /// while keeping per-thread shards one fixed 8 KiB block.
  static constexpr std::size_t kMaxCells = 1024;

  /// The process-wide instance (intentionally leaked: worker threads may
  /// retire shards during static destruction).
  [[nodiscard]] static MetricsRegistry& instance();

  [[nodiscard]] Counter counter(std::string_view name,
                                Domain domain = Domain::kDeterministic);
  [[nodiscard]] Gauge gauge(std::string_view name,
                            Domain domain = Domain::kDeterministic);
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::vector<double> bounds,
                                    Domain domain = Domain::kDeterministic);

  /// Merge every live shard plus the retired accumulator into totals.
  /// Safe to call concurrently with increments (relaxed reads; an in-flight
  /// increment lands in this snapshot or the next).
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every cell and unset every gauge.  Intended for quiescent points
  /// (test setup, between petsim phases); concurrent increments may survive.
  void reset() noexcept;

  /// Registered metric count (tests).
  [[nodiscard]] std::size_t metric_count() const;

  // -- internal: shard plumbing (public for the inline hot path) ----------
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCells> cells{};
  };
  [[nodiscard]] static Shard& local_shard();
  void set_gauge(std::uint32_t index, double value) noexcept;

 private:
  MetricsRegistry() = default;
  ~MetricsRegistry() = default;

  struct Metric;
  void retire(Shard* shard) noexcept;
  struct ShardHandle;

  mutable std::mutex mutex_;
  std::vector<Metric> metrics_;
  std::vector<Shard*> shards_;
  std::array<std::uint64_t, kMaxCells> retired_{};
  std::vector<double> gauge_values_;  // guarded by mutex_ (gauges are rare)
  std::vector<bool> gauge_assigned_;
  std::uint32_t next_cell_ = 0;
};

inline void Counter::add(std::uint64_t delta) const noexcept {
#if PET_OBS_COMPILED
  if (slot_ == UINT32_MAX) return;
  MetricsRegistry::local_shard().cells[slot_].fetch_add(
      delta, std::memory_order_relaxed);
#else
  (void)delta;
#endif
}

inline void Gauge::set(double value) const noexcept {
#if PET_OBS_COMPILED
  if (index_ == UINT32_MAX) return;
  MetricsRegistry::instance().set_gauge(index_, value);
#else
  (void)value;
#endif
}

inline void Histogram::observe(double value) const noexcept {
#if PET_OBS_COMPILED
  if (bounds_ == nullptr) return;
  std::uint32_t bucket = 0;
  while (bucket < bounds_->size() && value > (*bounds_)[bucket]) ++bucket;
  MetricsRegistry::local_shard().cells[first_slot_ + bucket].fetch_add(
      1, std::memory_order_relaxed);
#else
  (void)value;
#endif
}

}  // namespace pet::obs
