#include "obs/export.hpp"

#include <fstream>
#include <stdexcept>

#include "runtime/json.hpp"

namespace pet::obs {

namespace {

using runtime::json_escape;
using runtime::json_number;

// Gauge/bound values keep more precision than the default 3 digits so the
// document round-trips typical rates and time-like values faithfully.
constexpr int kGaugePrecision = 6;

void append_key(std::string& out, const std::string& name, bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += json_escape(name);
  out += "\":";
}

template <typename Predicate>
std::string counters_object(const Snapshot& snapshot, Predicate keep) {
  std::string out = "{";
  bool first = true;
  for (const Snapshot::CounterValue& c : snapshot.counters) {
    if (!keep(c.domain)) continue;
    append_key(out, c.name, first);
    out += std::to_string(c.value);
  }
  out += "}";
  return out;
}

template <typename Predicate>
std::string gauges_object(const Snapshot& snapshot, Predicate keep) {
  std::string out = "{";
  bool first = true;
  for (const Snapshot::GaugeValue& g : snapshot.gauges) {
    if (!keep(g.domain) || !g.assigned) continue;
    append_key(out, g.name, first);
    out += json_number(g.value, kGaugePrecision);
  }
  out += "}";
  return out;
}

template <typename Predicate>
std::string histograms_object(const Snapshot& snapshot, Predicate keep) {
  std::string out = "{";
  bool first = true;
  for (const Snapshot::HistogramValue& h : snapshot.histograms) {
    if (!keep(h.domain)) continue;
    append_key(out, h.name, first);
    out += "{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out += ",";
      out += json_number(h.bounds[i], kGaugePrecision);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(h.counts[i]);
    }
    out += "]}";
  }
  out += "}";
  return out;
}

std::string phases_array(const std::vector<PhaseProfiler::Phase>& phases) {
  std::string out = "[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseProfiler::Phase& p = phases[i];
    if (i != 0) out += ",";
    const double rate = p.wall_seconds > 0.0
                            ? static_cast<double>(p.slots) / p.wall_seconds
                            : 0.0;
    out += "{\"name\":\"";
    out += json_escape(p.name);
    out += "\"";
    out += ",\"wall_seconds\":" + json_number(p.wall_seconds, 6);
    out += ",\"cpu_seconds\":" + json_number(p.cpu_seconds, 6);
    out += ",\"slots\":" + std::to_string(p.slots);
    out += ",\"slots_per_second\":" + json_number(rate, 1);
    out += "}";
  }
  out += "]";
  return out;
}

std::string pool_object(const PoolSample& pool) {
  std::string out = "{\"threads\":" + std::to_string(pool.threads);
  out += ",\"submitted\":" + std::to_string(pool.submitted);
  out += ",\"stolen\":" + std::to_string(pool.stolen);
  out += ",\"max_queue_depth\":" + std::to_string(pool.max_queue_depth);
  out += ",\"worker_tasks\":[";
  for (std::size_t i = 0; i < pool.worker_tasks.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(pool.worker_tasks[i]);
  }
  out += "]}";
  return out;
}

}  // namespace

std::string deterministic_json(const Snapshot& snapshot) {
  const auto deterministic = [](Domain d) {
    return d == Domain::kDeterministic;
  };
  std::string out = "\"counters\":" + counters_object(snapshot, deterministic);
  out += ",\"gauges\":" + gauges_object(snapshot, deterministic);
  out += ",\"histograms\":" + histograms_object(snapshot, deterministic);
  return out;
}

std::string metrics_json(const Snapshot& snapshot,
                         const std::vector<PhaseProfiler::Phase>& phases,
                         const std::optional<PoolSample>& pool,
                         const std::string& extra_members) {
  const auto profile = [](Domain d) { return d == Domain::kProfile; };
  std::string out = "{\"schema\":\"pet.obs.v1\"";
  out += ",\"level\":\"";
  out += to_string(level());
  out += "\",";
  out += deterministic_json(snapshot);
  out += ",\"profile\":{";
  out += "\"counters\":" + counters_object(snapshot, profile);
  out += ",\"gauges\":" + gauges_object(snapshot, profile);
  out += ",\"phases\":" + phases_array(phases);
  if (pool.has_value()) out += ",\"pool\":" + pool_object(*pool);
  out += "}";
  if (!extra_members.empty()) {
    out += ',';
    out += extra_members;
  }
  out += "}";
  return out;
}

void write_metrics_file(const std::string& path,
                        const std::vector<PhaseProfiler::Phase>& phases,
                        const std::optional<PoolSample>& pool) {
  const std::string doc =
      metrics_json(MetricsRegistry::instance().snapshot(), phases, pool);
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("obs: cannot open '" + path + "' for writing");
  }
  file << doc << '\n';
  if (!file) {
    throw std::runtime_error("obs: short write to '" + path + "'");
  }
}

}  // namespace pet::obs
