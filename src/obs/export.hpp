// Rendering of the pet.obs.v1 metrics document (docs/observability.md):
//
//   {
//     "schema": "pet.obs.v1",
//     "level": "counters",
//     "counters":   { "<name>": <u64>, ... },          // deterministic
//     "gauges":     { "<name>": <number>, ... },       // deterministic
//     "histograms": { "<name>": {"bounds": [...], "counts": [...]}, ... },
//     "profile": {                                     // NOT deterministic
//       "counters": {...}, "gauges": {...},
//       "phases": [ {"name": ..., "wall_seconds": ..., "cpu_seconds": ...,
//                    "slots": ..., "slots_per_second": ...}, ... ],
//       "pool": {"threads": ..., "submitted": ..., "stolen": ...,
//                "max_queue_depth": ..., "worker_tasks": [...]}
//     }
//   }
//
// Everything above "profile" is sorted by name and scheduling-invariant:
// runtime_test asserts byte-identity of `deterministic_json` across thread
// counts.  The profile section is descriptive and excluded from all diffs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace pet::obs {

/// Thread-pool behaviour sampled after a run (source: runtime::ThreadPool
/// stats; kept as a plain struct so obs does not depend on the pool type).
struct PoolSample {
  unsigned threads = 0;
  std::uint64_t submitted = 0;
  std::uint64_t stolen = 0;
  std::uint64_t max_queue_depth = 0;
  std::vector<std::uint64_t> worker_tasks;  ///< tasks executed per worker
};

/// The deterministic sections only ("counters"/"gauges"/"histograms"
/// object fragments, no profile) — the string compared across thread
/// counts in tests.
[[nodiscard]] std::string deterministic_json(const Snapshot& snapshot);

/// The full document.  `phases`/`pool` extend the profile section; either
/// may be empty/absent.  `extra_members` is a pre-rendered `"key":value`
/// fragment appended as top-level members after "profile" (the service
/// layer injects its "service" member this way so obs stays below svc in
/// the dependency graph); empty means none.
[[nodiscard]] std::string metrics_json(
    const Snapshot& snapshot,
    const std::vector<PhaseProfiler::Phase>& phases = {},
    const std::optional<PoolSample>& pool = std::nullopt,
    const std::string& extra_members = {});

/// Convenience: snapshot the global registry, render, and write to `path`.
/// Throws std::runtime_error when the file cannot be written.
void write_metrics_file(const std::string& path,
                        const std::vector<PhaseProfiler::Phase>& phases = {},
                        const std::optional<PoolSample>& pool = std::nullopt);

}  // namespace pet::obs
