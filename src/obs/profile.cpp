#include "obs/profile.hpp"

#include <atomic>
#include <ctime>
#include <utility>

namespace pet::obs {

namespace {

std::atomic<double>& sweep_phase_total(SweepPhase phase) noexcept {
  static std::atomic<double> build{0.0};
  static std::atomic<double> estimate{0.0};
  return phase == SweepPhase::kBuild ? build : estimate;
}

}  // namespace

void add_sweep_phase_seconds(SweepPhase phase, double seconds) noexcept {
  sweep_phase_total(phase).fetch_add(seconds, std::memory_order_relaxed);
}

double sweep_phase_seconds(SweepPhase phase) noexcept {
  return sweep_phase_total(phase).load(std::memory_order_relaxed);
}

void reset_sweep_phase_seconds() noexcept {
  sweep_phase_total(SweepPhase::kBuild).store(0.0, std::memory_order_relaxed);
  sweep_phase_total(SweepPhase::kEstimate)
      .store(0.0, std::memory_order_relaxed);
}

double PhaseProfiler::process_cpu_seconds() noexcept {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

PhaseProfiler::Scope::Scope(PhaseProfiler& profiler, std::string name)
    : profiler_(profiler),
      name_(std::move(name)),
      wall_begin_(std::chrono::steady_clock::now()),
      cpu_begin_(process_cpu_seconds()) {}

PhaseProfiler::Scope::~Scope() {
  Phase phase;
  phase.name = std::move(name_);
  phase.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin_)
          .count();
  phase.cpu_seconds = process_cpu_seconds() - cpu_begin_;
  phase.slots = slots_;
  profiler_.record(std::move(phase));
}

void PhaseProfiler::record(Phase phase) {
  for (Phase& existing : phases_) {
    if (existing.name == phase.name) {
      existing.wall_seconds += phase.wall_seconds;
      existing.cpu_seconds += phase.cpu_seconds;
      existing.slots += phase.slots;
      return;
    }
  }
  phases_.push_back(std::move(phase));
}

}  // namespace pet::obs
