#include "obs/jsonlite.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace pet::obs {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("jsonlite: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The emitters only escape control characters, so a one-byte
          // decode covers everything this repo writes; other code points
          // pass through as UTF-8 of the low byte.
          out += static_cast<char>(code & 0xFF);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const auto [ptr, ec] = std::from_chars(text_.data() + begin,
                                           text_.data() + pos_, v.number);
    if (ec != std::errc() || ptr != text_.data() + pos_) fail("bad number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace pet::obs
