// Self-profiling: per-phase wall/CPU time and slots-per-second throughput.
// Everything here is a *description of the run* (it depends on the machine
// and the scheduler), so it is exported only under the "profile" key of the
// metrics document and must never feed a deterministic aggregate or golden
// comparison (docs/observability.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pet::obs {

/// Accumulates named phases.  Not thread-safe: profile one from the
/// coordinating thread (petsim's command driver, a bench main).
class PhaseProfiler {
 public:
  struct Phase {
    std::string name;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;  ///< process CPU time (all threads)
    std::uint64_t slots = 0;   ///< simulated slots attributed to the phase
  };

  /// RAII scope: measures wall/CPU between construction and destruction
  /// and folds the result into the profiler (same-name phases merge).
  class Scope {
   public:
    Scope(PhaseProfiler& profiler, std::string name);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Attribute simulated slots to this phase (for slots/second).
    void add_slots(std::uint64_t slots) noexcept { slots_ += slots; }

   private:
    PhaseProfiler& profiler_;
    std::string name_;
    std::chrono::steady_clock::time_point wall_begin_;
    double cpu_begin_ = 0.0;
    std::uint64_t slots_ = 0;
  };

  void record(Phase phase);
  [[nodiscard]] const std::vector<Phase>& phases() const noexcept {
    return phases_;
  }

  /// Process CPU time in seconds (CLOCK_PROCESS_CPUTIME_ID when available,
  /// std::clock otherwise).
  [[nodiscard]] static double process_cpu_seconds() noexcept;

 private:
  std::vector<Phase> phases_;
};

}  // namespace pet::obs
