// Self-profiling: per-phase wall/CPU time and slots-per-second throughput.
// Everything here is a *description of the run* (it depends on the machine
// and the scheduler), so it is exported only under the "profile" key of the
// metrics document and must never feed a deterministic aggregate or golden
// comparison (docs/observability.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pet::obs {

/// Accumulates named phases.  Not thread-safe: profile one from the
/// coordinating thread (petsim's command driver, a bench main).
class PhaseProfiler {
 public:
  struct Phase {
    std::string name;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;  ///< process CPU time (all threads)
    std::uint64_t slots = 0;   ///< simulated slots attributed to the phase
  };

  /// RAII scope: measures wall/CPU between construction and destruction
  /// and folds the result into the profiler (same-name phases merge).
  class Scope {
   public:
    Scope(PhaseProfiler& profiler, std::string name);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Attribute simulated slots to this phase (for slots/second).
    void add_slots(std::uint64_t slots) noexcept { slots_ += slots; }

   private:
    PhaseProfiler& profiler_;
    std::string name_;
    std::chrono::steady_clock::time_point wall_begin_;
    double cpu_begin_ = 0.0;
    std::uint64_t slots_ = 0;
  };

  void record(Phase phase);
  [[nodiscard]] const std::vector<Phase>& phases() const noexcept {
    return phases_;
  }

  /// Process CPU time in seconds (CLOCK_PROCESS_CPUTIME_ID when available,
  /// std::clock otherwise).
  [[nodiscard]] static double process_cpu_seconds() noexcept;

 private:
  std::vector<Phase> phases_;
};

/// The two phases of one sweep trial: acquiring the channel (hash + sort /
/// rebuild) vs running the estimation rounds.
enum class SweepPhase : std::uint8_t { kBuild, kEstimate };

/// Thread-safe process-wide wall-time totals per SweepPhase, accumulated by
/// the trial lambdas on worker threads (unlike PhaseProfiler, which is
/// single-threaded).  Summed across threads, so on a T-thread sweep the
/// totals can exceed the artifact's wall_seconds by up to a factor of T;
/// their *ratio* is the signal (does construction dominate?).  Emitted as
/// the BENCH json "profile" member — descriptive, never part of a golden
/// comparison.
void add_sweep_phase_seconds(SweepPhase phase, double seconds) noexcept;
[[nodiscard]] double sweep_phase_seconds(SweepPhase phase) noexcept;
void reset_sweep_phase_seconds() noexcept;

}  // namespace pet::obs
