// Span/event tracing with *logical-clock* coordinates.  Records carry the
// (trial, slot) position in the simulated protocol run — never wall-clock
// timestamps — so a trace is a pure function of the seed and is byte-stable
// across machines, thread counts, and reruns (docs/observability.md).
//
// Output is JSONL: one self-contained JSON object per line, schema-unified
// with sim::TraceSink's JSONL slot records:
//
//   {"type":"span","name":"...","trial":T,"slot_begin":A,"slot_end":B,...}
//   {"type":"event","name":"...","trial":T,"slot":S,...}
//   {"type":"slot","trial":T,"slot":S,"command":...}   (sim::TraceSink)
//
// Tracing only records when the global level is kFull AND a writer is
// installed; the disabled check is one relaxed atomic load.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"

namespace pet::obs {

/// Serializes whole lines to an ostream.  The mutex makes interleaved
/// writers safe: lines never shear, though their order across threads is
/// unspecified (sort by trial/slot when replaying).
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out) : out_(&out) {}

  void write_line(std::string_view line);

 private:
  std::mutex mutex_;
  std::ostream* out_;
};

/// Install / clear the process-wide trace sink (non-owning; the writer must
/// outlive tracing).  Typically bracketed around a petsim run.
void set_trace_writer(TraceWriter* writer) noexcept;
[[nodiscard]] TraceWriter* trace_writer() noexcept;

/// Logical clock, thread-local: TrialRunner workers pin the trial index at
/// trial start; the slot coordinate advances once per simulated slot.
void set_trace_trial(std::uint64_t trial) noexcept;
void advance_trace_slot() noexcept;
/// Bulk advance for channels that batch their observability work at round
/// boundaries (SortedPetChannel): the clock stays consistent with the
/// ledger's slot totals at round granularity instead of per slot.
void advance_trace_slots(std::uint64_t slots) noexcept;
[[nodiscard]] std::uint64_t trace_trial() noexcept;
[[nodiscard]] std::uint64_t trace_slot() noexcept;

/// One key plus an already-rendered JSON value token (numbers via
/// std::to_string / runtime::json_number, strings via json_token below).
using TraceAttr = std::pair<std::string_view, std::string>;

/// Render text as a quoted, escaped JSON string token.
[[nodiscard]] std::string json_token(std::string_view text);

/// Emit a point event at the current logical-clock position.  No-op unless
/// level() == kFull and a writer is installed.
void trace_event(std::string_view name,
                 std::initializer_list<TraceAttr> attrs = {});

/// RAII span: captures the logical-clock position at construction, emits a
/// "span" record covering [slot_begin, slot_end] at destruction.  Cheap when
/// tracing is off (two relaxed loads, no allocation).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach an attribute (value must be a rendered JSON token).
  void add(std::string_view key, std::string value);

 private:
  bool active_ = false;
  std::string_view name_;
  std::uint64_t trial_ = 0;
  std::uint64_t slot_begin_ = 0;
  std::string attrs_;  ///< pre-rendered ",\"k\":v" fragments
};

}  // namespace pet::obs
