#include "tags/population.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "rng/prng.hpp"

namespace pet::tags {

TagPopulation TagPopulation::generate(std::size_t count, std::uint64_t seed) {
  TagPopulation pop;
  pop.ids_.reserve(count);
  pop.index_.reserve(count * 2);
  rng::Xoshiro256ss gen(seed);
  while (pop.ids_.size() < count) {
    const std::uint64_t candidate = gen();
    if (pop.index_.insert(candidate).second) {
      pop.ids_.push_back(TagId{candidate});
    }
  }
  return pop;
}

bool TagPopulation::join(TagId id) {
  if (!index_.insert(to_underlying(id)).second) return false;
  ids_.push_back(id);
  return true;
}

std::vector<TagId> TagPopulation::join_fresh(std::size_t count,
                                             std::uint64_t seed) {
  std::vector<TagId> fresh;
  fresh.reserve(count);
  rng::Xoshiro256ss gen(seed);
  while (fresh.size() < count) {
    const std::uint64_t candidate = gen();
    if (index_.insert(candidate).second) {
      ids_.push_back(TagId{candidate});
      fresh.push_back(TagId{candidate});
    }
  }
  return fresh;
}

bool TagPopulation::leave(TagId id) {
  if (index_.erase(to_underlying(id)) == 0) return false;
  const auto it = std::find(ids_.begin(), ids_.end(), id);
  invariant(it != ids_.end(), "population index and list out of sync");
  // Order is not meaningful; swap-remove keeps leave O(1) amortized.
  *it = ids_.back();
  ids_.pop_back();
  return true;
}

std::size_t TagPopulation::leave_random(std::size_t count, std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  std::size_t removed = 0;
  while (removed < count && !ids_.empty()) {
    const std::size_t pick =
        static_cast<std::size_t>(gen() % ids_.size());
    const TagId victim = ids_[pick];
    index_.erase(to_underlying(victim));
    ids_[pick] = ids_.back();
    ids_.pop_back();
    ++removed;
  }
  return removed;
}

}  // namespace pet::tags
