// Zone assignment and mobility for the multi-reader scenarios of
// Section 4.6.3: tags attached to mobile objects wander across the coverage
// areas of several readers, and overlapping coverage means one tag may be
// heard by more than one reader in the same slot.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "tags/population.hpp"

namespace pet::tags {

/// Maps every tag of a population to one *home* zone plus, optionally, extra
/// zones whose readers also cover it (overlap).  Zones are dense indices
/// [0, zone_count).
class ZoneMap {
 public:
  ZoneMap(std::size_t zone_count, std::uint64_t seed);

  [[nodiscard]] std::size_t zone_count() const noexcept { return zone_count_; }

  /// Uniformly scatter all tags of `pop` over the zones.
  void scatter(const TagPopulation& pop);

  /// Make each tag additionally audible in its neighbouring zone with
  /// probability `overlap_prob` (models overlapping reader coverage).
  void add_overlap(double overlap_prob);

  /// Tags currently audible to the reader of `zone` (home + overlap).
  [[nodiscard]] std::vector<TagId> audible_in(std::size_t zone) const;

  /// Move each tag, independently with probability `move_prob`, to a
  /// uniformly random other zone.  Returns how many moved.
  std::size_t step(double move_prob);

  /// Total number of *distinct* tags across all zones (ground truth the
  /// multi-reader controller should recover despite duplicates).
  [[nodiscard]] std::size_t distinct_tags() const noexcept;

 private:
  struct Placement {
    TagId id{};
    std::size_t home = 0;
    bool overlaps_next = false;  ///< also audible in (home + 1) % zones
  };

  std::size_t zone_count_;
  std::uint64_t seed_;
  std::uint64_t step_counter_ = 0;
  std::vector<Placement> placements_;
};

}  // namespace pet::tags
