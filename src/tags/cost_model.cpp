#include "tags/cost_model.hpp"

#include <bit>

namespace pet::tags {

std::string_view to_string(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::kPet: return "PET";
    case ProtocolKind::kFneb: return "FNEB";
    case ProtocolKind::kLof: return "LoF";
    case ProtocolKind::kUpe: return "UPE";
    case ProtocolKind::kEzb: return "EZB";
  }
  return "unknown";
}

std::uint64_t preload_memory_bits(ProtocolKind kind, std::uint64_t rounds,
                                  unsigned word_bits) noexcept {
  switch (kind) {
    case ProtocolKind::kPet:
      // A single code shared by all rounds (Algorithm 4): the reader's
      // fresh estimating path supplies the per-round randomness.
      return word_bits;
    case ProtocolKind::kFneb:
    case ProtocolKind::kLof:
    case ProtocolKind::kUpe:
    case ProtocolKind::kEzb:
      // One fresh random value consumed per round.
      return rounds * word_bits;
  }
  return 0;
}

std::uint64_t hash_ops(ProtocolKind kind, std::uint64_t rounds) noexcept {
  switch (kind) {
    case ProtocolKind::kPet:
      // Preloaded mode: zero on-chip hashing.  (Per-round mode would cost
      // `rounds`, matching the baselines; exposed via PET's CodeMode.)
      return 0;
    case ProtocolKind::kFneb:
    case ProtocolKind::kLof:
    case ProtocolKind::kUpe:
    case ProtocolKind::kEzb:
      return rounds;
  }
  return 0;
}

unsigned command_bits_per_query(CommandEncoding encoding,
                                unsigned tree_height) noexcept {
  switch (encoding) {
    case CommandEncoding::kFullMask:
      return tree_height;
    case CommandEncoding::kMidIndex: {
      // ceil(log2(tree_height + 1)) bits index every possible prefix length.
      unsigned bits = 0;
      while ((1u << bits) < tree_height + 1) ++bits;
      return bits;
    }
    case CommandEncoding::kOneBitAck:
      return 1;
  }
  return tree_height;
}

}  // namespace pet::tags
