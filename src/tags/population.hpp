// TagPopulation: the set of physical tags present in the interrogation
// region, with support for the dynamic scenarios of Section 4.6.3
// (join/leave, movement across reader zones).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace pet::tags {

class TagPopulation {
 public:
  TagPopulation() = default;

  /// Generate `count` tags with unique pseudo-random 64-bit IDs derived
  /// deterministically from `seed` (IDs model factory-assigned EPCs).
  static TagPopulation generate(std::size_t count, std::uint64_t seed);

  /// Number of tags currently present.
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }

  /// Stable view of the current tag IDs.  Invalidated by join/leave.
  [[nodiscard]] std::span<const TagId> ids() const noexcept { return ids_; }

  [[nodiscard]] bool contains(TagId id) const noexcept {
    return index_.contains(to_underlying(id));
  }

  /// Add a tag; returns false (and changes nothing) if already present.
  bool join(TagId id);

  /// Add `count` fresh tags with IDs derived from `seed`; returns the new
  /// tags' IDs.
  std::vector<TagId> join_fresh(std::size_t count, std::uint64_t seed);

  /// Remove a tag; returns false if it was not present.
  bool leave(TagId id);

  /// Remove up to `count` tags chosen deterministically from `seed`;
  /// returns how many actually left.
  std::size_t leave_random(std::size_t count, std::uint64_t seed);

 private:
  std::vector<TagId> ids_;
  std::unordered_set<std::uint64_t> index_;
};

}  // namespace pet::tags
