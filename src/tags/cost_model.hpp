// Per-tag computation/memory cost accounting (Section 4.6.1 and Fig. 7).
//
// The paper's overhead comparison is about what a *passive* tag must carry
// to participate in m rounds of estimation:
//   * PET  : one preloaded 32-bit code, reused by every round (Alg. 4);
//   * FNEB : a fresh uniform random number per round  -> m words preloaded;
//   * LoF  : a fresh geometric random number per round -> m words preloaded.
// Active tags instead pay per-round hash computations.  Both dimensions are
// modeled here, plus the reader-side command overhead optimizations of
// Section 4.6.2 (full 32-bit mask vs 5-bit mid vs 1-bit feedback).
#pragma once

#include <cstdint>
#include <string_view>

namespace pet::tags {

/// Which estimation protocol a tag participates in.
enum class ProtocolKind : std::uint8_t { kPet, kFneb, kLof, kUpe, kEzb };

[[nodiscard]] std::string_view to_string(ProtocolKind kind) noexcept;

/// How the tag obtains its per-round randomness.
enum class TagEnergyClass : std::uint8_t {
  kPassive,  ///< no on-chip hashing; randomness must be preloaded
  kActive,   ///< can run a hash per round; no preload beyond the ID
};

/// Memory (bits) a passive tag must preload to support `rounds` rounds.
/// `word_bits` is the size of one random value (32 in the paper's setup).
[[nodiscard]] std::uint64_t preload_memory_bits(ProtocolKind kind,
                                                std::uint64_t rounds,
                                                unsigned word_bits = 32) noexcept;

/// Hash evaluations an active tag performs across `rounds` rounds.
[[nodiscard]] std::uint64_t hash_ops(ProtocolKind kind,
                                     std::uint64_t rounds) noexcept;

/// Runtime event counters accumulated by simulated tag devices; lets tests
/// assert, e.g., that a preloaded-mode PET tag never hashes.
struct TagCostLedger {
  std::uint64_t hash_evaluations = 0;   ///< on-chip hash invocations
  std::uint64_t prefix_compares = 0;    ///< bitwise mask comparisons
  std::uint64_t responses_sent = 0;     ///< reply-slot transmissions
  std::uint64_t command_bits_heard = 0; ///< downlink bits decoded

  TagCostLedger& operator+=(const TagCostLedger& other) noexcept {
    hash_evaluations += other.hash_evaluations;
    prefix_compares += other.prefix_compares;
    responses_sent += other.responses_sent;
    command_bits_heard += other.command_bits_heard;
    return *this;
  }
};

/// Reader->tag command encoding for one PET query (Section 4.6.2).
enum class CommandEncoding : std::uint8_t {
  kFullMask,    ///< broadcast the full H-bit mask (baseline), H bits/slot
  kMidIndex,    ///< broadcast only the 5-bit prefix length "mid"
  kOneBitAck,   ///< broadcast 1 bit (previous slot empty/nonempty);
                ///< tags track low/high locally
};

/// Downlink bits per query slot under the chosen encoding, for a tree of
/// height `tree_height`.
[[nodiscard]] unsigned command_bits_per_query(CommandEncoding encoding,
                                              unsigned tree_height) noexcept;

}  // namespace pet::tags
