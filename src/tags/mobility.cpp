#include "tags/mobility.hpp"

#include <random>

#include "common/ensure.hpp"
#include "rng/prng.hpp"

namespace pet::tags {

ZoneMap::ZoneMap(std::size_t zone_count, std::uint64_t seed)
    : zone_count_(zone_count), seed_(seed) {
  expects(zone_count >= 1, "ZoneMap needs at least one zone");
}

void ZoneMap::scatter(const TagPopulation& pop) {
  placements_.clear();
  placements_.reserve(pop.size());
  rng::Xoshiro256ss gen(rng::derive_seed(seed_, 0x5ca7));
  for (const TagId id : pop.ids()) {
    placements_.push_back(
        {id, static_cast<std::size_t>(gen() % zone_count_), false});
  }
}

void ZoneMap::add_overlap(double overlap_prob) {
  expects(overlap_prob >= 0.0 && overlap_prob <= 1.0,
          "overlap_prob must be a probability");
  if (zone_count_ < 2) return;
  rng::Xoshiro256ss gen(rng::derive_seed(seed_, 0x07e1));
  std::bernoulli_distribution coin(overlap_prob);
  for (auto& p : placements_) p.overlaps_next = coin(gen);
}

std::vector<TagId> ZoneMap::audible_in(std::size_t zone) const {
  expects(zone < zone_count_, "audible_in: zone out of range");
  std::vector<TagId> out;
  for (const auto& p : placements_) {
    const bool home = p.home == zone;
    const bool overlap =
        p.overlaps_next && ((p.home + 1) % zone_count_) == zone;
    if (home || overlap) out.push_back(p.id);
  }
  return out;
}

std::size_t ZoneMap::step(double move_prob) {
  expects(move_prob >= 0.0 && move_prob <= 1.0,
          "move_prob must be a probability");
  if (zone_count_ < 2) return 0;
  rng::Xoshiro256ss gen(rng::derive_seed(seed_, 0xa100 + step_counter_));
  ++step_counter_;
  std::bernoulli_distribution coin(move_prob);
  std::size_t moved = 0;
  for (auto& p : placements_) {
    if (!coin(gen)) continue;
    std::size_t target = static_cast<std::size_t>(gen() % (zone_count_ - 1));
    if (target >= p.home) ++target;  // uniform over zones != home
    p.home = target;
    ++moved;
  }
  return moved;
}

std::size_t ZoneMap::distinct_tags() const noexcept {
  return placements_.size();
}

}  // namespace pet::tags
