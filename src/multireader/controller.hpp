// Multi-reader coordination (Section 4.6.3).
//
// A back-end controller drives several readers with the *same* estimating
// path and mask each slot; every reader reports whether it heard any reply,
// and the controller takes the slot as idle only if no reader heard
// anything.  Because PET replies are duplicate-insensitive (a tag audible
// to two readers contributes the same "busy" either way), the fused channel
// behaves exactly like a single reader covering the union of the zones —
// which is what makes overlap and tag mobility harmless.
//
// MultiReaderController is itself a PrefixChannel, so the unmodified
// PetEstimator runs on top of it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/channel.hpp"
#include "sim/medium.hpp"

namespace pet::multi {

class MultiReaderController final : public chan::PrefixChannel {
 public:
  /// The controller coordinates but does not own reader lifetimes beyond
  /// this container: pass one PrefixChannel per reader zone.
  explicit MultiReaderController(
      std::vector<std::unique_ptr<chan::PrefixChannel>> zones);

  [[nodiscard]] std::size_t reader_count() const noexcept {
    return zones_.size();
  }

  void begin_round(const chan::RoundConfig& round) override;
  bool query_prefix(unsigned len) override;

  /// Retry accounting for the robust estimation path: a voting re-read is
  /// one fused slot, but every reader burned it, so the charge fans out to
  /// each zone ledger as well as the fused one.
  void note_retries(std::uint64_t slots) noexcept override;

  /// The controller's fused ledger: one slot per query (all readers probe
  /// in parallel in the same slot), downlink bits counted once (the
  /// back-end network, not the air, fans the command out).
  [[nodiscard]] const sim::SlotLedger& ledger() const noexcept override {
    return ledger_;
  }
  void reset_ledger() noexcept override { ledger_ = {}; }

  /// Per-zone ledgers (each reader's own airtime) for energy accounting.
  [[nodiscard]] const sim::SlotLedger& zone_ledger(std::size_t zone) const;

 private:
  std::vector<std::unique_ptr<chan::PrefixChannel>> zones_;
  sim::SlotLedger ledger_;
};

}  // namespace pet::multi
