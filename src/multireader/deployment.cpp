#include "multireader/deployment.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "channel/sorted_pet_channel.hpp"
#include "common/ensure.hpp"
#include "core/theory.hpp"
#include "multireader/controller.hpp"
#include "rng/prng.hpp"

namespace pet::multi {

void DeploymentConfig::validate() const {
  expects(readers >= 1, "Deployment needs at least one reader");
  expects(coverage_overlap >= 0.0 && coverage_overlap <= 1.0,
          "coverage_overlap must be a probability");
  pet.validate();
  accuracy.validate();
  expects(!pet.tags_rehash,
          "Deployment assumes preloaded-code (passive-tag) populations");
}

Deployment::Deployment(DeploymentConfig config, std::size_t initial_tags)
    : config_(config), estimator_(config.pet, config.accuracy),
      population_(tags::TagPopulation::generate(
          initial_tags, rng::derive_seed(config.seed, 0x9090))),
      zones_(config.readers, rng::derive_seed(config.seed, 0x2045)) {
  config_.validate();
  zones_.scatter(population_);
  zones_.add_overlap(config_.coverage_overlap);
}

void Deployment::add_tags(std::size_t count) {
  population_.join_fresh(count, rng::derive_seed(config_.seed, 10 + epoch_));
  ++epoch_;
  zones_.scatter(population_);
  zones_.add_overlap(config_.coverage_overlap);
}

std::size_t Deployment::remove_tags(std::size_t count) {
  const std::size_t removed = population_.leave_random(
      count, rng::derive_seed(config_.seed, 20 + epoch_));
  ++epoch_;
  zones_.scatter(population_);
  zones_.add_overlap(config_.coverage_overlap);
  return removed;
}

std::size_t Deployment::shuffle_tags(double probability) {
  ++epoch_;
  return zones_.step(probability);
}

Census Deployment::run_census(std::optional<std::uint64_t> rounds,
                              double interval_delta) {
  std::vector<std::unique_ptr<chan::PrefixChannel>> readers;
  readers.reserve(config_.readers);
  for (std::size_t z = 0; z < config_.readers; ++z) {
    chan::SortedPetChannelConfig channel_config;
    channel_config.tree_height = config_.pet.tree_height;
    readers.push_back(std::make_unique<chan::SortedPetChannel>(
        zones_.audible_in(z), channel_config));
  }
  MultiReaderController controller(std::move(readers));

  ++epoch_;
  const std::uint64_t census_seed =
      rng::derive_seed(config_.seed, 1000 + epoch_);
  const core::EstimateResult result =
      rounds.has_value()
          ? estimator_.estimate_with_rounds(controller, *rounds, census_seed)
          : estimator_.estimate(controller, census_seed);

  Census census;
  census.estimate = result.n_hat;
  census.cost = result.ledger;
  census.rounds = result.rounds;
  if (!result.depths.empty()) {
    census.interval = core::confidence_interval(result, interval_delta);
  }
  return census;
}

Census Deployment::census() {
  return run_census(std::nullopt, config_.accuracy.delta);
}

Census Deployment::census_with_rounds(std::uint64_t rounds) {
  return run_census(rounds, config_.accuracy.delta);
}

Census Deployment::estimate_missing(
    std::size_t manifest_count,
    std::optional<stats::AccuracyRequirement> audit_accuracy) {
  expects(manifest_count > 0, "estimate_missing: manifest must be positive");
  Census present;
  if (audit_accuracy.has_value()) {
    audit_accuracy->validate();
    // Spend the audit contract's round budget and report its interval.
    present = run_census(core::required_rounds(*audit_accuracy),
                         audit_accuracy->delta);
  } else {
    present = census();
  }
  Census missing;
  const double manifest = static_cast<double>(manifest_count);
  missing.estimate = std::max(0.0, manifest - present.estimate);
  missing.rounds = present.rounds;
  missing.cost = present.cost;
  // Present-count interval [lo, hi] maps to missing interval
  // [manifest - hi, manifest - lo].
  missing.interval.point = missing.estimate;
  missing.interval.lo = std::max(0.0, manifest - present.interval.hi);
  missing.interval.hi = std::max(0.0, manifest - present.interval.lo);
  return missing;
}

core::PetSketch Deployment::sketch(std::uint64_t rounds,
                                   std::uint64_t sketch_seed) {
  std::vector<std::unique_ptr<chan::PrefixChannel>> readers;
  readers.reserve(config_.readers);
  for (std::size_t z = 0; z < config_.readers; ++z) {
    chan::SortedPetChannelConfig channel_config;
    channel_config.tree_height = config_.pet.tree_height;
    readers.push_back(std::make_unique<chan::SortedPetChannel>(
        zones_.audible_in(z), channel_config));
  }
  MultiReaderController controller(std::move(readers));
  return core::PetSketch::take(controller, config_.pet, rounds, sketch_seed);
}

}  // namespace pet::multi
