#include "multireader/controller.hpp"

#include "common/ensure.hpp"
#include "obs/instruments.hpp"

namespace pet::multi {

namespace {
// The fused view reports under chan.fused.* — its zone channels already
// count themselves, so folding the controller into chan.ledger.* would
// double-count every zone slot.
const obs::ChannelInstruments& chan_obs() {
  static const obs::ChannelInstruments bundle("fused");
  return bundle;
}
}  // namespace

MultiReaderController::MultiReaderController(
    std::vector<std::unique_ptr<chan::PrefixChannel>> zones)
    : zones_(std::move(zones)) {
  expects(!zones_.empty(), "MultiReaderController needs at least one reader");
  for (const auto& zone : zones_) {
    expects(zone != nullptr, "MultiReaderController: null reader zone");
  }
}

void MultiReaderController::begin_round(const chan::RoundConfig& round) {
  for (const auto& zone : zones_) zone->begin_round(round);
  ledger_.reader_bits += round.begin_bits;
  if (obs::counters_enabled()) chan_obs().rounds.add();
}

bool MultiReaderController::query_prefix(unsigned len) {
  // All readers issue the probe in the same time slot; the controller fuses
  // their reports with a logical OR.
  bool busy = false;
  std::uint64_t heard_bits = 0;
  unsigned query_bits = 0;
  for (const auto& zone : zones_) {
    const sim::SlotLedger before = zone->ledger();
    busy = zone->query_prefix(len) || busy;
    const sim::SlotLedger delta = zone->ledger() - before;
    heard_bits += delta.tag_bits;
    query_bits = static_cast<unsigned>(delta.reader_bits);
  }
  if (busy) {
    ++ledger_.collision_slots;  // fused view: only presence is known
  } else {
    ++ledger_.idle_slots;
  }
  ledger_.reader_bits += query_bits;
  ledger_.tag_bits += heard_bits;
  if (obs::counters_enabled()) {
    chan_obs().probe_slots.add();
    if (busy) chan_obs().busy_slots.add();
  }
  return busy;
}

void MultiReaderController::note_retries(std::uint64_t slots) noexcept {
  ledger_.retry_slots += slots;
  for (const auto& zone : zones_) zone->note_retries(slots);
}

const sim::SlotLedger& MultiReaderController::zone_ledger(
    std::size_t zone) const {
  expects(zone < zones_.size(), "zone_ledger: index out of range");
  return zones_[zone]->ledger();
}

}  // namespace pet::multi
