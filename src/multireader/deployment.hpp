// Deployment: the batteries-included façade a downstream application uses.
//
// Owns the moving parts of a real installation — the tag population, the
// reader zones with overlapping coverage, mobility — and exposes the
// operations an inventory/monitoring application actually performs:
// full-accuracy censuses, cheap sketches for cross-site analytics, and
// population dynamics.  Everything below it (controllers, channels,
// estimators) remains available for custom setups.
#pragma once

#include <cstdint>
#include <optional>

#include "core/confidence.hpp"
#include "core/estimator.hpp"
#include "core/sketch.hpp"
#include "sim/medium.hpp"
#include "stats/accuracy.hpp"
#include "tags/mobility.hpp"
#include "tags/population.hpp"

namespace pet::multi {

struct DeploymentConfig {
  std::size_t readers = 1;
  double coverage_overlap = 0.0;  ///< fraction of tags audible in 2 zones
  core::PetConfig pet{};
  stats::AccuracyRequirement accuracy{0.05, 0.01};
  std::uint64_t seed = 1;

  void validate() const;
};

/// One census result.
struct Census {
  double estimate = 0.0;
  core::ConfidenceInterval interval{};
  sim::SlotLedger cost{};
  std::uint64_t rounds = 0;
};

class Deployment {
 public:
  /// Start with `initial_tags` tags scattered over the readers.
  Deployment(DeploymentConfig config, std::size_t initial_tags);

  // -- population dynamics ---------------------------------------------
  [[nodiscard]] std::size_t true_count() const noexcept {
    return population_.size();
  }
  void add_tags(std::size_t count);
  std::size_t remove_tags(std::size_t count);
  /// Each tag moves to another zone with probability `probability`.
  std::size_t shuffle_tags(double probability);

  // -- estimation --------------------------------------------------------
  /// Full (epsilon, delta) census over all readers.
  [[nodiscard]] Census census();

  /// Cheap census with an explicit round budget.
  [[nodiscard]] Census census_with_rounds(std::uint64_t rounds);

  /// Mergeable sketch of the current population (see core::PetSketch); all
  /// sketches from deployments sharing `sketch_seed` and code universe are
  /// union-mergeable.
  [[nodiscard]] core::PetSketch sketch(std::uint64_t rounds,
                                       std::uint64_t sketch_seed);

  /// Missing-tag screening (the paper's refs [30]/[37] application): given
  /// the manifest count that *should* be present, estimate how many are
  /// missing.  `missing.estimate` is clamped at 0; `missing.interval` is
  /// the census interval shifted into missing-count space (lo/hi swap).
  ///
  /// Estimating a *difference* needs a tighter census than estimating a
  /// total (a +/-5% census of 42 000 items is +/-2 100 — possibly larger
  /// than the loss being hunted), so an `audit_accuracy` override of the
  /// deployment's default contract is accepted.
  [[nodiscard]] Census estimate_missing(
      std::size_t manifest_count,
      std::optional<stats::AccuracyRequirement> audit_accuracy =
          std::nullopt);

  [[nodiscard]] const DeploymentConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] Census run_census(std::optional<std::uint64_t> rounds,
                                  double interval_delta);

  DeploymentConfig config_;
  core::PetEstimator estimator_;
  tags::TagPopulation population_;
  tags::ZoneMap zones_;
  std::uint64_t epoch_ = 0;  ///< advances per operation for fresh seeds
};

}  // namespace pet::multi
