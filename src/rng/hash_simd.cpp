// SIMD tiers for the kMix64 batch hash (see hash_simd.hpp).
//
// The SplitMix64 finalizer is three multiply/xor-shift rounds of pure
// 64-bit modular arithmetic, so a w-lane vector evaluation is the same
// function as w scalar evaluations — there is no rounding or reassociation
// to diverge on.  AVX-512DQ has a native 64-bit low multiply
// (vpmullq, 8 lanes); AVX2 and NEON emulate it from 32x32 partial products
// (lo*lo + ((hi*lo + lo*hi) << 32), the carry-free schoolbook form).
//
// Per-function target attributes keep the AVX encodings out of every other
// translation unit, so the dispatcher can run on any x86-64.
#include "rng/hash_simd.hpp"

#include "common/simd.hpp"
#include "rng/prng.hpp"

#if defined(__aarch64__)
#include <arm_neon.h>
#elif defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace pet::rng::detail {

namespace {

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kMixA = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kMixB = 0x94d049bb133111ebULL;

inline void scalar_tail(std::uint64_t seed_mix, const std::uint64_t* ids,
                        std::size_t begin, std::size_t n, unsigned shift,
                        std::uint64_t* out) noexcept {
  for (std::size_t i = begin; i < n; ++i) {
    out[i] = mix64(seed_mix ^ mix64(ids[i])) >> shift;
  }
}

#if defined(__x86_64__) || defined(_M_X64)

// The vector-typed helpers below are only called between functions carrying
// the same target attribute, so the ABI caveat GCC raises for the TU's
// non-AVX baseline never applies.
#pragma GCC diagnostic ignored "-Wpsabi"

__attribute__((target("avx2"))) inline __m256i mul64_avx2(
    __m256i a, __m256i b, __m256i b_hi) noexcept {
  // a*b mod 2^64 from 32-bit partial products; the hi*hi term shifts out.
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i mix64_avx2(
    __m256i z, __m256i gamma, __m256i mul_a, __m256i mul_a_hi, __m256i mul_b,
    __m256i mul_b_hi) noexcept {
  z = _mm256_add_epi64(z, gamma);
  z = mul64_avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), mul_a,
                 mul_a_hi);
  z = mul64_avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), mul_b,
                 mul_b_hi);
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

__attribute__((target("avx2"))) void hash_avx2(std::uint64_t seed_mix,
                                               const std::uint64_t* ids,
                                               std::size_t n, unsigned shift,
                                               std::uint64_t* out) noexcept {
  const __m256i gamma = _mm256_set1_epi64x(static_cast<long long>(kGamma));
  const __m256i mul_a = _mm256_set1_epi64x(static_cast<long long>(kMixA));
  const __m256i mul_a_hi = _mm256_srli_epi64(mul_a, 32);
  const __m256i mul_b = _mm256_set1_epi64x(static_cast<long long>(kMixB));
  const __m256i mul_b_hi = _mm256_srli_epi64(mul_b, 32);
  const __m256i seed = _mm256_set1_epi64x(static_cast<long long>(seed_mix));
  const __m128i count = _mm_cvtsi32_si128(static_cast<int>(shift));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i id =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    const __m256i inner =
        mix64_avx2(id, gamma, mul_a, mul_a_hi, mul_b, mul_b_hi);
    const __m256i h = mix64_avx2(_mm256_xor_si256(seed, inner), gamma, mul_a,
                                 mul_a_hi, mul_b, mul_b_hi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_srl_epi64(h, count));
  }
  scalar_tail(seed_mix, ids, i, n, shift, out);
}

__attribute__((target("avx512f,avx512dq"))) inline __m512i mix64_avx512(
    __m512i z, __m512i gamma, __m512i mul_a, __m512i mul_b) noexcept {
  z = _mm512_add_epi64(z, gamma);
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)),
                         mul_a);
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)),
                         mul_b);
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

__attribute__((target("avx512f,avx512dq"))) void hash_avx512(
    std::uint64_t seed_mix, const std::uint64_t* ids, std::size_t n,
    unsigned shift, std::uint64_t* out) noexcept {
  const __m512i gamma = _mm512_set1_epi64(static_cast<long long>(kGamma));
  const __m512i mul_a = _mm512_set1_epi64(static_cast<long long>(kMixA));
  const __m512i mul_b = _mm512_set1_epi64(static_cast<long long>(kMixB));
  const __m512i seed = _mm512_set1_epi64(static_cast<long long>(seed_mix));
  const __m128i count = _mm_cvtsi32_si128(static_cast<int>(shift));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i id = _mm512_loadu_si512(ids + i);
    const __m512i inner = mix64_avx512(id, gamma, mul_a, mul_b);
    const __m512i h =
        mix64_avx512(_mm512_xor_si512(seed, inner), gamma, mul_a, mul_b);
    _mm512_storeu_si512(out + i, _mm512_srl_epi64(h, count));
  }
  scalar_tail(seed_mix, ids, i, n, shift, out);
}

#elif defined(__aarch64__)

inline uint64x2_t mul64_neon(uint64x2_t a, uint32x2_t b_lo,
                             uint32x2_t b_hi) noexcept {
  // Same carry-free schoolbook form as the AVX2 tier, from 32-bit halves.
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint64x2_t lo = vmull_u32(a_lo, b_lo);
  const uint32x2_t cross = vmla_u32(vmul_u32(a_hi, b_lo), a_lo, b_hi);
  return vaddq_u64(lo, vshll_n_u32(cross, 32));
}

void hash_neon(std::uint64_t seed_mix, const std::uint64_t* ids,
               std::size_t n, unsigned shift, std::uint64_t* out) noexcept {
  const uint64x2_t gamma = vdupq_n_u64(kGamma);
  const uint32x2_t a_lo = vdup_n_u32(static_cast<std::uint32_t>(kMixA));
  const uint32x2_t a_hi = vdup_n_u32(static_cast<std::uint32_t>(kMixA >> 32));
  const uint32x2_t b_lo = vdup_n_u32(static_cast<std::uint32_t>(kMixB));
  const uint32x2_t b_hi = vdup_n_u32(static_cast<std::uint32_t>(kMixB >> 32));
  const uint64x2_t seed = vdupq_n_u64(seed_mix);
  const int64x2_t count = vdupq_n_s64(-static_cast<std::int64_t>(shift));
  const auto mix = [&](uint64x2_t z) noexcept {
    z = vaddq_u64(z, gamma);
    z = mul64_neon(veorq_u64(z, vshrq_n_u64(z, 30)), a_lo, a_hi);
    z = mul64_neon(veorq_u64(z, vshrq_n_u64(z, 27)), b_lo, b_hi);
    return veorq_u64(z, vshrq_n_u64(z, 31));
  };
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t id = vld1q_u64(ids + i);
    const uint64x2_t h = mix(veorq_u64(seed, mix(id)));
    vst1q_u64(out + i, vshlq_u64(h, count));
  }
  scalar_tail(seed_mix, ids, i, n, shift, out);
}

#endif

}  // namespace

bool mix64_code_batch_simd(std::uint64_t seed_mix, const std::uint64_t* ids,
                           std::size_t n, unsigned width, std::uint64_t* out) {
  const unsigned shift = 64 - width;  // width 64 -> shift 0, a lane no-op
  switch (simd_tier()) {
#if defined(__x86_64__) || defined(_M_X64)
    case SimdTier::kAvx512:
      hash_avx512(seed_mix, ids, n, shift, out);
      return true;
    case SimdTier::kAvx2:
      hash_avx2(seed_mix, ids, n, shift, out);
      return true;
#elif defined(__aarch64__)
    case SimdTier::kNeon:
      hash_neon(seed_mix, ids, n, shift, out);
      return true;
#endif
    default:
      return false;  // scalar tier, or a tier this arch cannot run
  }
}

}  // namespace pet::rng::detail
