// Deterministic, seedable pseudo-random generators used throughout the
// simulator.  Both satisfy std::uniform_random_bit_generator, so they plug
// into <random> distributions.
//
//  * SplitMix64  — tiny, stateless-friendly mixer; used for seeding and for
//                  one-shot hashing of integers.
//  * Xoshiro256ss — the simulator's workhorse generator (xoshiro256**,
//                  Blackman & Vigna), 256-bit state, passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pet::rng {

/// One round of the SplitMix64 output function: a high-quality 64->64 bit
/// mixer (Stafford variant 13).  Useful as a standalone integer hash.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64, per the authors'
  /// recommendation; any 64-bit seed (including 0) is valid.
  constexpr explicit Xoshiro256ss(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to operator(); used to give independent
  /// streams to concurrently simulated entities.
  constexpr void long_jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
        0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (const std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if ((word & (1ULL << b)) != 0) {
          for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
        }
        (void)(*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derive an independent child seed from a parent seed and a stream index.
/// Used to give every tag / round / run its own deterministic stream.
constexpr std::uint64_t derive_seed(std::uint64_t parent,
                                    std::uint64_t stream) noexcept {
  return mix64(parent ^ mix64(stream + 0x517cc1b727220a95ULL));
}

}  // namespace pet::rng
