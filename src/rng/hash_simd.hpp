// Internal: vectorized kMix64 batch kernels behind rng::uniform_code_batch.
//
// Each tier computes out[i] = mix64(seed_mix ^ mix64(ids[i])) >> (64-width)
// with the SplitMix64 finalizer lifted onto 64-bit SIMD lanes; the tail
// (n mod lanes) runs the same scalar expression, so every output word is
// bit-identical to the scalar loop regardless of tier or n
// (tests/simd_parity_test.cpp).  Dispatch follows pet::simd_tier().
#pragma once

#include <cstddef>
#include <cstdint>

namespace pet::rng::detail {

/// Vectorized batch hash at the active SIMD tier.  Returns false when the
/// active tier is scalar (or unavailable on this architecture); the caller
/// then runs the portable loop.  `out` must hold `n` words; `width` in
/// [1, 64].  No alignment requirement on `ids` or `out`.
bool mix64_code_batch_simd(std::uint64_t seed_mix, const std::uint64_t* ids,
                           std::size_t n, unsigned width, std::uint64_t* out);

}  // namespace pet::rng::detail
