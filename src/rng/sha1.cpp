#include "rng/sha1.hpp"

#include <bit>
#include <cstring>

namespace pet::rng {

namespace {

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>((v >> 24) & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

}  // namespace

void Sha1::reset() noexcept {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::array<std::uint32_t, 80> w;
  for (std::size_t i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (std::size_t i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (std::size_t i = 0; i < 80; ++i) {
    std::uint32_t f = 0;
    std::uint32_t k = 0;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (data.size() - offset >= 64) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha1::update(std::string_view text) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Sha1::Digest Sha1::finalize() noexcept {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(std::span<const std::uint8_t>(&pad_byte, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));

  std::array<std::uint8_t, 8> length_be;
  for (int i = 0; i < 8; ++i) {
    length_be[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((bit_len >> (8 * (7 - i))) & 0xff);
  }
  update(std::span<const std::uint8_t>(length_be.data(), length_be.size()));

  Digest digest;
  for (std::size_t i = 0; i < 5; ++i) store_be32(digest.data() + 4 * i, state_[i]);
  return digest;
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) noexcept {
  Sha1 h;
  h.update(data);
  return h.finalize();
}

Sha1::Digest Sha1::hash(std::string_view text) noexcept {
  Sha1 h;
  h.update(text);
  return h.finalize();
}

std::string Sha1::to_hex(const Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(2 * digest.size());
  for (const std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace pet::rng
