#include "rng/hash_family.hpp"

#include <array>
#include <bit>

#include "common/ensure.hpp"
#include "rng/hash_simd.hpp"
#include "rng/md5.hpp"
#include "rng/prng.hpp"
#include "rng/sha1.hpp"

namespace pet::rng {

namespace {

std::array<std::uint8_t, 16> key_bytes(std::uint64_t seed,
                                       std::uint64_t id) noexcept {
  std::array<std::uint8_t, 16> bytes;
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((seed >> (8 * i)) & 0xff);
    bytes[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>((id >> (8 * i)) & 0xff);
  }
  return bytes;
}

std::uint64_t first_8_bytes_le(const std::uint8_t* digest) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | digest[i];
  }
  return v;
}

}  // namespace

std::string_view to_string(HashKind kind) noexcept {
  switch (kind) {
    case HashKind::kMix64: return "mix64";
    case HashKind::kMd5: return "md5";
    case HashKind::kSha1: return "sha1";
  }
  return "unknown";
}

std::uint64_t uniform64(HashKind kind, std::uint64_t seed,
                        std::uint64_t id) noexcept {
  switch (kind) {
    case HashKind::kMix64:
      // Two mixing rounds decorrelate seed and id contributions.
      return mix64(mix64(seed ^ 0x9e3779b97f4a7c15ULL) ^ mix64(id));
    case HashKind::kMd5: {
      const auto bytes = key_bytes(seed, id);
      const auto digest = Md5::hash(std::span<const std::uint8_t>(bytes));
      return first_8_bytes_le(digest.data());
    }
    case HashKind::kSha1: {
      const auto bytes = key_bytes(seed, id);
      const auto digest = Sha1::hash(std::span<const std::uint8_t>(bytes));
      return first_8_bytes_le(digest.data());
    }
  }
  invariant(false, "uniform64: unhandled HashKind");
  return 0;
}

BitCode uniform_code(HashKind kind, std::uint64_t seed, std::uint64_t id,
                     unsigned width) {
  expects(width >= 1 && width <= BitCode::kMaxWidth,
          "uniform_code width must be in [1, 64]");
  const std::uint64_t h = uniform64(kind, seed, id);
  const std::uint64_t value = (width == 64) ? h : (h >> (64 - width));
  return BitCode(value, width);
}

void uniform_code_batch(HashKind kind, std::uint64_t seed,
                        std::span<const TagId> ids, unsigned width,
                        std::vector<std::uint64_t>& out) {
  expects(width >= 1 && width <= BitCode::kMaxWidth,
          "uniform_code_batch width must be in [1, 64]");
  if (kind == HashKind::kMix64) {
    // Same two-round mix as uniform64, with the seed round hoisted.  The
    // SIMD tiers (hash_simd.cpp) evaluate the identical integer expression
    // on wider lanes, so the bytes written are the same at every tier.
    const std::uint64_t seed_mix = mix64(seed ^ 0x9e3779b97f4a7c15ULL);
    out.resize(ids.size());
    static_assert(sizeof(TagId) == sizeof(std::uint64_t));
    if (detail::mix64_code_batch_simd(
            seed_mix, reinterpret_cast<const std::uint64_t*>(ids.data()),
            ids.size(), width, out.data())) {
      return;
    }
    std::size_t i = 0;
    for (const TagId id : ids) {
      const std::uint64_t h = mix64(seed_mix ^ mix64(to_underlying(id)));
      out[i++] = (width == 64) ? h : (h >> (64 - width));
    }
    return;
  }
  out.clear();
  out.reserve(ids.size());
  for (const TagId id : ids) {
    out.push_back(uniform_code(kind, seed, id, width).value());
  }
}

std::uint64_t uniform_slot(HashKind kind, std::uint64_t seed, std::uint64_t id,
                           std::uint64_t bound) {
  expects(bound >= 1, "uniform_slot bound must be >= 1");
  const std::uint64_t h = uniform64(kind, seed, id);
  // Modulo reduction: the bias is below bound / 2^64, immaterial for any
  // frame size the protocols use.
  return h % bound + 1;
}

unsigned geometric_level(HashKind kind, std::uint64_t seed, std::uint64_t id,
                         unsigned max_level) {
  expects(max_level >= 1 && max_level <= 64,
          "geometric_level max_level must be in [1, 64]");
  const std::uint64_t h = uniform64(kind, seed, id);
  // Index (1-based) of the first 1 bit in the MSB-first bit stream; the
  // all-zero tail collapses onto max_level.
  const unsigned lz = (h == 0) ? 64u : static_cast<unsigned>(std::countl_zero(h));
  return std::min(lz + 1, max_level);
}

}  // namespace pet::rng
