// Keyed uniform hash families mapping (seed, tagID) -> bit codes.
//
// Every estimation protocol in this library consumes randomness through one
// of these families:
//   * PET       : uniform H-bit code per tag (per-round seeded, or a single
//                 preloaded code derived from the tag ID alone);
//   * FNEB      : uniform slot pick in [1, f];
//   * LoF       : geometric "lottery" level with P(level = i) = 2^-i;
//   * UPE / EZB : uniform slot pick + Bernoulli persistence.
//
// Three interchangeable implementations are provided, selected by HashKind:
// truncated MD5, truncated SHA-1 (the two the paper names in Section 4.5),
// and a fast SplitMix64-based mixer for large simulations.  All three are
// deterministic functions of (seed, id).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/bitcode.hpp"
#include "common/types.hpp"

namespace pet::rng {

enum class HashKind : std::uint8_t {
  kMix64,  ///< SplitMix64 finalizer; fastest, simulation default
  kMd5,    ///< truncated MD5 digest (paper Section 4.5)
  kSha1,   ///< truncated SHA-1 digest (paper Section 4.5)
};

[[nodiscard]] std::string_view to_string(HashKind kind) noexcept;

/// Uniform 64-bit keyed hash of (seed, id) under the chosen family.
[[nodiscard]] std::uint64_t uniform64(HashKind kind, std::uint64_t seed,
                                      std::uint64_t id) noexcept;

/// Uniform `width`-bit code (width in [1, 64]) of (seed, id).
[[nodiscard]] BitCode uniform_code(HashKind kind, std::uint64_t seed,
                                   std::uint64_t id, unsigned width);

/// Batch form of uniform_code: overwrites `out` with one `width`-bit code
/// value per id, bit-identical to calling
/// `uniform_code(kind, seed, id, width).value()` element-wise.  For kMix64
/// the seed half of the mix is hoisted out of the loop, which is where
/// SortedPetChannel construction spends its hashing time
/// (bench/micro_ops BM_UniformCodeBatch).
void uniform_code_batch(HashKind kind, std::uint64_t seed,
                        std::span<const TagId> ids, unsigned width,
                        std::vector<std::uint64_t>& out);

/// Uniform integer in [1, bound] (bound >= 1) of (seed, id); used for
/// FNEB/UPE/EZB frame-slot picks.  Modulo reduction; the bias is below
/// bound / 2^64 and irrelevant here.
[[nodiscard]] std::uint64_t uniform_slot(HashKind kind, std::uint64_t seed,
                                         std::uint64_t id, std::uint64_t bound);

/// Geometric "lottery" level in [1, max_level]:
/// P(level = i) = 2^-i for i < max_level, and the residual tail mass lands
/// on max_level.  This is LoF's hash: the index of the first 1 bit of a
/// uniform bit stream.
[[nodiscard]] unsigned geometric_level(HashKind kind, std::uint64_t seed,
                                       std::uint64_t id, unsigned max_level);

/// Convenience wrappers keyed by TagId.
[[nodiscard]] inline BitCode uniform_code(HashKind kind, std::uint64_t seed,
                                          TagId id, unsigned width) {
  return uniform_code(kind, seed, to_underlying(id), width);
}

[[nodiscard]] inline std::uint64_t uniform_slot(HashKind kind, std::uint64_t seed,
                                                TagId id, std::uint64_t bound) {
  return uniform_slot(kind, seed, to_underlying(id), bound);
}

[[nodiscard]] inline unsigned geometric_level(HashKind kind, std::uint64_t seed,
                                              TagId id, unsigned max_level) {
  return geometric_level(kind, seed, to_underlying(id), max_level);
}

}  // namespace pet::rng
