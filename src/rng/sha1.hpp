// SHA-1 (FIPS 180-4), implemented from scratch.
//
// Second of the two digest functions the paper names (Section 4.5) for
// manufacturing-time generation of preloaded PET codes.  As with MD5, only
// bit uniformity matters here, not collision resistance.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace pet::rng {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept;
  [[nodiscard]] Digest finalize() noexcept;

  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Digest hash(std::string_view text) noexcept;
  [[nodiscard]] static std::string to_hex(const Digest& digest);

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

}  // namespace pet::rng
