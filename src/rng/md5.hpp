// MD5 (RFC 1321), implemented from scratch.
//
// The paper (Section 4.5) proposes generating the preloaded 32-bit PET
// random codes at manufacturing time with an off-the-shelf uniform hash such
// as MD5 or SHA-1 and truncating the digest.  MD5 is cryptographically
// broken as a collision-resistant hash, but PET only needs uniformity of the
// digest bits, for which it remains perfectly adequate.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace pet::rng {

class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Md5() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept;

  /// Finalizes and returns the digest.  The object must be reset() before
  /// reuse.
  [[nodiscard]] Digest finalize() noexcept;

  /// One-shot digest of a byte buffer.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Digest hash(std::string_view text) noexcept;

  /// Lowercase hex rendering, as printed by `md5sum`.
  [[nodiscard]] static std::string to_hex(const Digest& digest);

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 4> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

}  // namespace pet::rng
