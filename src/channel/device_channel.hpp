// DeviceChannel: full-fidelity back end.  Instantiates a real tag device
// state machine per tag (sim/devices.hpp), runs every command over the
// shared Medium on the DES kernel, and supports link impairments and slot
// airtime.  The slowest substrate — used for the device-level integration
// tests, the cost-ledger verification of Section 4.6.1, and small-scale
// cross-checks of the faster channels.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "channel/channel.hpp"
#include "rng/hash_family.hpp"
#include "sim/devices.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"
#include "tags/cost_model.hpp"

namespace pet::chan {

/// Which protocol's tag firmware to flash onto the simulated tags.
enum class DeviceKind : std::uint8_t { kPet, kFneb, kLof };

struct DeviceChannelConfig {
  unsigned tree_height = 32;
  rng::HashKind hash = rng::HashKind::kMix64;
  sim::PetTagDevice::CodeMode pet_mode =
      sim::PetTagDevice::CodeMode::kPreloaded;
  std::uint64_t manufacturing_seed = 0x9a9a5eedULL;
  sim::ChannelImpairments impairments{};
  sim::SlotTiming timing{};
};

class DeviceChannel final : public PrefixChannel,
                            public RangeChannel,
                            public FrameChannel {
 public:
  DeviceChannel(std::span<const TagId> tags, DeviceKind kind,
                DeviceChannelConfig config = {});

  [[nodiscard]] std::size_t tag_count() const noexcept {
    return devices_.size();
  }
  [[nodiscard]] DeviceKind kind() const noexcept { return kind_; }

  // PrefixChannel (DeviceKind::kPet)
  void begin_round(const RoundConfig& round) override;
  bool query_prefix(unsigned len) override;

  // RangeChannel (DeviceKind::kFneb)
  void begin_range_frame(const RangeFrameConfig& frame) override;
  bool query_range(std::uint64_t bound) override;

  // FrameChannel (DeviceKind::kLof)
  const std::vector<SlotOutcome>& run_frame(const FrameConfig& frame) override;

  [[nodiscard]] const sim::SlotLedger& ledger() const noexcept override {
    return medium_.ledger();
  }
  void reset_ledger() noexcept override { medium_.reset_ledger(); }
  void note_retries(std::uint64_t slots) noexcept override {
    medium_.note_retries(slots);
  }

  /// Aggregate on-chip cost across all tags (hashes, compares, replies).
  [[nodiscard]] tags::TagCostLedger total_tag_cost() const noexcept;

  /// Simulated wall-clock time spent on the air so far.
  [[nodiscard]] sim::SimTime airtime_now() const noexcept {
    return simulator_.now();
  }

  /// Install a per-slot observer on the underlying medium (tracing,
  /// anonymity auditing); see sim::Medium::set_observer.
  void set_observer(sim::Medium::Observer observer) {
    medium_.set_observer(std::move(observer));
  }

 private:
  DeviceKind kind_;
  DeviceChannelConfig config_;
  sim::Simulator simulator_;
  sim::Medium medium_;
  std::vector<std::unique_ptr<sim::TagDeviceBase>> devices_;
  BitCode round_path_;
  std::vector<SlotOutcome> frame_outcomes_;  ///< run_frame result buffer
  unsigned round_query_bits_ = 32;
  unsigned range_query_bits_ = 32;
};

}  // namespace pet::chan
