#include "channel/arena.hpp"

#include <cstddef>
#include <optional>

namespace pet::chan {

SortedPetChannel& arena_sorted_pet_channel(
    const std::vector<TagId>& ids, const SortedPetChannelConfig& config) {
  struct Arena {
    const void* ids_data = nullptr;
    std::size_t ids_size = 0;
    unsigned tree_height = 0;
    rng::HashKind hash = rng::HashKind::kMix64;
    std::optional<SortedPetChannel> channel;
  };
  thread_local Arena arena;
  if (!arena.channel.has_value() ||
      arena.ids_data != static_cast<const void*>(ids.data()) ||
      arena.ids_size != ids.size() ||
      arena.tree_height != config.tree_height || arena.hash != config.hash) {
    arena.channel.emplace(ids, config);
    arena.ids_data = ids.data();
    arena.ids_size = ids.size();
    arena.tree_height = config.tree_height;
    arena.hash = config.hash;
  } else {
    arena.channel->rebuild(config.manufacturing_seed);
  }
  arena.channel->reset_ledger();
  return *arena.channel;
}

SampledChannel& arena_sampled_channel(std::uint64_t tag_count,
                                      std::uint64_t seed) {
  thread_local std::optional<SampledChannel> channel;
  if (!channel.has_value()) {
    channel.emplace(tag_count, seed);
  } else {
    channel->reset(tag_count, seed);
  }
  return *channel;
}

}  // namespace pet::chan
