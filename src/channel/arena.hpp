// Per-worker-thread channel arenas for TrialRunner-driven sweeps.
//
// A sweep runs thousands of independent trials whose channels differ only
// in their seed; constructing a fresh channel per trial makes allocation
// and (for SortedPetChannel) hashing + sorting the dominant cost of a
// trial.  These helpers hand each worker thread one long-lived channel that
// is re-keyed per trial — SortedPetChannel::rebuild / SampledChannel::reset
// reinstate exactly the freshly-constructed state while retaining every
// buffer, so steady-state trials allocate nothing (docs/performance.md).
//
// Callers gate use on pet::fast_path_enabled(): the slow path keeps the
// historical per-trial construction for A/B comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"

namespace pet::chan {

/// Thread-local SortedPetChannel over `ids`, rebuilt (not reconstructed)
/// when only config.manufacturing_seed changed since this thread's last
/// call, with its ledger reset either way.  `ids` must stay alive while
/// trials on this thread use the returned channel (sweeps keep the
/// population alive across the whole run; the arena is keyed on the vector
/// identity plus the config fields shaping the code array, so the stored
/// tags pointer always equals the live vector checked here).
[[nodiscard]] SortedPetChannel& arena_sorted_pet_channel(
    const std::vector<TagId>& ids, const SortedPetChannelConfig& config);

/// Thread-local SampledChannel (default config, which every rehash-per-
/// round baseline uses), reset to (tag_count, seed) with a zeroed ledger.
[[nodiscard]] SampledChannel& arena_sampled_channel(std::uint64_t tag_count,
                                                    std::uint64_t seed);

}  // namespace pet::chan
