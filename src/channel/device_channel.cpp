#include "channel/device_channel.hpp"

#include "common/ensure.hpp"
#include "obs/instruments.hpp"

namespace pet::chan {

namespace {
const obs::ChannelInstruments& chan_obs() {
  static const obs::ChannelInstruments bundle("device");
  return bundle;
}
}  // namespace

DeviceChannel::DeviceChannel(std::span<const TagId> tags, DeviceKind kind,
                             DeviceChannelConfig config)
    : kind_(kind), config_(config),
      medium_(config.impairments, config.timing) {
  devices_.reserve(tags.size());
  for (const TagId id : tags) {
    switch (kind_) {
      case DeviceKind::kPet:
        devices_.push_back(std::make_unique<sim::PetTagDevice>(
            id, config_.hash, config_.tree_height, config_.pet_mode,
            config_.manufacturing_seed));
        break;
      case DeviceKind::kFneb:
        devices_.push_back(
            std::make_unique<sim::FnebTagDevice>(id, config_.hash));
        break;
      case DeviceKind::kLof:
        devices_.push_back(
            std::make_unique<sim::LofTagDevice>(id, config_.hash));
        break;
    }
    medium_.attach(devices_.back().get());
  }
}

void DeviceChannel::begin_round(const RoundConfig& round) {
  expects(kind_ == DeviceKind::kPet,
          "begin_round requires PET tag devices");
  expects(round.path.width() == config_.tree_height,
          "begin_round: path width must equal the tree height H");
  round_path_ = round.path;
  round_query_bits_ = round.query_bits;
  if (obs::counters_enabled()) chan_obs().rounds.add();
  medium_.broadcast(
      sim::RoundBeginCmd{round.path, round.seed, round.tags_rehash,
                         round.begin_bits},
      simulator_);
}

bool DeviceChannel::query_prefix(unsigned len) {
  expects(kind_ == DeviceKind::kPet, "query_prefix requires PET tag devices");
  expects(len <= config_.tree_height, "query_prefix: len exceeds H");
  if (obs::counters_enabled()) chan_obs().probe_slots.add();
  const auto obs = medium_.run_slot(
      sim::PrefixQueryCmd{round_path_, len, round_query_bits_}, simulator_);
  if (obs::counters_enabled() && is_nonempty(obs.outcome)) {
    chan_obs().busy_slots.add();
  }
  return is_nonempty(obs.outcome);
}

void DeviceChannel::begin_range_frame(const RangeFrameConfig& frame) {
  expects(kind_ == DeviceKind::kFneb,
          "begin_range_frame requires FNEB tag devices");
  range_query_bits_ = frame.query_bits;
  medium_.broadcast(
      sim::FrameBeginCmd{frame.seed, frame.frame_size, 1.0, frame.begin_bits},
      simulator_);
}

bool DeviceChannel::query_range(std::uint64_t bound) {
  expects(kind_ == DeviceKind::kFneb,
          "query_range requires FNEB tag devices");
  if (obs::counters_enabled()) chan_obs().frame_slots.add();
  const auto obs = medium_.run_slot(
      sim::RangeQueryCmd{bound, range_query_bits_}, simulator_);
  if (obs::counters_enabled() && is_nonempty(obs.outcome)) {
    chan_obs().busy_slots.add();
  }
  return is_nonempty(obs.outcome);
}

const std::vector<SlotOutcome>& DeviceChannel::run_frame(
    const FrameConfig& frame) {
  expects(kind_ == DeviceKind::kLof, "run_frame requires LoF tag devices");
  expects(frame.persistence == 1.0,
          "LoF device frames do not use persistence");
  medium_.broadcast(sim::FrameBeginCmd{frame.seed, frame.frame_size, 1.0,
                                       frame.begin_bits},
                    simulator_);
  frame_outcomes_.clear();
  frame_outcomes_.reserve(frame.frame_size);
  for (std::uint64_t slot = 1; slot <= frame.frame_size; ++slot) {
    const auto obs = medium_.run_slot(
        sim::SlotPollCmd{slot, frame.poll_bits}, simulator_);
    if (obs::counters_enabled()) {
      chan_obs().frame_slots.add();
      if (is_nonempty(obs.outcome)) chan_obs().busy_slots.add();
    }
    frame_outcomes_.push_back(obs.outcome);
  }
  return frame_outcomes_;
}

tags::TagCostLedger DeviceChannel::total_tag_cost() const noexcept {
  tags::TagCostLedger total;
  for (const auto& device : devices_) total += device->cost();
  return total;
}

}  // namespace pet::chan
