#include "channel/sorted_pet_channel.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace pet::chan {

namespace {
const obs::ChannelInstruments& chan_obs() {
  static const obs::ChannelInstruments bundle("sorted");
  return bundle;
}
}  // namespace

SortedPetChannel::SortedPetChannel(const std::vector<TagId>& tags,
                                   SortedPetChannelConfig config)
    : config_(config) {
  expects(config_.tree_height >= 1 &&
              config_.tree_height <= BitCode::kMaxWidth,
          "SortedPetChannel: tree height must be in [1, 64]");
  code_values_.reserve(tags.size());
  for (const TagId id : tags) {
    code_values_.push_back(rng::uniform_code(config_.hash,
                                             config_.manufacturing_seed, id,
                                             config_.tree_height)
                               .value());
  }
  std::sort(code_values_.begin(), code_values_.end());
}

SortedPetChannel::~SortedPetChannel() {
  // Publish the slots accounted since the last round boundary; without this
  // the final round of every estimate would be missing from the registry.
  try {
    flush_obs();
  } catch (...) {
    // Registration can throw (registry capacity); counts are best-effort
    // here and a throwing destructor would be worse than a short snapshot.
  }
}

// This channel is the large-sweep hot path, so unlike the other back ends
// it records nothing per slot: query_prefix only mutates the ledger (which
// it does anyway), and the obs mirror is brought up to date by diffing the
// ledger against the last published state at round boundaries.  Totals are
// identical to per-slot recording -- the mirror is a sum either way -- and
// the disabled path through query_prefix carries no obs code at all (the
// <= 2% overhead budget, bench/micro_ops BM_PetRoundObsOff).  The trace
// logical clock consequently advances at round granularity on this backend.
void SortedPetChannel::flush_obs() {
  if (!obs::counters_enabled()) {
    // Forget anything accounted while disabled so a later enable does not
    // retroactively publish slots from the disabled era.
    obs_published_ = ledger_;
    return;
  }
  const std::uint64_t idle = ledger_.idle_slots - obs_published_.idle_slots;
  const std::uint64_t single =
      ledger_.singleton_slots - obs_published_.singleton_slots;
  const std::uint64_t coll =
      ledger_.collision_slots - obs_published_.collision_slots;
  const std::uint64_t slots = idle + single + coll;
  if (slots != 0 || ledger_.reader_bits != obs_published_.reader_bits ||
      ledger_.retry_slots != obs_published_.retry_slots) {
    const obs::LedgerInstruments& li = obs::ledger_instruments();
    li.idle_slots.add(idle);
    li.singleton_slots.add(single);
    li.collision_slots.add(coll);
    li.retry_slots.add(ledger_.retry_slots - obs_published_.retry_slots);
    li.reader_bits.add(ledger_.reader_bits - obs_published_.reader_bits);
    li.tag_bits.add(ledger_.tag_bits - obs_published_.tag_bits);
    chan_obs().probe_slots.add(slots);
    chan_obs().busy_slots.add(single + coll);
    if (obs::full_enabled()) obs::advance_trace_slots(slots);
  }
  obs_published_ = ledger_;
}

void SortedPetChannel::begin_round(const RoundConfig& round) {
  expects(round.path.width() == config_.tree_height,
          "begin_round: path width must equal the tree height H");
  expects(!round.tags_rehash,
          "SortedPetChannel supports preloaded-code mode only (Algorithm 4); "
          "use ExactChannel or DeviceChannel for per-round rehashing");
  path_value_ = round.path.value();
  query_bits_ = round.query_bits;
  round_open_ = true;
  flush_obs();
  ledger_.reader_bits += round.begin_bits;
  if (obs::counters_enabled()) chan_obs().rounds.add();
}

bool SortedPetChannel::query_prefix(unsigned len) {
  expects(round_open_, "query_prefix before begin_round");
  expects(len <= config_.tree_height, "query_prefix: len exceeds H");

  std::size_t responders;
  if (len == 0) {
    responders = code_values_.size();
  } else {
    const unsigned shift = config_.tree_height - len;
    const std::uint64_t lo = (path_value_ >> shift) << shift;
    const auto first = std::lower_bound(code_values_.begin(),
                                        code_values_.end(), lo);
    // hi wraps to 0 exactly when the probed range reaches the top of the
    // code space (all-ones prefix with H == 64); the range then extends to
    // the end of the array.
    const std::uint64_t hi = lo + (std::uint64_t{1} << shift);
    const auto last = (hi == 0)
                          ? code_values_.end()
                          : std::lower_bound(first, code_values_.end(), hi);
    responders = static_cast<std::size_t>(last - first);
  }

  if (responders == 0) {
    ++ledger_.idle_slots;
  } else if (responders == 1) {
    ++ledger_.singleton_slots;
  } else {
    ++ledger_.collision_slots;
  }
  ledger_.reader_bits += query_bits_;
  ledger_.tag_bits += responders;
  ledger_.airtime_us += config_.timing.slot_us();
  return responders > 0;
}

}  // namespace pet::chan
