#include "channel/sorted_pet_channel.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace pet::chan {

SortedPetChannel::SortedPetChannel(const std::vector<TagId>& tags,
                                   SortedPetChannelConfig config)
    : config_(config) {
  expects(config_.tree_height >= 1 &&
              config_.tree_height <= BitCode::kMaxWidth,
          "SortedPetChannel: tree height must be in [1, 64]");
  code_values_.reserve(tags.size());
  for (const TagId id : tags) {
    code_values_.push_back(rng::uniform_code(config_.hash,
                                             config_.manufacturing_seed, id,
                                             config_.tree_height)
                               .value());
  }
  std::sort(code_values_.begin(), code_values_.end());
}

void SortedPetChannel::begin_round(const RoundConfig& round) {
  expects(round.path.width() == config_.tree_height,
          "begin_round: path width must equal the tree height H");
  expects(!round.tags_rehash,
          "SortedPetChannel supports preloaded-code mode only (Algorithm 4); "
          "use ExactChannel or DeviceChannel for per-round rehashing");
  path_value_ = round.path.value();
  query_bits_ = round.query_bits;
  round_open_ = true;
  ledger_.reader_bits += round.begin_bits;
}

bool SortedPetChannel::query_prefix(unsigned len) {
  expects(round_open_, "query_prefix before begin_round");
  expects(len <= config_.tree_height, "query_prefix: len exceeds H");

  std::size_t responders;
  if (len == 0) {
    responders = code_values_.size();
  } else {
    const unsigned shift = config_.tree_height - len;
    const std::uint64_t lo = (path_value_ >> shift) << shift;
    const auto first = std::lower_bound(code_values_.begin(),
                                        code_values_.end(), lo);
    // hi wraps to 0 exactly when the probed range reaches the top of the
    // code space (all-ones prefix with H == 64); the range then extends to
    // the end of the array.
    const std::uint64_t hi = lo + (std::uint64_t{1} << shift);
    const auto last = (hi == 0)
                          ? code_values_.end()
                          : std::lower_bound(first, code_values_.end(), hi);
    responders = static_cast<std::size_t>(last - first);
  }

  if (responders == 0) {
    ++ledger_.idle_slots;
  } else if (responders == 1) {
    ++ledger_.singleton_slots;
  } else {
    ++ledger_.collision_slots;
  }
  ledger_.reader_bits += query_bits_;
  ledger_.tag_bits += responders;
  ledger_.airtime_us += config_.timing.slot_us();
  return responders > 0;
}

}  // namespace pet::chan
