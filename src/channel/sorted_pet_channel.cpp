#include "channel/sorted_pet_channel.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/ensure.hpp"
#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "common/radix.hpp"
#include "common/simd.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace pet::chan {

namespace {
const obs::ChannelInstruments& chan_obs() {
  static const obs::ChannelInstruments bundle("sorted");
  return bundle;
}
}  // namespace

SortedPetChannel::SortedPetChannel(const std::vector<TagId>& tags,
                                   SortedPetChannelConfig config)
    : config_(config), tags_(&tags) {
  expects(config_.tree_height >= 1 &&
              config_.tree_height <= BitCode::kMaxWidth,
          "SortedPetChannel: tree height must be in [1, 64]");
  build_codes();
}

// Hash + sort the preloaded codes.  The fast path batches the hashing (seed
// mix hoisted, SIMD lanes at the active pet::simd_tier()) and radix-sorts —
// through the parallel MSB partition when a build executor is registered
// (runtime::configure_build_parallelism).  Every variant produces the same
// sorted value array as the element-wise hash + std::sort they replace, so
// every downstream probe answer is unchanged (tests/fastpath_test.cpp,
// tests/simd_parity_test.cpp, tests/parallel_build_test.cpp).
void SortedPetChannel::build_codes() {
  if (fast_path_enabled()) {
    if (!obs::counters_enabled()) {
      rng::uniform_code_batch(config_.hash, config_.manufacturing_seed,
                              *tags_, config_.tree_height, code_values_);
      radix_sort_u64_parallel(code_values_, sort_scratch_,
                              config_.tree_height, build_parallel_for());
      return;
    }
    // Instrumented build: same calls, bracketed by the pet.build.* bundle
    // (one clock pair per *build*, not per element — well under the obs
    // hot-path budget, and only on the enabled branch).
    using Clock = std::chrono::steady_clock;
    const obs::BuildInstruments& bi = obs::build_instruments();
    const auto t0 = Clock::now();
    rng::uniform_code_batch(config_.hash, config_.manufacturing_seed, *tags_,
                            config_.tree_height, code_values_);
    const auto t1 = Clock::now();
    RadixPartitionStats stats;
    radix_sort_u64_parallel(code_values_, sort_scratch_, config_.tree_height,
                            build_parallel_for(), &stats);
    const auto t2 = Clock::now();
    const auto us = [](Clock::duration d) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(d).count());
    };
    bi.builds.add();
    bi.codes.add(code_values_.size());
    bi.hash_us.add(us(t1 - t0));
    bi.sort_us.add(us(t2 - t1));
    bi.simd_lanes.set(simd_lanes(simd_tier()));
    bi.partition_workers.set(stats.workers);
    if (stats.workers > 1 && stats.buckets_used > 0) {
      bi.partition_buckets.set(stats.buckets_used);
      const double mean = static_cast<double>(code_values_.size()) /
                          static_cast<double>(stats.buckets_used);
      bi.bucket_skew_milli.set(1000.0 *
                               static_cast<double>(stats.max_bucket) / mean);
    }
    return;
  }
  code_values_.clear();
  code_values_.reserve(tags_->size());
  for (const TagId id : *tags_) {
    code_values_.push_back(rng::uniform_code(config_.hash,
                                             config_.manufacturing_seed, id,
                                             config_.tree_height)
                               .value());
  }
  std::sort(code_values_.begin(), code_values_.end());
}

void SortedPetChannel::rebuild(std::uint64_t manufacturing_seed) {
  flush_obs();
  config_.manufacturing_seed = manufacturing_seed;
  round_open_ = false;
  depth_valid_ = false;
  build_codes();
}

SortedPetChannel::~SortedPetChannel() {
  // Publish the slots accounted since the last round boundary; without this
  // the final round of every estimate would be missing from the registry.
  try {
    flush_obs();
  } catch (...) {
    // Registration can throw (registry capacity); counts are best-effort
    // here and a throwing destructor would be worse than a short snapshot.
  }
}

// This channel is the large-sweep hot path, so unlike the other back ends
// it records nothing per slot: query_prefix only mutates the ledger (which
// it does anyway), and the obs mirror is brought up to date by diffing the
// ledger against the last published state at round boundaries.  Totals are
// identical to per-slot recording -- the mirror is a sum either way -- and
// the disabled path through query_prefix carries no obs code at all (the
// <= 2% overhead budget, bench/micro_ops BM_PetRoundObsOff).  The trace
// logical clock consequently advances at round granularity on this backend.
void SortedPetChannel::flush_obs() {
  if (!obs::counters_enabled()) {
    // Forget anything accounted while disabled so a later enable does not
    // retroactively publish slots from the disabled era.
    obs_published_ = ledger_;
    return;
  }
  const std::uint64_t idle = ledger_.idle_slots - obs_published_.idle_slots;
  const std::uint64_t single =
      ledger_.singleton_slots - obs_published_.singleton_slots;
  const std::uint64_t coll =
      ledger_.collision_slots - obs_published_.collision_slots;
  const std::uint64_t slots = idle + single + coll;
  if (slots != 0 || ledger_.reader_bits != obs_published_.reader_bits ||
      ledger_.retry_slots != obs_published_.retry_slots) {
    const obs::LedgerInstruments& li = obs::ledger_instruments();
    li.idle_slots.add(idle);
    li.singleton_slots.add(single);
    li.collision_slots.add(coll);
    li.retry_slots.add(ledger_.retry_slots - obs_published_.retry_slots);
    li.reader_bits.add(ledger_.reader_bits - obs_published_.reader_bits);
    li.tag_bits.add(ledger_.tag_bits - obs_published_.tag_bits);
    chan_obs().probe_slots.add(slots);
    chan_obs().busy_slots.add(single + coll);
    if (obs::full_enabled()) obs::advance_trace_slots(slots);
  }
  obs_published_ = ledger_;
}

void SortedPetChannel::begin_round(const RoundConfig& round) {
  expects(round.path.width() == config_.tree_height,
          "begin_round: path width must equal the tree height H");
  expects(!round.tags_rehash,
          "SortedPetChannel supports preloaded-code mode only (Algorithm 4); "
          "use ExactChannel or DeviceChannel for per-round rehashing");
  path_value_ = round.path.value();
  query_bits_ = round.query_bits;
  round_open_ = true;
  depth_valid_ = false;
  flush_obs();
  ledger_.reader_bits += round.begin_bits;
  if (obs::counters_enabled()) chan_obs().rounds.add();
}

// One insertion-point lookup locates the sorted neighborhood of the path
// value; the deepest busy prefix is then the longer of the path's LCPs with
// its two neighbors.  (For any query, the longest-common-prefix maximum
// over a sorted array is attained at an element adjacent to the query's
// insertion point: every other element differs from the query at or before
// the bit where its nearer neighbor does.)
void SortedPetChannel::ensure_depth() {
  if (depth_valid_) return;
  expects(round_open_, "round_depth before begin_round");
  const unsigned height = config_.tree_height;
  const auto lcp = [height](std::uint64_t a, std::uint64_t b) noexcept {
    const std::uint64_t x = a ^ b;
    if (x == 0) return height;
    // Codes occupy the low H bits; string bit 0 is value bit H-1.
    return static_cast<unsigned>(std::countl_zero(x)) -
           (BitCode::kMaxWidth - height);
  };
  const auto first = std::lower_bound(code_values_.begin(),
                                      code_values_.end(), path_value_);
  pos_ = static_cast<std::size_t>(first - code_values_.begin());
  unsigned depth = 0;
  if (pos_ < code_values_.size()) {
    depth = lcp(code_values_[pos_], path_value_);
  }
  if (pos_ > 0) {
    depth = std::max(depth, lcp(code_values_[pos_ - 1], path_value_));
  }
  depth_ = depth;
  depth_valid_ = true;
}

unsigned SortedPetChannel::round_depth() {
  ensure_depth();
  return depth_;
}

bool SortedPetChannel::query_prefix(unsigned len) {
  expects(round_open_, "query_prefix before begin_round");
  expects(len <= config_.tree_height, "query_prefix: len exceeds H");

  std::size_t responders;
  if (len == 0) {
    responders = code_values_.size();
  } else {
    const unsigned shift = config_.tree_height - len;
    const std::uint64_t lo = (path_value_ >> shift) << shift;
    const auto first = std::lower_bound(code_values_.begin(),
                                        code_values_.end(), lo);
    // hi wraps to 0 exactly when the probed range reaches the top of the
    // code space (all-ones prefix with H == 64); the range then extends to
    // the end of the array.
    const std::uint64_t hi = lo + (std::uint64_t{1} << shift);
    const auto last = (hi == 0)
                          ? code_values_.end()
                          : std::lower_bound(first, code_values_.end(), hi);
    responders = static_cast<std::size_t>(last - first);
  }

  account_probe(responders);
  return responders > 0;
}

// Synthesized probe: the busy verdict comes from the round depth (busy iff
// len <= d, n >= 1), so idle probes are answered without any search, and
// busy probes count responders with searches bounded by the insertion
// point pos_ (the matching range always brackets it).  The accounting call
// is the same one query_prefix makes -- one call per probe with the same
// addends -- so ledger totals, including the floating-point airtime sum,
// are bit-identical.
bool SortedPetChannel::synth_probe(unsigned len) {
  expects(round_open_, "synth_probe before begin_round");
  expects(len <= config_.tree_height, "synth_probe: len exceeds H");
  ensure_depth();

  std::size_t responders;
  if (len == 0) {
    responders = code_values_.size();
  } else if (code_values_.empty() || len > depth_) {
    responders = 0;
  } else {
    const unsigned shift = config_.tree_height - len;
    const std::uint64_t lo = (path_value_ >> shift) << shift;
    // lo <= path_value_ < hi, so the matching range's bounds straddle pos_:
    // search only [begin, pos_) for the left edge and [pos_, end) for the
    // right edge.
    const auto first = std::lower_bound(code_values_.begin(),
                                        code_values_.begin() +
                                            static_cast<std::ptrdiff_t>(pos_),
                                        lo);
    const std::uint64_t hi = lo + (std::uint64_t{1} << shift);
    const auto last =
        (hi == 0) ? code_values_.end()
                  : std::lower_bound(code_values_.begin() +
                                         static_cast<std::ptrdiff_t>(pos_),
                                     code_values_.end(), hi);
    responders = static_cast<std::size_t>(last - first);
  }

  account_probe(responders);
  return responders > 0;
}

void SortedPetChannel::account_probe(std::size_t responders) noexcept {
  if (responders == 0) {
    ++ledger_.idle_slots;
  } else if (responders == 1) {
    ++ledger_.singleton_slots;
  } else {
    ++ledger_.collision_slots;
  }
  ledger_.reader_bits += query_bits_;
  ledger_.tag_bits += responders;
  ledger_.airtime_us += config_.timing.slot_us();
}

}  // namespace pet::chan
