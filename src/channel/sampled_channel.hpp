// SampledChannel: distribution-exact back end that needs only the tag
// *count* n, never per-tag state.
//
// For protocols that re-randomize every round (PET Algorithm 2, FNEB, LoF,
// UPE, EZB), the per-round observable has a closed-form distribution in n:
//   * PET prefix depth d:  P(d >= k) = 1 - (1 - 2^-k)^n        (Eq. 5 view)
//   * FNEB first nonempty: P(X > b)  = ((f - b)/f)^n
//   * frame occupancy:     multinomial, sampled exactly by sequential
//                          binomial splitting slot by slot.
// Sampling that distribution directly is *statistically identical* to
// hashing n tags (property-tested against ExactChannel) and costs O(H),
// O(1) and O(f) per round respectively — enabling the paper's 300-run
// million-tag sweeps on a laptop.
//
// Caveats, by design:
//   * rounds are independent — this models per-round rehashing, not the
//     shared preloaded codes of Algorithm 4 (use SortedPetChannel there);
//   * the ledger cannot distinguish singleton from collision for PET/FNEB
//     probes (only presence is sampled), so nonempty probe slots are
//     recorded as collisions; estimation protocols never use that split.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.hpp"
#include "obs/instruments.hpp"
#include "rng/prng.hpp"
#include "sim/simulator.hpp"

namespace pet::chan {

struct SampledChannelConfig {
  unsigned tree_height = 32;
  sim::SlotTiming timing{};
};

class SampledChannel final : public PrefixChannel,
                             public RangeChannel,
                             public FrameChannel {
 public:
  SampledChannel(std::uint64_t tag_count, std::uint64_t seed,
                 SampledChannelConfig config = {});

  [[nodiscard]] std::uint64_t tag_count() const noexcept { return n_; }

  /// Change the population size (dynamic scenarios); next round sees it.
  void set_tag_count(std::uint64_t n) noexcept { n_ = n; }

  /// Reinitialize to the state of a freshly constructed channel with this
  /// population and seed, keeping the capacity of internal buffers.  Lets
  /// the sweep harness reuse one channel per worker thread instead of
  /// constructing one per trial.
  void reset(std::uint64_t tag_count, std::uint64_t seed) noexcept;

  // PrefixChannel
  void begin_round(const RoundConfig& round) override;
  bool query_prefix(unsigned len) override;

  // RangeChannel
  void begin_range_frame(const RangeFrameConfig& frame) override;
  bool query_range(std::uint64_t bound) override;

  // FrameChannel
  const std::vector<SlotOutcome>& run_frame(const FrameConfig& frame) override;

  [[nodiscard]] const sim::SlotLedger& ledger() const noexcept override {
    return ledger_;
  }
  void reset_ledger() noexcept override { ledger_ = {}; }
  void note_retries(std::uint64_t slots) noexcept override {
    ledger_.retry_slots += slots;
    if (obs::counters_enabled()) {
      obs::ledger_instruments().retry_slots.add(slots);
    }
  }

 private:
  void account_slot(bool busy, unsigned downlink_bits,
                    std::uint64_t responders_hint);

  std::uint64_t n_;
  SampledChannelConfig config_;
  rng::Xoshiro256ss gen_;
  unsigned round_depth_ = 0;       ///< sampled d for the open PET round
  bool round_open_ = false;
  unsigned round_query_bits_ = 32;
  std::uint64_t first_nonempty_ = 0;  ///< sampled X for the open FNEB frame
  bool range_open_ = false;
  unsigned range_query_bits_ = 32;
  std::uint8_t obs_mode_ = 0;  ///< obs level snapshot, refreshed per round/frame
  std::vector<SlotOutcome> frame_outcomes_;  ///< run_frame result buffer
  sim::SlotLedger ledger_;
};

}  // namespace pet::chan
