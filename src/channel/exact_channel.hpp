// ExactChannel: the reference back end.  Hashes every tag per round exactly
// as the tag devices would, and answers every probe by counting matching
// tags.  O(n) work per round (plus O(1) per probe via per-depth prefix
// counts), exact slot outcomes including singleton/collision distinction.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.hpp"
#include "obs/instruments.hpp"
#include "rng/hash_family.hpp"
#include "sim/simulator.hpp"

namespace pet::chan {

struct ExactChannelConfig {
  unsigned tree_height = 32;          ///< H: PET code width
  rng::HashKind hash = rng::HashKind::kMix64;
  bool preloaded_codes = true;        ///< PET Alg. 4 (true) vs Alg. 2 (false)
  std::uint64_t manufacturing_seed = 0x9a9a5eedULL;
  sim::SlotTiming timing{};
};

class ExactChannel final : public PrefixChannel,
                           public RangeChannel,
                           public FrameChannel {
 public:
  ExactChannel(std::vector<TagId> tags, ExactChannelConfig config = {});

  [[nodiscard]] std::size_t tag_count() const noexcept { return tags_.size(); }

  // PrefixChannel
  void begin_round(const RoundConfig& round) override;
  bool query_prefix(unsigned len) override;

  // RangeChannel
  void begin_range_frame(const RangeFrameConfig& frame) override;
  bool query_range(std::uint64_t bound) override;

  // FrameChannel
  const std::vector<SlotOutcome>& run_frame(const FrameConfig& frame) override;

  [[nodiscard]] const sim::SlotLedger& ledger() const noexcept override {
    return ledger_;
  }
  void reset_ledger() noexcept override { ledger_ = {}; }
  void note_retries(std::uint64_t slots) noexcept override {
    ledger_.retry_slots += slots;
    if (obs::counters_enabled()) {
      obs::ledger_instruments().retry_slots.add(slots);
    }
  }

  /// Update the tag set (dynamic populations); takes effect next round.
  void set_tags(std::vector<TagId> tags);

 private:
  void account_slot(std::size_t responders, unsigned downlink_bits);

  std::vector<TagId> tags_;
  ExactChannelConfig config_;
  std::vector<BitCode> preloaded_;        ///< per-tag codes, Alg. 4 mode
  std::vector<std::uint32_t> depth_count_;  ///< round state: #tags with lcp >= k
  unsigned round_query_bits_ = 32;
  std::vector<std::uint64_t> range_slots_;  ///< round state: sorted slot picks
  std::vector<std::uint32_t> frame_occupancy_;  ///< run_frame scratch
  std::vector<SlotOutcome> frame_outcomes_;     ///< run_frame result buffer
  unsigned range_query_bits_ = 32;
  std::uint8_t obs_mode_ = 0;  ///< obs level snapshot, refreshed per round/frame
  sim::Simulator clock_;
  sim::SlotLedger ledger_;
};

}  // namespace pet::chan
