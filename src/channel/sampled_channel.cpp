#include "channel/sampled_channel.hpp"

#include <cmath>
#include <random>

#include "common/ensure.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace pet::chan {

namespace {
const obs::ChannelInstruments& chan_obs() {
  static const obs::ChannelInstruments bundle("sampled");
  return bundle;
}
}  // namespace

namespace {

/// Uniform double in (0, 1), 53-bit resolution.
double unit_uniform(rng::Xoshiro256ss& gen) {
  double u;
  do {
    u = static_cast<double>(gen() >> 11) * 0x1.0p-53;
  } while (u <= 0.0);
  return u;
}

}  // namespace

SampledChannel::SampledChannel(std::uint64_t tag_count, std::uint64_t seed,
                               SampledChannelConfig config)
    : n_(tag_count), config_(config), gen_(seed) {
  expects(config_.tree_height >= 1 &&
              config_.tree_height <= BitCode::kMaxWidth,
          "SampledChannel: tree height must be in [1, 64]");
}

void SampledChannel::reset(std::uint64_t tag_count,
                           std::uint64_t seed) noexcept {
  n_ = tag_count;
  gen_ = rng::Xoshiro256ss(seed);
  round_open_ = false;
  range_open_ = false;
  ledger_ = {};
}

void SampledChannel::account_slot(bool busy, unsigned downlink_bits,
                                  std::uint64_t responders_hint) {
  if (!busy) {
    ++ledger_.idle_slots;
  } else if (responders_hint == 1) {
    ++ledger_.singleton_slots;
  } else {
    ++ledger_.collision_slots;
  }
  ledger_.reader_bits += downlink_bits;
  ledger_.tag_bits += responders_hint;
  ledger_.airtime_us += config_.timing.slot_us();
  if (obs::counters_enabled(obs_mode_)) {
    obs::record_ledger_slot(!busy ? 0 : (responders_hint == 1 ? 1 : 2),
                            downlink_bits, responders_hint);
    if (busy) chan_obs().busy_slots.add();
    if (obs::full_enabled(obs_mode_)) obs::advance_trace_slot();
  }
}

void SampledChannel::begin_round(const RoundConfig& round) {
  expects(round.path.width() == config_.tree_height,
          "begin_round: path width must equal the tree height H");
  round_open_ = true;
  round_query_bits_ = round.query_bits;
  ledger_.reader_bits += round.begin_bits;
  obs_mode_ = obs::level_byte();
  if (obs::counters_enabled(obs_mode_)) {
    chan_obs().rounds.add();
    obs::ledger_instruments().reader_bits.add(round.begin_bits);
  }

  if (n_ == 0) {
    round_depth_ = 0;
    return;
  }
  // Inverse-transform sample of the prefix depth d:
  //   P(d <= k) = (1 - 2^-(k+1))^n   for k < H,   P(d <= H) = 1.
  const double u = unit_uniform(gen_);
  const double dn = static_cast<double>(n_);
  unsigned k = config_.tree_height;
  for (unsigned i = 0; i < config_.tree_height; ++i) {
    const double cdf = std::pow(1.0 - std::ldexp(1.0, -(static_cast<int>(i) + 1)), dn);
    if (cdf >= u) {
      k = i;
      break;
    }
  }
  round_depth_ = k;
}

bool SampledChannel::query_prefix(unsigned len) {
  expects(round_open_, "query_prefix before begin_round");
  expects(len <= config_.tree_height, "query_prefix: len exceeds H");
  const bool busy = (n_ > 0) && (len <= round_depth_);
  const std::uint64_t hint = !busy ? 0 : (len == 0 ? n_ : 2);
  if (obs::counters_enabled(obs_mode_)) chan_obs().probe_slots.add();
  account_slot(busy, round_query_bits_, hint);
  return busy;
}

void SampledChannel::begin_range_frame(const RangeFrameConfig& frame) {
  expects(frame.frame_size >= 1, "begin_range_frame: empty frame");
  range_open_ = true;
  range_query_bits_ = frame.query_bits;
  ledger_.reader_bits += frame.begin_bits;
  obs_mode_ = obs::level_byte();
  if (obs::counters_enabled(obs_mode_)) {
    obs::ledger_instruments().reader_bits.add(frame.begin_bits);
  }

  if (n_ == 0) {
    first_nonempty_ = frame.frame_size + 1;  // sentinel: never answered
    return;
  }
  // X = min of n iid uniform slots in [1, f]:  P(X > b) = ((f-b)/f)^n.
  const double u = unit_uniform(gen_);
  const double f = static_cast<double>(frame.frame_size);
  const double root = std::pow(u, 1.0 / static_cast<double>(n_));
  auto x = static_cast<std::uint64_t>(std::floor(f * (1.0 - root))) + 1;
  if (x < 1) x = 1;
  if (x > frame.frame_size) x = frame.frame_size;
  first_nonempty_ = x;
}

bool SampledChannel::query_range(std::uint64_t bound) {
  expects(range_open_, "query_range before begin_range_frame");
  const bool busy = bound >= first_nonempty_;
  if (obs::counters_enabled(obs_mode_)) chan_obs().frame_slots.add();
  account_slot(busy, range_query_bits_, busy ? 2 : 0);
  return busy;
}

const std::vector<SlotOutcome>& SampledChannel::run_frame(
    const FrameConfig& frame) {
  expects(frame.frame_size >= 1, "run_frame: empty frame");
  expects(frame.persistence > 0.0 && frame.persistence <= 1.0,
          "run_frame: persistence must be in (0, 1]");
  ledger_.reader_bits += frame.begin_bits;
  obs_mode_ = obs::level_byte();
  if (obs::counters_enabled(obs_mode_)) {
    obs::ledger_instruments().reader_bits.add(frame.begin_bits);
    chan_obs().frame_slots.add(frame.frame_size);
  }

  std::uint64_t remaining = n_;
  if (frame.persistence < 1.0 && remaining > 0) {
    std::binomial_distribution<std::uint64_t> participate(
        remaining, frame.persistence);
    remaining = participate(gen_);
  }

  // Exact multinomial occupancy via sequential binomial splitting: slot i
  // receives Binomial(remaining, p_i / mass_left) tags.
  frame_outcomes_.clear();
  frame_outcomes_.reserve(frame.frame_size);
  double mass_left = 1.0;
  for (std::uint64_t i = 1; i <= frame.frame_size; ++i) {
    double p_slot;
    if (frame.geometric) {
      p_slot = (i < frame.frame_size)
                   ? std::ldexp(1.0, -static_cast<int>(i))
                   : mass_left;  // tail mass collapses onto the last level
    } else {
      p_slot = 1.0 / static_cast<double>(frame.frame_size);
    }
    std::uint64_t count = 0;
    if (remaining > 0 && mass_left > 0.0) {
      const double q = std::min(1.0, p_slot / mass_left);
      std::binomial_distribution<std::uint64_t> draw(remaining, q);
      count = draw(gen_);
    }
    remaining -= count;
    mass_left -= p_slot;
    account_slot(count > 0, frame.poll_bits, count);
    frame_outcomes_.push_back(count == 0   ? SlotOutcome::kIdle
                              : count == 1 ? SlotOutcome::kSingleton
                                           : SlotOutcome::kCollision);
  }
  return frame_outcomes_;
}

}  // namespace pet::chan
