#include "channel/exact_channel.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace pet::chan {

namespace {
const obs::ChannelInstruments& chan_obs() {
  static const obs::ChannelInstruments bundle("exact");
  return bundle;
}
}  // namespace

ExactChannel::ExactChannel(std::vector<TagId> tags, ExactChannelConfig config)
    : tags_(std::move(tags)), config_(config) {
  expects(config_.tree_height >= 1 &&
              config_.tree_height <= BitCode::kMaxWidth,
          "ExactChannel: tree height must be in [1, 64]");
  if (config_.preloaded_codes) {
    preloaded_.reserve(tags_.size());
    for (const TagId id : tags_) {
      preloaded_.push_back(rng::uniform_code(config_.hash,
                                             config_.manufacturing_seed, id,
                                             config_.tree_height));
    }
  }
}

void ExactChannel::set_tags(std::vector<TagId> tags) {
  tags_ = std::move(tags);
  preloaded_.clear();
  if (config_.preloaded_codes) {
    preloaded_.reserve(tags_.size());
    for (const TagId id : tags_) {
      preloaded_.push_back(rng::uniform_code(config_.hash,
                                             config_.manufacturing_seed, id,
                                             config_.tree_height));
    }
  }
}

void ExactChannel::account_slot(std::size_t responders, unsigned downlink_bits) {
  if (responders == 0) {
    ++ledger_.idle_slots;
  } else if (responders == 1) {
    ++ledger_.singleton_slots;
  } else {
    ++ledger_.collision_slots;
  }
  ledger_.reader_bits += downlink_bits;
  ledger_.tag_bits += responders;  // presence replies are 1 bit each
  ledger_.airtime_us += config_.timing.slot_us();
  clock_.advance(config_.timing.slot_us());
  if (obs::counters_enabled(obs_mode_)) {
    obs::record_ledger_slot(responders, downlink_bits, responders);
    if (responders > 0) chan_obs().busy_slots.add();
    if (obs::full_enabled(obs_mode_)) obs::advance_trace_slot();
  }
}

void ExactChannel::begin_round(const RoundConfig& round) {
  expects(round.path.width() == config_.tree_height,
          "begin_round: path width must equal the tree height H");
  expects(config_.preloaded_codes || round.tags_rehash,
          "per-round-code mode requires tags_rehash rounds");

  const unsigned h = config_.tree_height;
  depth_count_.assign(h + 1, 0);
  round_query_bits_ = round.query_bits;

  // depth_count_[k] = number of tags whose code shares a >= k-bit prefix
  // with the path; computed by bucketing each tag's exact lcp.
  std::vector<std::uint32_t> at_depth(h + 1, 0);
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    const BitCode code =
        config_.preloaded_codes
            ? preloaded_[i]
            : rng::uniform_code(config_.hash, round.seed, tags_[i], h);
    ++at_depth[code.common_prefix_len(round.path)];
  }
  std::uint32_t suffix = 0;
  for (unsigned k = h + 1; k-- > 0;) {
    suffix += at_depth[k];
    depth_count_[k] = suffix;
  }
  ledger_.reader_bits += round.begin_bits;
  obs_mode_ = obs::level_byte();
  if (obs::counters_enabled(obs_mode_)) {
    chan_obs().rounds.add();
    obs::ledger_instruments().reader_bits.add(round.begin_bits);
  }
}

bool ExactChannel::query_prefix(unsigned len) {
  expects(len <= config_.tree_height, "query_prefix: len exceeds H");
  expects(!depth_count_.empty(), "query_prefix before begin_round");
  const std::size_t responders = depth_count_[len];
  if (obs::counters_enabled(obs_mode_)) chan_obs().probe_slots.add();
  account_slot(responders, round_query_bits_);
  return responders > 0;
}

void ExactChannel::begin_range_frame(const RangeFrameConfig& frame) {
  expects(frame.frame_size >= 1, "begin_range_frame: empty frame");
  range_slots_.clear();
  range_slots_.reserve(tags_.size());
  for (const TagId id : tags_) {
    range_slots_.push_back(
        rng::uniform_slot(config_.hash, frame.seed, id, frame.frame_size));
  }
  std::sort(range_slots_.begin(), range_slots_.end());
  range_query_bits_ = frame.query_bits;
  ledger_.reader_bits += frame.begin_bits;
  obs_mode_ = obs::level_byte();
  if (obs::counters_enabled(obs_mode_)) {
    obs::ledger_instruments().reader_bits.add(frame.begin_bits);
  }
}

bool ExactChannel::query_range(std::uint64_t bound) {
  const auto end = std::upper_bound(range_slots_.begin(), range_slots_.end(),
                                    bound);
  const auto responders =
      static_cast<std::size_t>(end - range_slots_.begin());
  if (obs::counters_enabled(obs_mode_)) chan_obs().frame_slots.add();
  account_slot(responders, range_query_bits_);
  return responders > 0;
}

const std::vector<SlotOutcome>& ExactChannel::run_frame(
    const FrameConfig& frame) {
  expects(frame.frame_size >= 1, "run_frame: empty frame");
  expects(frame.persistence > 0.0 && frame.persistence <= 1.0,
          "run_frame: persistence must be in (0, 1]");

  frame_occupancy_.assign(frame.frame_size, 0);
  std::vector<std::uint32_t>& occupancy = frame_occupancy_;
  for (const TagId id : tags_) {
    if (frame.persistence < 1.0) {
      const std::uint64_t coin = rng::uniform64(
          config_.hash, frame.seed ^ 0xc01cc01cc01cc01cULL, to_underlying(id));
      const auto threshold = static_cast<std::uint64_t>(
          frame.persistence * 18446744073709551615.0);
      if (coin > threshold) continue;
    }
    const std::uint64_t slot =
        frame.geometric
            ? rng::geometric_level(config_.hash, frame.seed, id,
                                   static_cast<unsigned>(frame.frame_size))
            : rng::uniform_slot(config_.hash, frame.seed, id,
                                frame.frame_size);
    ++occupancy[slot - 1];
  }

  ledger_.reader_bits += frame.begin_bits;
  obs_mode_ = obs::level_byte();
  if (obs::counters_enabled(obs_mode_)) {
    obs::ledger_instruments().reader_bits.add(frame.begin_bits);
    chan_obs().frame_slots.add(frame.frame_size);
  }
  frame_outcomes_.clear();
  frame_outcomes_.reserve(frame.frame_size);
  for (const std::uint32_t count : occupancy) {
    account_slot(count, frame.poll_bits);
    frame_outcomes_.push_back(count == 0   ? SlotOutcome::kIdle
                              : count == 1 ? SlotOutcome::kSingleton
                                           : SlotOutcome::kCollision);
  }
  return frame_outcomes_;
}

}  // namespace pet::chan
