// SortedPetChannel: scalable back end for preloaded-code PET (Algorithm 4).
//
// With preloaded codes the tag-side state never changes, so the channel
// sorts the code values once and answers every prefix probe with two binary
// searches (how many codes fall in the probed prefix's value range).  This
// is bit-identical to ExactChannel — same hash family, same codes, same
// outcomes including singleton/collision classification — at O(log n) per
// probe and O(1) per round, which is what makes the 300-run x million-tag
// paper sweeps tractable.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.hpp"
#include "rng/hash_family.hpp"
#include "sim/simulator.hpp"

namespace pet::chan {

struct SortedPetChannelConfig {
  unsigned tree_height = 32;
  rng::HashKind hash = rng::HashKind::kMix64;
  std::uint64_t manufacturing_seed = 0x9a9a5eedULL;
  sim::SlotTiming timing{};
};

class SortedPetChannel final : public PrefixChannel, public DepthOracle {
 public:
  /// `tags` must outlive the channel if rebuild() is used: rebuild rehashes
  /// through the reference captured here (the trial-arena reuse contract).
  SortedPetChannel(const std::vector<TagId>& tags,
                   SortedPetChannelConfig config = {});
  ~SortedPetChannel() override;

  [[nodiscard]] std::size_t tag_count() const noexcept {
    return code_values_.size();
  }

  /// Re-key the preloaded codes under a new manufacturing seed, reusing the
  /// channel's code and sort buffers.  Equivalent to destroying the channel
  /// and constructing a fresh one over the same tags with the new seed --
  /// this is what lets steady-state sweep trials allocate nothing.  Pending
  /// obs deltas are flushed first; the ledger is left untouched (callers
  /// reset_ledger() per trial as before).
  void rebuild(std::uint64_t manufacturing_seed);

  /// Publish ledger deltas accumulated since the last round boundary to the
  /// obs registry.  Called internally at round boundaries and destruction;
  /// arena-reusing drivers call it at trial end so metric snapshots taken
  /// while the channel is still alive are complete.
  void flush_obs();

  void begin_round(const RoundConfig& round) override;
  bool query_prefix(unsigned len) override;

  // DepthOracle: O(log n) once per round, then O(1) per idle probe.
  [[nodiscard]] unsigned round_depth() override;
  bool synth_probe(unsigned len) override;

  [[nodiscard]] const sim::SlotLedger& ledger() const noexcept override {
    return ledger_;
  }
  void reset_ledger() noexcept override {
    ledger_ = {};
    obs_published_ = {};
  }
  /// Retries land in the ledger only; the obs mirror picks up the delta at
  /// the next round boundary (see flush_obs in the .cpp).
  void note_retries(std::uint64_t slots) noexcept override {
    ledger_.retry_slots += slots;
  }

 private:
  void build_codes();
  void account_probe(std::size_t responders) noexcept;
  void ensure_depth();

  SortedPetChannelConfig config_;
  const std::vector<TagId>* tags_;          ///< rebuild() rehash source
  std::vector<std::uint64_t> code_values_;  ///< sorted H-bit code values
  std::vector<std::uint64_t> sort_scratch_;  ///< radix ping-pong buffer
  std::uint64_t path_value_ = 0;
  unsigned query_bits_ = 32;
  bool round_open_ = false;
  bool depth_valid_ = false;  ///< pos_/depth_ computed for this round
  std::size_t pos_ = 0;       ///< insertion point of path_value_
  unsigned depth_ = 0;        ///< max lcp(code, path) this round
  sim::SlotLedger ledger_;
  sim::SlotLedger obs_published_;  ///< ledger state already mirrored to obs
};

}  // namespace pet::chan
