// Channel abstractions: what an estimation protocol needs from the RFID air
// interface, separated from how it is simulated.
//
// Three query models cover every protocol in this library:
//   * PrefixChannel — PET's path-prefix probes;
//   * RangeChannel  — FNEB's "slot index <= bound" probes;
//   * FrameChannel  — framed protocols (LoF lottery frames, UPE/EZB ALOHA
//                     frames) that poll every slot of a frame.
//
// Four interchangeable back ends implement them (see DESIGN.md):
//   * ExactChannel     — per-tag hashing, O(n) per probe/frame: the
//                        reference semantics;
//   * SortedPetChannel — preloaded-code PET accelerated by a sorted code
//                        array, O(log n) per round, bit-identical to Exact;
//   * SampledChannel   — distribution-exact sampling that needs only n, for
//                        large-scale sweeps (no per-tag state at all);
//   * DeviceChannel    — full device-level simulation on the DES kernel
//                        (real tag state machines, impairments, airtime).
//
// Slot accounting is identical across back ends: one probe or one frame
// poll is one Reader-Talks-First slot in the ledger.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitcode.hpp"
#include "common/types.hpp"
#include "sim/medium.hpp"

namespace pet::chan {

/// Parameters announced at the start of one PET round (Algorithms 1-4).
struct RoundConfig {
  BitCode path;                ///< the estimating path r (width = H)
  std::uint64_t seed = 0;      ///< per-round hash seed s (rehash mode only)
  bool tags_rehash = false;    ///< Alg. 2 (true) vs Alg. 4 preloaded (false)
  unsigned begin_bits = 32;    ///< downlink bits for the round-begin packet
  unsigned query_bits = 32;    ///< downlink bits charged per prefix probe
};

/// PET's query model.
class PrefixChannel {
 public:
  virtual ~PrefixChannel() = default;

  virtual void begin_round(const RoundConfig& round) = 0;

  /// One slot: "tags matching the first `len` bits of the path, respond".
  /// Returns true iff the reply window was nonempty.  len in [0, H]
  /// (len == 0 is the "anyone there?" probe every tag answers).
  virtual bool query_prefix(unsigned len) = 0;

  /// Tag `slots` of the already-counted probe slots as re-reads in the
  /// ledger's retry accounting (SlotLedger::retry_slots).  Robust
  /// estimators call this after each voting re-read so the extra slot cost
  /// stays attributable; the default keeps plain estimators unaffected.
  virtual void note_retries(std::uint64_t slots) noexcept { (void)slots; }

  [[nodiscard]] virtual const sim::SlotLedger& ledger() const noexcept = 0;
  virtual void reset_ledger() noexcept = 0;
};

/// Optional capability on PrefixChannel back ends that know the full code
/// set and can therefore report the current round's gray-node depth
/// d = max_tag lcp(code, path) without issuing probes.  PET's round driver
/// uses it to synthesize the exact probe sequence (and byte-identical
/// SlotLedger totals) that Algorithm 1/3 descent would have produced: a
/// probe at prefix length len is busy iff len <= d (for n >= 1), so the
/// whole descent is a pure function of (d, H, search mode), and only the
/// busy probes need responder counts.  Discovered via dynamic_cast; back
/// ends without the capability keep the probed path (docs/performance.md).
class DepthOracle {
 public:
  virtual ~DepthOracle() = default;

  /// Depth of the deepest busy prefix of the current round's path: 0 when
  /// no tag matches even the first path bit (or n == 0), H when some code
  /// equals the path.  Valid only after begin_round.
  [[nodiscard]] virtual unsigned round_depth() = 0;

  /// Account one probe at prefix `len` exactly as query_prefix(len) would
  /// -- same ledger fields, same per-probe addends, same busy verdict --
  /// but answered from the depth cache instead of fresh full-range
  /// searches.  Idle probes (len > d) cost no searches at all.
  virtual bool synth_probe(unsigned len) = 0;
};

/// Parameters announced at the start of one FNEB round.
struct RangeFrameConfig {
  std::uint64_t seed = 0;
  std::uint64_t frame_size = 0;  ///< conceptual frame f (never fully polled)
  unsigned begin_bits = 32;
  unsigned query_bits = 32;
};

/// FNEB's query model.
class RangeChannel {
 public:
  virtual ~RangeChannel() = default;

  virtual void begin_range_frame(const RangeFrameConfig& frame) = 0;

  /// One slot: "tags whose frame slot is <= bound, respond".
  virtual bool query_range(std::uint64_t bound) = 0;

  [[nodiscard]] virtual const sim::SlotLedger& ledger() const noexcept = 0;
  virtual void reset_ledger() noexcept = 0;
};

/// One polled frame for LoF / UPE / EZB.
struct FrameConfig {
  std::uint64_t seed = 0;
  std::uint64_t frame_size = 0;  ///< number of polled slots
  double persistence = 1.0;      ///< per-tag participation probability
  bool geometric = false;        ///< LoF lottery levels vs uniform slots
  unsigned begin_bits = 32;
  unsigned poll_bits = 1;
};

/// Frame-based query model: polls every slot of the frame and reports the
/// per-slot outcomes in order.
class FrameChannel {
 public:
  virtual ~FrameChannel() = default;

  /// The returned reference points into a buffer owned by the channel and
  /// stays valid until the next run_frame on the same channel — back ends
  /// reuse it so repeated frames allocate nothing in steady state.
  virtual const std::vector<SlotOutcome>& run_frame(
      const FrameConfig& frame) = 0;

  [[nodiscard]] virtual const sim::SlotLedger& ledger() const noexcept = 0;
  virtual void reset_ledger() noexcept = 0;
};

}  // namespace pet::chan
