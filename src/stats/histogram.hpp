// Fixed-bin histogram used to render the Fig. 6 estimate distributions and
// to compare empirical distributions in property tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ensure.hpp"

namespace pet::stats {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); samples outside land in the under/overflow
  /// counters.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Midpoint of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Fraction of all samples (including under/overflow) in [lo, hi].
  [[nodiscard]] double fraction_within(double lo, double hi) const noexcept;

  /// Multi-line ASCII bar rendering (one row per bin), for harness output.
  [[nodiscard]] std::string render_ascii(std::size_t max_width = 60) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> samples_;  // kept for exact fraction_within
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace pet::stats
