// Gaussian tail utilities used by the round-count planning math.
//
// Eq. (17) of the paper picks the constant c with 1 - delta = erf(c/sqrt(2)),
// i.e. c is the standard-normal two-sided quantile.  We implement the
// inverse with Acklam's rational approximation refined by one Halley step on
// std::erf, giving ~1e-15 accuracy over the usable range.
#pragma once

namespace pet::stats {

/// Standard normal CDF Phi(x).
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Inverse standard normal CDF; p in (0, 1).
[[nodiscard]] double normal_quantile(double p);

/// Inverse error function; y in (-1, 1).
[[nodiscard]] double erf_inv(double y);

/// The paper's Eq. (17) constant: c such that erf(c/sqrt(2)) = 1 - delta,
/// i.e. a standard normal lies in [-c, c] with probability 1 - delta.
/// delta in (0, 1).
[[nodiscard]] double two_sided_normal_constant(double delta);

}  // namespace pet::stats
