// Numerically stable streaming moments (Welford's algorithm).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/ensure.hpp"

namespace pet::stats {

class RunningStat {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Population variance (divide by N); matches the paper's Eq. (23),
  /// which measures dispersion around the *true* count via E[(n̂-n)^2]
  /// when centered externally.
  [[nodiscard]] double variance() const noexcept {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  /// Unbiased sample variance (divide by N-1).
  [[nodiscard]] double sample_variance() const {
    expects(count_ >= 2, "sample_variance needs at least two samples");
    return m2_ / static_cast<double>(count_ - 1);
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Root mean squared deviation around an external center c:
  /// sqrt(E[(x - c)^2]) = sqrt(var + (mean - c)^2).
  [[nodiscard]] double rms_about(double center) const noexcept {
    const double bias = mean_ - center;
    return std::sqrt(variance() + bias * bias);
  }

  void merge(const RunningStat& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta *
                           (static_cast<double>(count_) *
                            static_cast<double>(other.count_) / total);
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pet::stats
