#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pet::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  expects(hi > lo, "Histogram: hi must exceed lo");
  expects(bins >= 1, "Histogram: need at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  samples_.push_back(x);
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

std::uint64_t Histogram::count(std::size_t bin) const {
  expects(bin < counts_.size(), "Histogram::count bin out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  expects(bin < counts_.size(), "Histogram::bin_center bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width_;
}

double Histogram::fraction_within(double lo, double hi) const noexcept {
  if (total_ == 0) return 0.0;
  const auto inside = std::count_if(
      samples_.begin(), samples_.end(),
      [&](double x) { return x >= lo && x <= hi; });
  return static_cast<double>(inside) / static_cast<double>(total_);
}

std::string Histogram::render_ascii(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char label[48];
    std::snprintf(label, sizeof label, "%12.1f | ", bin_center(b));
    out += label;
    const auto width = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[b]) * static_cast<double>(max_width) /
                     static_cast<double>(peak)));
    out.append(width, '#');
    char tail[32];
    std::snprintf(tail, sizeof tail, " %llu\n",
                  static_cast<unsigned long long>(counts_[b]));
    out += tail;
  }
  return out;
}

}  // namespace pet::stats
