#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/ensure.hpp"

namespace pet::stats {

double ks_statistic(std::span<const double> a, std::span<const double> b) {
  expects(!a.empty() && !b.empty(), "ks_statistic: inputs must be nonempty");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    const double fa = static_cast<double>(i) / na;
    const double fb = static_cast<double>(j) / nb;
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

double ks_critical_value(std::size_t n, std::size_t m, double alpha) {
  expects(n > 0 && m > 0, "ks_critical_value: sample sizes must be positive");
  expects(alpha > 0.0 && alpha < 1.0, "ks_critical_value: alpha in (0, 1)");
  const double c = std::sqrt(-0.5 * std::log(alpha / 2.0));
  const double nn = static_cast<double>(n);
  const double mm = static_cast<double>(m);
  return c * std::sqrt((nn + mm) / (nn * mm));
}

}  // namespace pet::stats
