// The (epsilon, delta) accuracy contract of Section 3 and the evaluation
// metrics of Section 5.1.
//
// An estimator is (epsilon, delta)-accurate if
//     Pr{ |n̂ - n| <= epsilon * n } >= 1 - delta.         (paper Section 3)
// Evaluation metrics:
//     Accuracy = n̂ / n                                   (Eq. 22)
//     sigma    = sqrt(E[(n̂ - n)^2])                      (Eq. 23)
#pragma once

#include <cstdint>
#include <vector>

#include "common/ensure.hpp"
#include "stats/running_stat.hpp"

namespace pet::stats {

struct AccuracyRequirement {
  double epsilon = 0.05;  ///< confidence interval half-width, relative
  double delta = 0.01;    ///< error probability

  void validate() const {
    expects(epsilon > 0.0 && epsilon < 1.0,
            "AccuracyRequirement: epsilon must be in (0, 1)");
    expects(delta > 0.0 && delta < 1.0,
            "AccuracyRequirement: delta must be in (0, 1)");
  }

  [[nodiscard]] double interval_lo(double n) const noexcept {
    return (1.0 - epsilon) * n;
  }
  [[nodiscard]] double interval_hi(double n) const noexcept {
    return (1.0 + epsilon) * n;
  }
};

/// Aggregates repeated estimation trials of a known ground truth n and
/// reports the paper's metrics.
class TrialSummary {
 public:
  explicit TrialSummary(double true_n) : true_n_(true_n) {
    expects(true_n > 0.0, "TrialSummary: true_n must be positive");
  }

  void add(double n_hat) {
    estimates_.add(n_hat);
    raw_.push_back(n_hat);
  }

  [[nodiscard]] double true_n() const noexcept { return true_n_; }
  [[nodiscard]] std::uint64_t trials() const noexcept { return estimates_.count(); }

  /// Eq. (22): mean of n̂ / n over trials.
  [[nodiscard]] double accuracy() const noexcept {
    return estimates_.mean() / true_n_;
  }

  /// Eq. (23): sqrt(E[(n̂ - n)^2]), deviation about the *true* count.
  [[nodiscard]] double deviation() const noexcept {
    return estimates_.rms_about(true_n_);
  }

  /// Eq. (23) normalized by n (the paper's Fig. 4c).
  [[nodiscard]] double normalized_deviation() const noexcept {
    return deviation() / true_n_;
  }

  /// Empirical Pr{ |n̂ - n| <= epsilon n }.
  [[nodiscard]] double fraction_within(double epsilon) const noexcept {
    if (raw_.empty()) return 0.0;
    std::uint64_t inside = 0;
    for (const double x : raw_) {
      if (x >= (1.0 - epsilon) * true_n_ && x <= (1.0 + epsilon) * true_n_) {
        ++inside;
      }
    }
    return static_cast<double>(inside) / static_cast<double>(raw_.size());
  }

  /// True iff the empirical in-interval fraction meets 1 - delta.
  [[nodiscard]] bool meets(const AccuracyRequirement& req) const noexcept {
    return fraction_within(req.epsilon) >= 1.0 - req.delta;
  }

  [[nodiscard]] const std::vector<double>& raw_estimates() const noexcept {
    return raw_;
  }

 private:
  double true_n_;
  RunningStat estimates_;
  std::vector<double> raw_;
};

}  // namespace pet::stats
