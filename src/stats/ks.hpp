// Two-sample Kolmogorov-Smirnov distance, used by the property-test suite
// to certify that the sampled fast channels are distributionally identical
// to the exact per-tag channels.
#pragma once

#include <span>

namespace pet::stats {

/// Two-sample KS statistic sup_x |F1(x) - F2(x)|.  Inputs need not be
/// sorted; both must be nonempty.
[[nodiscard]] double ks_statistic(std::span<const double> a,
                                  std::span<const double> b);

/// Asymptotic critical value for the two-sample KS test at significance
/// alpha: c(alpha) * sqrt((n+m)/(n*m)).
[[nodiscard]] double ks_critical_value(std::size_t n, std::size_t m,
                                       double alpha);

}  // namespace pet::stats
