#include "gen2/inventory.hpp"

#include <algorithm>

#include "obs/instruments.hpp"
#include "rng/prng.hpp"

namespace pet::gen2 {

Gen2Inventory::Gen2Inventory(Gen2Mac& mac, Gen2InventoryConfig config)
    : mac_(mac), config_(config) {
  config_.validate();
}

Gen2InventoryResult Gen2Inventory::run(std::span<Gen2Tag> tags,
                                       std::uint64_t seed) {
  mac_.refresh_obs();
  const sim::Gen2CommandBits& bits = mac_.config().bits;
  const sim::SlotLedger start = mac_.ledger();
  const bool counters = obs::counters_enabled();

  Gen2InventoryResult result;

  if (config_.use_select) {
    const unsigned mask_bits = config_.select.mask.width();
    mac_.broadcast(bits.select(mask_bits));
    std::uint64_t flips = 0;
    for (Gen2Tag& tag : tags) {
      // Action-000: matching -> A, non-matching -> B (gen2.hpp).
      const InvFlag value =
          config_.select.matches(tag.epc()) ? InvFlag::kA : InvFlag::kB;
      tag.set_selected(config_.select.matches(tag.epc()));
      if (tag.set_flag(config_.select.session, value, mac_.slot_clock())) {
        ++flips;
      }
    }
    if (counters) {
      const obs::Gen2Instruments& gi = obs::gen2_instruments();
      gi.select_commands.add();
      gi.select_bits.add(bits.select(mask_bits));
      gi.session_flips.add(flips);
    }
  }

  QPolicy policy(config_.qpolicy);
  const InvFlag done_flag =
      config_.target == InvFlag::kA ? InvFlag::kB : InvFlag::kA;
  rng::Xoshiro256ss draw(rng::derive_seed(seed, 0x6e2));

  std::vector<std::uint32_t> eligible;
  std::vector<std::uint64_t> counters_by_tag(tags.size(), 0);
  std::vector<std::vector<std::uint32_t>> buckets;

  // Each iteration opens one frame: Query on the first and after every DFA
  // frame-end recompute, QueryAdjust when the floating-Q rule re-frames
  // mid-flight.  Unresolved tags redraw their slot counter each opening.
  bool adjust_opening = false;
  while (result.slots < config_.max_slots) {
    eligible.clear();
    for (std::uint32_t i = 0; i < tags.size(); ++i) {
      bool decayed = false;
      const InvFlag flag = tags[i].flag(config_.session, mac_.slot_clock(),
                                        config_.timers, &decayed);
      if (decayed) {
        ++result.session_decays;
        if (counters) obs::gen2_instruments().session_decays.add();
      }
      if (flag == config_.target) eligible.push_back(i);
    }
    if (eligible.empty()) break;

    const unsigned q = policy.q();
    const std::uint64_t frame_size = std::uint64_t{1} << q;
    result.q_trajectory.push_back(q);
    ++result.frames;
    if (counters) {
      const obs::Gen2Instruments& gi = obs::gen2_instruments();
      gi.q_values.observe(static_cast<double>(q));
      gi.q_last.set(static_cast<double>(q));
      if (adjust_opening) {
        gi.query_adjusts.add();
      } else {
        gi.query_commands.add();
      }
    }
    // The frame-opening command (Query or QueryAdjust) also opens slot 0,
    // so its bits ride on the first slot below.
    const unsigned opening_bits =
        adjust_opening ? bits.query_adjust : bits.query;
    adjust_opening = false;

    buckets.assign(frame_size, {});
    for (const std::uint32_t i : eligible) {
      counters_by_tag[i] = draw() % frame_size;
      buckets[counters_by_tag[i]].push_back(i);
    }

    std::uint64_t frame_collisions = 0;
    bool reframed = false;
    for (std::uint64_t slot = 0; slot < frame_size; ++slot) {
      const unsigned cmd_bits = slot == 0 ? opening_bits : bits.query_rep;
      if (counters && slot != 0) obs::gen2_instruments().query_commands.add();
      const std::vector<std::uint32_t>& bucket = buckets[slot];
      const Gen2SlotResult sr =
          mac_.run_slot(bucket.size(), cmd_bits, bits.rn16);
      ++result.slots;

      switch (sr.outcome) {
        case SlotOutcome::kIdle: ++result.idle_slots; break;
        case SlotOutcome::kSingleton: ++result.singleton_slots; break;
        case SlotOutcome::kCollision: ++result.collision_slots; break;
      }
      if (sr.captured) ++result.captured_slots;
      if (sr.outcome == SlotOutcome::kCollision && !bucket.empty()) {
        ++frame_collisions;
      }

      if (sr.outcome == SlotOutcome::kSingleton && !bucket.empty()) {
        // The decoded reply belongs to the first transmitter (under
        // capture, the power-dominant one; under loss, the survivor —
        // first is the deterministic stand-in either way).
        Gen2Tag& tag = tags[bucket.front()];
        unsigned epc_bits = config_.epc_reply_bits;
        if (config_.use_select && config_.select.truncate &&
            config_.select.matches(tag.epc())) {
          // Truncated backscatter: only the EPC portion after the mask.
          const unsigned saved = config_.select.mask.width();
          epc_bits = epc_bits > saved + 16 ? epc_bits - saved : 16;
        }
        mac_.acknowledge(bits.ack, epc_bits);
        if (tag.set_flag(config_.session, done_flag, mac_.slot_clock())) {
          if (counters) obs::gen2_instruments().session_flips.add();
        }
        ++result.identified;
      }

      if (policy.on_slot(sr.outcome)) {
        // Floating-Q re-frame: QueryAdjust aborts the rest of this frame;
        // unresolved tags redraw at the new Q.  The command's bits ride on
        // the next frame's opening slot.
        reframed = true;
        adjust_opening = true;
        break;
      }
      if (result.slots >= config_.max_slots) break;
    }
    if (!reframed) policy.on_frame_end(frame_collisions);
  }

  result.ledger = mac_.ledger() - start;
  return result;
}

}  // namespace pet::gen2
