#include "gen2/qpolicy.hpp"

#include <cmath>

namespace pet::gen2 {

QPolicy::QPolicy(QPolicyConfig config) : config_(config) {
  config_.validate();
  qfp_ = static_cast<double>(config_.q0);
  q_ = config_.q0;
}

unsigned QPolicy::clamp_q(double q) const noexcept {
  const double lo = static_cast<double>(config_.q_min);
  const double hi = static_cast<double>(config_.q_max);
  if (q < lo) q = lo;
  if (q > hi) q = hi;
  return static_cast<unsigned>(std::lround(q));
}

bool QPolicy::on_slot(SlotOutcome outcome) {
  if (config_.kind != QPolicyKind::kQAdjust) return false;
  switch (outcome) {
    case SlotOutcome::kIdle: qfp_ -= config_.c; break;
    case SlotOutcome::kSingleton: break;
    case SlotOutcome::kCollision: qfp_ += config_.c; break;
  }
  const double lo = static_cast<double>(config_.q_min);
  const double hi = static_cast<double>(config_.q_max);
  if (qfp_ < lo) qfp_ = lo;
  if (qfp_ > hi) qfp_ = hi;
  const unsigned rounded = clamp_q(qfp_);
  if (rounded != q_) {
    q_ = rounded;
    return true;
  }
  return false;
}

void QPolicy::on_frame_end(std::uint64_t collision_slots) {
  if (config_.kind != QPolicyKind::kDfaBacklog) return;
  if (collision_slots == 0) {
    // Nothing collided: either the frame drained the backlog or it was
    // oversized.  Step down one notch rather than log2(0).
    q_ = q_ > config_.q_min ? q_ - 1 : config_.q_min;
  } else {
    const double backlog =
        config_.backlog_factor * static_cast<double>(collision_slots);
    q_ = clamp_q(std::log2(backlog));
  }
  qfp_ = static_cast<double>(q_);
}

}  // namespace pet::gen2
