// Gen2Inventory: the reader's full inventory round — Select, then the
// Query / QueryRep / QueryAdjust frame-slotted ALOHA loop with ACK'd EPC
// reads — over a population of Gen2Tag state machines and a Gen2Mac slot
// engine.  This is the realistic-MAC counterpart of the idealized DFSA
// baseline in protocols/identification.hpp: same Schoute-style adaptation
// available (QPolicyKind::kDfaBacklog), plus the standard's per-slot
// floating-Q rule, session flag persistence, S1 decay, and capture.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gen2/gen2.hpp"
#include "gen2/mac.hpp"
#include "gen2/qpolicy.hpp"

namespace pet::gen2 {

struct Gen2InventoryConfig {
  Session session = Session::kS2;   ///< session the Query targets
  InvFlag target = InvFlag::kA;     ///< inventoried value that participates
  SelectMask select{};              ///< applied before the first Query
  bool use_select = false;          ///< skip the Select phase when false
  QPolicyConfig qpolicy{};
  SessionTimers timers{};
  std::uint64_t max_slots = std::uint64_t{1} << 22;  ///< stall guard
  /// Backscattered EPC read after ACK: PC(16) + EPC(96) + CRC-16.
  unsigned epc_reply_bits = 128;

  void validate() const {
    qpolicy.validate();
    timers.validate();
    expects(max_slots > 0, "Gen2InventoryConfig: max_slots must be positive");
  }
};

struct Gen2InventoryResult {
  std::uint64_t identified = 0;
  std::uint64_t slots = 0;
  std::uint64_t frames = 0;  ///< Query + QueryAdjust frame openings
  std::uint64_t idle_slots = 0;
  std::uint64_t singleton_slots = 0;
  std::uint64_t collision_slots = 0;
  std::uint64_t captured_slots = 0;
  std::uint64_t session_decays = 0;  ///< S1 flags that decayed mid-round
  std::vector<unsigned> q_trajectory;  ///< Q at each frame opening
  sim::SlotLedger ledger;  ///< this round's slice of the MAC ledger
};

class Gen2Inventory {
 public:
  /// `mac` is borrowed; its ledger accumulates across rounds so repeated
  /// inventories on one MAC share a slot clock (which is what arms the S1
  /// decay timers between rounds).
  Gen2Inventory(Gen2Mac& mac, Gen2InventoryConfig config = {});

  /// Run one inventory round: flip every participating tag's session flag
  /// via ACK'd singleton reads until the frame loop drains (or max_slots).
  /// `seed` drives the tags' slot draws only; impairments draw from the
  /// MAC's own fault streams.
  Gen2InventoryResult run(std::span<Gen2Tag> tags, std::uint64_t seed);

 private:
  Gen2Mac& mac_;
  Gen2InventoryConfig config_;
};

}  // namespace pet::gen2
