#include "gen2/mac.hpp"

#include <cmath>

#include "obs/trace.hpp"

namespace pet::gen2 {

Gen2Mac::Gen2Mac(const Gen2MacConfig& config)
    : config_(config),
      faults_(config.impairments),
      loss_active_(config.impairments.reply_loss_prob > 0.0 ||
                   config.impairments.burst.enabled()) {
  config_.link.validate();
  refresh_obs();
}

void Gen2Mac::broadcast(unsigned command_bits) {
  const sim::Gen2LinkConfig& link = config_.link;
  if (!faults_.reader_down_at(faults_.slots_begun())) {
    ledger_.reader_bits += command_bits;
    if (obs::counters_enabled(obs_mode_)) {
      obs::ledger_instruments().reader_bits.add(command_bits);
    }
  }
  const double us = link.preamble_tari * link.tari_us +
                    command_bits * link.reader_bit_us();
  ledger_.airtime_us += static_cast<sim::SimTime>(std::llround(us));
}

void Gen2Mac::acknowledge(unsigned ack_bits, unsigned epc_bits) {
  ledger_.reader_bits += ack_bits;
  ledger_.tag_bits += epc_bits;
  ledger_.airtime_us += static_cast<sim::SimTime>(
      std::llround(sim::gen2_slot_us(config_.link, ack_bits, epc_bits)));
  if (obs::counters_enabled(obs_mode_)) {
    obs::ledger_instruments().reader_bits.add(ack_bits);
    obs::ledger_instruments().tag_bits.add(epc_bits);
  }
}

Gen2SlotResult Gen2Mac::run_slot(std::size_t responders, unsigned command_bits,
                                 unsigned reply_bits) {
  faults_.begin_slot();

  Gen2SlotResult result;
  result.during_outage = faults_.reader_down();

  if (result.during_outage) {
    // The command never airs and nothing is heard; the reader burns the
    // slot and reads silence (indistinguishable from genuinely idle).
    result.outcome = SlotOutcome::kIdle;
    ++ledger_.outage_slots;
  } else {
    result.survivors = responders;
    std::size_t erased = 0;
    if (loss_active_) {
      result.survivors = 0;
      for (std::size_t i = 0; i < responders; ++i) {
        if (faults_.erases_reply()) {
          ++erased;
        } else {
          ++result.survivors;
        }
      }
    }
    ledger_.erased_replies += erased;

    if (result.survivors == 0) {
      if (faults_.raises_noise_floor()) {
        // Imperfect idle detection: the receiver cannot tell raised noise
        // from a garbled collision.
        result.outcome = SlotOutcome::kCollision;
        result.false_busy = true;
        ++ledger_.noise_busy_slots;
      } else {
        result.outcome = SlotOutcome::kIdle;
      }
    } else if (result.survivors == 1) {
      result.outcome = SlotOutcome::kSingleton;
    } else if (faults_.captures_collision(result.survivors)) {
      result.outcome = SlotOutcome::kSingleton;
      result.captured = true;
    } else {
      result.outcome = SlotOutcome::kCollision;
    }

    ledger_.reader_bits += command_bits;
    ledger_.tag_bits +=
        static_cast<std::uint64_t>(result.survivors) * reply_bits;
  }

  switch (result.outcome) {
    case SlotOutcome::kIdle: ++ledger_.idle_slots; break;
    case SlotOutcome::kSingleton: ++ledger_.singleton_slots; break;
    case SlotOutcome::kCollision: ++ledger_.collision_slots; break;
  }
  // The reply window is occupied for one reply duration whenever the
  // receiver sees energy (collided replies overlap; noise fills the window
  // too); only a clean idle gets the short detection timeout.
  const unsigned window_bits =
      result.outcome == SlotOutcome::kIdle ? 0 : reply_bits;
  ledger_.airtime_us += static_cast<sim::SimTime>(
      std::llround(sim::gen2_slot_us(config_.link, command_bits, window_bits)));

  if (obs::counters_enabled(obs_mode_)) {
    const obs::Gen2Instruments& gi = obs::gen2_instruments();
    const obs::LedgerInstruments& li = obs::ledger_instruments();
    switch (result.outcome) {
      case SlotOutcome::kIdle:
        gi.idle_slots.add();
        li.idle_slots.add();
        break;
      case SlotOutcome::kSingleton:
        gi.singleton_slots.add();
        li.singleton_slots.add();
        break;
      case SlotOutcome::kCollision:
        gi.collision_slots.add();
        li.collision_slots.add();
        break;
    }
    if (result.captured) gi.captured_slots.add();
    if (result.false_busy) gi.false_busy_slots.add();
    if (!result.during_outage) {
      li.reader_bits.add(command_bits);
      li.tag_bits.add(static_cast<std::uint64_t>(result.survivors) *
                      reply_bits);
    }
    if (obs::full_enabled(obs_mode_)) obs::advance_trace_slot();
  }
  return result;
}

}  // namespace pet::gen2
