// Gen2Mac: the Gen2 air-interface slot engine.
//
// Everything above it (Gen2PrefixChannel, Gen2Inventory) thinks in "how
// many tags transmit in this reply window"; Gen2Mac turns that count into
// what the reader's receiver actually decodes, under the seeded
// sim::FaultModel impairments:
//
//   * reply loss (i.i.d. + Gilbert-Elliott bursts) erases transmitters;
//   * capture effect can decode a power-dominant reply out of a collision
//     (CaptureParams; the surviving reply is the first transmitter, a
//     deterministic stand-in for signal strength);
//   * noise floors idle slots to busy (imperfect idle detection);
//   * scripted reader outages burn slots that read as idle.
//
// Slot costs are charged in both currencies: the SlotLedger counts
// (identical accounting to the ideal back ends — one probe, one slot) and
// wall-clock airtime from the PIE/backscatter timing model
// (sim/gen2_timing.hpp).  With all impairments inert a slot is O(1) no
// matter how many tags respond; per-reply loss draws only happen when a
// loss source is enabled.
#pragma once

#include <cstdint>

#include "obs/instruments.hpp"
#include "sim/faults.hpp"
#include "sim/gen2_timing.hpp"
#include "sim/medium.hpp"

namespace pet::gen2 {

struct Gen2MacConfig {
  sim::Gen2LinkConfig link{};
  sim::ChannelImpairments impairments{};
  sim::Gen2CommandBits bits{};
};

/// What the reader decoded from one reply window.
struct Gen2SlotResult {
  SlotOutcome outcome = SlotOutcome::kIdle;
  std::size_t survivors = 0;   ///< replies that reached the receiver
  bool captured = false;       ///< collision decoded via capture effect
  bool false_busy = false;     ///< idle slot floored to busy by noise
  bool during_outage = false;  ///< slot burned inside a reader outage
};

class Gen2Mac {
 public:
  explicit Gen2Mac(const Gen2MacConfig& config);

  /// One Reader-Talks-First slot: `responders` tags transmit `reply_bits`
  /// each after a `command_bits` downlink command.  Applies impairments,
  /// classifies the outcome, and accounts the slot.
  Gen2SlotResult run_slot(std::size_t responders, unsigned command_bits,
                          unsigned reply_bits);

  /// Downlink-only command (Select, and the ACK half of an EPC read):
  /// charges bits and airtime, opens no reply window, counts no slot.
  /// Lost silently when a scripted outage covers the upcoming slot.
  void broadcast(unsigned command_bits);

  /// ACK handshake after a decoded singleton: `ack_bits` downlink plus an
  /// `epc_bits` backscattered EPC.  Charged as airtime + link bits; the
  /// preceding run_slot already counted the slot.
  void acknowledge(unsigned ack_bits, unsigned epc_bits);

  [[nodiscard]] const sim::SlotLedger& ledger() const noexcept {
    return ledger_;
  }
  void reset_ledger() noexcept { ledger_ = {}; }
  void note_retries(std::uint64_t slots) noexcept {
    ledger_.retry_slots += slots;
    if (obs::counters_enabled(obs_mode_)) {
      obs::ledger_instruments().retry_slots.add(slots);
    }
  }

  [[nodiscard]] const Gen2MacConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const sim::FaultModel& faults() const noexcept {
    return faults_;
  }
  /// Slots run so far — the discrete clock the session timers count in.
  [[nodiscard]] std::uint64_t slot_clock() const noexcept {
    return faults_.slots_begun();
  }

  /// Re-snapshot the obs level (call at round/frame boundaries, like the
  /// other channel back ends, so per-slot recording stays one byte test).
  void refresh_obs() noexcept { obs_mode_ = obs::level_byte(); }

 private:
  Gen2MacConfig config_;
  sim::FaultModel faults_;
  bool loss_active_;
  std::uint8_t obs_mode_ = 0;
  sim::SlotLedger ledger_;
};

}  // namespace pet::gen2
