// Q-adaptation policies for the Gen2 reader's frame-slotted ALOHA loop.
//
// The reader opens a frame of 2^Q slots with Query and may re-frame
// mid-flight with QueryAdjust.  Two policies choose Q:
//
//   * kQAdjust — the standard's Annex D.2.2 floating-Q rule: keep a real
//     Qfp; each collision adds C, each idle subtracts C (singletons leave
//     it alone), and the reader issues QueryAdjust whenever round(Qfp)
//     drifts from the Q in force.  C in [0.1, 0.5]; smaller C for larger
//     Q is customary, a fixed C is what actual silicon ships.
//
//   * kDfaBacklog — Dynamic Frame Aloha backlog estimation
//     (arXiv 1305.0909; Schoute's classic result): at frame end estimate
//     the backlog as 2.39 x collision slots and open the next frame at
//     Q = round(log2(backlog)).  No mid-frame adjustment.
//
// Both are deterministic functions of the observed outcome stream.
#pragma once

#include <cstdint>

#include "common/ensure.hpp"
#include "common/types.hpp"

namespace pet::gen2 {

enum class QPolicyKind : std::uint8_t {
  kQAdjust,     ///< per-slot floating-Q (standard Annex D.2.2)
  kDfaBacklog,  ///< frame-end Schoute backlog estimate
};

[[nodiscard]] constexpr const char* to_string(QPolicyKind kind) noexcept {
  switch (kind) {
    case QPolicyKind::kQAdjust: return "qadjust";
    case QPolicyKind::kDfaBacklog: return "dfa";
  }
  return "?";
}

struct QPolicyConfig {
  QPolicyKind kind = QPolicyKind::kQAdjust;
  unsigned q0 = 4;       ///< initial Q
  unsigned q_min = 0;    ///< standard floor
  unsigned q_max = 15;   ///< standard ceiling (32768-slot frame)
  double c = 0.3;        ///< Qfp step weight, standard range [0.1, 0.5]
  double backlog_factor = 2.39;  ///< Schoute's collision multiplier

  void validate() const {
    expects(q_min <= q_max && q_max <= 15,
            "QPolicyConfig: need q_min <= q_max <= 15");
    expects(q0 >= q_min && q0 <= q_max,
            "QPolicyConfig: q0 must lie in [q_min, q_max]");
    expects(c >= 0.1 && c <= 0.5, "QPolicyConfig: C must be in [0.1, 0.5]");
    expects(backlog_factor > 0.0,
            "QPolicyConfig: backlog factor must be positive");
  }
};

/// Reader-side Q state machine.  Feed it every slot outcome; it reports
/// the Q currently in force and (for kQAdjust) when to issue QueryAdjust.
class QPolicy {
 public:
  explicit QPolicy(QPolicyConfig config);

  [[nodiscard]] unsigned q() const noexcept { return q_; }
  [[nodiscard]] const QPolicyConfig& config() const noexcept {
    return config_;
  }

  /// Per-slot feedback.  Returns true iff the policy wants a QueryAdjust
  /// now (kQAdjust only: round(Qfp) moved away from the Q in force); the
  /// caller then re-frames and q() is the adjusted value.
  bool on_slot(SlotOutcome outcome);

  /// Frame-end feedback (kDfaBacklog): recompute Q for the next frame
  /// from this frame's collision count.  A collision-free frame steps Q
  /// down one notch instead (the backlog estimate would be zero).
  void on_frame_end(std::uint64_t collision_slots);

 private:
  [[nodiscard]] unsigned clamp_q(double q) const noexcept;

  QPolicyConfig config_;
  double qfp_;
  unsigned q_;
};

}  // namespace pet::gen2
