// EPC Class-1 Generation-2 inventory-layer state (EPCglobal [1] in the
// paper's references, §6.3.2.2-6.3.2.12): the four sessions with their A/B
// inventoried flags and persistence classes, the SL (selected) flag, and
// the Select command's mask/truncate semantics.
//
// Fidelity model (see docs/gen2.md for the full caveat list):
//   * S0 resets to A whenever tag power cycles;
//   * S1 decays back to A after a bounded interval even while powered —
//     the standard gives 500 ms..5 s, which we express in slots
//     (SessionTimers::s1_decay_slots) so decay is deterministic and
//     replayable on the discrete slot clock;
//   * S2/S3 persist indefinitely while powered (and are modeled as
//     persisting across power_cycle(), i.e. the cycle is shorter than
//     their >2 s persistence floor).
//
// Everything here is plain deterministic state; randomness (slot draws,
// capture, loss) lives in Gen2Mac / Gen2Inventory.
#pragma once

#include <array>
#include <cstdint>

#include "common/bitcode.hpp"
#include "common/ensure.hpp"

namespace pet::gen2 {

/// The four inventory sessions.  A reader inventories one session at a
/// time; tags keep an independent A/B flag per session, which is what lets
/// multiple readers take turns over one population.
enum class Session : std::uint8_t { kS0 = 0, kS1 = 1, kS2 = 2, kS3 = 3 };

[[nodiscard]] constexpr const char* to_string(Session s) noexcept {
  switch (s) {
    case Session::kS0: return "S0";
    case Session::kS1: return "S1";
    case Session::kS2: return "S2";
    case Session::kS3: return "S3";
  }
  return "?";
}

/// Per-session inventoried flag.  Query targets one value; an acknowledged
/// tag toggles its flag so the next pass over the same session skips it.
enum class InvFlag : std::uint8_t { kA = 0, kB = 1 };

/// Session persistence, in slots of the discrete MAC clock.  Only S1
/// decays while powered; kNoDecay disables the timer.
struct SessionTimers {
  static constexpr std::uint64_t kNoDecay = ~std::uint64_t{0};
  std::uint64_t s1_decay_slots = 512;

  void validate() const {
    expects(s1_decay_slots > 0, "SessionTimers: S1 decay must be positive");
  }
};

/// A Select command: match tags whose EPC starts with `mask` and steer
/// their session flag (or SL).  Action-000 semantics, the common case:
/// matching tags are asserted (inventoried -> A), non-matching tags are
/// deasserted (inventoried -> B).  `truncate` asks matching tags to
/// backscatter only the EPC portion *after* the mask in subsequent
/// replies — the knob that makes deep PET probes cheap on the uplink.
struct SelectMask {
  Session session = Session::kS2;
  BitCode mask;  ///< MSB-first EPC prefix; empty mask matches every tag
  bool truncate = false;

  /// Tag-side mask comparison (standard §6.3.2.12.1.1: MemBank EPC,
  /// pointer 0).  Masks wider than the EPC match nothing.
  [[nodiscard]] bool matches(const BitCode& epc) const {
    if (mask.width() > epc.width()) return false;
    return epc.matches_prefix(mask, mask.width());
  }
};

/// One tag's persistent inventory-layer state: its EPC plus the five flags
/// (4 sessions + SL).  The S1 timer is lazy: decay is applied when the
/// flag is next read, against the caller-supplied slot clock.
class Gen2Tag {
 public:
  Gen2Tag() = default;
  explicit Gen2Tag(BitCode epc) : epc_(epc) {}

  [[nodiscard]] const BitCode& epc() const noexcept { return epc_; }

  /// Read the session flag at slot-time `now`, applying S1 decay first.
  /// Returns the (possibly just-decayed) flag; `decayed`, when non-null,
  /// reports whether this read performed the decay.
  InvFlag flag(Session session, std::uint64_t now,
               const SessionTimers& timers, bool* decayed = nullptr) {
    if (decayed != nullptr) *decayed = false;
    auto& state = flags_[static_cast<std::size_t>(session)];
    if (session == Session::kS1 && state == InvFlag::kB &&
        timers.s1_decay_slots != SessionTimers::kNoDecay &&
        now >= s1_set_slot_ && now - s1_set_slot_ >= timers.s1_decay_slots) {
      state = InvFlag::kA;
      if (decayed != nullptr) *decayed = true;
    }
    return state;
  }

  /// Set the session flag at slot-time `now` (arms the S1 timer).
  /// Returns true iff the stored value changed (an A<->B flip).
  bool set_flag(Session session, InvFlag value, std::uint64_t now) {
    auto& state = flags_[static_cast<std::size_t>(session)];
    if (session == Session::kS1) s1_set_slot_ = now;
    const bool flipped = state != value;
    state = value;
    return flipped;
  }

  [[nodiscard]] bool selected() const noexcept { return sl_; }
  void set_selected(bool sl) noexcept { sl_ = sl; }

  /// Tag leaves and re-enters the field.  S0 resets to A immediately and
  /// SL deasserts; S1 keeps its timer (it decays on its own); S2/S3
  /// persist (the model assumes the outage is shorter than their floor).
  void power_cycle() noexcept {
    flags_[static_cast<std::size_t>(Session::kS0)] = InvFlag::kA;
    sl_ = false;
  }

 private:
  BitCode epc_;
  std::array<InvFlag, 4> flags_{InvFlag::kA, InvFlag::kA, InvFlag::kA,
                                InvFlag::kA};
  std::uint64_t s1_set_slot_ = 0;
  bool sl_ = false;
};

}  // namespace pet::gen2
