// Gen2PrefixChannel: the estimation protocols' channel contracts realized
// over the Gen2 air protocol (docs/gen2.md).
//
// Mapping (the Select+Query encoding of PET's probes):
//   * PET prefix probe at length len  =  one Select whose mask is the
//     first len bits of the estimating path (tags matching -> A, others
//     -> B in the configured session), followed by one single-slot Query
//     targeting A.  The Select is a downlink-only broadcast; the Query
//     opens exactly one reply window — so the probe costs ONE slot, the
//     same accounting as the ideal back ends, while bits and airtime are
//     the real Gen2 command sizes.
//   * FNEB range probe "slot <= bound"  =  the dyadic Select cover of
//     [1, bound] (popcount(bound) Selects over slot-index prefixes) plus
//     one Query slot.
//   * LoF/UPE/EZB frame  =  one session Select, then Query opening slot 0
//     and QueryRep stepping the rest of the frame.
//
// Tag membership per probe is computed from preloaded EPC codes exactly
// as ExactChannel does (same hashes, same per-depth prefix counts, same
// frame occupancy sampling), so with inert impairments every busy/idle
// verdict and slot outcome is identical to the ideal reference — the
// conformance harness pins this.  Impairments (loss, capture, noise,
// outages) then act per slot through the embedded Gen2Mac.
//
// DepthOracle: synth_probe delegates to the same probe path as
// query_prefix (a probe here is O(1) after begin_round, and routing both
// through one code path keeps the fault-stream draws identical whether or
// not the fast path is enabled), so the oracle is valid in every config.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.hpp"
#include "gen2/gen2.hpp"
#include "gen2/mac.hpp"
#include "rng/hash_family.hpp"

namespace pet::gen2 {

struct Gen2ChannelConfig {
  unsigned tree_height = 32;  ///< H: PET code width == modeled EPC width
  rng::HashKind hash = rng::HashKind::kMix64;
  std::uint64_t manufacturing_seed = 0x9a9a5eedULL;
  Session session = Session::kS2;  ///< session the probe Selects steer
  /// Truncate on the probe Selects: matching tags backscatter only the
  /// EPC remainder (H - len bits, floor 1) instead of a full RN16, so
  /// deep probes get cheaper on the uplink.
  bool truncate = true;
  sim::Gen2LinkConfig link{};
  sim::ChannelImpairments impairments{};
  sim::Gen2CommandBits bits{};
};

class Gen2PrefixChannel final : public chan::PrefixChannel,
                                public chan::RangeChannel,
                                public chan::FrameChannel,
                                public chan::DepthOracle {
 public:
  explicit Gen2PrefixChannel(std::vector<TagId> tags,
                             Gen2ChannelConfig config = {});

  [[nodiscard]] std::size_t tag_count() const noexcept { return tags_.size(); }

  // PrefixChannel (PET).  Preloaded-code rounds only: the Select masks
  // compare against EPC memory, which per-round rehashing would rewrite
  // under the reader's feet — begin_round rejects tags_rehash.
  void begin_round(const chan::RoundConfig& round) override;
  bool query_prefix(unsigned len) override;
  void note_retries(std::uint64_t slots) noexcept override {
    mac_.note_retries(slots);
  }

  // DepthOracle
  unsigned round_depth() override;
  bool synth_probe(unsigned len) override { return probe(len); }

  // RangeChannel (FNEB)
  void begin_range_frame(const chan::RangeFrameConfig& frame) override;
  bool query_range(std::uint64_t bound) override;

  // FrameChannel (LoF / UPE / EZB)
  const std::vector<SlotOutcome>& run_frame(
      const chan::FrameConfig& frame) override;

  [[nodiscard]] const sim::SlotLedger& ledger() const noexcept override {
    return mac_.ledger();
  }
  void reset_ledger() noexcept override { mac_.reset_ledger(); }

  /// The underlying slot engine (fault-chain state, slot clock) for tests.
  [[nodiscard]] const Gen2Mac& mac() const noexcept { return mac_; }

 private:
  bool probe(unsigned len);
  void select_broadcast(unsigned mask_bits);

  std::vector<TagId> tags_;
  Gen2ChannelConfig config_;
  Gen2Mac mac_;
  std::vector<BitCode> preloaded_;          ///< per-tag EPC codes
  std::vector<std::uint32_t> depth_count_;  ///< #tags with lcp >= k
  std::vector<std::uint64_t> range_slots_;  ///< sorted frame-slot picks
  std::uint64_t range_frame_size_ = 0;
  std::vector<std::uint32_t> frame_occupancy_;  ///< run_frame scratch
  std::vector<SlotOutcome> frame_outcomes_;     ///< run_frame result buffer
};

}  // namespace pet::gen2
