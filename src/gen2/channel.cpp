#include "gen2/channel.hpp"

#include <algorithm>
#include <bit>

#include "common/ensure.hpp"
#include "obs/instruments.hpp"

namespace pet::gen2 {

namespace {
const obs::ChannelInstruments& chan_obs() {
  static const obs::ChannelInstruments bundle("gen2");
  return bundle;
}
}  // namespace

Gen2PrefixChannel::Gen2PrefixChannel(std::vector<TagId> tags,
                                     Gen2ChannelConfig config)
    : tags_(std::move(tags)),
      config_(config),
      mac_(Gen2MacConfig{config.link, config.impairments, config.bits}) {
  expects(config_.tree_height >= 1 &&
              config_.tree_height <= BitCode::kMaxWidth,
          "Gen2PrefixChannel: tree height must be in [1, 64]");
  preloaded_.reserve(tags_.size());
  for (const TagId id : tags_) {
    preloaded_.push_back(rng::uniform_code(config_.hash,
                                           config_.manufacturing_seed, id,
                                           config_.tree_height));
  }
}

void Gen2PrefixChannel::select_broadcast(unsigned mask_bits) {
  const unsigned command_bits = config_.bits.select(mask_bits);
  mac_.broadcast(command_bits);
  if (obs::counters_enabled()) {
    const obs::Gen2Instruments& gi = obs::gen2_instruments();
    gi.select_commands.add();
    gi.select_bits.add(command_bits);
  }
}

void Gen2PrefixChannel::begin_round(const chan::RoundConfig& round) {
  expects(round.path.width() == config_.tree_height,
          "begin_round: path width must equal the tree height H");
  expects(!round.tags_rehash,
          "Gen2PrefixChannel: Select masks compare against EPC memory — "
          "per-round rehash (Algorithm 2) has no Gen2 encoding; use "
          "preloaded codes (Algorithm 4)");

  const unsigned h = config_.tree_height;
  depth_count_.assign(h + 1, 0);

  std::vector<std::uint32_t> at_depth(h + 1, 0);
  for (const BitCode& code : preloaded_) {
    ++at_depth[code.common_prefix_len(round.path)];
  }
  std::uint32_t suffix = 0;
  for (unsigned k = h + 1; k-- > 0;) {
    suffix += at_depth[k];
    depth_count_[k] = suffix;
  }
  // No separate round-begin packet: the per-probe Selects carry the path,
  // which is the whole point of the mapping (docs/gen2.md).
  mac_.refresh_obs();
  if (obs::counters_enabled()) chan_obs().rounds.add();
}

bool Gen2PrefixChannel::probe(unsigned len) {
  expects(len <= config_.tree_height, "query_prefix: len exceeds H");
  expects(!depth_count_.empty(), "query_prefix before begin_round");
  const std::size_t responders = depth_count_[len];

  select_broadcast(len);
  const unsigned reply_bits =
      config_.truncate
          ? (config_.tree_height > len ? config_.tree_height - len : 1)
          : config_.bits.rn16;
  if (obs::counters_enabled()) {
    chan_obs().probe_slots.add();
    obs::gen2_instruments().query_commands.add();
  }
  const Gen2SlotResult slot =
      mac_.run_slot(responders, config_.bits.query, reply_bits);
  if (obs::counters_enabled() && slot.outcome != SlotOutcome::kIdle) {
    chan_obs().busy_slots.add();
  }
  return slot.outcome != SlotOutcome::kIdle;
}

bool Gen2PrefixChannel::query_prefix(unsigned len) { return probe(len); }

unsigned Gen2PrefixChannel::round_depth() {
  expects(!depth_count_.empty(), "round_depth before begin_round");
  // Fault-free depth of the code set (the busy verdicts the estimator
  // consumes flow through synth_probe and do see faults).
  unsigned depth = 0;
  for (unsigned k = config_.tree_height; k > 0; --k) {
    if (depth_count_[k] > 0) {
      depth = k;
      break;
    }
  }
  return depth;
}

void Gen2PrefixChannel::begin_range_frame(const chan::RangeFrameConfig& frame) {
  expects(frame.frame_size >= 1, "begin_range_frame: empty frame");
  range_slots_.clear();
  range_slots_.reserve(tags_.size());
  for (const TagId id : tags_) {
    range_slots_.push_back(
        rng::uniform_slot(config_.hash, frame.seed, id, frame.frame_size));
  }
  std::sort(range_slots_.begin(), range_slots_.end());
  range_frame_size_ = frame.frame_size;
  mac_.refresh_obs();
  // The conceptual frame is announced once; the dyadic Selects per probe
  // carry the actual ranges.
  mac_.broadcast(frame.begin_bits);
}

bool Gen2PrefixChannel::query_range(std::uint64_t bound) {
  expects(range_frame_size_ >= 1, "query_range before begin_range_frame");
  const auto end =
      std::upper_bound(range_slots_.begin(), range_slots_.end(), bound);
  const auto responders =
      static_cast<std::size_t>(end - range_slots_.begin());

  // "Slot index <= bound" as Select masks: cover [1, bound] with its
  // dyadic decomposition — one Select per set bit of bound, each mask as
  // wide as a slot index.
  const unsigned index_bits = range_frame_size_ <= 1
                                  ? 1
                                  : static_cast<unsigned>(
                                        std::bit_width(range_frame_size_ - 1));
  const auto selects =
      static_cast<unsigned>(std::popcount(bound == 0 ? std::uint64_t{1}
                                                     : bound));
  for (unsigned i = 0; i < selects; ++i) select_broadcast(index_bits);

  if (obs::counters_enabled()) {
    chan_obs().frame_slots.add();
    obs::gen2_instruments().query_commands.add();
  }
  const Gen2SlotResult slot =
      mac_.run_slot(responders, config_.bits.query, config_.bits.rn16);
  if (obs::counters_enabled() && slot.outcome != SlotOutcome::kIdle) {
    chan_obs().busy_slots.add();
  }
  return slot.outcome != SlotOutcome::kIdle;
}

const std::vector<SlotOutcome>& Gen2PrefixChannel::run_frame(
    const chan::FrameConfig& frame) {
  expects(frame.frame_size >= 1, "run_frame: empty frame");
  expects(frame.persistence > 0.0 && frame.persistence <= 1.0,
          "run_frame: persistence must be in (0, 1]");

  // Occupancy sampling bit-identical to ExactChannel::run_frame (same
  // persistence salt, same slot hashes) so the clean-config outcome stream
  // matches the ideal reference exactly.
  frame_occupancy_.assign(frame.frame_size, 0);
  for (const TagId id : tags_) {
    if (frame.persistence < 1.0) {
      const std::uint64_t coin = rng::uniform64(
          config_.hash, frame.seed ^ 0xc01cc01cc01cc01cULL, to_underlying(id));
      const auto threshold = static_cast<std::uint64_t>(
          frame.persistence * 18446744073709551615.0);
      if (coin > threshold) continue;
    }
    const std::uint64_t slot =
        frame.geometric
            ? rng::geometric_level(config_.hash, frame.seed, id,
                                   static_cast<unsigned>(frame.frame_size))
            : rng::uniform_slot(config_.hash, frame.seed, id,
                                frame.frame_size);
    ++frame_occupancy_[slot - 1];
  }

  mac_.refresh_obs();
  // Session Select (everyone participates), then Query opens slot 0 and
  // QueryRep steps the remainder.
  select_broadcast(0);
  if (obs::counters_enabled()) {
    chan_obs().frame_slots.add(frame.frame_size);
    obs::gen2_instruments().query_commands.add(frame.frame_size);
  }
  frame_outcomes_.clear();
  frame_outcomes_.reserve(frame.frame_size);
  bool first = true;
  for (const std::uint32_t count : frame_occupancy_) {
    const unsigned cmd_bits =
        first ? config_.bits.query : config_.bits.query_rep;
    first = false;
    const Gen2SlotResult slot =
        mac_.run_slot(count, cmd_bits, config_.bits.rn16);
    if (obs::counters_enabled() && slot.outcome != SlotOutcome::kIdle) {
      chan_obs().busy_slots.add();
    }
    frame_outcomes_.push_back(slot.outcome);
  }
  return frame_outcomes_;
}

}  // namespace pet::gen2
