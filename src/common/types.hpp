// Small strong types shared across the library.
//
// The paper's notation is easy to confuse (its Algorithm 1 records the
// longest responding prefix length but calls it h, while the analysis' h is
// the gray-node *height*; see DESIGN.md).  We therefore give both views
// distinct types and convert explicitly.
#pragma once

#include <compare>
#include <cstdint>

#include "common/ensure.hpp"

namespace pet {

/// Unique identifier of a physical RFID tag (the EPC-like ID the tag never
/// transmits during estimation).
enum class TagId : std::uint64_t {};

constexpr std::uint64_t to_underlying(TagId id) noexcept {
  return static_cast<std::uint64_t>(id);
}

/// Length (in bits) of the longest estimating-path prefix that drew a tag
/// response in one round: d = max_tag lcp(code, r).  Range [0, H].
struct PrefixDepth {
  unsigned value = 0;
  friend constexpr auto operator<=>(PrefixDepth, PrefixDepth) = default;
};

/// Height of the gray node on the estimating path: h = H - d.  Range [0, H].
struct GrayHeight {
  unsigned value = 0;
  friend constexpr auto operator<=>(GrayHeight, GrayHeight) = default;
};

constexpr GrayHeight to_gray_height(PrefixDepth d, unsigned tree_height) {
  expects(d.value <= tree_height, "prefix depth exceeds tree height");
  return GrayHeight{tree_height - d.value};
}

constexpr PrefixDepth to_prefix_depth(GrayHeight h, unsigned tree_height) {
  expects(h.value <= tree_height, "gray height exceeds tree height");
  return PrefixDepth{tree_height - h.value};
}

/// What the reader's receiver saw during one reply slot.
enum class SlotOutcome : std::uint8_t {
  kIdle,       ///< no tag transmitted (an "empty"/idle slot)
  kSingleton,  ///< exactly one tag transmitted and was decodable
  kCollision,  ///< two or more tags transmitted simultaneously
};

/// Estimation protocols only need "was there any reply energy"; both
/// singleton and collision slots count as nonempty (Section 4.1).
constexpr bool is_nonempty(SlotOutcome o) noexcept {
  return o != SlotOutcome::kIdle;
}

}  // namespace pet
