// Runtime contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", E.12): a narrow, exception-throwing assertion
// used at API boundaries, and a hard abort for internal invariants that
// must never fire even in release builds.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pet {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a caller-supplied configuration is inconsistent.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] void throw_precondition(std::string_view what,
                                     std::source_location where);
[[noreturn]] void fail_invariant(std::string_view what,
                                 std::source_location where);
}  // namespace detail

/// Check a precondition of a public function; throws PreconditionError with
/// the call site on failure.  Cheap enough to keep enabled in release.
constexpr void expects(bool ok, std::string_view what,
                       std::source_location where = std::source_location::current()) {
  if (!ok) detail::throw_precondition(what, where);
}

/// Check an internal invariant; aborts (after printing diagnostics) on
/// failure.  Use for "cannot happen" conditions whose violation means the
/// library itself is broken, not the caller.
constexpr void invariant(bool ok, std::string_view what,
                         std::source_location where = std::source_location::current()) {
  if (!ok) detail::fail_invariant(what, where);
}

}  // namespace pet
