// Process-wide switch for the fast-round evaluation pipeline (oracle-
// synthesized PET rounds, radix-sorted batch channel construction, and
// per-thread channel arenas).  Every fast-path site is bit-identical to the
// code it replaces — the switch exists only so the two implementations can
// be A/B-compared on the same build (scripts/check_repro.sh claim 6,
// docs/performance.md).
//
// Default: enabled.  PET_FAST_PATH=0 in the environment forces the
// historical slow path for a whole process; set_fast_path flips it at run
// time (tests, the bench harness --fast-path flag).
#pragma once

namespace pet {

[[nodiscard]] bool fast_path_enabled() noexcept;
void set_fast_path(bool enabled) noexcept;

}  // namespace pet
