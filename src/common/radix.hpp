// LSD radix sort for 64-bit keys: the sorting engine behind
// SortedPetChannel's per-trial rebuild.  Produces exactly the permutation
// std::sort would (keys are totally ordered, so any correct sort agrees),
// at O(n) per 8-bit digit pass instead of O(n log n) comparisons.
//
// Digit passes whose byte is constant across all keys are skipped, so
// H-bit PET codes (value range [0, 2^H)) pay only ceil(H/8) scatter passes.
// The caller owns the scratch buffer, which lets a trial arena reuse both
// allocations across thousands of rebuilds (docs/performance.md).
//
// radix_sort_u64_parallel adds an MSB partition over a ParallelFor
// executor: the key space is split into 256 top-digit buckets, per-worker
// chunk histograms fix every element's destination deterministically, and
// the buckets are LSD-sorted independently and concatenated in bucket
// order.  A sorted u64 array is unique, so the output is byte-identical to
// the serial sort at any worker count (tests/parallel_build_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

namespace pet {

class ParallelFor;

/// Sort `values` ascending in place.  `scratch` is resized to
/// values.size() and its previous contents are destroyed.  `key_bits` is an
/// optional promise that every value fits in the low `key_bits` bits
/// (values outside it make the result unspecified); passing the PET tree
/// height H caps both histogram and scatter work at ceil(H/8) digit passes.
void radix_sort_u64(std::vector<std::uint64_t>& values,
                    std::vector<std::uint64_t>& scratch,
                    unsigned key_bits = 64);

/// Deterministic facts about one parallel radix build, for the pet.build.*
/// obs bundle.  buckets_used / max_bucket depend only on the keys;
/// workers reflects the executor actually engaged (1 == serial fallback).
struct RadixPartitionStats {
  unsigned workers = 1;            ///< chunks the partition ran on
  unsigned buckets_used = 0;       ///< non-empty MSB buckets (of 256)
  std::uint64_t max_bucket = 0;    ///< largest bucket population
};

/// Parallel variant of radix_sort_u64: identical output, same buffer
/// contract.  `executor == nullptr`, a single-worker executor, tiny inputs,
/// or key_bits <= 8 (nothing left below the MSB digit) all fall back to the
/// serial sort.  `stats`, when non-null, receives the partition shape.
void radix_sort_u64_parallel(std::vector<std::uint64_t>& values,
                             std::vector<std::uint64_t>& scratch,
                             unsigned key_bits, ParallelFor* executor,
                             RadixPartitionStats* stats = nullptr);

}  // namespace pet
