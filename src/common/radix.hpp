// LSD radix sort for 64-bit keys: the sorting engine behind
// SortedPetChannel's per-trial rebuild.  Produces exactly the permutation
// std::sort would (keys are totally ordered, so any correct sort agrees),
// at O(n) per 8-bit digit pass instead of O(n log n) comparisons.
//
// Digit passes whose byte is constant across all keys are skipped, so
// H-bit PET codes (value range [0, 2^H)) pay only ceil(H/8) scatter passes.
// The caller owns the scratch buffer, which lets a trial arena reuse both
// allocations across thousands of rebuilds (docs/performance.md).
//
// radix_sort_u64_parallel adds an MSB partition over a ParallelFor
// executor: the key space is split into 256 top-digit buckets, per-worker
// chunk histograms fix every element's destination deterministically, and
// the buckets are LSD-sorted independently and concatenated in bucket
// order.  A sorted u64 array is unique, so the output is byte-identical to
// the serial sort at any worker count (tests/parallel_build_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

namespace pet {

class ParallelFor;

/// Sort `values` ascending in place.  `scratch` is resized to
/// values.size() and its previous contents are destroyed.  `key_bits` is an
/// optional promise that every value fits in the low `key_bits` bits
/// (values outside it make the result unspecified); passing the PET tree
/// height H caps both histogram and scatter work at ceil(H/8) digit passes.
/// Narrow keys (key_bits <= 32) at 10^7+ elements are routed to the
/// u32-staged engine below automatically.
void radix_sort_u64(std::vector<std::uint64_t>& values,
                    std::vector<std::uint64_t>& scratch,
                    unsigned key_bits = 64);

/// Size gate for the u32-staged engine: below ~10^7 keys the extra
/// narrow/widen copies cost more than the halved scatter traffic saves, so
/// radix_sort_u64 only switches engines at or above this (measured in
/// bench/ablation_scaling.cpp; docs/performance.md has the numbers).
inline constexpr std::size_t kU32StagedMinKeys = 10'000'000;

/// Second sorting engine for the 10^7+ single-build regime with narrow
/// keys (requires key_bits <= 32 — PET codes at H <= 32 qualify): the u64
/// keys are narrowed once into u32 staging arrays, LSD-sorted there (half
/// the bytes per histogram read and scatter write, twice the keys per cache
/// line), and widened back.  Same digit-skip rule and exactly the same
/// output permutation as radix_sort_u64 — a sorted key array is unique —
/// pinned byte-for-byte by tests/parallel_build_test.cpp.  Exposed publicly
/// so tests and benches can pin the engine regardless of the size gate.
void radix_sort_u32_staged(std::vector<std::uint64_t>& values,
                           std::vector<std::uint64_t>& scratch,
                           unsigned key_bits = 32);

/// Deterministic facts about one parallel radix build, for the pet.build.*
/// obs bundle.  buckets_used / max_bucket depend only on the keys;
/// workers reflects the executor actually engaged (1 == serial fallback).
struct RadixPartitionStats {
  unsigned workers = 1;            ///< chunks the partition ran on
  unsigned buckets_used = 0;       ///< non-empty MSB buckets (of 256)
  std::uint64_t max_bucket = 0;    ///< largest bucket population
};

/// Parallel variant of radix_sort_u64: identical output, same buffer
/// contract.  `executor == nullptr`, a single-worker executor, tiny inputs,
/// or key_bits <= 8 (nothing left below the MSB digit) all fall back to the
/// serial sort.  `stats`, when non-null, receives the partition shape.
void radix_sort_u64_parallel(std::vector<std::uint64_t>& values,
                             std::vector<std::uint64_t>& scratch,
                             unsigned key_bits, ParallelFor* executor,
                             RadixPartitionStats* stats = nullptr);

}  // namespace pet
