// LSD radix sort for 64-bit keys: the sorting engine behind
// SortedPetChannel's per-trial rebuild.  Produces exactly the permutation
// std::sort would (keys are totally ordered, so any correct sort agrees),
// at O(n) per 8-bit digit pass instead of O(n log n) comparisons.
//
// Digit passes whose byte is constant across all keys are skipped, so
// H-bit PET codes (value range [0, 2^H)) pay only ceil(H/8) scatter passes.
// The caller owns the scratch buffer, which lets a trial arena reuse both
// allocations across thousands of rebuilds (docs/performance.md).
#pragma once

#include <cstdint>
#include <vector>

namespace pet {

/// Sort `values` ascending in place.  `scratch` is resized to
/// values.size() and its previous contents are destroyed.  `key_bits` is an
/// optional promise that every value fits in the low `key_bits` bits
/// (values outside it make the result unspecified); passing the PET tree
/// height H caps both histogram and scatter work at ceil(H/8) digit passes.
void radix_sort_u64(std::vector<std::uint64_t>& values,
                    std::vector<std::uint64_t>& scratch,
                    unsigned key_bits = 64);

}  // namespace pet
