#include "common/parallel.hpp"

#include <atomic>

namespace pet {

namespace {

std::atomic<ParallelFor*>& registry() noexcept {
  static std::atomic<ParallelFor*> executor{nullptr};
  return executor;
}

}  // namespace

ParallelFor* build_parallel_for() noexcept {
  return registry().load(std::memory_order_acquire);
}

void set_build_parallel_for(ParallelFor* executor) noexcept {
  registry().store(executor, std::memory_order_release);
}

}  // namespace pet
