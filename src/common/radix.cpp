#include "common/radix.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <utility>

namespace pet {

void radix_sort_u64(std::vector<std::uint64_t>& values,
                    std::vector<std::uint64_t>& scratch,
                    unsigned key_bits) {
  const std::size_t n = values.size();
  if (n < 2) return;
  scratch.resize(n);
  const unsigned digits = (std::min(key_bits, 64u) + 7) / 8;

  // One read pass builds all live digit histograms at once; scatter passes
  // then run only for digits that actually discriminate.
  std::array<std::array<std::uint32_t, 256>, 8> counts{};
  for (const std::uint64_t v : values) {
    for (unsigned d = 0; d < digits; ++d) {
      ++counts[d][(v >> (8 * d)) & 0xff];
    }
  }

  std::uint64_t* src = values.data();
  std::uint64_t* dst = scratch.data();
  for (unsigned d = 0; d < digits; ++d) {
    std::array<std::uint32_t, 256>& count = counts[d];
    const std::uint32_t first_bucket = count[(src[0] >> (8 * d)) & 0xff];
    if (first_bucket == n) continue;  // digit constant: pass is a no-op

    std::uint32_t offset = 0;
    for (std::uint32_t& c : count) {
      const std::uint32_t bucket = c;
      c = offset;
      offset += bucket;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = src[i];
      dst[count[(v >> (8 * d)) & 0xff]++] = v;
    }
    std::swap(src, dst);
  }

  if (src != values.data()) {
    // Odd number of scatter passes: the sorted run lives in scratch.
    values.swap(scratch);
  }
}

}  // namespace pet
