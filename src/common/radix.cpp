#include "common/radix.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <utility>

#include "common/parallel.hpp"

namespace pet {

void radix_sort_u64(std::vector<std::uint64_t>& values,
                    std::vector<std::uint64_t>& scratch,
                    unsigned key_bits) {
  const std::size_t n = values.size();
  if (n < 2) return;
  if (key_bits <= 32 && n >= kU32StagedMinKeys) {
    // Narrow-key builds big enough to amortize the narrow/widen copies run
    // on the u32-staged engine (same output permutation, half the scatter
    // traffic).  The parallel sort's MSB-partition path is deliberately NOT
    // gated: its per-bucket runs are far below the threshold, so staging
    // would only add copies there.
    radix_sort_u32_staged(values, scratch, key_bits);
    return;
  }
  scratch.resize(n);
  const unsigned digits = (std::min(key_bits, 64u) + 7) / 8;

  // One read pass builds all live digit histograms at once; scatter passes
  // then run only for digits that actually discriminate.
  std::array<std::array<std::uint32_t, 256>, 8> counts{};
  for (const std::uint64_t v : values) {
    for (unsigned d = 0; d < digits; ++d) {
      ++counts[d][(v >> (8 * d)) & 0xff];
    }
  }

  std::uint64_t* src = values.data();
  std::uint64_t* dst = scratch.data();
  for (unsigned d = 0; d < digits; ++d) {
    std::array<std::uint32_t, 256>& count = counts[d];
    const std::uint32_t first_bucket = count[(src[0] >> (8 * d)) & 0xff];
    if (first_bucket == n) continue;  // digit constant: pass is a no-op

    std::uint32_t offset = 0;
    for (std::uint32_t& c : count) {
      const std::uint32_t bucket = c;
      c = offset;
      offset += bucket;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = src[i];
      dst[count[(v >> (8 * d)) & 0xff]++] = v;
    }
    std::swap(src, dst);
  }

  if (src != values.data()) {
    // Odd number of scatter passes: the sorted run lives in scratch.
    values.swap(scratch);
  }
}

void radix_sort_u32_staged(std::vector<std::uint64_t>& values,
                           std::vector<std::uint64_t>& scratch,
                           unsigned key_bits) {
  const std::size_t n = values.size();
  if (n < 2) return;
  key_bits = std::min(key_bits, 32u);
  // Keep the public buffer contract identical to radix_sort_u64 (scratch
  // resized, previous contents destroyed) so the two engines are drop-in
  // interchangeable for callers that reuse arena buffers.
  scratch.resize(n);
  const unsigned digits = (key_bits + 7) / 8;

  // Narrow once into u32 staging arrays: every subsequent histogram read
  // and scatter write moves half the bytes and fits twice the keys per
  // cache line, which is where the 10^7+ win comes from.
  std::vector<std::uint32_t> narrow(n);
  std::vector<std::uint32_t> stage(n);
  for (std::size_t i = 0; i < n; ++i) {
    narrow[i] = static_cast<std::uint32_t>(values[i]);
  }

  // Same one-read-pass histogram + digit-skip structure as the u64 engine.
  std::array<std::array<std::uint32_t, 256>, 4> counts{};
  for (const std::uint32_t v : narrow) {
    for (unsigned d = 0; d < digits; ++d) {
      ++counts[d][(v >> (8 * d)) & 0xff];
    }
  }

  std::uint32_t* src = narrow.data();
  std::uint32_t* dst = stage.data();
  for (unsigned d = 0; d < digits; ++d) {
    std::array<std::uint32_t, 256>& count = counts[d];
    const std::uint32_t first_bucket = count[(src[0] >> (8 * d)) & 0xff];
    if (first_bucket == n) continue;  // digit constant: pass is a no-op

    std::uint32_t offset = 0;
    for (std::uint32_t& c : count) {
      const std::uint32_t bucket = c;
      c = offset;
      offset += bucket;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t v = src[i];
      dst[count[(v >> (8 * d)) & 0xff]++] = v;
    }
    std::swap(src, dst);
  }

  // Widen back from whichever staging array holds the sorted run.
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = src[i];
  }
}

namespace {

// Below this the pool dispatch overhead exceeds the sort itself; the serial
// engine also stays the one exercised by the table3-class per-trial sizes
// at --threads=1.
constexpr std::size_t kParallelSortMinKeys = std::size_t{1} << 14;

// LSD-sort `n` keys of `low_bits` significant bits from `src`, leaving the
// result in `out`.  `src` and `out` are distinct equal-sized ranges; both
// are clobbered (they ping-pong).  Same digit-skip rule as the serial sort,
// so a bucket whose low bits are constant costs only the final copy.
void lsd_sort_into(std::uint64_t* src, std::uint64_t* out, std::size_t n,
                   unsigned low_bits) {
  if (n == 0) return;
  if (n == 1) {
    out[0] = src[0];
    return;
  }
  const unsigned digits = (low_bits + 7) / 8;
  std::array<std::array<std::uint32_t, 256>, 8> counts{};
  for (std::size_t i = 0; i < n; ++i) {
    for (unsigned d = 0; d < digits; ++d) {
      ++counts[d][(src[i] >> (8 * d)) & 0xff];
    }
  }
  std::uint64_t* a = src;
  std::uint64_t* b = out;
  for (unsigned d = 0; d < digits; ++d) {
    std::array<std::uint32_t, 256>& count = counts[d];
    const std::uint32_t first_bucket = count[(a[0] >> (8 * d)) & 0xff];
    if (first_bucket == n) continue;
    std::uint32_t offset = 0;
    for (std::uint32_t& c : count) {
      const std::uint32_t bucket = c;
      c = offset;
      offset += bucket;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = a[i];
      b[count[(v >> (8 * d)) & 0xff]++] = v;
    }
    std::swap(a, b);
  }
  if (a != out) std::copy(a, a + n, out);
}

}  // namespace

// One build's key space split across the executor: (1) per-chunk histograms
// of the MSB digit (bits [key_bits-8, key_bits)), (2) offsets laid out
// bucket-major then chunk-minor — a pure function of the keys and the fixed
// chunk partition — (3) parallel scatter into disjoint regions, (4) each of
// the 256 buckets LSD-sorted independently over the remaining low bits,
// landing back in `values` already concatenated in ascending bucket order.
// The output is the unique sorted permutation, hence byte-identical to
// radix_sort_u64 at any worker count.
void radix_sort_u64_parallel(std::vector<std::uint64_t>& values,
                             std::vector<std::uint64_t>& scratch,
                             unsigned key_bits, ParallelFor* executor,
                             RadixPartitionStats* stats) {
  if (stats != nullptr) *stats = {};
  const std::size_t n = values.size();
  key_bits = std::min(key_bits, 64u);
  const unsigned workers = executor != nullptr ? executor->workers() : 1;
  if (executor == nullptr || workers <= 1 || n < kParallelSortMinKeys ||
      key_bits <= 8) {
    // Nothing to partition (or nothing below the MSB digit to sort).
    radix_sort_u64(values, scratch, key_bits);
    return;
  }
  scratch.resize(n);
  const unsigned shift = key_bits - 8;

  std::vector<std::array<std::uint64_t, 256>> chunk_hist(workers);
  std::uint64_t* const src = values.data();
  std::uint64_t* const dst = scratch.data();
  executor->run(n, [&](unsigned w, std::size_t begin, std::size_t end) {
    std::array<std::uint64_t, 256>& hist = chunk_hist[w];
    hist.fill(0);
    for (std::size_t i = begin; i < end; ++i) {
      ++hist[(src[i] >> shift) & 0xff];
    }
  });

  // Destination of chunk w's slice of bucket b: bucket-major, chunk-minor.
  std::array<std::uint64_t, 257> bucket_start;
  std::uint64_t offset = 0;
  for (std::size_t b = 0; b < 256; ++b) {
    bucket_start[b] = offset;
    for (unsigned w = 0; w < workers; ++w) {
      const std::uint64_t count = chunk_hist[w][b];
      chunk_hist[w][b] = offset;
      offset += count;
    }
  }
  bucket_start[256] = n;

  if (stats != nullptr) {
    stats->workers = workers;
    for (std::size_t b = 0; b < 256; ++b) {
      const std::uint64_t size = bucket_start[b + 1] - bucket_start[b];
      if (size != 0) ++stats->buckets_used;
      stats->max_bucket = std::max(stats->max_bucket, size);
    }
  }

  executor->run(n, [&](unsigned w, std::size_t begin, std::size_t end) {
    std::array<std::uint64_t, 256>& cursor = chunk_hist[w];
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint64_t v = src[i];
      dst[cursor[(v >> shift) & 0xff]++] = v;
    }
  });

  // Each bucket is a contiguous run of `scratch`; its mirror range in
  // `values` serves as the ping-pong buffer, so the sorted bucket lands in
  // `values` exactly where the concatenation-by-bucket-index order puts it.
  executor->run(256, [&](unsigned, std::size_t first, std::size_t last) {
    for (std::size_t b = first; b < last; ++b) {
      const std::uint64_t lo = bucket_start[b];
      lsd_sort_into(dst + lo, src + lo, bucket_start[b + 1] - lo, shift);
    }
  });
}

}  // namespace pet
