#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pet {

namespace {

SimdTier probe_cpu() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return SimdTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
  return SimdTier::kScalar;
#elif defined(__aarch64__)
  // AArch64 mandates Advanced SIMD.
  return SimdTier::kNeon;
#else
  return SimdTier::kScalar;
#endif
}

SimdTier env_cap() noexcept {
  const char* env = std::getenv("PET_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0 ||
      std::strcmp(env, "on") == 0 || env[0] == '\0') {
    return SimdTier::kAvx512;  // no cap: detection decides
  }
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "scalar") == 0) {
    return SimdTier::kScalar;
  }
  if (std::strcmp(env, "neon") == 0) return SimdTier::kNeon;
  if (std::strcmp(env, "avx2") == 0) return SimdTier::kAvx2;
  if (std::strcmp(env, "avx512") == 0) return SimdTier::kAvx512;
  // Unrecognized values fall back to full detection rather than silently
  // disabling the fast path.
  return SimdTier::kAvx512;
}

std::atomic<SimdTier>& cap() noexcept {
  static std::atomic<SimdTier> value{env_cap()};
  return value;
}

}  // namespace

std::string_view to_string(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kNeon: return "neon";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kAvx512: return "avx512";
  }
  return "unknown";
}

unsigned simd_lanes(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalar: return 1;
    case SimdTier::kNeon: return 2;
    case SimdTier::kAvx2: return 4;
    case SimdTier::kAvx512: return 8;
  }
  return 1;
}

SimdTier detected_simd_tier() noexcept {
  static const SimdTier detected = probe_cpu();
  return detected;
}

SimdTier simd_tier() noexcept {
  const SimdTier detected = detected_simd_tier();
  const SimdTier limit = cap().load(std::memory_order_relaxed);
  return limit < detected ? limit : detected;
}

void set_simd(SimdTier tier) noexcept {
  cap().store(tier, std::memory_order_relaxed);
}

void set_simd(bool enabled) noexcept {
  set_simd(enabled ? SimdTier::kAvx512 : SimdTier::kScalar);
}

}  // namespace pet
