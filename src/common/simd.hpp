// Process-wide SIMD dispatch tier for the batch hashing kernels
// (src/rng/hash_simd.cpp, docs/performance.md).
//
// Every vectorized site is bit-identical to the scalar code it replaces —
// the mix64 finalizer is pure 64-bit integer arithmetic, so lane width
// cannot change a single output bit.  The switch exists so the tiers can be
// A/B-compared on one build (tests/simd_parity_test.cpp, repro claim 9).
//
// The active tier is min(detected, cap): detection probes the CPU once at
// startup (AVX-512DQ > AVX2 on x86-64, NEON on AArch64, scalar otherwise);
// the cap defaults to the PET_SIMD environment variable and can be moved at
// run time with set_simd.  PET_SIMD accepts off|scalar|0, neon, avx2,
// avx512, and auto (the default).  Requesting a tier the CPU lacks clamps
// to what is actually supported.
#pragma once

#include <cstdint>
#include <string_view>

namespace pet {

enum class SimdTier : std::uint8_t {
  kScalar = 0,  ///< portable scalar loop (always available)
  kNeon = 1,    ///< AArch64 NEON, 2 x 64-bit lanes
  kAvx2 = 2,    ///< x86-64 AVX2, 4 x 64-bit lanes (emulated 64-bit multiply)
  kAvx512 = 3,  ///< x86-64 AVX-512F+DQ, 8 x 64-bit lanes (native multiply)
};

[[nodiscard]] std::string_view to_string(SimdTier tier) noexcept;

/// Number of 64-bit lanes a tier processes per vector: 1, 2, 4, or 8.
[[nodiscard]] unsigned simd_lanes(SimdTier tier) noexcept;

/// Highest tier this CPU supports (probed once, constant thereafter).
[[nodiscard]] SimdTier detected_simd_tier() noexcept;

/// Tier the kernels actually dispatch on: min(detected, cap).
[[nodiscard]] SimdTier simd_tier() noexcept;

/// Cap the dispatch tier process-wide (clamped to the detected tier).
void set_simd(SimdTier cap) noexcept;

/// Convenience switch: false pins kScalar, true restores full detection.
void set_simd(bool enabled) noexcept;

}  // namespace pet
