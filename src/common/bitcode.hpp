// BitCode: a fixed-width bit string of up to 64 bits, MSB-first.
//
// PET maps every RFID tag to a leaf of a depth-H binary tree via an H-bit
// code; the reader walks a random H-bit "estimating path".  Both are
// BitCodes.  Bit 0 (the "first" bit, the root branch) is the most
// significant of the `width` low-order bits of `bits_`.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/ensure.hpp"

namespace pet {

class BitCode {
 public:
  static constexpr unsigned kMaxWidth = 64;

  /// An empty (zero-width) code; prefix of everything.
  constexpr BitCode() noexcept = default;

  /// A code of `width` bits whose MSB-first value is the low `width` bits
  /// of `value`.  Width 0..64; value must fit.
  constexpr BitCode(std::uint64_t value, unsigned width)
      : bits_(value), width_(width) {
    expects(width <= kMaxWidth, "BitCode width must be <= 64");
    if (width < kMaxWidth) {
      expects((value >> width) == 0, "BitCode value wider than declared width");
    }
  }

  [[nodiscard]] constexpr unsigned width() const noexcept { return width_; }
  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return bits_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return width_ == 0; }

  /// Bit at position i (0 = first/most-significant branch).
  [[nodiscard]] constexpr bool bit(unsigned i) const {
    expects(i < width_, "BitCode::bit index out of range");
    return ((bits_ >> (width_ - 1 - i)) & 1u) != 0;
  }

  /// The first `len` bits as a new BitCode.
  [[nodiscard]] constexpr BitCode prefix(unsigned len) const {
    expects(len <= width_, "BitCode::prefix longer than code");
    if (len == 0) return BitCode{};
    return BitCode(bits_ >> (width_ - len), len);
  }

  /// True iff the first `len` bits of *this equal the first `len` bits of
  /// `other`.  This is exactly the tag-side mask comparison of the paper's
  /// Algorithms 2/4 (respond iff prc AND mask == r AND mask).
  [[nodiscard]] constexpr bool matches_prefix(const BitCode& other,
                                              unsigned len) const {
    expects(len <= width_ && len <= other.width_,
            "matches_prefix length exceeds a code width");
    if (len == 0) return true;
    const std::uint64_t a = bits_ >> (width_ - len);
    const std::uint64_t b = other.bits_ >> (other.width_ - len);
    return a == b;
  }

  /// Length of the longest common prefix with `other` (widths must match).
  /// Equivalently: number of leading zeros of (this XOR other) within the
  /// code width — the per-round PET observation d.
  [[nodiscard]] constexpr unsigned common_prefix_len(const BitCode& other) const {
    expects(width_ == other.width_, "common_prefix_len widths differ");
    if (width_ == 0) return 0;
    const std::uint64_t x = (bits_ ^ other.bits_) << (kMaxWidth - width_);
    if (x == 0) return width_;
    return static_cast<unsigned>(std::countl_zero(x));
  }

  /// Append one branch bit (0-branch or 1-branch).
  [[nodiscard]] constexpr BitCode extended(bool one_branch) const {
    expects(width_ < kMaxWidth, "BitCode::extended would exceed 64 bits");
    return BitCode((bits_ << 1) | (one_branch ? 1u : 0u), width_ + 1);
  }

  /// MSB-first "0101..." rendering.
  [[nodiscard]] std::string to_string() const;

  /// Parse an MSB-first binary literal like "0011"; throws ConfigError on
  /// any character other than 0/1 or on length > 64.
  [[nodiscard]] static BitCode parse(std::string_view text);

  friend constexpr bool operator==(const BitCode&, const BitCode&) = default;

 private:
  std::uint64_t bits_ = 0;
  unsigned width_ = 0;
};

/// Strict weak order by (width, value); handy for sorted code arrays.
constexpr bool operator<(const BitCode& a, const BitCode& b) noexcept {
  if (a.width() != b.width()) return a.width() < b.width();
  return a.value() < b.value();
}

}  // namespace pet
