#include "common/fastpath.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pet {

namespace {

bool initial_fast_path() noexcept {
  const char* env = std::getenv("PET_FAST_PATH");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

std::atomic<bool>& flag() noexcept {
  static std::atomic<bool> enabled{initial_fast_path()};
  return enabled;
}

}  // namespace

bool fast_path_enabled() noexcept {
  return flag().load(std::memory_order_relaxed);
}

void set_fast_path(bool enabled) noexcept {
  flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace pet
