#include "common/bitcode.hpp"

namespace pet {

std::string BitCode::to_string() const {
  std::string out;
  out.reserve(width_);
  for (unsigned i = 0; i < width_; ++i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

BitCode BitCode::parse(std::string_view text) {
  if (text.size() > kMaxWidth) {
    throw ConfigError("BitCode::parse: literal longer than 64 bits");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c != '0' && c != '1') {
      throw ConfigError("BitCode::parse: literal must contain only 0/1");
    }
    value = (value << 1) | static_cast<std::uint64_t>(c - '0');
  }
  return BitCode(value, static_cast<unsigned>(text.size()));
}

}  // namespace pet
