#include "common/ensure.hpp"

#include <cstdio>
#include <cstdlib>

namespace pet::detail {

namespace {
std::string describe(std::string_view what, std::source_location where) {
  std::string out;
  out.reserve(what.size() + 128);
  out += what;
  out += " [at ";
  out += where.file_name();
  out += ':';
  out += std::to_string(where.line());
  out += " in ";
  out += where.function_name();
  out += ']';
  return out;
}
}  // namespace

void throw_precondition(std::string_view what, std::source_location where) {
  throw PreconditionError(describe(what, where));
}

void fail_invariant(std::string_view what, std::source_location where) {
  const std::string msg = describe(what, where);
  std::fputs("pet invariant violated: ", stderr);
  std::fputs(msg.c_str(), stderr);
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace pet::detail
