// Minimal executor seam between the layer-0 sorting engine and the
// pet::runtime thread pool.
//
// common sits below runtime in the module graph (src/CMakeLists.txt), so
// radix.cpp cannot name ThreadPool.  Instead the parallel radix build takes
// this abstract chunked-for-each; pet::runtime implements it over the build
// pool (src/runtime/parallel_exec.hpp) and registers it process-wide, and
// SortedPetChannel picks it up at build time.  A null executor (the
// default) means every build runs serially — exactly the pre-parallel code
// path.
//
// Determinism contract: run() must invoke fn over the fixed partition of
// [0, n) into `workers()` contiguous chunks, chunk w = [w*n/W, (w+1)*n/W),
// and return only after every chunk completed.  Chunk boundaries are a
// pure function of (n, W); callers that need byte-identical output at any
// worker count must not let W leak into results (the radix partition
// doesn't: a sorted array is unique, see docs/performance.md).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

namespace pet {

class ParallelFor {
 public:
  virtual ~ParallelFor() = default;

  /// Number of chunks run() partitions work into (>= 1).
  [[nodiscard]] virtual unsigned workers() const noexcept = 0;

  /// Invoke fn(chunk_index, begin, end) for every chunk of [0, n); blocks
  /// until all chunks completed.  fn must be safe to call concurrently on
  /// distinct chunks.  Exceptions thrown by fn propagate to the caller.
  virtual void run(std::size_t n,
                   const std::function<void(unsigned, std::size_t,
                                            std::size_t)>& fn) = 0;
};

/// Chunk boundary helper shared by implementations and the radix build:
/// chunk w of [0, n) split W ways is [chunk_begin(n,W,w), chunk_begin(n,W,w+1)).
[[nodiscard]] constexpr std::size_t chunk_begin(std::size_t n, unsigned total,
                                                unsigned index) noexcept {
  return n / total * index + std::min<std::size_t>(n % total, index);
}

/// Process-wide executor used for channel builds; nullptr (the default)
/// keeps every build serial.  Registered by
/// runtime::configure_build_parallelism; the pointer must outlive its
/// registration.
[[nodiscard]] ParallelFor* build_parallel_for() noexcept;
void set_build_parallel_for(ParallelFor* executor) noexcept;

}  // namespace pet
