#include "runtime/thread_pool.hpp"

#include "common/ensure.hpp"

namespace pet::runtime {

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

namespace {
thread_local bool tls_on_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return tls_on_worker; }

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = threads == 0 ? hardware_threads() : threads;
  queues_.reserve(count);
  worker_stats_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<Queue>());
    worker_stats_.push_back(std::make_unique<WorkerStat>());
  }
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // The lock orders the stop flag against the predicate re-check in
    // worker_loop, so no worker can sleep through the shutdown notify.
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  expects(!stop_.load(std::memory_order_relaxed),
          "ThreadPool::submit: pool is shutting down");
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();

  const std::size_t slot =
      static_cast<std::size_t>(next_.fetch_add(1, std::memory_order_relaxed)) %
      queues_.size();
  {
    const std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(packaged));
  }
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    const std::uint64_t depth =
        queued_.fetch_add(1, std::memory_order_relaxed) + 1;
    submitted_.fetch_add(1, std::memory_order_relaxed);
    // Monotone max under the idle lock, so no CAS loop is needed.
    if (depth > max_queue_depth_.load(std::memory_order_relaxed)) {
      max_queue_depth_.store(depth, std::memory_order_relaxed);
    }
  }
  idle_cv_.notify_one();
  return future;
}

bool ThreadPool::try_pop(std::size_t me, std::packaged_task<void()>& out) {
  // Own queue first, newest task (LIFO keeps the working set warm) ...
  {
    Queue& mine = *queues_[me];
    const std::lock_guard<std::mutex> lock(mine.mutex);
    if (!mine.tasks.empty()) {
      out = std::move(mine.tasks.back());
      mine.tasks.pop_back();
      return true;
    }
  }
  // ... then steal the oldest task from a sibling (FIFO minimizes the
  // chance of fighting the victim over its hot end).
  for (std::size_t step = 1; step < queues_.size(); ++step) {
    Queue& victim = *queues_[(me + step) % queues_.size()];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      worker_stats_[me]->stolen.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  out.worker_tasks.reserve(worker_stats_.size());
  for (const auto& w : worker_stats_) {
    out.worker_tasks.push_back(w->executed.load(std::memory_order_relaxed));
    out.stolen += w->stolen.load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t ThreadPool::stolen_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& w : worker_stats_) {
    total += w->stolen.load(std::memory_order_relaxed);
  }
  return total;
}

void ThreadPool::worker_loop(std::size_t me) {
  tls_on_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    if (try_pop(me, task)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      worker_stats_[me]->executed.fetch_add(1, std::memory_order_relaxed);
      task();  // packaged_task captures exceptions into the future
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
    // Drain semantics: exit only once shutdown began AND nothing is queued.
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

}  // namespace pet::runtime
