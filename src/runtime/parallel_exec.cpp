#include "runtime/parallel_exec.hpp"

#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace pet::runtime {

namespace {

class PoolParallelFor final : public ParallelFor {
 public:
  explicit PoolParallelFor(unsigned threads) : pool_(threads) {}

  [[nodiscard]] unsigned workers() const noexcept override {
    // Nested context: report no parallelism so callers take their serial
    // path instead of queueing behind the sweep that called them.
    if (ThreadPool::on_worker_thread()) return 1;
    return pool_.thread_count();
  }

  void run(std::size_t n,
           const std::function<void(unsigned, std::size_t, std::size_t)>& fn)
      override {
    const unsigned total = workers();
    if (total <= 1) {
      fn(0, 0, n);
      return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(total);
    for (unsigned w = 0; w < total; ++w) {
      const std::size_t begin = chunk_begin(n, total, w);
      const std::size_t end = chunk_begin(n, total, w + 1);
      if (begin == end) continue;  // callers zero-init per-chunk state
      futures.push_back(pool_.submit([&fn, w, begin, end] {
        fn(w, begin, end);
      }));
    }
    std::exception_ptr first_failure;
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!first_failure) first_failure = std::current_exception();
      }
    }
    if (first_failure) std::rethrow_exception(first_failure);
  }

 private:
  ThreadPool pool_;
};

// Unregister before the pool dies so a build racing process teardown sees
// "serial" rather than a dangling executor.
struct BuildExecutorHolder {
  std::unique_ptr<PoolParallelFor> executor;
  ~BuildExecutorHolder() { set_build_parallel_for(nullptr); }
};

std::mutex& config_mutex() {
  static std::mutex mutex;
  return mutex;
}

BuildExecutorHolder& holder() {
  static BuildExecutorHolder instance;
  return instance;
}

unsigned g_threads = 1;

}  // namespace

void configure_build_parallelism(unsigned threads) {
  if (threads == 0) threads = ThreadPool::hardware_threads();
  const std::lock_guard<std::mutex> lock(config_mutex());
  if (threads == g_threads) return;
  set_build_parallel_for(nullptr);
  holder().executor.reset();  // joins the old pool
  if (threads > 1) {
    holder().executor = std::make_unique<PoolParallelFor>(threads);
    set_build_parallel_for(holder().executor.get());
  }
  g_threads = threads;
}

unsigned build_parallelism() noexcept {
  ParallelFor* executor = build_parallel_for();
  return executor == nullptr ? 1 : executor->workers();
}

}  // namespace pet::runtime
