// Stderr progress meter for long trial sweeps: "<label>: 123/500 trials,
// 240.1 trials/s, ETA 1.6s".  Workers call tick() (an atomic increment);
// a reporter thread repaints every ~250 ms, but only once a sweep has been
// running for a second — short sweeps stay silent, and --quiet disables
// the meter entirely.  Progress output never touches stdout, so tables
// and CSV remain pipeline-clean.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace pet::runtime {

class ProgressMeter {
 public:
  ProgressMeter(std::uint64_t total, std::string label, bool enabled);
  ~ProgressMeter();  // stops the reporter and erases the status line

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  void tick() noexcept { done_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void paint();

  std::uint64_t total_;
  std::string label_;
  bool enabled_;
  std::atomic<std::uint64_t> done_{0};
  std::chrono::steady_clock::time_point start_;
  bool painted_ = false;  ///< reporter-thread / destructor only

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread reporter_;
};

}  // namespace pet::runtime
