// Stderr progress meter for long trial sweeps: "<label>: 123/500 trials,
// 240.1 trials/s, ETA 1.6s".  Workers call tick() (an atomic increment);
// a reporter thread repaints every ~250 ms, but only once a sweep has been
// running for a second — short sweeps stay silent, and --quiet disables
// the meter entirely.  Progress output never touches stdout, so tables
// and CSV remain pipeline-clean.
//
// When stderr is not a TTY (CI logs, `2> file`), the ANSI carriage-return
// repaints would pile up as spam; the meter detects this and falls back to
// a plain newline-terminated line at a much slower cadence.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

namespace pet::runtime {

struct ProgressConfig {
  /// kAuto probes isatty(stderr): ANSI in-place repaints on a terminal,
  /// plain line-per-update otherwise.
  enum class Style { kAuto, kAnsi, kPlain };

  Style style = Style::kAuto;
  std::chrono::milliseconds first_paint{1000};  ///< silence window
  std::chrono::milliseconds repaint{250};       ///< ANSI repaint cadence
  /// Plain mode emits whole lines, so it throttles harder by default.
  std::chrono::milliseconds plain_repaint{2000};
  /// Output sink; nullptr means stderr.  Tests inject an ostringstream.
  std::ostream* sink = nullptr;
};

class ProgressMeter {
 public:
  ProgressMeter(std::uint64_t total, std::string label, bool enabled,
                ProgressConfig config = {});
  ~ProgressMeter();  // stops the reporter and erases the status line

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  void tick() noexcept { done_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

  /// The resolved style (kAuto already collapsed to kAnsi or kPlain).
  [[nodiscard]] ProgressConfig::Style style() const noexcept {
    return style_;
  }

 private:
  void loop();
  void paint();
  void write(const std::string& text);

  std::uint64_t total_;
  std::string label_;
  bool enabled_;
  ProgressConfig config_;
  ProgressConfig::Style style_ = ProgressConfig::Style::kAnsi;
  std::atomic<std::uint64_t> done_{0};
  std::chrono::steady_clock::time_point start_;
  bool painted_ = false;  ///< reporter-thread / destructor only

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread reporter_;
};

}  // namespace pet::runtime
