#include "runtime/cancel.hpp"

#include <csignal>
#include <unistd.h>

namespace pet::runtime {

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<bool> g_handlers_installed{false};

extern "C" void pet_shutdown_signal_handler(int sig) {
  // Async-signal-safe: one relaxed RMW, and _exit on the second signal so a
  // wedged drain can always be interrupted from the keyboard.
  if (g_shutdown.exchange(true, std::memory_order_relaxed)) {
    _exit(128 + sig);
  }
}

}  // namespace

void install_shutdown_handlers() noexcept {
  if (g_handlers_installed.exchange(true, std::memory_order_relaxed)) return;
  struct sigaction action {};
  action.sa_handler = &pet_shutdown_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking accept/read should wake
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

void request_shutdown() noexcept {
  g_shutdown.store(true, std::memory_order_relaxed);
}

bool shutdown_requested() noexcept {
  return g_shutdown.load(std::memory_order_relaxed);
}

void reset_shutdown_for_tests() noexcept {
  g_shutdown.store(false, std::memory_order_relaxed);
}

CancelToken CancelToken::cancellable() {
  CancelToken token;
  token.flag_ = std::make_shared<std::atomic<bool>>(false);
  return token;
}

CancelToken CancelToken::with_deadline(
    std::chrono::steady_clock::time_point deadline) {
  CancelToken token = cancellable();
  token.deadline_ = deadline;
  return token;
}

CancelToken CancelToken::linked_to_shutdown() {
  CancelToken token = cancellable();
  token.honor_shutdown_ = true;
  return token;
}

void CancelToken::cancel() const noexcept {
  if (flag_) flag_->store(true, std::memory_order_relaxed);
}

}  // namespace pet::runtime
