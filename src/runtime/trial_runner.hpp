// TrialRunner — the deterministic parallel trial-execution engine.
//
// A trial plan is a counted set of independent Monte-Carlo trials; the
// runner shards trials 0..N-1 across a work-stealing ThreadPool and then
// folds the per-trial results **serially, in ascending trial index**.
// Combined with the repo-wide seeding contract (every trial derives all of
// its randomness from counter-based rng::derive_seed(master, k) streams,
// never from a shared generator — docs/runtime.md), the aggregate is
// bit-identical for any thread count and any scheduling order: the fold
// performs the exact floating-point operations of the serial loop it
// replaced, in the exact order.
//
// Exceptions thrown by a trial are captured on the worker, every other
// in-flight trial still completes, and the first failure (by submission
// order) is re-thrown to the caller after the sweep quiesces.
//
// Cancellation: an installed CancelToken is checked at trial boundaries.
// Once it fires, no further trial *starts* (in-flight trials finish) and
// run() folds only the contiguous completed prefix — so a Ctrl-C'd sweep
// still produces a well-formed partial aggregate instead of dying with
// nothing (the bench harness marks the resulting artifact "truncated").
#pragma once

#include <cstdint>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/cancel.hpp"
#include "runtime/progress.hpp"
#include "runtime/thread_pool.hpp"

namespace pet::runtime {

/// Optional per-trial hook, called on the executing worker immediately
/// before trial(i) with the trial index.  The obs layer installs
/// obs::set_trace_trial here so trace records carry logical (trial, slot)
/// coordinates; anything installed must be thread-safe and cheap.
using TrialBeginHook = void (*)(std::uint64_t trial);
void set_trial_begin_hook(TrialBeginHook hook) noexcept;
[[nodiscard]] TrialBeginHook trial_begin_hook() noexcept;

class TrialRunner {
 public:
  /// threads == 0 picks ThreadPool::hardware_threads().
  explicit TrialRunner(unsigned threads = 0, bool progress = false);

  /// Replace the pool (e.g. --threads) and progress reporting.  Not safe
  /// to call concurrently with run().
  void configure(unsigned threads, bool progress);

  [[nodiscard]] unsigned thread_count() const;
  [[nodiscard]] bool progress_enabled() const noexcept { return progress_; }

  /// Install a cancellation token checked at trial boundaries (an inert
  /// default-constructed token disables the checks).  Sweep front ends
  /// install CancelToken::linked_to_shutdown() so SIGINT/SIGTERM drains.
  void set_cancel_token(CancelToken token) noexcept {
    cancel_ = std::move(token);
  }
  [[nodiscard]] const CancelToken& cancel_token() const noexcept {
    return cancel_;
  }

  /// Execute `trial(i)` for i in [0, trials) on the pool, then call
  /// `fold(i, std::move(result_i))` for i = 0, 1, ... on the calling
  /// thread.  `trial` must be safe to invoke concurrently from several
  /// workers (shared state read-only).  `label` names the sweep in the
  /// progress meter.  Returns the number of trials folded: `trials` on a
  /// full run, fewer when the cancel token fired (partial contiguous
  /// prefix, see the header comment).
  template <typename Result, typename Trial, typename Fold>
  std::uint64_t run(std::uint64_t trials, Trial&& trial, Fold&& fold,
                    const std::string& label = "trials") {
    if (trials == 0) return 0;
    const bool check_cancel = cancel_.can_cancel();
    ProgressMeter meter(trials, label, progress_);

    if (thread_count() == 1) {
      // Serial fast path: no cross-thread hop, same observable behaviour
      // (the fold order below reproduces exactly this loop).
      for (std::uint64_t i = 0; i < trials; ++i) {
        if (check_cancel && cancel_.cancelled()) return i;
        if (TrialBeginHook hook = trial_begin_hook()) hook(i);
        Result result = trial(i);
        meter.tick();
        fold(i, std::move(result));
      }
      return trials;
    }

    std::vector<std::optional<Result>> results(trials);
    std::vector<std::future<void>> futures;
    futures.reserve(trials);
    const CancelToken& cancel = cancel_;
    for (std::uint64_t i = 0; i < trials; ++i) {
      futures.push_back(
          pool_->submit([&results, &meter, &trial, &cancel, check_cancel, i] {
            // Checked on the worker immediately before the trial starts:
            // a fired token turns every not-yet-started trial into a no-op
            // while in-flight ones run to completion.
            if (check_cancel && cancel.cancelled()) return;
            if (TrialBeginHook hook = trial_begin_hook()) hook(i);
            results[i].emplace(trial(i));
            meter.tick();
          }));
    }

    std::exception_ptr first_failure;
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!first_failure) first_failure = std::current_exception();
      }
    }
    if (first_failure) std::rethrow_exception(first_failure);

    std::uint64_t folded = 0;
    for (std::uint64_t i = 0; i < trials; ++i) {
      if (!results[i].has_value()) break;  // cancelled tail (or a hole)
      fold(i, std::move(*results[i]));
      ++folded;
    }
    return folded;
  }

  /// Scheduling stats of the underlying pool since it was (re)configured.
  /// Profile-domain data only (see ThreadPool::Stats).
  [[nodiscard]] ThreadPool::Stats pool_stats() const { return pool_->stats(); }

 private:
  std::unique_ptr<ThreadPool> pool_;
  bool progress_;
  CancelToken cancel_;  ///< inert by default; see set_cancel_token
};

/// The process-wide runner used by the bench harness and petsim.  Defaults
/// to hardware concurrency with the progress meter off; BenchOptions::parse
/// and petsim's --threads/--quiet flags reconfigure it.
TrialRunner& global_runner();

}  // namespace pet::runtime
