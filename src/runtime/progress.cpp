#include "runtime/progress.hpp"

#include <cstdio>

namespace pet::runtime {

namespace {
// Keep the meter out of the first second: most table cells finish faster
// and a flickering status line would be pure noise.
constexpr auto kFirstPaint = std::chrono::milliseconds(1000);
constexpr auto kRepaint = std::chrono::milliseconds(250);
}  // namespace

ProgressMeter::ProgressMeter(std::uint64_t total, std::string label,
                             bool enabled)
    : total_(total),
      label_(std::move(label)),
      enabled_(enabled && total > 0),
      start_(std::chrono::steady_clock::now()) {
  if (enabled_) reporter_ = std::thread([this] { loop(); });
}

ProgressMeter::~ProgressMeter() {
  if (!enabled_) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  reporter_.join();
  if (painted_) {
    // Erase the status line so the next stdout/stderr write starts clean.
    std::fprintf(stderr, "\r\033[2K");
    std::fflush(stderr);
  }
}

void ProgressMeter::paint() {
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  const double eta =
      rate > 0.0 ? static_cast<double>(total_ - done) / rate : 0.0;
  std::fprintf(stderr, "\r\033[2K%s: %llu/%llu trials, %.1f trials/s, ETA %.1fs",
               label_.c_str(), static_cast<unsigned long long>(done),
               static_cast<unsigned long long>(total_), rate, eta);
  std::fflush(stderr);
  painted_ = true;
}

void ProgressMeter::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (cv_.wait_for(lock, kFirstPaint, [this] { return stop_; })) return;
  for (;;) {
    paint();
    if (cv_.wait_for(lock, kRepaint, [this] { return stop_; })) return;
  }
}

}  // namespace pet::runtime
