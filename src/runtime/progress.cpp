#include "runtime/progress.hpp"

#include <cstdio>

#if defined(_WIN32)
#include <io.h>
#define PET_ISATTY _isatty
#define PET_FILENO _fileno
#else
#include <unistd.h>
#define PET_ISATTY isatty
#define PET_FILENO fileno
#endif

namespace pet::runtime {

namespace {

bool stderr_is_tty() noexcept { return PET_ISATTY(PET_FILENO(stderr)) != 0; }

std::string status_line(const std::string& label, std::uint64_t done,
                        std::uint64_t total, double elapsed) {
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  const double eta =
      rate > 0.0 ? static_cast<double>(total - done) / rate : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s: %llu/%llu trials, %.1f trials/s, ETA %.1fs",
                label.c_str(), static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(total), rate, eta);
  return buf;
}

}  // namespace

ProgressMeter::ProgressMeter(std::uint64_t total, std::string label,
                             bool enabled, ProgressConfig config)
    : total_(total),
      label_(std::move(label)),
      enabled_(enabled && total > 0),
      config_(config),
      start_(std::chrono::steady_clock::now()) {
  // With an injected sink there is no terminal to probe; in-place ANSI
  // repaints only make sense on a real TTY.
  switch (config_.style) {
    case ProgressConfig::Style::kAnsi:
      style_ = ProgressConfig::Style::kAnsi;
      break;
    case ProgressConfig::Style::kPlain:
      style_ = ProgressConfig::Style::kPlain;
      break;
    case ProgressConfig::Style::kAuto:
      style_ = (config_.sink == nullptr && stderr_is_tty())
                   ? ProgressConfig::Style::kAnsi
                   : ProgressConfig::Style::kPlain;
      break;
  }
  if (enabled_) reporter_ = std::thread([this] { loop(); });
}

ProgressMeter::~ProgressMeter() {
  if (!enabled_) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  reporter_.join();
  if (painted_ && style_ == ProgressConfig::Style::kAnsi) {
    // Erase the status line so the next stdout/stderr write starts clean.
    // (Plain mode emitted complete lines; there is nothing to erase.)
    write("\r\033[2K");
  }
}

void ProgressMeter::write(const std::string& text) {
  if (config_.sink != nullptr) {
    (*config_.sink) << text;
    config_.sink->flush();
    return;
  }
  std::fputs(text.c_str(), stderr);
  std::fflush(stderr);
}

void ProgressMeter::paint() {
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::string line = status_line(label_, done, total_, elapsed);
  if (style_ == ProgressConfig::Style::kAnsi) {
    write("\r\033[2K" + line);
  } else {
    write(line + "\n");
  }
  painted_ = true;
}

void ProgressMeter::loop() {
  const auto repaint = style_ == ProgressConfig::Style::kAnsi
                           ? config_.repaint
                           : config_.plain_repaint;
  std::unique_lock<std::mutex> lock(mutex_);
  if (cv_.wait_for(lock, config_.first_paint, [this] { return stop_; })) {
    return;
  }
  for (;;) {
    paint();
    if (cv_.wait_for(lock, repaint, [this] { return stop_; })) return;
  }
}

}  // namespace pet::runtime
