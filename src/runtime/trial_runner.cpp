#include "runtime/trial_runner.hpp"

#include <atomic>

namespace pet::runtime {

namespace {
std::atomic<TrialBeginHook> g_trial_begin_hook{nullptr};
}  // namespace

void set_trial_begin_hook(TrialBeginHook hook) noexcept {
  g_trial_begin_hook.store(hook, std::memory_order_release);
}

TrialBeginHook trial_begin_hook() noexcept {
  return g_trial_begin_hook.load(std::memory_order_acquire);
}

TrialRunner::TrialRunner(unsigned threads, bool progress)
    : pool_(std::make_unique<ThreadPool>(threads)), progress_(progress) {}

void TrialRunner::configure(unsigned threads, bool progress) {
  const unsigned want = threads == 0 ? ThreadPool::hardware_threads() : threads;
  if (want != pool_->thread_count()) {
    pool_ = std::make_unique<ThreadPool>(want);
  }
  progress_ = progress;
}

unsigned TrialRunner::thread_count() const { return pool_->thread_count(); }

TrialRunner& global_runner() {
  static TrialRunner runner;  // hardware threads, progress off
  return runner;
}

}  // namespace pet::runtime
