// Cooperative cancellation for the runtime layer.
//
// Two pieces:
//
//  * a process-wide **shutdown latch** set from SIGINT/SIGTERM (or by
//    calling request_shutdown() directly).  The signal handler only flips
//    an atomic flag — async-signal-safe — and long-running loops (the
//    TrialRunner, petd's accept loop, service workers) poll it at safe
//    boundaries.  A second signal while the latch is already set hard-exits
//    with the conventional 128+SIGINT status, so a wedged drain can always
//    be interrupted.
//
//  * **CancelToken** — a small copyable token combining an explicit cancel
//    flag, an optional wall-clock deadline, and (optionally) the shutdown
//    latch.  Checked cooperatively: holders call cancelled() at trial/round
//    boundaries and wind down instead of being killed mid-operation, which
//    is what lets a truncated sweep still flush a partial BENCH artifact
//    (marked "truncated") and lets petd answer in-flight requests during a
//    drain instead of dropping them on the floor.
//
// Determinism note: tokens with a wall deadline are inherently
// scheduling-dependent and must never gate anything compared against
// goldens; the deterministic deadline mechanism is the slot-budget plan in
// pet::svc (docs/service.md).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

namespace pet::runtime {

/// Install SIGINT/SIGTERM handlers that set the shutdown latch (first
/// signal) and _exit(128 + sig) (second signal).  Idempotent; safe to call
/// from multiple entry points.
void install_shutdown_handlers() noexcept;

/// Flip the shutdown latch programmatically (tests, petd's drain path).
void request_shutdown() noexcept;

[[nodiscard]] bool shutdown_requested() noexcept;

/// Clear the latch.  Only for tests — production code treats shutdown as
/// one-way.
void reset_shutdown_for_tests() noexcept;

class CancelToken {
 public:
  /// Inert token: cancelled() is always false and costs one branch.
  CancelToken() = default;

  /// Token that can be cancel()ed explicitly.
  [[nodiscard]] static CancelToken cancellable();

  /// Cancellable token that also reports cancelled once the wall deadline
  /// passes (scheduling-dependent; see the determinism note above).
  [[nodiscard]] static CancelToken with_deadline(
      std::chrono::steady_clock::time_point deadline);

  /// Cancellable token that additionally observes the shutdown latch — the
  /// token every sweep driver installs so Ctrl-C drains instead of kills.
  [[nodiscard]] static CancelToken linked_to_shutdown();

  /// Request cancellation; no-op on an inert token.  Thread-safe.
  void cancel() const noexcept;

  [[nodiscard]] bool cancelled() const noexcept {
    if (flag_ && flag_->load(std::memory_order_relaxed)) return true;
    if (honor_shutdown_ && shutdown_requested()) return true;
    if (deadline_ &&
        std::chrono::steady_clock::now() >= *deadline_) {
      return true;
    }
    return false;
  }

  /// True when cancel()/deadline/shutdown can ever fire; false for the
  /// default-constructed inert token (lets hot loops skip the check).
  [[nodiscard]] bool can_cancel() const noexcept {
    return flag_ != nullptr || honor_shutdown_ || deadline_.has_value();
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  bool honor_shutdown_ = false;
};

}  // namespace pet::runtime
