// Pool-backed implementation of the pet::ParallelFor build-executor seam
// (src/common/parallel.hpp): the bridge that lets the layer-0 parallel
// radix partition run on a pet::runtime thread pool without common ever
// linking runtime.
//
// The build pool is separate from the trial pool, and the executor reports
// a single worker whenever the calling thread is itself a pool worker
// (ThreadPool::on_worker_thread), so per-trial rebuilds issued from inside
// a parallel sweep stay serial — cross-trial parallelism already owns the
// cores there, and a build that blocked on its own pool's queue would be
// pure oversubscription.  Main-thread builds (petsim single sweeps, arena
// warm-up, the ablation_scaling bench, petd population loads) fan out.
//
// Determinism: the executor only ever changes *where* chunk work runs; the
// chunk partition is the fixed chunk_begin split, and the radix partition's
// output is the unique sorted array, so artifacts are byte-identical at any
// --threads (docs/performance.md).
#pragma once

#include "common/parallel.hpp"

namespace pet::runtime {

/// Create (or resize) the process-wide build pool and register it as
/// pet::build_parallel_for().  `threads` == 0 picks hardware concurrency;
/// <= 1 unregisters the executor, making every build serial again.  Not
/// thread-safe against concurrent builds — call it from setup code, next
/// to TrialRunner::configure.
void configure_build_parallelism(unsigned threads);

/// Workers the registered build executor fans out to (1 when serial).
[[nodiscard]] unsigned build_parallelism() noexcept;

}  // namespace pet::runtime
