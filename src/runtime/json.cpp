#include "runtime/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/ensure.hpp"

namespace pet::runtime {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value, int precision) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

BenchReport::BenchReport(std::string target, unsigned threads)
    : target_(std::move(target)), threads_(threads) {}

void BenchReport::add_row(const std::string& table,
                          const std::vector<std::string>& columns,
                          const std::vector<std::string>& cells) {
  expects(columns.size() == cells.size(),
          "BenchReport::add_row: columns/cells size mismatch");
  Row row;
  row.reserve(cells.size() + 1);
  row.emplace_back("table", table);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    row.emplace_back(columns[i], cells[i]);
  }
  rows_.push_back(std::move(row));
}

std::string BenchReport::rows_json() const {
  std::string out = "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r == 0 ? "\n" : ",\n";
    out += "    {";
    for (std::size_t f = 0; f < rows_[r].size(); ++f) {
      if (f != 0) out += ", ";
      out += '"' + json_escape(rows_[r][f].first) + "\": \"" +
             json_escape(rows_[r][f].second) + '"';
    }
    out += '}';
  }
  out += rows_.empty() ? "]" : "\n  ]";
  return out;
}

std::string BenchReport::to_json() const {
  std::string out = "{\n";
  out += "  \"target\": \"" + json_escape(target_) + "\",\n";
  out += "  \"threads\": " + std::to_string(threads_) + ",\n";
  out += "  \"wall_seconds\": " + json_number(wall_seconds_) + ",\n";
  if (truncated_) {
    out += "  \"truncated\": true,\n";
  }
  if (!profile_json_.empty()) {
    out += "  \"profile\": " + profile_json_ + ",\n";
  }
  if (!metrics_json_.empty()) {
    out += "  \"metrics\": " + metrics_json_ + ",\n";
  }
  out += "  \"rows\": " + rows_json() + "\n";
  out += "}\n";
  return out;
}

void BenchReport::write(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("BenchReport: cannot open '" + path +
                             "' for writing");
  }
  file << to_json();
  if (!file) {
    throw std::runtime_error("BenchReport: short write to '" + path + "'");
  }
}

}  // namespace pet::runtime
