// Fixed-size work-stealing thread pool: the execution substrate of the
// pet::runtime trial engine (docs/runtime.md).
//
// Design:
//  * one mutex-protected deque per worker; external submissions are dealt
//    round-robin, a worker pops its own queue LIFO (cache locality) and
//    steals FIFO from its siblings when it runs dry;
//  * every task is a std::packaged_task, so exceptions thrown inside a
//    task are captured into the submitter's future instead of calling
//    std::terminate;
//  * destruction drains: ~ThreadPool() stops accepting new work, runs
//    every task already queued, then joins — futures handed out by
//    submit() therefore always become ready.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pet::runtime {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_threads().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task; the future reports completion and re-throws anything
  /// the task threw.  Must not be called during/after destruction.
  std::future<void> submit(std::function<void()> task);

  /// std::thread::hardware_concurrency clamped to at least 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

  /// True on any thread owned by any pet ThreadPool (set for the lifetime
  /// of the worker loop).  The parallel channel-build executor keys off
  /// this: a build triggered from inside a pool task — e.g. a trial body
  /// rebuilding its arena channel — stays serial, so cross-trial and
  /// intra-build parallelism never oversubscribe each other
  /// (src/runtime/parallel_exec.hpp).
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// Scheduling behaviour since construction.  Everything here depends on
  /// timing and thread interleaving, so it belongs strictly to the obs
  /// *profile* domain — never to deterministic aggregates.
  struct Stats {
    std::uint64_t submitted = 0;        ///< tasks handed to submit()
    std::uint64_t stolen = 0;           ///< tasks taken from a sibling queue
    std::uint64_t max_queue_depth = 0;  ///< high-water mark of queued tasks
    std::vector<std::uint64_t> worker_tasks;  ///< tasks executed per worker
  };
  [[nodiscard]] Stats stats() const;

  /// Tasks stolen from sibling queues since construction — the one Stats
  /// field cheap enough to poll per-request (a handful of relaxed loads, no
  /// allocation).  Profile-domain, like everything in Stats.
  [[nodiscard]] std::uint64_t stolen_total() const noexcept;

 private:
  // One per worker; stealing keeps contention off a single global lock.
  struct Queue {
    std::mutex mutex;
    std::deque<std::packaged_task<void()>> tasks;
  };

  void worker_loop(std::size_t me);
  bool try_pop(std::size_t me, std::packaged_task<void()>& out);

  // Relaxed stats counters (exact totals once the pool quiesces; cheap
  // enough to keep unconditionally — one uncontended RMW per event).
  struct alignas(64) WorkerStat {
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
  };

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::unique_ptr<WorkerStat>> worker_stats_;
  std::vector<std::thread> workers_;

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::uint64_t> queued_{0};  ///< tasks pushed, not yet popped
  std::atomic<std::uint64_t> next_{0};    ///< round-robin submission cursor
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace pet::runtime
