// Minimal JSON emission for the bench result artifacts (no external
// dependency; the repo builds against nothing but gtest/google-benchmark).
//
// BenchReport implements the stable BENCH_<target>.json schema tracked
// across PRs (docs/runtime.md):
//
//   {
//     "target": "fig5_time_comparison",
//     "threads": 8,
//     "wall_seconds": 12.345,
//     "rows": [ {"table": "...", "<column>": "<cell>", ...}, ... ]
//   }
//
// Row cells are the already-formatted table strings, so the "rows" array
// is byte-identical for any thread count — only "threads"/"wall_seconds"
// describe the run itself.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pet::runtime {

/// JSON string escaping: quote, backslash and control characters.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Render a double as a JSON value token.  JSON has no NaN/Infinity, so
/// non-finite inputs emit "null" (snprintf's "nan"/"inf" would corrupt the
/// whole artifact); finite values use the fixed precision given (matching
/// the historical %.*f rendering of wall_seconds).
[[nodiscard]] std::string json_number(double value, int precision = 3);

class BenchReport {
 public:
  BenchReport(std::string target, unsigned threads);

  /// Append one row; keys come from `columns`, values from `cells`
  /// (same length, checked).  `table` names the table the row belongs to.
  void add_row(const std::string& table,
               const std::vector<std::string>& columns,
               const std::vector<std::string>& cells);

  void set_wall_seconds(double seconds) noexcept { wall_seconds_ = seconds; }

  /// Mark the artifact as cut short (SIGINT/SIGTERM drain): a top-level
  /// "truncated": true member is emitted so downstream tooling — benchdiff,
  /// the repro gate — knows the rows are a partial sweep, not a regression.
  /// Untruncated artifacts stay byte-identical to the historical schema.
  void set_truncated(bool truncated) noexcept { truncated_ = truncated; }
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  /// Attach a pre-rendered obs metrics document (pet.obs.v1); emitted as a
  /// top-level "metrics" member.  Empty string omits the member, keeping
  /// artifacts from obs-off runs byte-identical to the historical schema.
  void set_metrics_json(std::string metrics) {
    metrics_json_ = std::move(metrics);
  }

  /// Attach a pre-rendered per-phase wall breakdown (build_seconds /
  /// estimate_seconds); emitted as a top-level "profile" member.  Like
  /// wall_seconds it describes the run, not the simulation — benchdiff
  /// ignores it.  Empty string omits the member.
  void set_profile_json(std::string profile) {
    profile_json_ = std::move(profile);
  }

  [[nodiscard]] const std::string& target() const noexcept { return target_; }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// The "rows" array alone — the thread-count-invariant part of the
  /// schema; runtime_test asserts byte-identity of exactly this string.
  [[nodiscard]] std::string rows_json() const;

  /// The full document.
  [[nodiscard]] std::string to_json() const;

  /// Serialize to `path`; throws std::runtime_error when the file cannot
  /// be written.
  void write(const std::string& path) const;

 private:
  using Row = std::vector<std::pair<std::string, std::string>>;

  std::string target_;
  unsigned threads_;
  double wall_seconds_ = 0.0;
  bool truncated_ = false;
  std::string metrics_json_;
  std::string profile_json_;
  std::vector<Row> rows_;
};

}  // namespace pet::runtime
