// Anonymity analysis (Section 4.6.4): what an eavesdropper overhearing the
// reader-tag channel can learn during a PET session.
//
// The AnonymityAuditor is installed as a Medium observer and records exactly
// the over-the-air observables: command payloads and the idle/busy energy of
// each reply window.  The report then certifies the paper's claims: no tag
// ID is ever transmitted, no per-tag code is ever transmitted, and replies
// are cumulative (indistinguishable presence pulses).
#pragma once

#include <cstdint>

#include "sim/medium.hpp"

namespace pet::core {

struct AnonymityReport {
  std::uint64_t slots_observed = 0;
  std::uint64_t busy_slots = 0;
  /// Reply payload bits that carried identifying content (tag IDs).  Zero
  /// for every estimation protocol; nonzero for identification protocols.
  std::uint64_t identifying_uplink_bits = 0;
  /// Reply windows in which the eavesdropper could attribute the energy to
  /// a specific decodable transmitter (singleton slots of ID-carrying
  /// protocols).  PET replies carry no payload, so even singletons reveal
  /// only "some tag matched this prefix".
  std::uint64_t attributable_replies = 0;

  [[nodiscard]] bool anonymous() const noexcept {
    return identifying_uplink_bits == 0 && attributable_replies == 0;
  }
};

/// Attach with Medium::set_observer (via the adapter returned by
/// observer()).  Lifetime: must outlive the Medium observation.
class AnonymityAuditor {
 public:
  [[nodiscard]] sim::Medium::Observer observer();

  [[nodiscard]] const AnonymityReport& report() const noexcept {
    return report_;
  }

 private:
  AnonymityReport report_;
};

}  // namespace pet::core
