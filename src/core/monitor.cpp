#include "core/monitor.hpp"

#include <cmath>

#include "common/ensure.hpp"
#include "core/constants.hpp"
#include "core/theory.hpp"
#include "rng/hash_family.hpp"
#include "rng/prng.hpp"

namespace pet::core {

void MonitorConfig::validate() const {
  pet.validate();
  expects(window_rounds >= 8, "monitor window must hold >= 8 rounds");
  expects(recent_rounds >= 4 && recent_rounds <= window_rounds / 2,
          "recent span must be in [4, window/2]");
  expects(change_threshold_sigmas > 0.0,
          "change threshold must be positive");
  expects(!pet.tags_rehash,
          "the monitor assumes preloaded codes (passive-tag deployments)");
}

StreamingMonitor::StreamingMonitor(MonitorConfig config, std::uint64_t seed)
    : config_(config), seed_(seed),
      estimator_(config.pet, stats::AccuracyRequirement{0.5, 0.5}) {
  config_.validate();
}

bool StreamingMonitor::tick(chan::PrefixChannel& channel) {
  const std::uint64_t path_seed = rng::derive_seed(seed_, 2 * ticks_);
  const BitCode path = rng::uniform_code(rng::HashKind::kMix64, path_seed,
                                         0xbad9e7ULL,
                                         config_.pet.tree_height);
  channel.begin_round(chan::RoundConfig{path,
                                        rng::derive_seed(seed_, 2 * ticks_ + 1),
                                        false, config_.pet.begin_bits(),
                                        config_.pet.query_bits()});
  const auto depth = estimator_.run_round(channel);
  ++ticks_;

  window_.push_back(depth.value_or(0));
  if (window_.size() > config_.window_rounds) window_.pop_front();

  // Change detection: compare the recent span's mean depth against the
  // rest of the window.  Under a stable population both are draws from the
  // same law with per-round deviation sigma(h).
  if (window_.size() < 2 * config_.recent_rounds) return false;

  const std::size_t recent = config_.recent_rounds;
  double recent_sum = 0.0;
  double old_sum = 0.0;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (i + recent >= window_.size()) {
      recent_sum += window_[i];
    } else {
      old_sum += window_[i];
    }
  }
  const double old_count = static_cast<double>(window_.size() - recent);
  const double recent_mean = recent_sum / static_cast<double>(recent);
  const double old_mean = old_sum / old_count;
  const double se = kSigmaH * std::sqrt(1.0 / static_cast<double>(recent) +
                                        1.0 / old_count);
  if (std::abs(recent_mean - old_mean) <=
      config_.change_threshold_sigmas * se) {
    return false;
  }

  // Change confirmed: drop the stale prefix so the estimate tracks the new
  // population instead of averaging across the step.
  while (window_.size() > recent) window_.pop_front();
  ++changes_;
  return true;
}

EstimateResult StreamingMonitor::window_as_result() const {
  EstimateResult result;
  result.rounds = window_.size();
  result.depths.assign(window_.begin(), window_.end());
  double sum = 0.0;
  for (const unsigned d : window_) sum += static_cast<double>(d);
  result.mean_depth = sum / static_cast<double>(window_.size());
  result.n_hat = estimate_from_mean_depth(result.mean_depth);
  return result;
}

std::optional<double> StreamingMonitor::estimate() const {
  if (window_.size() < config_.recent_rounds) return std::nullopt;
  return window_as_result().n_hat;
}

std::optional<ConfidenceInterval> StreamingMonitor::interval(
    double delta) const {
  if (window_.size() < config_.recent_rounds) return std::nullopt;
  return confidence_interval(window_as_result(), delta);
}

}  // namespace pet::core
