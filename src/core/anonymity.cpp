#include "core/anonymity.hpp"

namespace pet::core {

sim::Medium::Observer AnonymityAuditor::observer() {
  return [this](const sim::Command& /*cmd*/, const sim::SlotObservation& obs) {
    ++report_.slots_observed;
    if (is_nonempty(obs.outcome)) ++report_.busy_slots;
    if (obs.decoded.has_value()) {
      // A decodable singleton: identifying only if the reply carried more
      // than the 1-bit presence pulse (i.e. an ID payload).
      if (obs.decoded->bits > 1) {
        report_.identifying_uplink_bits += obs.decoded->bits;
        ++report_.attributable_replies;
      }
    }
  };
}

}  // namespace pet::core
