// Exact and asymptotic theory of the PET observation (Section 4.2).
//
// Everything is phrased in terms of the prefix depth d = H - h (h being the
// paper's gray-node height); see DESIGN.md for the notation reconciliation.
// For n tags with independent uniform H-bit codes and any estimating path,
//     P(d >= k) = 1 - (1 - 2^-k)^n,                       k = 0..H,
// which is the exact finite-n form of the paper's Eq. (5).
#pragma once

#include <cstdint>
#include <vector>

#include "rng/prng.hpp"
#include "stats/accuracy.hpp"

namespace pet::core {

/// Exact distribution of the per-round prefix depth.
class DepthDistribution {
 public:
  DepthDistribution(std::uint64_t n, unsigned tree_height);

  [[nodiscard]] unsigned tree_height() const noexcept { return tree_height_; }
  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }

  /// P(d = k), k in [0, H].
  [[nodiscard]] double pmf(unsigned k) const;
  /// P(d <= k), k in [0, H].
  [[nodiscard]] double cdf(unsigned k) const;

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }

  /// Draw one depth observation by inverse transform (exact).
  [[nodiscard]] unsigned sample(rng::Xoshiro256ss& gen) const;

 private:
  std::uint64_t n_;
  unsigned tree_height_;
  std::vector<double> cdf_;  ///< cdf_[k] = P(d <= k)
  double mean_ = 0.0;
  double stddev_ = 0.0;
};

/// Asymptotic mean depth, Eq. (9) recast: E(d) ~= log2(phi * n).
[[nodiscard]] double asymptotic_mean_depth(double n);

/// The paper's Eq. (6) verbatim: E(h) = -H p^(2^H) + sum_{k=0}^{H-1} p^(2^k)
/// with p = (1 - 2^-H)^n, the expected gray-node height.  Uses the paper's
/// leaf-occupancy approximation (independent subtree whiteness), so it
/// differs from the exact H - E(d) by O(1/n) terms; exposed to validate
/// that both derivations agree.
[[nodiscard]] double expected_gray_height_eq6(std::uint64_t n,
                                              unsigned tree_height);

/// The depth -> cardinality estimator of Eq. (14): n̂ = 2^dbar / phi.
[[nodiscard]] double estimate_from_mean_depth(double mean_depth);

namespace testing {

/// Test-only mutation hook for the conformance harness (tools/petverify
/// --inject-phi-bias): multiplies the phi used by the *estimator* read-out
/// path (estimate_from_mean_depth and the robust interval recentring) by
/// `multiplier`, deliberately mis-biasing every estimate while leaving the
/// DepthDistribution oracle untouched.  The mutation smoke test proves the
/// calibration checks detect such a real bias rather than passing on noise.
/// Never call from production code; 1.0 restores correctness.
void set_phi_bias_for_tests(double multiplier) noexcept;
[[nodiscard]] double phi_bias_for_tests() noexcept;

/// RAII guard used by unit tests so a failing assertion cannot leak the
/// mutation into later tests.
class ScopedPhiBias {
 public:
  explicit ScopedPhiBias(double multiplier) noexcept {
    set_phi_bias_for_tests(multiplier);
  }
  ~ScopedPhiBias() { set_phi_bias_for_tests(1.0); }
  ScopedPhiBias(const ScopedPhiBias&) = delete;
  ScopedPhiBias& operator=(const ScopedPhiBias&) = delete;
};

}  // namespace testing

/// Rounds required by Eq. (20) for the (epsilon, delta) contract, using the
/// asymptotic sigma(h).
[[nodiscard]] std::uint64_t required_rounds(
    const stats::AccuracyRequirement& req);

/// Idealized m-round PET estimate drawn from the exact depth distribution
/// (independent rounds).  This is the paper's "theoretical performance of
/// PET" curve in Fig. 6a: the analysis' model, free of the shared-code
/// dependence of the preloaded protocol.
class TheoreticalPet {
 public:
  TheoreticalPet(std::uint64_t n, unsigned tree_height, std::uint64_t rounds);

  [[nodiscard]] double sample_estimate(rng::Xoshiro256ss& gen) const;

 private:
  DepthDistribution depth_;
  std::uint64_t rounds_;
};

}  // namespace pet::core
