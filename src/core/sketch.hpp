// PetSketch: PET's per-round depth observations as a mergeable,
// duplicate-insensitive cardinality sketch.
//
// A PET round is a max-statistic: the observed depth is the maximum
// longest-common-prefix over all tags present.  Maxima compose under set
// union, so two sketches taken with the SAME estimating paths (same sketch
// seed) and the SAME preloaded code universe (same manufacturing seed)
// merge by element-wise max into the sketch of the union — exactly the
// property that makes the multi-reader controller of Section 4.6.3 correct,
// lifted into a first-class value that can be shipped between controllers,
// stored, and combined later:
//
//   |A u B|  : merge_union(sa, sb).estimate()
//   |A n B|  : by inclusion-exclusion (estimate_intersection)
//   growth   : sketches from different days compare without re-reading tags
//
// (FM-sketch users will recognize the construction; PET's tree probes give
// the same algebra with the paper's phi and sigma constants.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "channel/channel.hpp"
#include "core/estimator.hpp"

namespace pet::core {

class PetSketch {
 public:
  /// Take a sketch of whatever tag set `channel` exposes: `rounds` rounds
  /// with paths derived from `sketch_seed`.  Two sketches are mergeable iff
  /// they used the same (sketch_seed, rounds, config.tree_height).
  static PetSketch take(chan::PrefixChannel& channel, const PetConfig& config,
                        std::uint64_t rounds, std::uint64_t sketch_seed);

  /// Reconstruct from stored state (e.g. received from another controller).
  PetSketch(std::uint64_t sketch_seed, unsigned tree_height,
            std::vector<unsigned> depths);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] unsigned tree_height() const noexcept { return tree_height_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept {
    return depths_.size();
  }
  [[nodiscard]] const std::vector<unsigned>& depths() const noexcept {
    return depths_;
  }

  /// Cardinality estimate of the sketched set (Eq. 14).
  [[nodiscard]] double estimate() const;

  [[nodiscard]] bool mergeable_with(const PetSketch& other) const noexcept {
    return seed_ == other.seed_ && tree_height_ == other.tree_height_ &&
           depths_.size() == other.depths_.size();
  }

  /// Sketch of the union of the two underlying tag sets.
  [[nodiscard]] static PetSketch merge_union(const PetSketch& a,
                                             const PetSketch& b);

  /// Inclusion-exclusion estimate of |A n B| (clamped at 0; the variance of
  /// the difference grows with the set sizes, as with any IE-based sketch).
  [[nodiscard]] static double estimate_intersection(const PetSketch& a,
                                                    const PetSketch& b);

  /// Serialized wire size in bits (depths are 6-bit values for H <= 64,
  /// packed): what shipping the sketch between controllers costs.
  [[nodiscard]] std::uint64_t wire_bits() const noexcept;

  /// Wire format: 8-byte seed (LE), 1-byte tree height, 4-byte round count
  /// (LE), then the depths bit-packed at ceil(log2(H + 1)) bits each.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Inverse of serialize(); throws ConfigError on malformed input.
  [[nodiscard]] static PetSketch deserialize(
      std::span<const std::uint8_t> bytes);

 private:
  std::uint64_t seed_;
  unsigned tree_height_;
  std::vector<unsigned> depths_;
};

}  // namespace pet::core
