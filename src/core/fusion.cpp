#include "core/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/ensure.hpp"
#include "core/constants.hpp"
#include "core/theory.hpp"

namespace pet::core {

std::string_view to_string(FusionRule rule) noexcept {
  switch (rule) {
    case FusionRule::kGeometricMean: return "geometric-mean";
    case FusionRule::kBiasCorrected: return "bias-corrected";
    case FusionRule::kMedianOfMeans: return "median-of-means";
  }
  return "unknown";
}

double geometric_mean_bias(std::uint64_t rounds) {
  expects(rounds >= 1, "geometric_mean_bias: rounds must be >= 1");
  const double s = M_LN2 * kSigmaH;
  return std::exp(s * s / (2.0 * static_cast<double>(rounds)));
}

namespace {

double geometric_mean_estimate(std::span<const unsigned> depths) {
  double sum = 0.0;
  for (const unsigned d : depths) sum += static_cast<double>(d);
  return estimate_from_mean_depth(sum / static_cast<double>(depths.size()));
}

}  // namespace

double fuse_depths(std::span<const unsigned> depths, FusionRule rule,
                   unsigned groups) {
  expects(!depths.empty(), "fuse_depths: need at least one observation");
  switch (rule) {
    case FusionRule::kGeometricMean:
      return geometric_mean_estimate(depths);
    case FusionRule::kBiasCorrected:
      return geometric_mean_estimate(depths) /
             geometric_mean_bias(depths.size());
    case FusionRule::kMedianOfMeans: {
      const std::size_t g = std::clamp<std::size_t>(groups, 1, depths.size());
      std::vector<double> group_estimates;
      group_estimates.reserve(g);
      // Contiguous, near-equal splits; every observation lands in exactly
      // one group.
      std::size_t begin = 0;
      for (std::size_t i = 0; i < g; ++i) {
        const std::size_t end = depths.size() * (i + 1) / g;
        invariant(end > begin, "median-of-means produced an empty group");
        group_estimates.push_back(
            geometric_mean_estimate(depths.subspan(begin, end - begin)));
        begin = end;
      }
      auto mid = group_estimates.begin() +
                 static_cast<std::ptrdiff_t>(group_estimates.size() / 2);
      std::nth_element(group_estimates.begin(), mid, group_estimates.end());
      if (group_estimates.size() % 2 == 1) return *mid;
      const double upper = *mid;
      const double lower =
          *std::max_element(group_estimates.begin(), mid);
      return 0.5 * (lower + upper);
    }
  }
  invariant(false, "fuse_depths: unhandled FusionRule");
  return 0.0;
}

}  // namespace pet::core
