#include "core/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/ensure.hpp"
#include "core/constants.hpp"
#include "core/theory.hpp"

namespace pet::core {

std::string_view to_string(FusionRule rule) noexcept {
  switch (rule) {
    case FusionRule::kGeometricMean: return "geometric-mean";
    case FusionRule::kBiasCorrected: return "bias-corrected";
    case FusionRule::kMedianOfMeans: return "median-of-means";
    case FusionRule::kTrimmedMean: return "trimmed-mean";
  }
  return "unknown";
}

double geometric_mean_bias(std::uint64_t rounds) {
  expects(rounds >= 1, "geometric_mean_bias: rounds must be >= 1");
  const double s = M_LN2 * kSigmaH;
  return std::exp(s * s / (2.0 * static_cast<double>(rounds)));
}

namespace {

double geometric_mean_estimate(std::span<const unsigned> depths) {
  double sum = 0.0;
  for (const unsigned d : depths) sum += static_cast<double>(d);
  return estimate_from_mean_depth(sum / static_cast<double>(depths.size()));
}

/// Population trimmed-mean functional T_f(F) = (1-2f)^-1 ∫_f^{1-f} Q(u) du
/// over the discrete quantile function of `dist` — the large-m limit of the
/// sample trimmed mean.  The depth law is right-skewed (Gumbel-like), so
/// T_f sits ~0.17 below the plain mean at f = 0.1; reading a trimmed mean
/// through Eq. (14) without undoing that offset lands ~11% low.
double trimmed_depth_functional(const DepthDistribution& dist, double f) {
  const double lo = f;
  const double hi = 1.0 - f;
  double integral = 0.0;
  double prev = 0.0;
  for (unsigned k = 0; k <= dist.tree_height(); ++k) {
    const double cur = dist.cdf(k);
    const double a = std::max(prev, lo);
    const double b = std::min(cur, hi);
    if (b > a) integral += static_cast<double>(k) * (b - a);
    prev = cur;
    if (cur >= hi) break;
  }
  return integral / (hi - lo);
}

}  // namespace

double fuse_depths(std::span<const unsigned> depths, FusionRule rule,
                   unsigned groups, double trim_fraction,
                   unsigned tree_height) {
  expects(!depths.empty(), "fuse_depths: need at least one observation");
  expects(tree_height >= 1 && tree_height <= 64,
          "fuse_depths: tree_height must be in [1, 64]");
  switch (rule) {
    case FusionRule::kGeometricMean:
      return geometric_mean_estimate(depths);
    case FusionRule::kBiasCorrected:
      return geometric_mean_estimate(depths) /
             geometric_mean_bias(depths.size());
    case FusionRule::kMedianOfMeans: {
      const std::size_t g = std::clamp<std::size_t>(groups, 1, depths.size());
      std::vector<double> group_estimates;
      group_estimates.reserve(g);
      // Contiguous, near-equal splits; every observation lands in exactly
      // one group.
      std::size_t begin = 0;
      for (std::size_t i = 0; i < g; ++i) {
        const std::size_t end = depths.size() * (i + 1) / g;
        invariant(end > begin, "median-of-means produced an empty group");
        group_estimates.push_back(
            geometric_mean_estimate(depths.subspan(begin, end - begin)));
        begin = end;
      }
      auto mid = group_estimates.begin() +
                 static_cast<std::ptrdiff_t>(group_estimates.size() / 2);
      std::nth_element(group_estimates.begin(), mid, group_estimates.end());
      if (group_estimates.size() % 2 == 1) return *mid;
      const double upper = *mid;
      const double lower =
          *std::max_element(group_estimates.begin(), mid);
      return 0.5 * (lower + upper);
    }
    case FusionRule::kTrimmedMean: {
      expects(trim_fraction >= 0.0 && trim_fraction <= 0.5,
              "fuse_depths: trim_fraction must be in [0, 0.5]");
      std::vector<unsigned> sorted(depths.begin(), depths.end());
      std::sort(sorted.begin(), sorted.end());
      // Trim ceil(f*m) per tail but always keep at least one observation
      // (at f = 0.5 and odd m this is exactly the median depth).
      const std::size_t m = sorted.size();
      std::size_t cut = static_cast<std::size_t>(
          std::ceil(trim_fraction * static_cast<double>(m)));
      cut = std::min(cut, (m - 1) / 2);
      double sum = 0.0;
      for (std::size_t i = cut; i < m - cut; ++i) {
        sum += static_cast<double>(sorted[i]);
      }
      const double t = sum / static_cast<double>(m - 2 * cut);
      if (cut == 0) return estimate_from_mean_depth(t);
      // Solve T_f(F_n) = t for n at the realised per-tail fraction
      // f = cut/m, so the skew-induced trim offset is undone instead of
      // misread as fewer tags.  The offset T_f(F_n) - E[F_n] is nearly
      // constant in n (the depth law is translation-invariant in log2 n up
      // to discretisation), so iterating it from the Eq. (14) read-out
      // converges in a few passes.
      const double f_eff =
          static_cast<double>(cut) / static_cast<double>(m);
      double n_hat = estimate_from_mean_depth(t);
      for (int pass = 0; pass < 4; ++pass) {
        const auto n_ref = static_cast<std::uint64_t>(std::llround(
            std::clamp(n_hat, 1.0, std::ldexp(1.0, 62))));
        const DepthDistribution ref(n_ref, tree_height);
        const double offset =
            trimmed_depth_functional(ref, f_eff) - ref.mean();
        n_hat = estimate_from_mean_depth(t - offset);
      }
      return n_hat;
    }
  }
  invariant(false, "fuse_depths: unhandled FusionRule");
  return 0.0;
}

}  // namespace pet::core
