#include "core/robust_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/ensure.hpp"
#include "common/fastpath.hpp"
#include "core/constants.hpp"
#include "core/theory.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"
#include "rng/prng.hpp"
#include "runtime/json.hpp"
#include "stats/ks.hpp"
#include "stats/normal.hpp"

namespace pet::core {

void RobustPetConfig::validate() const {
  base.validate();
  expects(vote_reads >= 1 && vote_reads <= 15,
          "RobustPetConfig: vote_reads must be in [1, 15]");
  expects(vote_quorum >= 1 && vote_quorum <= vote_reads,
          "RobustPetConfig: vote_quorum must be in [1, vote_reads]");
  expects(health_alpha > 0.0 && health_alpha < 1.0,
          "RobustPetConfig: health_alpha must be in (0, 1)");
  expects(health_reference_draws >= 16,
          "RobustPetConfig: health_reference_draws must be >= 16");
}

std::string_view to_string(ChannelHealth health) noexcept {
  switch (health) {
    case ChannelHealth::kHealthy: return "healthy";
    case ChannelHealth::kDegraded: return "degraded";
    case ChannelHealth::kContractAtRisk: return "contract-at-risk";
  }
  return "unknown";
}

namespace {

/// PrefixChannel adapter that turns every probe into an adaptive k-of-m
/// vote.  Reads stop as soon as the verdict is decided: busy once
/// `vote_quorum` busy reads are in, idle once the quorum has become
/// unreachable.  Every read after the first is a re-read charged to the
/// inner channel's retry ledger; when the retry budget runs dry the probe
/// degrades to its first (single) read.
class VotingChannel : public chan::PrefixChannel {
 public:
  VotingChannel(chan::PrefixChannel& inner, const RobustPetConfig& config)
      : inner_(inner), config_(config),
        retry_budget_left_(config.retry_budget_slots) {}

  void begin_round(const chan::RoundConfig& round) override {
    inner_.begin_round(round);
  }

  bool query_prefix(unsigned len) override {
    return vote(len,
                [this](unsigned l) { return inner_.query_prefix(l); });
  }

  void note_retries(std::uint64_t slots) noexcept override {
    inner_.note_retries(slots);
  }
  [[nodiscard]] const sim::SlotLedger& ledger() const noexcept override {
    return inner_.ledger();
  }
  void reset_ledger() noexcept override { inner_.reset_ledger(); }

  [[nodiscard]] std::uint64_t reread_slots() const noexcept {
    return reread_slots_;
  }
  [[nodiscard]] std::uint64_t overturned_probes() const noexcept {
    return overturned_probes_;
  }
  [[nodiscard]] bool budget_exhausted() const noexcept {
    return budget_exhausted_;
  }

 protected:
  /// The adaptive vote loop, generic over how one read is answered so the
  /// oracle-synthesized probe path (OracleVotingChannel) reuses it
  /// verbatim: re-read cadence, retry charging, budget exhaustion, and
  /// overturn detection are then identical on both paths by construction.
  template <typename Probe>
  bool vote(unsigned len, Probe&& probe) {
    const unsigned m = config_.vote_reads;
    const unsigned k = config_.vote_quorum;
    const bool first_read = probe(len);
    if (m <= 1) return first_read;

    unsigned busy = first_read ? 1 : 0;
    unsigned reads = 1;
    while (busy < k && reads - busy <= m - k) {
      if (retry_budget_left_ == 0) {
        // Budget dry mid-vote: fall back to the single-read verdict.
        if (obs::counters_enabled() && !budget_exhausted_) {
          obs::robust_instruments().budget_exhausted.add();
        }
        budget_exhausted_ = true;
        return first_read;
      }
      --retry_budget_left_;
      inner_.note_retries(1);
      ++reread_slots_;
      if (obs::counters_enabled()) {
        obs::robust_instruments().reread_slots.add();
      }
      if (probe(len)) ++busy;
      ++reads;
    }
    const bool verdict = busy >= k;
    if (verdict != first_read) {
      ++overturned_probes_;
      if (obs::counters_enabled()) {
        obs::robust_instruments().overturned_probes.add();
      }
      if (obs::full_enabled()) {
        obs::trace_event("robust.probe_overturned",
                         {{"len", std::to_string(len)},
                          {"busy_votes", std::to_string(busy)},
                          {"reads", std::to_string(reads)}});
      }
    }
    return verdict;
  }

  chan::PrefixChannel& inner_;

 private:
  const RobustPetConfig& config_;
  std::uint64_t retry_budget_left_;
  std::uint64_t reread_slots_ = 0;
  std::uint64_t overturned_probes_ = 0;
  bool budget_exhausted_ = false;
};

/// Voting adapter over an oracle-capable inner channel.  Exposes the
/// DepthOracle capability itself, so the inner estimator's fast path keeps
/// working through the voting layer: each synthesized probe runs the same
/// k-of-m vote loop (re-reads charged to the inner ledger via synth_probe)
/// as the probed path would.  Instantiated only when the inner channel
/// actually has the capability -- a statically-oracle voting wrapper over a
/// plain channel would falsely advertise it.
class OracleVotingChannel final : public VotingChannel,
                                  public chan::DepthOracle {
 public:
  OracleVotingChannel(chan::PrefixChannel& inner,
                      chan::DepthOracle& inner_oracle,
                      const RobustPetConfig& config)
      : VotingChannel(inner, config), oracle_(inner_oracle) {}

  [[nodiscard]] unsigned round_depth() override {
    return oracle_.round_depth();
  }

  bool synth_probe(unsigned len) override {
    return vote(len, [this](unsigned l) { return oracle_.synth_probe(l); });
  }

 private:
  chan::DepthOracle& oracle_;
};

/// The inner estimator must not fuse with a plain (or merely
/// bias-corrected) mean — a single corrupted round would swing it.  Robust
/// fusion rules pass through; the others are upgraded to the trimmed mean.
PetConfig robustified(PetConfig base) {
  if (base.fusion == FusionRule::kGeometricMean ||
      base.fusion == FusionRule::kBiasCorrected) {
    base.fusion = FusionRule::kTrimmedMean;
  }
  return base;
}

}  // namespace

RobustPetEstimator::RobustPetEstimator(RobustPetConfig config,
                                       stats::AccuracyRequirement requirement)
    : config_(std::move(config)), requirement_(requirement),
      inner_(robustified(config_.base), requirement) {
  config_.validate();
  config_.base = inner_.config();  // reflect the fusion upgrade
}

RobustEstimateResult RobustPetEstimator::estimate(chan::PrefixChannel& channel,
                                                  std::uint64_t seed) const {
  return estimate_with_rounds(channel, inner_.planned_rounds(), seed);
}

RobustEstimateResult RobustPetEstimator::estimate_with_rounds(
    chan::PrefixChannel& channel, std::uint64_t rounds,
    std::uint64_t seed) const {
  return estimate_with_rounds(channel, rounds, seed, RoundGate{});
}

RobustEstimateResult RobustPetEstimator::estimate_with_rounds(
    chan::PrefixChannel& channel, std::uint64_t rounds, std::uint64_t seed,
    const RoundGate& gate) const {
  obs::ScopedSpan span("core.robust.estimate");
  RobustEstimateResult result;
  const auto run_voting = [&](VotingChannel& voting) {
    result.base = inner_.estimate_with_rounds(voting, rounds, seed, gate);
    result.reread_slots = voting.reread_slots();
    result.overturned_probes = voting.overturned_probes();
    result.retry_budget_exhausted = voting.budget_exhausted();
  };
  chan::DepthOracle* inner_oracle =
      fast_path_enabled() ? dynamic_cast<chan::DepthOracle*>(&channel)
                          : nullptr;
  if (inner_oracle != nullptr) {
    OracleVotingChannel voting(channel, *inner_oracle, config_);
    run_voting(voting);
  } else {
    VotingChannel voting(channel, config_);
    run_voting(voting);
  }

  // --- Channel-health diagnostic -----------------------------------------
  ChannelDiagnostic& diag = result.diagnostic;
  if (result.base.depths.empty() || result.base.n_hat <= 0.0) {
    // Every round certified emptiness: nothing to test, nothing to widen.
    result.interval = ConfidenceInterval{0.0, 0.0, 0.0};
    if (obs::counters_enabled()) {
      obs::robust_instruments().estimates.add();
      obs::robust_instruments().health_healthy.add();
    }
    return result;
  }

  // Reference sample from the theoretical geometric mixture at n = n̂.  The
  // fixed seed makes the diagnostic — like everything else here — replay
  // bit-for-bit.
  const auto n_ref = static_cast<std::uint64_t>(
      std::max<long long>(1, std::llround(result.base.n_hat)));
  const DepthDistribution theory(n_ref, config_.base.tree_height);
  rng::Xoshiro256ss gen(config_.health_seed);
  std::vector<double> reference(config_.health_reference_draws);
  for (double& draw : reference) {
    draw = static_cast<double>(theory.sample(gen));
  }
  std::vector<double> observed(result.base.depths.begin(),
                               result.base.depths.end());
  diag.ks_distance = stats::ks_statistic(observed, reference);
  diag.ks_threshold = stats::ks_critical_value(
      observed.size(), reference.size(), config_.health_alpha);
  diag.widening = std::max(1.0, diag.ks_distance / diag.ks_threshold);
  diag.health = diag.widening > 1.0 ? ChannelHealth::kDegraded
                                    : ChannelHealth::kHealthy;

  // (1 - δ) interval centered on the *robust* point estimate, widened by
  // the diagnostic.  Work in the depth domain where dbar is normal.
  const double m = static_cast<double>(result.base.depths.size());
  const double c = stats::two_sided_normal_constant(requirement_.delta);
  const double half_width = diag.widening * c * kSigmaH / std::sqrt(m);
  // kPhi scaled by the test-only mutation hook so the recentring inverts
  // exactly what estimate_from_mean_depth applied (identity in production).
  const double center =
      std::log2(kPhi * testing::phi_bias_for_tests() * result.base.n_hat);
  result.interval.point = result.base.n_hat;
  result.interval.lo = estimate_from_mean_depth(center - half_width);
  result.interval.hi = estimate_from_mean_depth(center + half_width);

  if (diag.widening > 1.0 &&
      result.interval.relative_half_width() > requirement_.epsilon) {
    diag.health = ChannelHealth::kContractAtRisk;
  }
  if (obs::counters_enabled()) {
    const obs::RobustInstruments& ri = obs::robust_instruments();
    ri.estimates.add();
    ri.widening.observe(diag.widening);
    if (diag.widening > 1.0) ri.ci_widened.add();
    switch (diag.health) {
      case ChannelHealth::kHealthy: ri.health_healthy.add(); break;
      case ChannelHealth::kDegraded: ri.health_degraded.add(); break;
      case ChannelHealth::kContractAtRisk: ri.health_at_risk.add(); break;
    }
  }
  if (obs::full_enabled()) {
    obs::trace_event(
        "robust.health",
        {{"verdict", obs::json_token(to_string(diag.health))},
         {"ks_distance", runtime::json_number(diag.ks_distance, 6)},
         {"widening", runtime::json_number(diag.widening, 6)},
         {"rereads", std::to_string(result.reread_slots)}});
    span.add("rereads", std::to_string(result.reread_slots));
    span.add("overturned", std::to_string(result.overturned_probes));
  }
  return result;
}

}  // namespace pet::core
