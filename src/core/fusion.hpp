// Depth-fusion rules: how the m per-round observations d_1..d_m become one
// cardinality estimate.
//
//  * kGeometricMean  — the paper's Eq. (14): n̂ = 2^dbar / phi.  Averaging
//    in the exponent makes this a geometric-mean estimator with a small
//    multiplicative bias e^{(ln2 sigma)^2 / 2m} (~1.3% at m = 64).
//  * kBiasCorrected  — Eq. (14) divided by that bias factor; asymptotically
//    unbiased under the normal approximation.
//  * kMedianOfMeans  — split the rounds into g groups, estimate per group,
//    take the median.  Sub-Gaussian concentration even under heavy-tailed
//    contamination (e.g. bursts of false-busy slots inflating a few
//    depths); the robust choice for impaired channels.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace pet::core {

enum class FusionRule : std::uint8_t {
  kGeometricMean,  ///< paper Eq. (14)
  kBiasCorrected,
  kMedianOfMeans,
};

[[nodiscard]] std::string_view to_string(FusionRule rule) noexcept;

/// The multiplicative bias of the geometric-mean estimator at m rounds:
/// E[2^dbar] / 2^E[dbar] ~= exp((ln2 * sigma(h))^2 / (2m)).
[[nodiscard]] double geometric_mean_bias(std::uint64_t rounds);

/// Fuse depth observations into a cardinality estimate.  `groups` is used
/// by kMedianOfMeans only (clamped to [1, depths.size()]).
[[nodiscard]] double fuse_depths(std::span<const unsigned> depths,
                                 FusionRule rule, unsigned groups = 16);

}  // namespace pet::core
