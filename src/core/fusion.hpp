// Depth-fusion rules: how the m per-round observations d_1..d_m become one
// cardinality estimate.
//
//  * kGeometricMean  — the paper's Eq. (14): n̂ = 2^dbar / phi.  Averaging
//    in the exponent makes this a geometric-mean estimator with a small
//    multiplicative bias e^{(ln2 sigma)^2 / 2m} (~1.3% at m = 64).
//  * kBiasCorrected  — Eq. (14) divided by that bias factor; asymptotically
//    unbiased under the normal approximation.
//  * kMedianOfMeans  — split the rounds into g groups, estimate per group,
//    take the median.  Sub-Gaussian concentration even under heavy-tailed
//    contamination (e.g. bursts of false-busy slots inflating a few
//    depths); the robust choice for impaired channels.
//  * kTrimmedMean   — drop the ceil(f*m) smallest and largest depths, mean
//    the rest in the exponent.  At f = 0.5 this degenerates to the median
//    depth.  Bounded sensitivity to any single corrupted round (a reader
//    outage reading d = 0, a noise burst reading d = H), at a small
//    efficiency cost on clean channels; the RobustPetEstimator default.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace pet::core {

enum class FusionRule : std::uint8_t {
  kGeometricMean,  ///< paper Eq. (14)
  kBiasCorrected,
  kMedianOfMeans,
  kTrimmedMean,
};

[[nodiscard]] std::string_view to_string(FusionRule rule) noexcept;

/// The multiplicative bias of the geometric-mean estimator at m rounds:
/// E[2^dbar] / 2^E[dbar] ~= exp((ln2 * sigma(h))^2 / (2m)).
[[nodiscard]] double geometric_mean_bias(std::uint64_t rounds);

/// Fuse depth observations into a cardinality estimate.  `groups` is used
/// by kMedianOfMeans only (clamped to [1, depths.size()]); `trim_fraction`
/// by kTrimmedMean only (per-tail fraction, in [0, 0.5]).  `tree_height`
/// parameterises the exact depth law kTrimmedMean inverts to undo the
/// skew-induced trim offset; the other rules ignore it.
[[nodiscard]] double fuse_depths(std::span<const unsigned> depths,
                                 FusionRule rule, unsigned groups = 16,
                                 double trim_fraction = 0.1,
                                 unsigned tree_height = 32);

}  // namespace pet::core
