// Post-hoc confidence intervals for a completed PET estimate.
//
// Eq. (20) plans the round count *before* estimating; this module answers
// the inverse question *after* estimating: given the m depth observations
// actually collected, what interval contains the true n at confidence
// 1 - delta?  Since dbar is asymptotically normal with deviation
// sigma(h)/sqrt(m) (Eqs. 12-16), the interval is the depth-domain normal
// interval mapped through the estimator n̂ = 2^dbar / phi.
#pragma once

#include "core/estimator.hpp"

namespace pet::core {

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;

  [[nodiscard]] bool contains(double n) const noexcept {
    return n >= lo && n <= hi;
  }
  /// Half-width relative to the point estimate (comparable to eps).
  [[nodiscard]] double relative_half_width() const noexcept {
    return point > 0.0 ? (hi - lo) / (2.0 * point) : 0.0;
  }
};

/// Interval from the asymptotic per-round deviation sigma(h) (Eq. 11) —
/// matches the planning math exactly.
[[nodiscard]] ConfidenceInterval confidence_interval(
    const EstimateResult& result, double delta);

/// Interval from the *sample* deviation of the observed depths — slightly
/// wider or narrower than the asymptotic one depending on the draw; useful
/// as a self-check that the observations behave as the theory predicts.
[[nodiscard]] ConfidenceInterval empirical_confidence_interval(
    const EstimateResult& result, double delta);

}  // namespace pet::core
