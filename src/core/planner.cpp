#include "core/planner.hpp"

#include <cmath>

#include "core/theory.hpp"
#include "tags/cost_model.hpp"

namespace pet::core {

PetPlan plan(const PetConfig& config,
             const stats::AccuracyRequirement& requirement,
             double expected_n) {
  config.validate();
  PetPlan out;
  out.rounds = required_rounds(requirement);

  if (config.search == SearchMode::kLinear) {
    // Algorithm 1 probes depths 1..d+1, so E[slots] ~= E[d] + 1.
    out.slots_per_round = static_cast<unsigned>(
        std::ceil(asymptotic_mean_depth(expected_n) + 1.0));
  } else {
    out.slots_per_round = config.worst_case_slots_per_round();
  }
  out.total_slots = out.rounds * out.slots_per_round;
  out.reader_bits =
      out.rounds * (config.begin_bits() +
                    static_cast<std::uint64_t>(out.slots_per_round) *
                        config.query_bits());

  if (config.tags_rehash) {
    out.tag_memory_bits = 0;
    out.tag_hash_ops = out.rounds;
  } else {
    out.tag_memory_bits = tags::preload_memory_bits(tags::ProtocolKind::kPet,
                                                    out.rounds,
                                                    config.tree_height);
    out.tag_hash_ops = 0;
  }
  return out;
}

}  // namespace pet::core
