// The analytical constants of Section 4.2.
#pragma once

#include <cmath>

namespace pet::core {

/// Euler-Mascheroni constant.
inline constexpr double kEulerGamma = 0.577215664901532860606512090082;

/// phi = e^gamma / sqrt(2) = 1.25941... (Eq. (9)): the multiplicative bias
/// of the 2^(mean depth) estimator, E(d) ~= log2(phi * n).
inline const double kPhi = std::exp(kEulerGamma) / std::sqrt(2.0);

/// sigma(h) = sqrt(pi^2 / (6 ln^2 2) + 1/12) = 1.87271... (Eq. (11)): the
/// asymptotic per-round standard deviation of the gray-node height (equal
/// to that of the prefix depth d = H - h).
inline const double kSigmaH =
    std::sqrt(M_PI * M_PI / (6.0 * M_LN2 * M_LN2) + 1.0 / 12.0);

}  // namespace pet::core
