// StreamingMonitor: continuous cardinality tracking over a dynamic tag
// population (the Section 3 "dynamic tag set" requirement, operationalized).
//
// Instead of blocking for a full m-round estimate, the monitor spends a few
// slots per tick (one PET round), keeps a sliding window of the most recent
// depth observations, and exposes a running estimate with a confidence
// interval.  A change detector flags when the recent depths are
// statistically inconsistent with the window — e.g. a convoy of tagged
// pallets arriving — so callers can trigger a full-accuracy audit.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "channel/channel.hpp"
#include "core/confidence.hpp"
#include "core/estimator.hpp"

namespace pet::core {

struct MonitorConfig {
  PetConfig pet{};
  std::size_t window_rounds = 256;   ///< sliding window size
  std::size_t recent_rounds = 32;    ///< change-detector comparison span
  /// Flag a change when the recent mean depth deviates from the window mean
  /// by more than this many standard errors.
  double change_threshold_sigmas = 3.0;

  void validate() const;
};

class StreamingMonitor {
 public:
  explicit StreamingMonitor(MonitorConfig config, std::uint64_t seed);

  /// Spend one PET round on the channel; returns true when the change
  /// detector fired on this tick (the window is then reseeded from the
  /// recent observations so the estimate re-converges quickly).
  bool tick(chan::PrefixChannel& channel);

  /// Rounds observed since construction.
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

  /// Rounds currently contributing to the estimate.
  [[nodiscard]] std::size_t window_fill() const noexcept {
    return window_.size();
  }

  /// Running estimate over the current window; nullopt until at least
  /// `recent_rounds` observations have accumulated.
  [[nodiscard]] std::optional<double> estimate() const;

  /// Confidence interval of the running estimate at level 1 - delta.
  [[nodiscard]] std::optional<ConfidenceInterval> interval(double delta) const;

  /// Number of change events flagged so far.
  [[nodiscard]] std::uint64_t changes_detected() const noexcept {
    return changes_;
  }

 private:
  [[nodiscard]] EstimateResult window_as_result() const;

  MonitorConfig config_;
  std::uint64_t seed_;
  std::uint64_t ticks_ = 0;
  std::uint64_t changes_ = 0;
  PetEstimator estimator_;
  std::deque<unsigned> window_;
};

}  // namespace pet::core
