#include "core/estimator.hpp"

#include <cmath>

#include "common/ensure.hpp"
#include "common/fastpath.hpp"
#include "core/theory.hpp"
#include "rng/hash_family.hpp"
#include "rng/prng.hpp"

namespace pet::core {

namespace {

// The gray-node descent, generic over how a probe is answered.  Both the
// probed path (PrefixChannel::query_prefix) and the oracle-synthesized path
// (DepthOracle::synth_probe) instantiate this one template, so the two
// necessarily issue the same probe sequence whenever the probe verdicts
// agree -- which they do by the oracle's contract (busy iff len <= d).
// That is the whole bit-identity argument (docs/performance.md).
template <typename Probe>
std::optional<unsigned> descend(unsigned h, SearchMode mode, Probe&& probe) {
  switch (mode) {
    case SearchMode::kLinear: {
      // Algorithm 1: probe 1-, 2-, ... bit prefixes until the first idle
      // slot; the depth is the last responding length.
      for (unsigned j = 1; j <= h; ++j) {
        if (!probe(j)) {
          if (j == 1 && !probe(0u)) return std::nullopt;
          return j - 1;
        }
      }
      return h;
    }
    case SearchMode::kBinaryPaper: {
      // Algorithm 3 verbatim: low/high over [1, H], mid = ceil((lo+hi)/2).
      unsigned low = 1;
      unsigned high = h;
      while (low < high) {
        const unsigned mid = low + (high - low + 1) / 2;
        if (probe(mid)) {
          low = mid;
        } else {
          high = mid - 1;
        }
      }
      // When even the 1-bit prefix is idle the loop converges to low == 1
      // with high == 0; the paper still reports low.  We reproduce that.
      return low;
    }
    case SearchMode::kBinaryStrict: {
      unsigned low = 0;
      unsigned high = h;
      while (low < high) {
        const unsigned mid = low + (high - low + 1) / 2;  // mid >= 1
        if (probe(mid)) {
          low = mid;
        } else {
          high = mid - 1;
        }
      }
      if (low == 0 && !probe(0u)) return std::nullopt;
      return low;
    }
  }
  invariant(false, "descend: unhandled SearchMode");
  return std::nullopt;
}

}  // namespace

std::string_view to_string(SearchMode mode) noexcept {
  switch (mode) {
    case SearchMode::kLinear: return "linear";
    case SearchMode::kBinaryPaper: return "binary-paper";
    case SearchMode::kBinaryStrict: return "binary-strict";
  }
  return "unknown";
}

void PetConfig::validate() const {
  expects(tree_height >= 2 && tree_height <= 64,
          "PetConfig: tree height must be in [2, 64]");
  expects(fusion_trim >= 0.0 && fusion_trim <= 0.5,
          "PetConfig: fusion_trim must be in [0, 0.5]");
}

unsigned PetConfig::worst_case_slots_per_round() const noexcept {
  switch (search) {
    case SearchMode::kLinear:
      return tree_height + 1;
    case SearchMode::kBinaryPaper: {
      // ceil(log2(H)) probes shrink the candidate range [1, H] to one value.
      unsigned bits = 0;
      while ((1u << bits) < tree_height) ++bits;
      return bits;
    }
    case SearchMode::kBinaryStrict: {
      // ceil(log2(H + 1)) probes over [0, H], plus the empty-region probe.
      unsigned bits = 0;
      while ((1u << bits) < tree_height + 1) ++bits;
      return bits + 1;
    }
  }
  return tree_height + 1;
}

PetEstimator::PetEstimator(PetConfig config,
                           stats::AccuracyRequirement requirement)
    : config_(config), requirement_(requirement),
      planned_rounds_(required_rounds(requirement)) {
  config_.validate();
}

std::optional<unsigned> PetEstimator::run_round(
    chan::PrefixChannel& channel) const {
  return descend(config_.tree_height, config_.search,
                 [&channel](unsigned len) { return channel.query_prefix(len); });
}

std::optional<unsigned> PetEstimator::run_round_synth(
    chan::DepthOracle& oracle) const {
  return descend(config_.tree_height, config_.search,
                 [&oracle](unsigned len) { return oracle.synth_probe(len); });
}

EstimateResult PetEstimator::estimate(chan::PrefixChannel& channel,
                                      std::uint64_t seed) const {
  return estimate_with_rounds(channel, planned_rounds_, seed);
}

EstimateResult PetEstimator::estimate_with_rounds(chan::PrefixChannel& channel,
                                                  std::uint64_t rounds,
                                                  std::uint64_t seed) const {
  return estimate_with_rounds(channel, rounds, seed, RoundGate{});
}

EstimateResult PetEstimator::estimate_with_rounds(chan::PrefixChannel& channel,
                                                  std::uint64_t rounds,
                                                  std::uint64_t seed,
                                                  const RoundGate& gate) const {
  expects(rounds >= 1, "estimate_with_rounds: need at least one round");

  const sim::SlotLedger before = channel.ledger();
  EstimateResult result;
  result.depths.reserve(rounds);

  // Fast path: when the back end can report the round's gray-node depth
  // directly, synthesize the descent instead of probing it.  Identical
  // probe sequence and ledger accounting (see descend / DepthOracle).
  chan::DepthOracle* oracle =
      fast_path_enabled() ? dynamic_cast<chan::DepthOracle*>(&channel)
                          : nullptr;

  std::uint64_t executed = 0;
  std::uint64_t empty_rounds = 0;
  double depth_sum = 0.0;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    // The gate never blocks the first round: a gated run always yields at
    // least one observation, so a truncated result is still an estimate.
    if (i > 0 && gate && !gate(i)) {
      result.truncated = true;
      break;
    }
    const std::uint64_t path_seed = rng::derive_seed(seed, 2 * i);
    const std::uint64_t round_seed = rng::derive_seed(seed, 2 * i + 1);
    const BitCode path = rng::uniform_code(rng::HashKind::kMix64, path_seed,
                                           0xbad9e7ULL, config_.tree_height);
    channel.begin_round(chan::RoundConfig{path, round_seed,
                                          config_.tags_rehash,
                                          config_.begin_bits(),
                                          config_.query_bits()});
    const auto depth = oracle ? run_round_synth(*oracle) : run_round(channel);
    ++executed;
    if (!depth.has_value()) {
      // Verifiably empty region this round: recorded as a zero depth (the
      // fusion identity) unless every round agrees the region is empty.
      ++empty_rounds;
      result.depths.push_back(0);
      continue;
    }
    result.depths.push_back(*depth);
    depth_sum += static_cast<double>(*depth);
  }

  result.rounds = executed;
  if (empty_rounds == executed) {
    // Every round certified emptiness: the estimate is exactly zero.
    result.depths.clear();
    result.n_hat = 0.0;
    result.mean_depth = 0.0;
  } else {
    result.mean_depth = depth_sum / static_cast<double>(executed);
    result.n_hat = fuse_depths(result.depths, config_.fusion,
                               config_.fusion_groups, config_.fusion_trim,
                               config_.tree_height);
  }

  result.ledger = channel.ledger() - before;
  return result;
}

}  // namespace pet::core
