// Analytic cost planning for PET (Tables 3-5 rows before any simulation):
// rounds from Eq. (20), slots per round from the search mode, downlink bits
// from the command encoding.
#pragma once

#include <cstdint>

#include "core/estimator.hpp"
#include "stats/accuracy.hpp"

namespace pet::core {

struct PetPlan {
  std::uint64_t rounds = 0;             ///< Eq. (20)
  unsigned slots_per_round = 0;         ///< worst case under the search mode
  std::uint64_t total_slots = 0;        ///< rounds * slots_per_round
  std::uint64_t reader_bits = 0;        ///< downlink bits incl. round begins
  std::uint64_t tag_memory_bits = 0;    ///< passive-tag preload (Fig. 7)
  std::uint64_t tag_hash_ops = 0;       ///< active-tag hashing across rounds
};

/// Predict the full protocol cost for the given configuration and accuracy
/// contract.  For SearchMode::kLinear the per-round slot count depends on
/// the (unknown) population, so `expected_n` supplies the planning point:
/// slots/round ~= log2(phi * n) + 2.
[[nodiscard]] PetPlan plan(const PetConfig& config,
                           const stats::AccuracyRequirement& requirement,
                           double expected_n = 50000.0);

}  // namespace pet::core
