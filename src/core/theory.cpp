#include "core/theory.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/ensure.hpp"
#include "core/constants.hpp"
#include "stats/normal.hpp"

namespace pet::core {

DepthDistribution::DepthDistribution(std::uint64_t n, unsigned tree_height)
    : n_(n), tree_height_(tree_height) {
  expects(tree_height >= 1 && tree_height <= 64,
          "DepthDistribution: tree height must be in [1, 64]");
  cdf_.resize(tree_height + 1);
  const double dn = static_cast<double>(n);
  for (unsigned k = 0; k < tree_height; ++k) {
    // P(d <= k) = P(no tag matches a (k+1)-bit prefix) = (1 - 2^-(k+1))^n.
    cdf_[k] = (n == 0) ? 1.0
                       : std::pow(1.0 - std::ldexp(1.0, -(static_cast<int>(k) + 1)),
                                  dn);
  }
  cdf_[tree_height] = 1.0;

  double mean = 0.0;
  double second = 0.0;
  double prev = 0.0;
  for (unsigned k = 0; k <= tree_height; ++k) {
    const double p = cdf_[k] - prev;
    prev = cdf_[k];
    mean += p * k;
    second += p * static_cast<double>(k) * static_cast<double>(k);
  }
  mean_ = mean;
  stddev_ = std::sqrt(std::max(0.0, second - mean * mean));
}

double DepthDistribution::pmf(unsigned k) const {
  expects(k <= tree_height_, "pmf: k exceeds tree height");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

double DepthDistribution::cdf(unsigned k) const {
  expects(k <= tree_height_, "cdf: k exceeds tree height");
  return cdf_[k];
}

unsigned DepthDistribution::sample(rng::Xoshiro256ss& gen) const {
  double u;
  do {
    u = static_cast<double>(gen() >> 11) * 0x1.0p-53;
  } while (u <= 0.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<unsigned>(it - cdf_.begin());
}

double asymptotic_mean_depth(double n) {
  expects(n > 0.0, "asymptotic_mean_depth: n must be positive");
  return std::log2(kPhi * n);
}

double expected_gray_height_eq6(std::uint64_t n, unsigned tree_height) {
  expects(tree_height >= 1 && tree_height <= 64,
          "expected_gray_height_eq6: tree height must be in [1, 64]");
  // p = (1 - 2^-H)^n, computed in log space to survive H = 64.
  const double log_p = static_cast<double>(n) *
                       std::log1p(-std::ldexp(1.0, -static_cast<int>(tree_height)));
  double sum = 0.0;
  for (unsigned k = 0; k < tree_height; ++k) {
    sum += std::exp(std::ldexp(1.0, static_cast<int>(k)) * log_p);
  }
  const double p_pow_2h =
      std::exp(std::ldexp(1.0, static_cast<int>(tree_height)) * log_p);
  return -static_cast<double>(tree_height) * p_pow_2h + sum;
}

namespace testing {

namespace {
// Relaxed atomic: armed once in a test main before any trial threads spawn,
// read-only afterwards, so trial code stays data-race-free under TSan.
std::atomic<double> g_phi_bias{1.0};
}  // namespace

void set_phi_bias_for_tests(double multiplier) noexcept {
  g_phi_bias.store(multiplier, std::memory_order_relaxed);
}

double phi_bias_for_tests() noexcept {
  return g_phi_bias.load(std::memory_order_relaxed);
}

}  // namespace testing

double estimate_from_mean_depth(double mean_depth) {
  return std::exp2(mean_depth) / (kPhi * testing::phi_bias_for_tests());
}

std::uint64_t required_rounds(const stats::AccuracyRequirement& req) {
  req.validate();
  const double c = stats::two_sided_normal_constant(req.delta);
  const double lo = c * kSigmaH / std::abs(std::log2(1.0 - req.epsilon));
  const double hi = c * kSigmaH / std::log2(1.0 + req.epsilon);
  const double m = std::max(lo * lo, hi * hi);
  return static_cast<std::uint64_t>(std::ceil(m));
}

TheoreticalPet::TheoreticalPet(std::uint64_t n, unsigned tree_height,
                               std::uint64_t rounds)
    : depth_(n, tree_height), rounds_(rounds) {
  expects(rounds >= 1, "TheoreticalPet: need at least one round");
}

double TheoreticalPet::sample_estimate(rng::Xoshiro256ss& gen) const {
  double sum = 0.0;
  for (std::uint64_t i = 0; i < rounds_; ++i) {
    sum += static_cast<double>(depth_.sample(gen));
  }
  return estimate_from_mean_depth(sum / static_cast<double>(rounds_));
}

}  // namespace pet::core
