#include "core/sketch.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "core/theory.hpp"
#include "rng/hash_family.hpp"
#include "rng/prng.hpp"

namespace pet::core {

PetSketch PetSketch::take(chan::PrefixChannel& channel,
                          const PetConfig& config, std::uint64_t rounds,
                          std::uint64_t sketch_seed) {
  config.validate();
  expects(rounds >= 1, "PetSketch::take needs at least one round");
  expects(!config.tags_rehash,
          "sketches require the preloaded-code mode: merging depends on a "
          "shared code universe across readers and across time");

  const PetEstimator estimator(config, stats::AccuracyRequirement{0.5, 0.5});
  std::vector<unsigned> depths;
  depths.reserve(rounds);
  for (std::uint64_t i = 0; i < rounds; ++i) {
    // Identical derivation to PetEstimator::estimate_with_rounds: sketches
    // taken with the same seed probe the same paths in the same order.
    const std::uint64_t path_seed = rng::derive_seed(sketch_seed, 2 * i);
    const std::uint64_t round_seed = rng::derive_seed(sketch_seed, 2 * i + 1);
    const BitCode path = rng::uniform_code(rng::HashKind::kMix64, path_seed,
                                           0xbad9e7ULL, config.tree_height);
    channel.begin_round(chan::RoundConfig{path, round_seed, false,
                                          config.begin_bits(),
                                          config.query_bits()});
    const auto depth = estimator.run_round(channel);
    // A verifiably empty region contributes depth 0: the identity of the
    // element-wise max.
    depths.push_back(depth.value_or(0));
  }
  return PetSketch(sketch_seed, config.tree_height, std::move(depths));
}

PetSketch::PetSketch(std::uint64_t sketch_seed, unsigned tree_height,
                     std::vector<unsigned> depths)
    : seed_(sketch_seed), tree_height_(tree_height),
      depths_(std::move(depths)) {
  expects(tree_height_ >= 2 && tree_height_ <= 64,
          "PetSketch: tree height must be in [2, 64]");
  expects(!depths_.empty(), "PetSketch: needs at least one round");
  for (const unsigned d : depths_) {
    expects(d <= tree_height_, "PetSketch: depth exceeds tree height");
  }
}

double PetSketch::estimate() const {
  double sum = 0.0;
  for (const unsigned d : depths_) sum += static_cast<double>(d);
  return estimate_from_mean_depth(sum / static_cast<double>(depths_.size()));
}

PetSketch PetSketch::merge_union(const PetSketch& a, const PetSketch& b) {
  expects(a.mergeable_with(b),
          "PetSketch::merge_union: sketches must share seed, tree height "
          "and round count");
  std::vector<unsigned> merged(a.depths_.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    merged[i] = std::max(a.depths_[i], b.depths_[i]);
  }
  return PetSketch(a.seed_, a.tree_height_, std::move(merged));
}

double PetSketch::estimate_intersection(const PetSketch& a,
                                        const PetSketch& b) {
  const double u = merge_union(a, b).estimate();
  const double overlap = a.estimate() + b.estimate() - u;
  return overlap > 0.0 ? overlap : 0.0;
}

namespace {

unsigned depth_bits_for(unsigned tree_height) noexcept {
  unsigned bits = 0;
  while ((1u << bits) < tree_height + 1) ++bits;
  return bits;
}

}  // namespace

std::uint64_t PetSketch::wire_bits() const noexcept {
  return 64 /*seed*/ + 8 /*height*/ +
         depths_.size() * depth_bits_for(tree_height_);
}

std::vector<std::uint8_t> PetSketch::serialize() const {
  const unsigned bits = depth_bits_for(tree_height_);
  std::vector<std::uint8_t> out;
  out.reserve(13 + (depths_.size() * bits + 7) / 8);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((seed_ >> (8 * i)) & 0xff));
  }
  out.push_back(static_cast<std::uint8_t>(tree_height_));
  const auto count = static_cast<std::uint32_t>(depths_.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((count >> (8 * i)) & 0xff));
  }
  // LSB-first bit packing of the depths.
  std::uint32_t accumulator = 0;
  unsigned filled = 0;
  for (const unsigned d : depths_) {
    accumulator |= d << filled;
    filled += bits;
    while (filled >= 8) {
      out.push_back(static_cast<std::uint8_t>(accumulator & 0xff));
      accumulator >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) out.push_back(static_cast<std::uint8_t>(accumulator & 0xff));
  return out;
}

PetSketch PetSketch::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 13) {
    throw ConfigError("PetSketch::deserialize: truncated header");
  }
  std::uint64_t seed = 0;
  for (int i = 7; i >= 0; --i) {
    seed = (seed << 8) | bytes[static_cast<std::size_t>(i)];
  }
  const unsigned height = bytes[8];
  if (height < 2 || height > 64) {
    throw ConfigError("PetSketch::deserialize: bad tree height");
  }
  std::uint32_t count = 0;
  for (int i = 3; i >= 0; --i) {
    count = (count << 8) | bytes[9 + static_cast<std::size_t>(i)];
  }
  if (count == 0) {
    throw ConfigError("PetSketch::deserialize: empty sketch");
  }
  const unsigned bits = depth_bits_for(height);
  const std::size_t payload = (static_cast<std::size_t>(count) * bits + 7) / 8;
  if (bytes.size() != 13 + payload) {
    throw ConfigError("PetSketch::deserialize: length mismatch");
  }

  std::vector<unsigned> depths;
  depths.reserve(count);
  std::uint32_t accumulator = 0;
  unsigned filled = 0;
  std::size_t cursor = 13;
  const std::uint32_t mask = (1u << bits) - 1;
  for (std::uint32_t i = 0; i < count; ++i) {
    while (filled < bits) {
      accumulator |= static_cast<std::uint32_t>(bytes[cursor++]) << filled;
      filled += 8;
    }
    const unsigned d = accumulator & mask;
    if (d > height) {
      throw ConfigError("PetSketch::deserialize: depth exceeds tree height");
    }
    depths.push_back(d);
    accumulator >>= bits;
    filled -= bits;
  }
  return PetSketch(seed, height, std::move(depths));
}

}  // namespace pet::core
