// RobustPetEstimator: an impairment-hardened estimation pipeline layered
// over PetEstimator (see docs/robustness.md).
//
// Vanilla PET trusts every slot: one lost reply turns a busy probe idle and
// biases n̂ low; one noise-floored slot turns an idle probe busy and biases
// n̂ high (bench/robustness_bench.cpp quantifies both).  This wrapper adds
// three defenses, none of which touch the tag side:
//
//  (a) k-of-m voting — every prefix probe is re-read until `vote_quorum`
//      busy reads are seen or enough idle reads make the quorum
//      unreachable, majority scrubbing both error directions.  Re-reads
//      are charged to the channel ledger's retry accounting
//      (SlotLedger::retry_slots) and bounded by a per-estimate budget.
//  (b) robust fusion — the plain mean of per-round depths is replaced by a
//      trimmed mean (or median-of-means if the caller configured one), so
//      a single corrupted round cannot swing n̂ = φ⁻¹·2^{d̄}.
//  (c) channel-health diagnostic — the observed depth sample is KS-tested
//      against the theoretical geometric mixture DepthDistribution(n̂, H);
//      when the channel deviates, the reported confidence interval is
//      widened and the estimate is flagged degraded or contract-at-risk,
//      keeping the (ε, δ) contract honest instead of silently wrong.
#pragma once

#include <cstdint>
#include <string_view>

#include "channel/channel.hpp"
#include "core/confidence.hpp"
#include "core/estimator.hpp"
#include "stats/accuracy.hpp"

namespace pet::core {

struct RobustPetConfig {
  PetConfig base{};  ///< the underlying PET protocol configuration

  /// k-of-m voting: at most `vote_reads` reads per probe, busy iff
  /// `vote_quorum` reads were busy.  `vote_reads = 1` disables voting.
  unsigned vote_reads = 3;
  unsigned vote_quorum = 2;

  /// Per-estimate ceiling on voting re-read slots; once spent, probes fall
  /// back to single reads (and the result says so).
  std::uint64_t retry_budget_slots = UINT64_MAX;

  /// Channel-health KS test: significance level, reference sample size and
  /// the fixed seed its draws come from (fixed => replayable diagnostics).
  double health_alpha = 0.01;
  std::size_t health_reference_draws = 4096;
  std::uint64_t health_seed = 0x6ea17bULL;

  void validate() const;
};

enum class ChannelHealth : std::uint8_t {
  kHealthy,         ///< depth sample consistent with the theory
  kDegraded,        ///< deviation detected; interval widened, contract holds
  kContractAtRisk,  ///< widened interval exceeds ε: do not trust (ε, δ)
};

[[nodiscard]] std::string_view to_string(ChannelHealth health) noexcept;

/// Outcome of the online channel-health KS diagnostic.
struct ChannelDiagnostic {
  double ks_distance = 0.0;   ///< sup-distance observed vs theoretical depths
  double ks_threshold = 0.0;  ///< critical value at health_alpha
  double widening = 1.0;      ///< interval half-width multiplier applied
  ChannelHealth health = ChannelHealth::kHealthy;

  [[nodiscard]] bool contract_at_risk() const noexcept {
    return health == ChannelHealth::kContractAtRisk;
  }
};

struct RobustEstimateResult {
  EstimateResult base;  ///< robust-fused n̂, depths, rounds, slot ledger

  std::uint64_t reread_slots = 0;      ///< voting re-reads actually spent
  std::uint64_t overturned_probes = 0; ///< probes whose first read lost the vote
  bool retry_budget_exhausted = false;

  ChannelDiagnostic diagnostic;
  ConfidenceInterval interval;  ///< (1 - δ) interval, widened per diagnostic

  [[nodiscard]] double n_hat() const noexcept { return base.n_hat; }
};

class RobustPetEstimator {
 public:
  RobustPetEstimator(RobustPetConfig config,
                     stats::AccuracyRequirement requirement);

  [[nodiscard]] const RobustPetConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t planned_rounds() const noexcept {
    return inner_.planned_rounds();
  }

  /// Run the hardened pipeline end to end: voting probes, robust fusion,
  /// health diagnostic.  Deterministic in (channel state, seed).
  [[nodiscard]] RobustEstimateResult estimate(chan::PrefixChannel& channel,
                                              std::uint64_t seed) const;

  [[nodiscard]] RobustEstimateResult estimate_with_rounds(
      chan::PrefixChannel& channel, std::uint64_t rounds,
      std::uint64_t seed) const;

  /// Gated variant (see PetEstimator::estimate_with_rounds): the gate is
  /// consulted at round boundaries; a truncated run still produces the
  /// voting totals, health diagnostic, and a widened interval over the
  /// rounds that did execute — the pet::svc graceful-degradation path.
  [[nodiscard]] RobustEstimateResult estimate_with_rounds(
      chan::PrefixChannel& channel, std::uint64_t rounds, std::uint64_t seed,
      const RoundGate& gate) const;

 private:
  RobustPetConfig config_;
  stats::AccuracyRequirement requirement_;
  PetEstimator inner_;
};

}  // namespace pet::core
