// The PET protocol driver (reader side) and cardinality estimator:
// Algorithms 1 and 3 of the paper, over any PrefixChannel back end.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "channel/channel.hpp"
#include "common/types.hpp"
#include "core/fusion.hpp"
#include "sim/medium.hpp"
#include "stats/accuracy.hpp"
#include "tags/cost_model.hpp"

namespace pet::core {

/// How the reader locates the gray node on the estimating path.
enum class SearchMode : std::uint8_t {
  kLinear,       ///< Algorithm 1: additive prefix walk, O(log n) slots/round
  kBinaryPaper,  ///< Algorithm 3 verbatim: searches d in [1, H], exactly
                 ///< ceil(log2 H) slots (5 for H = 32); cannot observe d = 0
  kBinaryStrict, ///< binary search over d in [0, H]: one slot more in the
                 ///< worst case, exact for every population size incl. 0
};

[[nodiscard]] std::string_view to_string(SearchMode mode) noexcept;

struct PetConfig {
  unsigned tree_height = 32;  ///< H
  SearchMode search = SearchMode::kBinaryPaper;
  /// Algorithm 2 (true: tags rehash from a per-round seed; needs active
  /// tags) vs Algorithm 4 (false: preloaded codes; passive-tag friendly).
  bool tags_rehash = false;
  /// Downlink encoding of each query (Section 4.6.2).
  tags::CommandEncoding encoding = tags::CommandEncoding::kFullMask;
  /// How the per-round depths fuse into n̂ (Eq. (14) by default; the
  /// bias-corrected and median-of-means extensions are this library's).
  FusionRule fusion = FusionRule::kGeometricMean;
  unsigned fusion_groups = 16;   ///< kMedianOfMeans only
  double fusion_trim = 0.1;      ///< kTrimmedMean only, per-tail fraction

  void validate() const;

  /// Downlink bits of the per-round begin packet: the estimating path, plus
  /// the hash seed when tags rehash.
  [[nodiscard]] unsigned begin_bits() const noexcept {
    return tags_rehash ? 2 * tree_height : tree_height;
  }
  [[nodiscard]] unsigned query_bits() const noexcept {
    return tags::command_bits_per_query(encoding, tree_height);
  }

  /// Worst-case query slots per round under the configured search mode
  /// (for kLinear this depends on the population; returns H + 1).
  [[nodiscard]] unsigned worst_case_slots_per_round() const noexcept;
};

/// Outcome of one full estimation (m rounds).
struct EstimateResult {
  double n_hat = 0.0;              ///< estimated cardinality
  std::uint64_t rounds = 0;        ///< rounds executed
  double mean_depth = 0.0;         ///< dbar over the executed rounds
  std::vector<unsigned> depths;    ///< per-round observations d_i
  sim::SlotLedger ledger;          ///< slots/bits consumed by this estimate
  /// True when a RoundGate stopped the run before the requested round
  /// count; n_hat is then the best-effort fusion of the rounds completed.
  bool truncated = false;
};

/// Cooperative stop-check consulted between rounds: receives the number of
/// rounds completed so far and returns true to keep going, false to stop.
/// petd's deadline/drain path installs one; sweeps leave it empty.  The
/// gate must be deterministic if its caller needs deterministic results —
/// wall-clock gates belong only to best-effort service paths
/// (docs/service.md).
using RoundGate = std::function<bool(std::uint64_t rounds_done)>;

class PetEstimator {
 public:
  PetEstimator(PetConfig config, stats::AccuracyRequirement requirement);

  [[nodiscard]] const PetConfig& config() const noexcept { return config_; }

  /// Rounds mandated by Eq. (20) for the accuracy requirement.
  [[nodiscard]] std::uint64_t planned_rounds() const noexcept {
    return planned_rounds_;
  }

  /// Run the full protocol: planned_rounds() rounds, estimating paths and
  /// round seeds derived deterministically from `seed`.
  [[nodiscard]] EstimateResult estimate(chan::PrefixChannel& channel,
                                        std::uint64_t seed) const;

  /// Same, with an explicit round count (Fig. 4 sweeps).
  [[nodiscard]] EstimateResult estimate_with_rounds(
      chan::PrefixChannel& channel, std::uint64_t rounds,
      std::uint64_t seed) const;

  /// Same, with a RoundGate consulted before every round after the first.
  /// A run stopped early fuses the depths it has (result.truncated = true,
  /// result.rounds = rounds actually executed): a narrower best-effort
  /// estimate rather than no answer — the degradation primitive the
  /// pet::svc deadline path is built on.
  [[nodiscard]] EstimateResult estimate_with_rounds(
      chan::PrefixChannel& channel, std::uint64_t rounds, std::uint64_t seed,
      const RoundGate& gate) const;

  /// Execute one round on an already-begun channel round and return the
  /// observed prefix depth, or nullopt when the region is verifiably empty
  /// (strict/linear modes only).  Exposed for white-box tests.
  [[nodiscard]] std::optional<unsigned> run_round(
      chan::PrefixChannel& channel) const;

  /// Fast-path twin of run_round: the same descent answered by the back
  /// end's DepthOracle (synth_probe) instead of issued probes.  Returns the
  /// same depth and leaves the same ledger deltas for every round (the
  /// probe sequence is shared by construction).  Exposed for white-box
  /// tests and bench/micro_ops.
  [[nodiscard]] std::optional<unsigned> run_round_synth(
      chan::DepthOracle& oracle) const;

 private:
  PetConfig config_;
  stats::AccuracyRequirement requirement_;
  std::uint64_t planned_rounds_;
};

}  // namespace pet::core
