#include "core/confidence.hpp"

#include <cmath>

#include "common/ensure.hpp"
#include "core/constants.hpp"
#include "core/theory.hpp"
#include "stats/normal.hpp"
#include "stats/running_stat.hpp"

namespace pet::core {

namespace {

ConfidenceInterval interval_from_depth_sigma(const EstimateResult& result,
                                             double delta,
                                             double depth_sigma) {
  expects(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  if (result.depths.empty()) {
    // Every round certified emptiness (strict/linear search, n̂ = 0): the
    // estimate is exact and the interval degenerates to a point at zero.
    return ConfidenceInterval{0.0, 0.0, 0.0};
  }

  const double m = static_cast<double>(result.depths.size());
  const double c = stats::two_sided_normal_constant(delta);
  const double half_width = c * depth_sigma / std::sqrt(m);

  ConfidenceInterval interval;
  interval.point = estimate_from_mean_depth(result.mean_depth);
  interval.lo = estimate_from_mean_depth(result.mean_depth - half_width);
  interval.hi = estimate_from_mean_depth(result.mean_depth + half_width);
  return interval;
}

}  // namespace

ConfidenceInterval confidence_interval(const EstimateResult& result,
                                       double delta) {
  return interval_from_depth_sigma(result, delta, kSigmaH);
}

ConfidenceInterval empirical_confidence_interval(const EstimateResult& result,
                                                 double delta) {
  expects(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  if (result.depths.empty()) return ConfidenceInterval{0.0, 0.0, 0.0};
  expects(result.depths.size() >= 2,
          "empirical interval needs at least two depth observations");
  stats::RunningStat stat;
  for (const unsigned d : result.depths) stat.add(static_cast<double>(d));
  return interval_from_depth_sigma(result, delta,
                                   std::sqrt(stat.sample_variance()));
}

}  // namespace pet::core
