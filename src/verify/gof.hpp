// Goodness-of-fit primitives for the statistical conformance harness.
//
// The oracle is core::DepthDistribution — the exact finite-n law of the
// per-round prefix depth (Eq. (5)).  Empirical depth samples from any
// channel back end are tested against it two ways:
//
//   * Pearson chi-square over the depth histogram, with sparse bins merged
//     until every expected count reaches a floor (the classic validity
//     condition), critical value from the Wilson-Hilferty cube-root
//     approximation;
//   * one-sample Kolmogorov-Smirnov with the distribution-free DKW
//     threshold sqrt(ln(2/alpha) / 2N).  For discrete laws this is
//     conservative (true size below alpha), which is the right direction
//     for "must match" assertions; the "must break" fault scenarios are
//     gross enough that power is not a concern.
//
// All checks run at fixed seeds, so a pass/fail verdict is a property of
// the code, not of the draw; alpha still matters because a seed is one
// fixed sample from the null.  docs/testing.md describes the methodology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/theory.hpp"

namespace pet::verify {

/// Histogram of observed prefix depths: counts[k] = #observations of d = k,
/// k in [0, H].  The vector length fixes H + 1.
using DepthCounts = std::vector<std::uint64_t>;

/// Outcome of one goodness-of-fit test.
struct GofResult {
  double statistic = 0.0;  ///< chi-square value or KS sup-distance
  double threshold = 0.0;  ///< critical value at the requested alpha
  std::uint64_t samples = 0;
  unsigned dof = 0;  ///< chi-square only: merged bins - 1

  /// True when the empirical sample deviates from the oracle at this alpha.
  [[nodiscard]] bool reject() const noexcept { return statistic > threshold; }
};

/// Upper-tail chi-square quantile via Wilson-Hilferty: accurate to ~1% for
/// dof >= 2 over the alphas used here; callers pick sample sizes so that
/// verdicts never sit within that margin of the threshold.
[[nodiscard]] double chi_square_critical(unsigned dof, double alpha);

/// One-sample KS critical value from the Dvoretzky-Kiefer-Wolfowitz bound.
[[nodiscard]] double ks_one_sample_critical(std::uint64_t samples,
                                            double alpha);

/// Pearson chi-square of `counts` against `theory`'s pmf.  Adjacent depth
/// bins are merged (left to right) until every expected count is at least
/// `min_expected`; throws PreconditionError when fewer than two merged bins
/// remain or the histogram is empty.
[[nodiscard]] GofResult chi_square_depth_gof(const DepthCounts& counts,
                                             const core::DepthDistribution& theory,
                                             double alpha,
                                             double min_expected = 5.0);

/// One-sample KS of the empirical depth CDF against `theory`'s CDF.
[[nodiscard]] GofResult ks_depth_gof(const DepthCounts& counts,
                                     const core::DepthDistribution& theory,
                                     double alpha);

/// Bonferroni-adjusted per-check level for a family of `checks` tests at
/// family-wise level `family_alpha`.
[[nodiscard]] double bonferroni_alpha(double family_alpha,
                                      std::size_t checks);

}  // namespace pet::verify
