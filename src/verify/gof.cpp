#include "verify/gof.hpp"

#include <cmath>
#include <numeric>

#include "common/ensure.hpp"
#include "stats/normal.hpp"

namespace pet::verify {

double chi_square_critical(unsigned dof, double alpha) {
  expects(dof >= 1, "chi_square_critical: dof must be >= 1");
  expects(alpha > 0.0 && alpha < 1.0,
          "chi_square_critical: alpha must be in (0, 1)");
  const double d = dof;
  const double z = stats::normal_quantile(1.0 - alpha);
  const double t = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

double ks_one_sample_critical(std::uint64_t samples, double alpha) {
  expects(samples >= 1, "ks_one_sample_critical: need at least one sample");
  expects(alpha > 0.0 && alpha < 1.0,
          "ks_one_sample_critical: alpha must be in (0, 1)");
  return std::sqrt(std::log(2.0 / alpha) /
                   (2.0 * static_cast<double>(samples)));
}

double bonferroni_alpha(double family_alpha, std::size_t checks) {
  expects(family_alpha > 0.0 && family_alpha < 1.0,
          "bonferroni_alpha: family_alpha must be in (0, 1)");
  expects(checks >= 1, "bonferroni_alpha: need at least one check");
  return family_alpha / static_cast<double>(checks);
}

GofResult chi_square_depth_gof(const DepthCounts& counts,
                               const core::DepthDistribution& theory,
                               double alpha, double min_expected) {
  expects(counts.size() == theory.tree_height() + 1,
          "chi_square_depth_gof: histogram width must be tree height + 1");
  expects(min_expected > 0.0,
          "chi_square_depth_gof: min_expected must be positive");
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  expects(total > 0, "chi_square_depth_gof: empty histogram");
  const double n = static_cast<double>(total);

  // Merge adjacent depth bins left to right until each merged bin's
  // expected count reaches the floor; a trailing underweight bin joins its
  // left neighbour.
  std::vector<double> observed;
  std::vector<double> expected;
  double obs_acc = 0.0;
  double exp_acc = 0.0;
  for (unsigned k = 0; k < counts.size(); ++k) {
    obs_acc += static_cast<double>(counts[k]);
    exp_acc += n * theory.pmf(k);
    if (exp_acc >= min_expected) {
      observed.push_back(obs_acc);
      expected.push_back(exp_acc);
      obs_acc = 0.0;
      exp_acc = 0.0;
    }
  }
  if (exp_acc > 0.0 || obs_acc > 0.0) {
    if (expected.empty()) {
      observed.push_back(obs_acc);
      expected.push_back(exp_acc);
    } else {
      observed.back() += obs_acc;
      expected.back() += exp_acc;
    }
  }
  expects(expected.size() >= 2,
          "chi_square_depth_gof: fewer than two bins survive merging "
          "(sample too small for this oracle)");

  double stat = 0.0;
  for (std::size_t b = 0; b < expected.size(); ++b) {
    const double diff = observed[b] - expected[b];
    stat += diff * diff / expected[b];
  }

  GofResult result;
  result.statistic = stat;
  result.samples = total;
  result.dof = static_cast<unsigned>(expected.size() - 1);
  result.threshold = chi_square_critical(result.dof, alpha);
  return result;
}

GofResult ks_depth_gof(const DepthCounts& counts,
                       const core::DepthDistribution& theory, double alpha) {
  expects(counts.size() == theory.tree_height() + 1,
          "ks_depth_gof: histogram width must be tree height + 1");
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  expects(total > 0, "ks_depth_gof: empty histogram");
  const double n = static_cast<double>(total);

  double sup = 0.0;
  std::uint64_t cum = 0;
  for (unsigned k = 0; k < counts.size(); ++k) {
    cum += counts[k];
    const double empirical = static_cast<double>(cum) / n;
    sup = std::max(sup, std::abs(empirical - theory.cdf(k)));
  }

  GofResult result;
  result.statistic = sup;
  result.samples = total;
  result.threshold = ks_one_sample_critical(total, alpha);
  return result;
}

}  // namespace pet::verify
