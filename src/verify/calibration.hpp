// Estimator-calibration trials: does the library's statistical machinery
// keep the promises the paper's analysis makes?
//
//   * PET — the (1 - delta) confidence intervals from core/confidence must
//     cover the true n at the nominal rate, the per-round depth variance
//     must track sigma(h) (Eq. 11), and mean accuracy (Eq. 22) must sit at
//     1 up to the documented geometric-mean bias;
//   * RobustPetEstimator — its (possibly widened) interval must cover at
//     least as often, and a clean channel must be diagnosed healthy;
//   * FNEB / LoF / UPE / EZB — at their planned round counts the empirical
//     (epsilon, delta) contract and mean accuracy must hold.
//
// Every trial runs on a SampledChannel (distribution-exact, itself
// GoF-certified against the per-tag backends by the conformance suite) with
// trial-indexed seeds, so results are thread-count invariant.
#pragma once

#include <cstdint>

#include "runtime/trial_runner.hpp"
#include "sim/faults.hpp"

namespace pet::verify {

struct CalibrationSpec {
  std::uint64_t n = 20000;        ///< true population size
  std::uint64_t trials = 400;     ///< independent estimates
  std::uint64_t rounds = 64;      ///< rounds per estimate (PET family only)
  double epsilon = 0.1;           ///< contract half-width (baselines)
  double delta = 0.05;            ///< contract / interval error probability
  std::uint64_t seed = 1;
  /// Gen2 sweeps only: link impairments (capture, loss, noise).  Per-trial
  /// fault streams are re-derived from the trial seed, never this field's
  /// own seed, keeping replay trial-indexed.
  sim::ChannelImpairments impairments{};
};

/// Aggregates of one calibration sweep; NaN marks fields a given estimator
/// does not produce.
struct CalibrationResult {
  std::uint64_t trials = 0;
  double coverage = 0.0;          ///< CI contains true n (PET family)
  double empirical_coverage = 0.0;///< same, sample-deviation interval (PET)
  double accuracy = 0.0;          ///< mean n̂ / n (Eq. 22)
  double within_fraction = 0.0;   ///< |n̂ - n| <= eps n
  double variance_ratio = 0.0;    ///< pooled depth var / oracle var (PET)
  double healthy_fraction = 0.0;  ///< robust only: diagnosed kHealthy
};

[[nodiscard]] CalibrationResult calibrate_pet(const CalibrationSpec& spec,
                                              runtime::TrialRunner& runner);

[[nodiscard]] CalibrationResult calibrate_robust_pet(
    const CalibrationSpec& spec, runtime::TrialRunner& runner);

/// PET over the Gen2 air protocol (gen2::Gen2PrefixChannel): Select+Query
/// mapped probes, spec.impairments active, fresh manufacturing codes per
/// trial (preloaded Algorithm 4 — the only PET mode with a Gen2 encoding).
[[nodiscard]] CalibrationResult calibrate_pet_gen2(const CalibrationSpec& spec,
                                                   runtime::TrialRunner& runner);

[[nodiscard]] CalibrationResult calibrate_fneb(const CalibrationSpec& spec,
                                               runtime::TrialRunner& runner);

[[nodiscard]] CalibrationResult calibrate_lof(const CalibrationSpec& spec,
                                              runtime::TrialRunner& runner);

[[nodiscard]] CalibrationResult calibrate_upe(const CalibrationSpec& spec,
                                              runtime::TrialRunner& runner);

[[nodiscard]] CalibrationResult calibrate_ezb(const CalibrationSpec& spec,
                                              runtime::TrialRunner& runner);

}  // namespace pet::verify
