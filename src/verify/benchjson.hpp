// Parser + tolerance-aware comparator for BENCH_<target>.json artifacts
// (the schema BenchReport::to_json emits, documented in docs/runtime.md).
//
// The parser is a deliberately small recursive-descent JSON reader: it
// accepts exactly the value forms the artifacts use (objects, arrays,
// escaped strings, numbers, null, booleans) and rejects everything else
// loudly.  It exists so the repro gate can diff artifacts without adding a
// JSON dependency the container does not have.
//
// diff_bench compares a candidate artifact against a golden one:
//   * `target` and row count must match exactly;
//   * `threads` and `wall_seconds` are ignored — the determinism contract
//     makes rows thread-invariant but wall time is machine noise;
//   * rows are matched by index; cells by key.  Cells that parse as
//     numbers on both sides compare within atol + rtol * |golden|;
//     anything else must match byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pet::verify {

/// One BENCH row: ordered (key, value) cells, all values as strings
/// (BenchReport serialises every cell as a JSON string).
using BenchRow = std::vector<std::pair<std::string, std::string>>;

struct BenchArtifact {
  std::string target;
  std::uint64_t threads = 0;
  double wall_seconds = 0.0;  ///< NaN when serialised as null
  /// Raw text of the optional "metrics" member (pet.obs.v1 document),
  /// empty when absent.  Kept verbatim — diff_bench never compares it,
  /// because profile metrics are machine noise by design.
  std::string metrics_json;
  /// Raw text of the optional "profile" member (per-phase wall breakdown),
  /// empty when absent.  Ignored by diff_bench for the same reason as
  /// wall_seconds: it measures the machine, not the simulation.
  std::string profile_json;
  std::vector<BenchRow> rows;
};

/// Parse a BENCH artifact from JSON text.  Throws std::runtime_error with a
/// byte-offset diagnostic on malformed input or schema violations.
[[nodiscard]] BenchArtifact parse_bench_json(const std::string& text);

/// Read and parse a BENCH artifact file.  Throws std::runtime_error.
[[nodiscard]] BenchArtifact load_bench_json(const std::string& path);

struct BenchDiffOptions {
  double rtol = 0.05;   ///< relative tolerance for numeric cells
  double atol = 1e-9;   ///< absolute tolerance for numeric cells
};

struct BenchDiff {
  /// Human-readable mismatch descriptions; empty means artifacts agree.
  std::vector<std::string> mismatches;
  [[nodiscard]] bool ok() const noexcept { return mismatches.empty(); }
};

[[nodiscard]] BenchDiff diff_bench(const BenchArtifact& golden,
                                   const BenchArtifact& candidate,
                                   const BenchDiffOptions& options = {});

}  // namespace pet::verify
