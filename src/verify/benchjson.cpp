#include "verify/benchjson.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace pet::verify {

namespace {

/// Minimal recursive-descent reader for the JSON subset BENCH artifacts
/// use.  Every error carries the byte offset so a corrupt golden is easy
/// to localise.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  [[nodiscard]] BenchArtifact parse() {
    BenchArtifact artifact;
    bool saw_target = false;
    bool saw_rows = false;
    skip_ws();
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; break; }
      if (!first) { expect(','); skip_ws(); }
      first = false;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "target") {
        artifact.target = parse_string();
        saw_target = true;
      } else if (key == "threads") {
        artifact.threads = static_cast<std::uint64_t>(parse_number());
      } else if (key == "wall_seconds") {
        artifact.wall_seconds = parse_number_or_null();
      } else if (key == "metrics") {
        const std::size_t start = pos_;
        skip_value();
        artifact.metrics_json = text_.substr(start, pos_ - start);
      } else if (key == "profile") {
        const std::size_t start = pos_;
        skip_value();
        artifact.profile_json = text_.substr(start, pos_ - start);
      } else if (key == "rows") {
        artifact.rows = parse_rows();
        saw_rows = true;
      } else {
        fail("unknown top-level key '" + key + "'");
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after artifact");
    if (!saw_target) fail("artifact missing 'target'");
    if (!saw_rows) fail("artifact missing 'rows'");
    return artifact;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("bench json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" +
                          text_[pos_] + "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          pos_ += 4;
          // Artifacts only escape control bytes; anything wider is a
          // schema violation, not a parser gap.
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  [[nodiscard]] double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("expected a number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) {
      fail("malformed number '" + token + "'");
    }
    return value;
  }

  [[nodiscard]] double parse_number_or_null() {
    if (peek() == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) fail("expected null");
      pos_ += 4;
      return std::numeric_limits<double>::quiet_NaN();
    }
    return parse_number();
  }

  /// Skip one well-formed JSON value of any shape.  Used for the
  /// "metrics" member, whose contents the gate deliberately never
  /// inspects (it carries profile data, which is machine noise).
  void skip_value() {
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '{') {
      ++pos_;
      skip_ws();
      if (peek() == '}') { ++pos_; return; }
      while (true) {
        skip_ws();
        (void)parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        skip_value();
        skip_ws();
        if (peek() == '}') { ++pos_; return; }
        expect(',');
      }
    } else if (c == '[') {
      ++pos_;
      skip_ws();
      if (peek() == ']') { ++pos_; return; }
      while (true) {
        skip_ws();
        skip_value();
        skip_ws();
        if (peek() == ']') { ++pos_; return; }
        expect(',');
      }
    } else if (c == 't') {
      if (text_.compare(pos_, 4, "true") != 0) fail("expected true");
      pos_ += 4;
    } else if (c == 'f') {
      if (text_.compare(pos_, 5, "false") != 0) fail("expected false");
      pos_ += 5;
    } else if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) fail("expected null");
      pos_ += 4;
    } else {
      (void)parse_number();
    }
  }

  [[nodiscard]] std::vector<BenchRow> parse_rows() {
    std::vector<BenchRow> rows;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return rows; }
    while (true) {
      skip_ws();
      rows.push_back(parse_row());
      skip_ws();
      if (peek() == ']') { ++pos_; return rows; }
      expect(',');
    }
  }

  [[nodiscard]] BenchRow parse_row() {
    BenchRow row;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return row; }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      std::string value = parse_string();
      row.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (peek() == '}') { ++pos_; return row; }
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Cells are strings; the comparator treats a cell as numeric only when
/// the whole string parses as one finite double.
bool parse_cell_number(const std::string& cell, double& out) {
  if (cell.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (errno != 0 || end != cell.c_str() + cell.size()) return false;
  if (!std::isfinite(value)) return false;
  out = value;
  return true;
}

std::string row_label(const BenchArtifact& artifact, std::size_t index) {
  std::string label = "row " + std::to_string(index);
  for (const auto& [key, value] : artifact.rows[index]) {
    if (key == "table") return label + " (" + value + ")";
  }
  return label;
}

}  // namespace

BenchArtifact parse_bench_json(const std::string& text) {
  return Parser(text).parse();
}

BenchArtifact load_bench_json(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("bench json: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_bench_json(buffer.str());
}

BenchDiff diff_bench(const BenchArtifact& golden,
                     const BenchArtifact& candidate,
                     const BenchDiffOptions& options) {
  BenchDiff diff;
  auto mismatch = [&](std::string what) {
    diff.mismatches.push_back(std::move(what));
  };

  if (golden.target != candidate.target) {
    mismatch("target: golden '" + golden.target + "' vs candidate '" +
             candidate.target + "'");
  }
  if (golden.rows.size() != candidate.rows.size()) {
    mismatch("row count: golden " + std::to_string(golden.rows.size()) +
             " vs candidate " + std::to_string(candidate.rows.size()));
    return diff;  // index-matched comparison is meaningless past this point
  }

  for (std::size_t r = 0; r < golden.rows.size(); ++r) {
    const BenchRow& grow = golden.rows[r];
    const BenchRow& crow = candidate.rows[r];
    const std::string label = row_label(golden, r);
    if (grow.size() != crow.size()) {
      mismatch(label + ": cell count " + std::to_string(grow.size()) +
               " vs " + std::to_string(crow.size()));
      continue;
    }
    for (std::size_t f = 0; f < grow.size(); ++f) {
      if (grow[f].first != crow[f].first) {
        mismatch(label + ": column '" + grow[f].first + "' vs '" +
                 crow[f].first + "'");
        continue;
      }
      const std::string& gcell = grow[f].second;
      const std::string& ccell = crow[f].second;
      double gvalue = 0.0;
      double cvalue = 0.0;
      if (parse_cell_number(gcell, gvalue) &&
          parse_cell_number(ccell, cvalue)) {
        const double bound =
            options.atol + options.rtol * std::fabs(gvalue);
        if (std::fabs(cvalue - gvalue) > bound) {
          mismatch(label + ", " + grow[f].first + ": golden " + gcell +
                   " vs candidate " + ccell + " (tolerance " +
                   std::to_string(bound) + ")");
        }
      } else if (gcell != ccell) {
        mismatch(label + ", " + grow[f].first + ": golden '" + gcell +
                 "' vs candidate '" + ccell + "'");
      }
    }
  }
  return diff;
}

}  // namespace pet::verify
