// The conformance check registry: every statistical promise the library
// makes, phrased as a named pass/fail check that tools/petverify runs.
//
// Three families (docs/testing.md has the full methodology):
//   * theory/*      — closed-form self-consistency of core/theory;
//   * gof/*         — empirical prefix-depth samples from every channel
//                     back end versus the DepthDistribution oracle, both
//                     clean (must match) and fault-injected where theory
//                     predicts the clean law breaks (must mismatch);
//   * calibration/* — estimator sweeps on runtime::TrialRunner checking
//                     CI coverage, accuracy, and depth-variance tracking.
//
// All checks run at fixed seeds and report booleans with a diagnostic
// string; thresholds are Bonferroni-adjusted across the whole GoF family
// so the suite's family-wise false-alarm rate is bounded by
// ConformanceOptions::family_alpha.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/trial_runner.hpp"

namespace pet::verify {

struct ConformanceOptions {
  std::uint64_t seed = 1;
  bool quick = false;        ///< reduced sample sizes for CI budgets
  double family_alpha = 0.01;///< family-wise GoF false-alarm bound
  std::string filter;        ///< substring filter on check names; "" = all
};

struct CheckResult {
  std::string name;
  bool passed = false;
  std::string detail;  ///< statistics / thresholds, for the report
};

struct ConformanceReport {
  std::vector<CheckResult> checks;

  [[nodiscard]] bool all_passed() const noexcept {
    for (const auto& check : checks) {
      if (!check.passed) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t failures() const noexcept {
    std::size_t count = 0;
    for (const auto& check : checks) {
      if (!check.passed) ++count;
    }
    return count;
  }
};

/// Names of every registered check, in execution order.
[[nodiscard]] std::vector<std::string> conformance_check_names();

/// Run the (filtered) registry on `runner`.  A check that throws is
/// reported as failed with the exception text; the function itself only
/// throws on harness bugs.
[[nodiscard]] ConformanceReport run_conformance(const ConformanceOptions& options,
                                                runtime::TrialRunner& runner);

}  // namespace pet::verify
