// Empirical prefix-depth collection for the conformance harness: drive the
// real PET reader (binary-strict search, so the full support [0, H] is
// observable) over any channel back end and histogram the observed depths.
//
// Sampling obeys the repo-wide determinism contract (docs/runtime.md):
// every trial derives all of its randomness — manufacturing codes, round
// seeds, fault streams — from rng::derive_seed(seed, trial), so the
// histogram is bit-identical for any thread count.
//
// Independence, which the GoF tests assume, is arranged per backend:
//   * rehashing backends (kSampled, kExactRehash, kDeviceRehash) draw
//     i.i.d. rounds, so one trial may contribute many rounds;
//   * preloaded backends (kExactPreloaded, kSortedPreloaded,
//     kDevicePreloaded) share one code array across rounds of a trial, so
//     independent samples require fresh manufacturing seeds — use
//     rounds_per_trial = 1 and many trials.
#pragma once

#include <cstdint>

#include "runtime/trial_runner.hpp"
#include "sim/faults.hpp"
#include "verify/gof.hpp"

namespace pet::verify {

enum class DepthBackend : std::uint8_t {
  kSampled,          ///< SampledChannel (closed-form inverse transform)
  kExactRehash,      ///< ExactChannel, Algorithm 2 per-round rehash
  kExactPreloaded,   ///< ExactChannel, Algorithm 4 manufacturing codes
  kSortedPreloaded,  ///< SortedPetChannel (always preloaded)
  kDeviceRehash,     ///< DeviceChannel, per-round codes, full simulator
  kDevicePreloaded,  ///< DeviceChannel, preloaded codes, full simulator
  kGen2Preloaded,    ///< Gen2PrefixChannel (Select+Query mapped probes)
};

[[nodiscard]] const char* to_string(DepthBackend backend) noexcept;

struct DepthSampleSpec {
  DepthBackend backend = DepthBackend::kSampled;
  std::uint64_t n = 1000;     ///< true population size
  unsigned tree_height = 32;  ///< H
  std::uint64_t trials = 64;  ///< independent channel constructions
  std::uint64_t rounds_per_trial = 1;
  std::uint64_t seed = 1;
  /// Device backends only: link impairments.  The per-trial fault stream
  /// seed is re-derived from (seed, trial), never from this field, so fault
  /// replay is trial-indexed (thread-count invariant).
  sim::ChannelImpairments impairments{};
};

/// Run the spec on `runner` and return the pooled depth histogram
/// (length tree_height + 1).
[[nodiscard]] DepthCounts collect_depths(const DepthSampleSpec& spec,
                                         runtime::TrialRunner& runner);

}  // namespace pet::verify
