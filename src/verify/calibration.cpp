#include "verify/calibration.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "channel/sampled_channel.hpp"
#include "common/ensure.hpp"
#include "core/confidence.hpp"
#include "core/estimator.hpp"
#include "core/robust_estimator.hpp"
#include "core/theory.hpp"
#include "gen2/channel.hpp"
#include "protocols/ezb.hpp"
#include "protocols/fneb.hpp"
#include "protocols/lof.hpp"
#include "protocols/upe.hpp"
#include "rng/prng.hpp"
#include "stats/running_stat.hpp"
#include "tags/population.hpp"

namespace pet::verify {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

chan::SampledChannel make_channel(const CalibrationSpec& spec,
                                  std::uint64_t trial, unsigned tree_height) {
  chan::SampledChannelConfig config;
  config.tree_height = tree_height;
  return chan::SampledChannel(
      spec.n, rng::derive_seed(rng::derive_seed(spec.seed, trial), 0), config);
}

std::uint64_t estimator_seed(const CalibrationSpec& spec, std::uint64_t trial) {
  return rng::derive_seed(rng::derive_seed(spec.seed, trial), 1);
}

/// Shared fold state for the estimator sweeps.  Counters are exact; the
/// running means fold in ascending trial order (TrialRunner contract), so
/// every aggregate is bit-identical at any thread count.
struct Tally {
  std::uint64_t covered = 0;
  std::uint64_t covered_empirical = 0;
  std::uint64_t within = 0;
  std::uint64_t healthy = 0;
  stats::RunningStat accuracy;
  stats::RunningStat depths;

  [[nodiscard]] CalibrationResult finish(const CalibrationSpec& spec,
                                         double oracle_variance) const {
    const double t = static_cast<double>(accuracy.count());
    CalibrationResult result;
    result.trials = accuracy.count();
    result.coverage = static_cast<double>(covered) / t;
    result.empirical_coverage = static_cast<double>(covered_empirical) / t;
    result.accuracy = accuracy.mean();
    result.within_fraction = static_cast<double>(within) / t;
    result.variance_ratio = oracle_variance > 0.0 && depths.count() >= 2
                                ? depths.sample_variance() / oracle_variance
                                : kNaN;
    result.healthy_fraction = static_cast<double>(healthy) / t;
    (void)spec;
    return result;
  }
};

bool within_contract(double n_hat, const CalibrationSpec& spec) {
  const double n = static_cast<double>(spec.n);
  return n_hat >= (1.0 - spec.epsilon) * n && n_hat <= (1.0 + spec.epsilon) * n;
}

}  // namespace

CalibrationResult calibrate_pet(const CalibrationSpec& spec,
                                runtime::TrialRunner& runner) {
  expects(spec.trials >= 2, "calibrate_pet: need at least two trials");
  const core::PetConfig config;  // paper defaults: H = 32, Alg. 3 search
  const core::PetEstimator estimator(config, {spec.epsilon, spec.delta});
  const double n_double = static_cast<double>(spec.n);

  struct Trial {
    double n_hat;
    bool covered;
    bool covered_empirical;
    std::vector<unsigned> depths;
  };

  Tally tally;
  runner.run<Trial>(
      spec.trials,
      [&](std::uint64_t trial) {
        auto channel = make_channel(spec, trial, config.tree_height);
        const auto result = estimator.estimate_with_rounds(
            channel, spec.rounds, estimator_seed(spec, trial));
        Trial out;
        out.n_hat = result.n_hat;
        out.covered =
            core::confidence_interval(result, spec.delta).contains(n_double);
        out.covered_empirical =
            core::empirical_confidence_interval(result, spec.delta)
                .contains(n_double);
        out.depths = result.depths;
        return out;
      },
      [&](std::uint64_t, Trial trial) {
        tally.covered += trial.covered ? 1u : 0u;
        tally.covered_empirical += trial.covered_empirical ? 1u : 0u;
        tally.within += within_contract(trial.n_hat, spec) ? 1u : 0u;
        tally.accuracy.add(trial.n_hat / n_double);
        for (const unsigned d : trial.depths) {
          tally.depths.add(static_cast<double>(d));
        }
      },
      "calibrate:pet");

  const core::DepthDistribution oracle(spec.n, config.tree_height);
  auto result = tally.finish(spec, oracle.stddev() * oracle.stddev());
  result.healthy_fraction = kNaN;
  return result;
}

CalibrationResult calibrate_pet_gen2(const CalibrationSpec& spec,
                                     runtime::TrialRunner& runner) {
  expects(spec.trials >= 2, "calibrate_pet_gen2: need at least two trials");
  const core::PetConfig config;  // preloaded codes: the Gen2-encodable mode
  const core::PetEstimator estimator(config, {spec.epsilon, spec.delta});
  const double n_double = static_cast<double>(spec.n);

  const auto population = tags::TagPopulation::generate(
      spec.n, rng::derive_seed(spec.seed, 0xdecaf));
  const std::vector<TagId> tags(population.ids().begin(),
                                population.ids().end());

  struct Trial {
    double n_hat;
    bool covered;
    bool covered_empirical;
    std::vector<unsigned> depths;
  };

  Tally tally;
  runner.run<Trial>(
      spec.trials,
      [&](std::uint64_t trial) {
        const std::uint64_t trial_seed = rng::derive_seed(spec.seed, trial);
        gen2::Gen2ChannelConfig chan_config;
        chan_config.tree_height = config.tree_height;
        chan_config.manufacturing_seed = rng::derive_seed(trial_seed, 0);
        chan_config.impairments = spec.impairments;
        chan_config.impairments.seed = rng::derive_seed(trial_seed, 2);
        gen2::Gen2PrefixChannel channel(tags, chan_config);
        const auto result = estimator.estimate_with_rounds(
            channel, spec.rounds, rng::derive_seed(trial_seed, 1));
        Trial out;
        out.n_hat = result.n_hat;
        out.covered =
            core::confidence_interval(result, spec.delta).contains(n_double);
        out.covered_empirical =
            core::empirical_confidence_interval(result, spec.delta)
                .contains(n_double);
        out.depths = result.depths;
        return out;
      },
      [&](std::uint64_t, Trial trial) {
        tally.covered += trial.covered ? 1u : 0u;
        tally.covered_empirical += trial.covered_empirical ? 1u : 0u;
        tally.within += within_contract(trial.n_hat, spec) ? 1u : 0u;
        tally.accuracy.add(trial.n_hat / n_double);
        for (const unsigned d : trial.depths) {
          tally.depths.add(static_cast<double>(d));
        }
      },
      "calibrate:pet-gen2");

  const core::DepthDistribution oracle(spec.n, config.tree_height);
  auto result = tally.finish(spec, oracle.stddev() * oracle.stddev());
  result.healthy_fraction = kNaN;
  return result;
}

CalibrationResult calibrate_robust_pet(const CalibrationSpec& spec,
                                       runtime::TrialRunner& runner) {
  expects(spec.trials >= 2, "calibrate_robust_pet: need at least two trials");
  core::RobustPetConfig config;  // trimmed-mean fusion, 2-of-3 voting
  const core::RobustPetEstimator estimator(config,
                                           {spec.epsilon, spec.delta});
  const double n_double = static_cast<double>(spec.n);

  struct Trial {
    double n_hat;
    bool covered;
    bool healthy;
  };

  Tally tally;
  runner.run<Trial>(
      spec.trials,
      [&](std::uint64_t trial) {
        auto channel = make_channel(spec, trial, config.base.tree_height);
        const auto result = estimator.estimate_with_rounds(
            channel, spec.rounds, estimator_seed(spec, trial));
        return Trial{result.n_hat(), result.interval.contains(n_double),
                     result.diagnostic.health == core::ChannelHealth::kHealthy};
      },
      [&](std::uint64_t, Trial trial) {
        tally.covered += trial.covered ? 1u : 0u;
        tally.healthy += trial.healthy ? 1u : 0u;
        tally.within += within_contract(trial.n_hat, spec) ? 1u : 0u;
        tally.accuracy.add(trial.n_hat / n_double);
      },
      "calibrate:robust-pet");

  auto result = tally.finish(spec, 0.0);
  result.empirical_coverage = kNaN;
  return result;
}

namespace {

/// Baselines share one sweep shape: planned-round estimates on the sampled
/// channel, contract + accuracy aggregates, no confidence intervals.
template <typename Estimate>
CalibrationResult calibrate_baseline(const CalibrationSpec& spec,
                                     runtime::TrialRunner& runner,
                                     const std::string& label,
                                     Estimate&& estimate) {
  expects(spec.trials >= 2, "calibrate baseline: need at least two trials");
  const double n_double = static_cast<double>(spec.n);

  Tally tally;
  runner.run<double>(
      spec.trials,
      [&](std::uint64_t trial) {
        auto channel = make_channel(spec, trial, 32);
        return estimate(channel, estimator_seed(spec, trial));
      },
      [&](std::uint64_t, double n_hat) {
        tally.within += within_contract(n_hat, spec) ? 1u : 0u;
        tally.accuracy.add(n_hat / n_double);
      },
      label);

  auto result = tally.finish(spec, 0.0);
  result.coverage = kNaN;
  result.empirical_coverage = kNaN;
  result.healthy_fraction = kNaN;
  return result;
}

}  // namespace

CalibrationResult calibrate_fneb(const CalibrationSpec& spec,
                                 runtime::TrialRunner& runner) {
  const proto::FnebEstimator estimator(proto::FnebConfig{},
                                       {spec.epsilon, spec.delta});
  return calibrate_baseline(
      spec, runner, "calibrate:fneb",
      [&](chan::SampledChannel& channel, std::uint64_t seed) {
        return estimator.estimate(channel, seed).n_hat;
      });
}

CalibrationResult calibrate_lof(const CalibrationSpec& spec,
                                runtime::TrialRunner& runner) {
  const proto::LofEstimator estimator(proto::LofConfig{},
                                      {spec.epsilon, spec.delta});
  return calibrate_baseline(
      spec, runner, "calibrate:lof",
      [&](chan::SampledChannel& channel, std::uint64_t seed) {
        return estimator.estimate(channel, seed).n_hat;
      });
}

CalibrationResult calibrate_upe(const CalibrationSpec& spec,
                                runtime::TrialRunner& runner) {
  proto::UpeConfig config;
  // UPE needs a magnitude prior to pick its persistence (the drawback PET
  // removes); calibration grants it the true value, as its authors assume.
  config.expected_n = static_cast<double>(spec.n);
  const proto::UpeEstimator estimator(config, {spec.epsilon, spec.delta});
  return calibrate_baseline(
      spec, runner, "calibrate:upe",
      [&](chan::SampledChannel& channel, std::uint64_t seed) {
        return estimator.estimate(channel, seed).n_hat;
      });
}

CalibrationResult calibrate_ezb(const CalibrationSpec& spec,
                                runtime::TrialRunner& runner) {
  const proto::EzbEstimator estimator(proto::EzbConfig{},
                                      {spec.epsilon, spec.delta});
  return calibrate_baseline(
      spec, runner, "calibrate:ezb",
      [&](chan::SampledChannel& channel, std::uint64_t seed) {
        return estimator.estimate(channel, seed).n_hat;
      });
}

}  // namespace pet::verify
