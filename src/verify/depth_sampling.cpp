#include "verify/depth_sampling.hpp"

#include <memory>
#include <vector>

#include "channel/device_channel.hpp"
#include "channel/exact_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "common/ensure.hpp"
#include "core/estimator.hpp"
#include "gen2/channel.hpp"
#include "rng/prng.hpp"
#include "tags/population.hpp"

namespace pet::verify {

const char* to_string(DepthBackend backend) noexcept {
  switch (backend) {
    case DepthBackend::kSampled: return "sampled";
    case DepthBackend::kExactRehash: return "exact-rehash";
    case DepthBackend::kExactPreloaded: return "exact-preloaded";
    case DepthBackend::kSortedPreloaded: return "sorted-preloaded";
    case DepthBackend::kDeviceRehash: return "device-rehash";
    case DepthBackend::kDevicePreloaded: return "device-preloaded";
    case DepthBackend::kGen2Preloaded: return "gen2-preloaded";
  }
  return "unknown";
}

namespace {

bool is_preloaded(DepthBackend backend) noexcept {
  return backend == DepthBackend::kExactPreloaded ||
         backend == DepthBackend::kSortedPreloaded ||
         backend == DepthBackend::kDevicePreloaded ||
         backend == DepthBackend::kGen2Preloaded;
}

std::unique_ptr<chan::PrefixChannel> make_channel(
    const DepthSampleSpec& spec, const std::vector<TagId>& tags,
    std::uint64_t trial_seed) {
  const std::uint64_t manufacturing = rng::derive_seed(trial_seed, 0);
  switch (spec.backend) {
    case DepthBackend::kSampled: {
      chan::SampledChannelConfig config;
      config.tree_height = spec.tree_height;
      return std::make_unique<chan::SampledChannel>(spec.n, manufacturing,
                                                    config);
    }
    case DepthBackend::kExactRehash:
    case DepthBackend::kExactPreloaded: {
      chan::ExactChannelConfig config;
      config.tree_height = spec.tree_height;
      config.preloaded_codes = spec.backend == DepthBackend::kExactPreloaded;
      config.manufacturing_seed = manufacturing;
      return std::make_unique<chan::ExactChannel>(tags, config);
    }
    case DepthBackend::kSortedPreloaded: {
      chan::SortedPetChannelConfig config;
      config.tree_height = spec.tree_height;
      config.manufacturing_seed = manufacturing;
      return std::make_unique<chan::SortedPetChannel>(tags, config);
    }
    case DepthBackend::kDeviceRehash:
    case DepthBackend::kDevicePreloaded: {
      chan::DeviceChannelConfig config;
      config.tree_height = spec.tree_height;
      config.pet_mode = spec.backend == DepthBackend::kDevicePreloaded
                            ? sim::PetTagDevice::CodeMode::kPreloaded
                            : sim::PetTagDevice::CodeMode::kPerRound;
      config.manufacturing_seed = manufacturing;
      config.impairments = spec.impairments;
      // Fault replay must be trial-indexed: each trial owns an independent
      // impairment stream derived from its trial seed alone.
      config.impairments.seed = rng::derive_seed(trial_seed, 2);
      return std::make_unique<chan::DeviceChannel>(tags, chan::DeviceKind::kPet,
                                                   config);
    }
    case DepthBackend::kGen2Preloaded: {
      gen2::Gen2ChannelConfig config;
      config.tree_height = spec.tree_height;
      config.manufacturing_seed = manufacturing;
      config.impairments = spec.impairments;
      // Same trial-indexed fault-replay contract as the device backends.
      config.impairments.seed = rng::derive_seed(trial_seed, 2);
      return std::make_unique<gen2::Gen2PrefixChannel>(tags, config);
    }
  }
  invariant(false, "collect_depths: unhandled backend");
  return nullptr;
}

}  // namespace

DepthCounts collect_depths(const DepthSampleSpec& spec,
                           runtime::TrialRunner& runner) {
  expects(spec.trials >= 1, "collect_depths: need at least one trial");
  expects(spec.rounds_per_trial >= 1,
          "collect_depths: need at least one round per trial");
  expects(!is_preloaded(spec.backend) || spec.rounds_per_trial == 1,
          "collect_depths: preloaded backends share codes across rounds — "
          "use rounds_per_trial = 1 for independent samples");

  core::PetConfig pet_config;
  pet_config.tree_height = spec.tree_height;
  pet_config.search = core::SearchMode::kBinaryStrict;
  pet_config.tags_rehash = !is_preloaded(spec.backend);
  // Requirement is irrelevant (explicit round counts below); any valid one.
  const core::PetEstimator estimator(pet_config, {0.5, 0.5});

  std::vector<TagId> tags;
  if (spec.backend != DepthBackend::kSampled) {
    const auto population = tags::TagPopulation::generate(
        spec.n, rng::derive_seed(spec.seed, 0xdecaf));
    tags.assign(population.ids().begin(), population.ids().end());
  }

  DepthCounts pooled(spec.tree_height + 1, 0);
  runner.run<DepthCounts>(
      spec.trials,
      [&](std::uint64_t trial) {
        const std::uint64_t trial_seed = rng::derive_seed(spec.seed, trial);
        const auto channel = make_channel(spec, tags, trial_seed);
        const auto result = estimator.estimate_with_rounds(
            *channel, spec.rounds_per_trial, rng::derive_seed(trial_seed, 1));
        DepthCounts counts(spec.tree_height + 1, 0);
        for (const unsigned d : result.depths) ++counts[d];
        return counts;
      },
      [&](std::uint64_t, DepthCounts counts) {
        for (std::size_t k = 0; k < pooled.size(); ++k) pooled[k] += counts[k];
      },
      std::string("depths:") + to_string(spec.backend));
  return pooled;
}

}  // namespace pet::verify
