#include "verify/conformance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/radix.hpp"
#include "common/simd.hpp"
#include "core/constants.hpp"
#include "core/theory.hpp"
#include "rng/hash_family.hpp"
#include "rng/prng.hpp"
#include "tags/population.hpp"
#include "verify/calibration.hpp"
#include "verify/depth_sampling.hpp"
#include "verify/gof.hpp"

namespace pet::verify {

namespace {

/// Number of individual GoF hypothesis tests in the registry (6 clean
/// backends + 4 fault scenarios + 2 gen2 impairment scenarios, chi-square
/// and KS each).  The Bonferroni adjustment uses this fixed count so
/// thresholds do not depend on the --filter selection.
constexpr std::size_t kGofTestCount = 24;

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

struct Context {
  const ConformanceOptions& options;
  runtime::TrialRunner& runner;
  double gof_alpha = 0.0;  ///< Bonferroni-adjusted per-test level

  [[nodiscard]] std::uint64_t check_seed(std::uint64_t salt) const {
    return rng::derive_seed(options.seed, 0xc04f0000ULL + salt);
  }
  [[nodiscard]] std::uint64_t scaled(std::uint64_t full,
                                     std::uint64_t quick) const {
    return options.quick ? quick : full;
  }
};

// ---------------------------------------------------------------- theory --

/// Closed-form identities of core/theory, checked without any sampling.
CheckResult check_theory(const Context&) {
  CheckResult result;
  result.name = "theory/self-consistency";
  std::string errors;

  const struct { std::uint64_t n; unsigned height; } cases[] = {
      {1, 8}, {100, 16}, {20000, 32}};
  for (const auto& c : cases) {
    const core::DepthDistribution dist(c.n, c.height);
    double total = 0.0;
    double mean = 0.0;
    for (unsigned k = 0; k <= c.height; ++k) {
      const double p = dist.pmf(k);
      total += p;
      mean += k * p;
      const double lower = k == 0 ? 0.0 : dist.cdf(k - 1);
      if (std::fabs(dist.cdf(k) - lower - p) > 1e-9) {
        errors += fmt(" pmf/cdf mismatch at n=%llu k=%u;",
                      static_cast<unsigned long long>(c.n), k);
        break;
      }
    }
    if (std::fabs(total - 1.0) > 1e-9) {
      errors += fmt(" pmf sums to %.12f at n=%llu;", total,
                    static_cast<unsigned long long>(c.n));
    }
    if (std::fabs(mean - dist.mean()) > 1e-9) {
      errors += fmt(" mean() %.9f != sum k*pmf %.9f at n=%llu;", dist.mean(),
                    mean, static_cast<unsigned long long>(c.n));
    }
    // Independent recomputation of the survival law, Eq. (5):
    //   P(d >= k) = 1 - (1 - 2^-k)^n  ==>  cdf(k-1) = (1 - 2^-k)^n.
    for (unsigned k = 1; k <= c.height; ++k) {
      const double survival =
          std::pow(1.0 - std::exp2(-static_cast<double>(k)),
                   static_cast<double>(c.n));
      if (std::fabs(dist.cdf(k - 1) - survival) > 1e-9) {
        errors += fmt(" Eq.5 survival mismatch at n=%llu k=%u;",
                      static_cast<unsigned long long>(c.n), k);
        break;
      }
    }
  }

  // The estimator read-out must invert the asymptotic mean-depth law.
  const double n_back =
      core::estimate_from_mean_depth(std::log2(core::kPhi * 1234.0));
  if (std::fabs(n_back - 1234.0) > 1e-6) {
    errors += fmt(" estimate_from_mean_depth inversion gives %.6f;", n_back);
  }
  // Asymptotic mean depth tracks the exact mean (small periodic wobble).
  const core::DepthDistribution big(20000, 32);
  const double drift = std::fabs(core::asymptotic_mean_depth(20000.0) -
                                 big.mean());
  if (drift > 0.05) {
    errors += fmt(" asymptotic mean depth off by %.4f;", drift);
  }
  // Eq. (6) (paper's approximation) agrees with the exact H - E(d).
  const double eq6 = core::expected_gray_height_eq6(20000, 32);
  const double eq6_drift = std::fabs(eq6 - (32.0 - big.mean()));
  if (eq6_drift > 0.02) {
    errors += fmt(" Eq.6 vs exact gray height off by %.4f;", eq6_drift);
  }

  result.passed = errors.empty();
  result.detail = errors.empty()
                      ? fmt("identities hold; asymptotic drift %.4f, "
                            "Eq.6 drift %.4f", drift, eq6_drift)
                      : errors;
  return result;
}

// ----------------------------------------------------------------- build --

/// Deterministic byte-identity of the construction fast path: the SIMD
/// batch hash + parallel MSB radix partition must reproduce the scalar
/// serial build and the element-wise uniform_code oracle exactly.  Not a
/// hypothesis test (no sampling distribution), so it stays outside the
/// kGofTestCount Bonferroni family.
CheckResult check_build_identity(const Context& ctx) {
  CheckResult result;
  result.name = "build/simd-parallel-identity";
  std::string errors;

  // Deterministic in-caller executor: exercises the parallel partition's
  // chunking and merge order without depending on thread scheduling.
  class InlineParallelFor final : public ParallelFor {
   public:
    [[nodiscard]] unsigned workers() const noexcept override { return 4; }
    void run(std::size_t n,
             const std::function<void(unsigned, std::size_t, std::size_t)>&
                 fn) override {
      for (unsigned w = 0; w < 4; ++w) {
        const std::size_t lo = chunk_begin(n, 4, w);
        const std::size_t hi = chunk_begin(n, 4, w + 1);
        if (lo < hi) fn(w, lo, hi);
      }
    }
  } executor;

  const SimdTier restore = simd_tier();
  const std::uint64_t n = ctx.scaled(200000, 30000);
  const auto population =
      tags::TagPopulation::generate(n, ctx.check_seed(40));
  const std::uint64_t seed = ctx.check_seed(41);

  for (const unsigned height : {13u, 32u, 64u}) {
    // Element-wise oracle, sorted by the standard library.
    std::vector<std::uint64_t> oracle;
    oracle.reserve(n);
    for (const TagId id : population.ids()) {
      oracle.push_back(
          rng::uniform_code(rng::HashKind::kMix64, seed, id, height).value());
    }
    std::sort(oracle.begin(), oracle.end());

    set_simd(false);
    std::vector<std::uint64_t> scalar_codes;
    rng::uniform_code_batch(rng::HashKind::kMix64, seed, population.ids(),
                            height, scalar_codes);
    std::vector<std::uint64_t> scratch;
    radix_sort_u64(scalar_codes, scratch, height);

    set_simd(true);
    std::vector<std::uint64_t> simd_codes;
    rng::uniform_code_batch(rng::HashKind::kMix64, seed, population.ids(),
                            height, simd_codes);
    RadixPartitionStats stats;
    radix_sort_u64_parallel(simd_codes, scratch, height, &executor, &stats);

    if (scalar_codes != oracle) {
      errors += fmt(" scalar batch diverges from oracle at H=%u;", height);
    }
    if (simd_codes != oracle) {
      errors += fmt(" simd/parallel build diverges from oracle at H=%u "
                    "(tier %s, %u partition workers);",
                    height, to_string(simd_tier()).data(), stats.workers);
    }
  }
  set_simd(restore);

  result.passed = errors.empty();
  result.detail =
      errors.empty()
          ? fmt("sorted codes byte-identical (oracle/scalar/%s+parallel) "
                "at n=%llu, H in {13,32,64}",
                to_string(simd_tier()).data(),
                static_cast<unsigned long long>(n))
          : errors;
  return result;
}

// ------------------------------------------------------------------- GoF --

/// Shared body of every GoF check: sample depths under `spec`, test against
/// the exact oracle, and demand match (clean) or mismatch (fault-injected).
CheckResult gof_check(const Context& ctx, std::string name,
                      DepthSampleSpec spec, bool expect_match) {
  CheckResult result;
  result.name = std::move(name);
  const auto counts = collect_depths(spec, ctx.runner);
  const core::DepthDistribution theory(spec.n, spec.tree_height);
  const auto chi = chi_square_depth_gof(counts, theory, ctx.gof_alpha);
  const auto ks = ks_depth_gof(counts, theory, ctx.gof_alpha);

  result.passed = expect_match ? (!chi.reject() && !ks.reject())
                               : (chi.reject() && ks.reject());
  result.detail = fmt(
      "N=%llu chi2=%.2f (crit %.2f, dof %u, %s) ks=%.4f (crit %.4f, %s); "
      "expected %s",
      static_cast<unsigned long long>(chi.samples), chi.statistic,
      chi.threshold, chi.dof, chi.reject() ? "reject" : "accept",
      ks.statistic, ks.threshold, ks.reject() ? "reject" : "accept",
      expect_match ? "match" : "mismatch");
  return result;
}

DepthSampleSpec clean_spec(const Context& ctx, DepthBackend backend,
                           std::uint64_t salt) {
  DepthSampleSpec spec;
  spec.backend = backend;
  spec.seed = ctx.check_seed(salt);
  switch (backend) {
    case DepthBackend::kSampled:
      spec.n = 10000;
      spec.tree_height = 32;
      spec.trials = ctx.scaled(200, 50);
      spec.rounds_per_trial = 50;
      break;
    case DepthBackend::kExactRehash:
      spec.n = 2048;
      spec.tree_height = 32;
      spec.trials = ctx.scaled(100, 25);
      spec.rounds_per_trial = 40;
      break;
    case DepthBackend::kExactPreloaded:
    case DepthBackend::kSortedPreloaded:
    case DepthBackend::kGen2Preloaded:
      // Preloaded codes are shared across rounds: independent samples need
      // fresh manufacturing seeds, hence one round per trial.
      spec.n = 1024;
      spec.tree_height = 32;
      spec.trials = ctx.scaled(3000, 800);
      spec.rounds_per_trial = 1;
      break;
    case DepthBackend::kDeviceRehash:
    case DepthBackend::kDevicePreloaded:
      spec.n = 64;
      spec.tree_height = 16;
      spec.trials = ctx.scaled(400, 100);
      spec.rounds_per_trial = 20;
      break;
  }
  return spec;
}

/// Fault scenarios run the full simulator at a small population so the
/// injected impairments dominate the law, not the tails.
DepthSampleSpec fault_spec(const Context& ctx, std::uint64_t salt) {
  DepthSampleSpec spec;
  spec.backend = DepthBackend::kDeviceRehash;
  spec.n = 64;
  spec.tree_height = 16;
  spec.trials = ctx.scaled(200, 60);
  spec.rounds_per_trial = 20;
  spec.seed = ctx.check_seed(salt);
  return spec;
}

// ----------------------------------------------------------- calibration --

struct Band {
  const char* metric;
  double value;
  double lo;
  double hi;
};

CheckResult band_check(std::string name, const CalibrationResult& cal,
                       std::initializer_list<Band> bands) {
  CheckResult result;
  result.name = std::move(name);
  result.passed = true;
  result.detail = fmt("trials=%llu",
                      static_cast<unsigned long long>(cal.trials));
  for (const Band& band : bands) {
    const bool ok = band.value >= band.lo && band.value <= band.hi;
    if (!ok) result.passed = false;
    result.detail += fmt(" %s=%.4f%s[%.3f,%.3f]", band.metric, band.value,
                         ok ? " in " : " OUT ", band.lo, band.hi);
  }
  return result;
}

CalibrationSpec calibration_spec(const Context& ctx, std::uint64_t salt,
                                 std::uint64_t n) {
  CalibrationSpec spec;
  spec.n = n;
  spec.trials = ctx.scaled(400, 150);
  spec.rounds = 64;
  spec.seed = ctx.check_seed(salt);
  return spec;
}

// ---------------------------------------------------------------- registry --

struct Check {
  std::string name;
  std::function<CheckResult()> run;
};

std::vector<Check> build_registry(const Context& ctx) {
  std::vector<Check> checks;
  auto add = [&](std::string name, std::function<CheckResult()> run) {
    checks.push_back({std::move(name), std::move(run)});
  };

  add("theory/self-consistency", [&ctx] { return check_theory(ctx); });
  add("build/simd-parallel-identity",
      [&ctx] { return check_build_identity(ctx); });

  // Clean GoF: the estimating-tree law must hold on every backend.
  const std::pair<const char*, DepthBackend> clean[] = {
      {"gof/sampled-clean", DepthBackend::kSampled},
      {"gof/exact-rehash-clean", DepthBackend::kExactRehash},
      {"gof/exact-preloaded-clean", DepthBackend::kExactPreloaded},
      {"gof/sorted-preloaded-clean", DepthBackend::kSortedPreloaded},
      {"gof/device-rehash-clean", DepthBackend::kDeviceRehash},
      {"gof/gen2-clean", DepthBackend::kGen2Preloaded},
  };
  std::uint64_t salt = 1;
  for (const auto& [name, backend] : clean) {
    const std::uint64_t s = salt++;
    add(name, [&ctx, name = std::string(name), backend, s] {
      return gof_check(ctx, name, clean_spec(ctx, backend, s), true);
    });
  }

  // Fault-injected GoF: theory predicts the clean law must break.
  add("gof/device-loss-breaks", [&ctx] {
    auto spec = fault_spec(ctx, 10);
    spec.impairments.reply_loss_prob = 0.3;  // frontier replies vanish
    return gof_check(ctx, "gof/device-loss-breaks", spec, false);
  });
  add("gof/device-burst-breaks", [&ctx] {
    auto spec = fault_spec(ctx, 11);
    spec.impairments.burst.p_good_to_bad = 0.1;
    spec.impairments.burst.p_bad_to_good = 0.2;  // ~1/3 of slots in bursts
    spec.impairments.burst.loss_bad = 1.0;
    return gof_check(ctx, "gof/device-burst-breaks", spec, false);
  });
  add("gof/device-noise-breaks", [&ctx] {
    auto spec = fault_spec(ctx, 12);
    spec.impairments.noise_transient.p_start = 0.15;
    spec.impairments.noise_transient.p_stop = 0.25;
    spec.impairments.noise_transient.noisy_false_busy_prob = 0.6;
    return gof_check(ctx, "gof/device-noise-breaks", spec, false);
  });
  add("gof/device-outage-breaks", [&ctx] {
    auto spec = fault_spec(ctx, 13);
    spec.rounds_per_trial = 16;
    // Reader dark for the first ~half of each trial's probe slots: those
    // rounds read idle paths and report impossibly shallow depths.
    spec.impairments.script.outages.push_back(sim::ReaderOutage{0, 40});
    return gof_check(ctx, "gof/device-outage-breaks", spec, false);
  });

  // Gen2 impairment GoF.  PET's probes only sense busy vs idle, and the
  // capture effect turns collisions into decodable singletons — busy
  // either way — so even certain capture must leave the depth law intact
  // (the positive control).  Imperfect idle detection flips the verdict
  // itself, so noise must break the law (the negative control).
  add("gof/gen2-capture-invariant", [&ctx] {
    auto spec = clean_spec(ctx, DepthBackend::kGen2Preloaded, 14);
    spec.impairments.capture.capture_prob = 1.0;
    spec.impairments.capture.extra_decay = 1.0;
    return gof_check(ctx, "gof/gen2-capture-invariant", spec, true);
  });
  add("gof/gen2-noise-breaks", [&ctx] {
    auto spec = clean_spec(ctx, DepthBackend::kGen2Preloaded, 15);
    spec.impairments.false_busy_prob = 0.25;
    return gof_check(ctx, "gof/gen2-noise-breaks", spec, false);
  });

  // Estimator calibration: the paper's interval/accuracy promises.
  add("calibration/pet", [&ctx] {
    const auto spec = calibration_spec(ctx, 20, 20000);
    const auto cal = calibrate_pet(spec, ctx.runner);
    return band_check("calibration/pet", cal,
                      {{"coverage", cal.coverage, 0.91, 0.995},
                       {"emp_coverage", cal.empirical_coverage, 0.90, 0.995},
                       {"accuracy", cal.accuracy, 0.97, 1.06},
                       {"var_ratio", cal.variance_ratio, 0.85, 1.15}});
  });
  add("calibration/pet-gen2", [&ctx] {
    const auto spec = calibration_spec(ctx, 26, 10000);
    const auto cal = calibrate_pet_gen2(spec, ctx.runner);
    return band_check("calibration/pet-gen2", cal,
                      {{"coverage", cal.coverage, 0.91, 0.995},
                       {"emp_coverage", cal.empirical_coverage, 0.90, 0.995},
                       {"accuracy", cal.accuracy, 0.97, 1.06},
                       {"var_ratio", cal.variance_ratio, 0.85, 1.15}});
  });
  add("calibration/robust-pet", [&ctx] {
    const auto spec = calibration_spec(ctx, 21, 20000);
    const auto cal = calibrate_robust_pet(spec, ctx.runner);
    return band_check("calibration/robust-pet", cal,
                      {{"coverage", cal.coverage, 0.91, 1.0},
                       {"accuracy", cal.accuracy, 0.97, 1.06},
                       {"healthy", cal.healthy_fraction, 0.95, 1.0}});
  });
  const std::pair<const char*,
                  CalibrationResult (*)(const CalibrationSpec&,
                                        runtime::TrialRunner&)>
      baselines[] = {
          {"calibration/fneb", &calibrate_fneb},
          {"calibration/lof", &calibrate_lof},
          {"calibration/upe", &calibrate_upe},
          {"calibration/ezb", &calibrate_ezb},
      };
  std::uint64_t cal_salt = 22;
  for (const auto& [name, fn] : baselines) {
    const std::uint64_t s = cal_salt++;
    add(name, [&ctx, name = std::string(name), fn, s] {
      const auto spec = calibration_spec(ctx, s, 10000);
      const auto cal = fn(spec, ctx.runner);
      return band_check(name, cal,
                        {{"accuracy", cal.accuracy, 0.90, 1.10},
                         {"within", cal.within_fraction, 0.85, 1.0}});
    });
  }

  return checks;
}

}  // namespace

std::vector<std::string> conformance_check_names() {
  ConformanceOptions options;
  runtime::TrialRunner runner(1);
  Context ctx{options, runner, 0.0};
  std::vector<std::string> names;
  for (const auto& check : build_registry(ctx)) names.push_back(check.name);
  return names;
}

ConformanceReport run_conformance(const ConformanceOptions& options,
                                  runtime::TrialRunner& runner) {
  Context ctx{options, runner,
              bonferroni_alpha(options.family_alpha, kGofTestCount)};
  ConformanceReport report;
  for (const auto& check : build_registry(ctx)) {
    if (!options.filter.empty() &&
        check.name.find(options.filter) == std::string::npos) {
      continue;
    }
    try {
      report.checks.push_back(check.run());
    } catch (const std::exception& err) {
      report.checks.push_back(
          {check.name, false, std::string("exception: ") + err.what()});
    }
  }
  return report;
}

}  // namespace pet::verify
