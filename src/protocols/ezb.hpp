// EZB-style estimator — "Anonymous Tracking Using RFID Tags" (Kodialam,
// Nandagopal & Lau, INFOCOM 2007): the Enhanced Zero-Based estimator of the
// paper's related work, which the paper credits with anonymous estimation of
// relatively larger tag sets.
//
// Like USE's zero estimator, but robust to an unknown magnitude: rounds
// sweep the persistence probability over a geometric ladder p_k = 2^-k, and
// the estimate fuses only the informative frames (those whose observed load
// is in a trusted band) by maximum-likelihood matching of the expected idle
// fraction.
#pragma once

#include <cstdint>

#include "channel/channel.hpp"
#include "core/estimator.hpp"
#include "stats/accuracy.hpp"

namespace pet::proto {

struct EzbConfig {
  std::uint64_t frame_size = 512;
  unsigned persistence_ladder = 24;  ///< p_k = 2^-k, k = 0..ladder-1
  /// A frame is informative if its idle fraction lies inside this band
  /// (extreme frames carry almost no information about n).
  double min_idle_fraction = 0.05;
  double max_idle_fraction = 0.95;
  unsigned begin_bits = 32;
  unsigned poll_bits = 1;

  void validate() const;
};

class EzbEstimator {
 public:
  EzbEstimator(EzbConfig config, stats::AccuracyRequirement requirement);

  /// Repetitions of the full persistence ladder.
  [[nodiscard]] std::uint64_t planned_sweeps() const noexcept {
    return planned_sweeps_;
  }

  [[nodiscard]] const EzbConfig& config() const noexcept { return config_; }

  [[nodiscard]] core::EstimateResult estimate(chan::FrameChannel& channel,
                                              std::uint64_t seed) const;
  [[nodiscard]] core::EstimateResult estimate_with_sweeps(
      chan::FrameChannel& channel, std::uint64_t sweeps,
      std::uint64_t seed) const;

 private:
  EzbConfig config_;
  stats::AccuracyRequirement requirement_;
  std::uint64_t planned_sweeps_;
};

}  // namespace pet::proto
