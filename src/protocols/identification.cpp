#include "protocols/identification.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include "common/bitcode.hpp"
#include "common/ensure.hpp"
#include "gen2/inventory.hpp"
#include "rng/hash_family.hpp"
#include "rng/prng.hpp"
#include "sim/devices.hpp"
#include "sim/simulator.hpp"

namespace pet::proto {

namespace {

std::uint64_t next_dfsa_frame(const DfsaConfig& config,
                              std::uint64_t collisions) {
  const auto target = static_cast<std::uint64_t>(
      std::llround(config.frame_factor * static_cast<double>(collisions)));
  return std::clamp(std::max<std::uint64_t>(target, 1),
                    config.min_frame_size, config.max_frame_size);
}

}  // namespace

IdentificationResult identify_dfsa(std::span<const TagId> tags,
                                   const DfsaConfig& config,
                                   std::uint64_t seed) {
  sim::Simulator simulator;
  sim::Medium medium;
  std::vector<std::unique_ptr<sim::AlohaTagDevice>> devices;
  devices.reserve(tags.size());
  for (const TagId id : tags) {
    devices.push_back(std::make_unique<sim::AlohaTagDevice>(
        id, config.hash, /*transmit_id=*/true));
    medium.attach(devices.back().get());
  }

  IdentificationResult result;
  std::uint64_t frame = config.initial_frame_size;
  std::uint64_t stalled = 0;
  while (result.identified < tags.size() &&
         result.frames < config.max_frames &&
         stalled < config.max_stalled_frames) {
    const std::uint64_t frame_seed = rng::derive_seed(seed, result.frames);
    medium.broadcast(sim::FrameBeginCmd{frame_seed, frame, 1.0,
                                        config.begin_bits},
                     simulator);
    std::uint64_t collisions = 0;
    std::uint64_t found = 0;
    for (std::uint64_t slot = 1; slot <= frame; ++slot) {
      const auto obs = medium.run_slot(
          sim::SlotPollCmd{slot, config.poll_bits}, simulator);
      if (obs.outcome == SlotOutcome::kSingleton) {
        invariant(obs.decoded.has_value(), "singleton without decode");
        medium.broadcast(sim::AckCmd{obs.decoded->payload, config.ack_bits},
                         simulator);
        ++found;
      } else if (obs.outcome == SlotOutcome::kCollision) {
        ++collisions;
      }
    }
    result.identified += found;
    stalled = found == 0 ? stalled + 1 : 0;
    ++result.frames;
    frame = next_dfsa_frame(config, collisions);
  }
  result.ledger = medium.ledger();
  return result;
}

IdentificationResult identify_dfsa_sampled(std::uint64_t n,
                                           const DfsaConfig& config,
                                           std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  IdentificationResult result;
  std::uint64_t remaining = n;
  std::uint64_t frame = config.initial_frame_size;
  std::uint64_t stalled = 0;

  while (remaining > 0 && result.frames < config.max_frames &&
         stalled < config.max_stalled_frames) {
    const std::uint64_t before = remaining;
    // Exact multinomial occupancy by sequential binomial splitting.
    std::uint64_t not_placed = remaining;
    std::uint64_t collisions = 0;
    for (std::uint64_t slot = 0; slot < frame; ++slot) {
      std::uint64_t count = 0;
      if (not_placed > 0) {
        const double q = 1.0 / static_cast<double>(frame - slot);
        std::binomial_distribution<std::uint64_t> draw(not_placed, q);
        count = draw(gen);
      }
      not_placed -= count;
      if (count == 0) {
        ++result.ledger.idle_slots;
      } else if (count == 1) {
        ++result.ledger.singleton_slots;
        ++result.identified;
        --remaining;
        result.ledger.reader_bits += config.ack_bits;
      } else {
        ++result.ledger.collision_slots;
        ++collisions;
      }
      result.ledger.reader_bits += config.poll_bits;
    }
    result.ledger.reader_bits += config.begin_bits;
    stalled = remaining == before ? stalled + 1 : 0;
    ++result.frames;
    frame = next_dfsa_frame(config, collisions);
  }
  return result;
}

IdentificationResult identify_splitting(std::span<const TagId> tags,
                                        const SplittingConfig& config,
                                        std::uint64_t seed) {
  sim::Simulator simulator;
  sim::Medium medium;
  std::vector<std::unique_ptr<sim::SplittingTagDevice>> devices;
  devices.reserve(tags.size());
  for (const TagId id : tags) {
    devices.push_back(
        std::make_unique<sim::SplittingTagDevice>(id, config.hash));
    medium.attach(devices.back().get());
  }

  IdentificationResult result;
  // The reader mirrors the tags' implicit stack: `pending` unresolved
  // groups remain; idle/success pops one, collision pushes one net.
  std::uint64_t pending = 1;
  std::uint64_t slots = 0;
  while (pending > 0 && slots < config.max_slots) {
    const auto obs = medium.run_slot(
        sim::SplitQueryCmd{seed, config.query_bits}, simulator);
    ++slots;
    if (obs.outcome == SlotOutcome::kSingleton) {
      invariant(obs.decoded.has_value(), "singleton without decode");
      medium.broadcast(sim::AckCmd{obs.decoded->payload, config.ack_bits},
                       simulator);
      ++result.identified;
    }
    medium.broadcast(sim::SplitFeedbackCmd{obs.outcome, config.feedback_bits},
                     simulator);
    if (obs.outcome == SlotOutcome::kCollision) {
      ++pending;
    } else {
      --pending;
    }
  }
  result.ledger = medium.ledger();
  return result;
}

IdentificationResult identify_splitting_sampled(std::uint64_t n,
                                                const SplittingConfig& config,
                                                std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  IdentificationResult result;

  // Stack of unresolved group sizes; coin flips are fresh at every
  // collision, so splits are Binomial(k, 1/2) without a depth cap.
  std::vector<std::uint64_t> pending;
  pending.push_back(n);
  std::uint64_t slots = 0;
  while (!pending.empty() && slots < config.max_slots) {
    const std::uint64_t k = pending.back();
    pending.pop_back();
    ++slots;
    result.ledger.reader_bits += config.query_bits + config.feedback_bits;
    if (k == 0) {
      ++result.ledger.idle_slots;
    } else if (k == 1) {
      ++result.ledger.singleton_slots;
      ++result.identified;
      result.ledger.reader_bits += config.ack_bits;
    } else {
      ++result.ledger.collision_slots;
      std::binomial_distribution<std::uint64_t> split(k, 0.5);
      const std::uint64_t heads = split(gen);
      pending.push_back(k - heads);  // tails resolve after the heads group
      pending.push_back(heads);
    }
  }
  return result;
}

IdentificationResult identify_treewalk(std::span<const TagId> tags,
                                       const TreeWalkConfig& config) {
  sim::Simulator simulator;
  sim::Medium medium;
  std::vector<std::unique_ptr<sim::TreeWalkTagDevice>> devices;
  devices.reserve(tags.size());
  for (const TagId id : tags) {
    devices.push_back(
        std::make_unique<sim::TreeWalkTagDevice>(id, config.hash));
    medium.attach(devices.back().get());
  }

  IdentificationResult result;
  std::vector<BitCode> pending;
  pending.push_back(BitCode{});  // root: every tag matches
  while (!pending.empty()) {
    const BitCode prefix = pending.back();
    pending.pop_back();
    const auto obs = medium.run_slot(
        sim::IdPrefixQueryCmd{prefix, config.query_bits}, simulator);
    if (obs.outcome == SlotOutcome::kSingleton) {
      invariant(obs.decoded.has_value(), "singleton without decode");
      medium.broadcast(sim::AckCmd{obs.decoded->payload, config.ack_bits},
                       simulator);
      ++result.identified;
    } else if (obs.outcome == SlotOutcome::kCollision) {
      invariant(prefix.width() < config.id_bits,
                "collision below leaf level implies duplicate tag IDs");
      pending.push_back(prefix.extended(false));
      pending.push_back(prefix.extended(true));
    }
  }
  result.ledger = medium.ledger();
  return result;
}

IdentificationResult identify_gen2(std::uint64_t n,
                                   const Gen2DfsaOptions& options,
                                   std::uint64_t seed) {
  gen2::Gen2MacConfig mac_config;
  mac_config.link = options.link;
  mac_config.impairments.seed = options.impairment_seed;
  mac_config.impairments.capture.capture_prob = options.capture_prob;
  mac_config.impairments.reply_loss_prob = options.reply_loss_prob;
  gen2::Gen2Mac mac(mac_config);

  std::vector<gen2::Gen2Tag> tags;
  tags.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    tags.emplace_back(
        rng::uniform_code(rng::HashKind::kMix64, seed, i, 32));
  }

  gen2::Gen2InventoryConfig inv_config;
  if (options.dfa_backlog) {
    inv_config.qpolicy.kind = gen2::QPolicyKind::kDfaBacklog;
  }
  gen2::Gen2Inventory inventory(mac, inv_config);
  const auto round = inventory.run(tags, rng::derive_seed(seed, 1));

  IdentificationResult result;
  result.identified = round.identified;
  result.frames = round.frames;
  result.ledger = round.ledger;
  return result;
}

IdentificationResult identify_treewalk_sampled(std::uint64_t n,
                                               const TreeWalkConfig& config,
                                               std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  IdentificationResult result;

  // Each stack entry is the number of tags under a pending tree node (their
  // identities are irrelevant: uniform IDs split Binomial(k, 1/2)).
  struct Node {
    std::uint64_t count;
    unsigned depth;
  };
  std::vector<Node> pending;
  pending.push_back({n, 0});
  while (!pending.empty()) {
    const Node node = pending.back();
    pending.pop_back();
    result.ledger.reader_bits += config.query_bits;
    if (node.count == 0) {
      ++result.ledger.idle_slots;
    } else if (node.count == 1) {
      ++result.ledger.singleton_slots;
      ++result.identified;
      result.ledger.reader_bits += config.ack_bits;
    } else {
      ++result.ledger.collision_slots;
      invariant(node.depth < config.id_bits,
                "collision below leaf level implies duplicate tag IDs");
      std::binomial_distribution<std::uint64_t> split(node.count, 0.5);
      const std::uint64_t left = split(gen);
      pending.push_back({left, node.depth + 1});
      pending.push_back({node.count - left, node.depth + 1});
    }
  }
  return result;
}

}  // namespace pet::proto
