// Identification baselines: the exact-counting alternatives the paper's
// introduction argues do not scale (Sections 1-2).
//
//  * Dynamic framed slotted ALOHA (DFSA) with Schoute frame adaptation —
//    the EPC C1G2-style Aloha family [26], [28];
//  * Binary tree walking (Capetanakis) — the tree-based anticollision
//    family [3], [38].
//
// Both come in two fidelities: a device-level simulation (real tag state
// machines over the Medium; O(n) per slot) for small populations, and a
// sampled simulation (occupancy counts only; O(f) per frame / O(n) total)
// that scales to millions of tags for the Theta(n)-vs-O(log log n) scaling
// experiments.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "rng/hash_family.hpp"
#include "sim/gen2_timing.hpp"
#include "sim/medium.hpp"

namespace pet::proto {

struct IdentificationResult {
  std::uint64_t identified = 0;
  std::uint64_t frames = 0;  ///< DFSA only
  sim::SlotLedger ledger;
};

struct DfsaConfig {
  std::uint64_t initial_frame_size = 128;
  /// Schoute's estimate: next frame ~= 2.39 x collision slots.
  double frame_factor = 2.39;
  std::uint64_t min_frame_size = 16;
  /// EPC C1G2 caps Q at 15 (32768 slots).  With populations far beyond the
  /// cap the frame load explodes, singletons vanish, and identification
  /// stalls — a real limitation of framed ALOHA that the stall guard below
  /// surfaces instead of spinning.  Raise the cap to identify larger sets.
  std::uint64_t max_frame_size = std::uint64_t{1} << 15;
  std::uint64_t max_frames = 100000;
  /// Abort after this many consecutive frames with zero identifications
  /// (saturated regime); the result then reports identified < n.
  std::uint64_t max_stalled_frames = 25;
  rng::HashKind hash = rng::HashKind::kMix64;
  unsigned begin_bits = 16;
  unsigned poll_bits = 1;
  unsigned ack_bits = 16;
};

/// Device-level DFSA identification of every tag in `tags`.
[[nodiscard]] IdentificationResult identify_dfsa(std::span<const TagId> tags,
                                                 const DfsaConfig& config,
                                                 std::uint64_t seed);

/// Occupancy-sampled DFSA: statistically identical slot counts, no per-tag
/// state.
[[nodiscard]] IdentificationResult identify_dfsa_sampled(
    std::uint64_t n, const DfsaConfig& config, std::uint64_t seed);

/// Gen2-faithful DFSA: the same identification job run through the real
/// EPC C1G2 MAC (pet::gen2) — Q-adaptive frames (floating-Q or DFA
/// backlog policy), session flags, ACK'd EPC reads, and the seeded link
/// impairments (loss, capture, noise).  The idealized identify_dfsa above
/// stays the analytic baseline; this is the measured counterpart the
/// latency tables compare it against.
struct Gen2DfsaOptions {
  bool dfa_backlog = false;  ///< frame-end Schoute policy vs floating-Q
  double capture_prob = 0.0;
  double reply_loss_prob = 0.0;
  std::uint64_t impairment_seed = 0x10551055ULL;
  sim::Gen2LinkConfig link{};  ///< PHY profile for airtime accounting
};

[[nodiscard]] IdentificationResult identify_gen2(std::uint64_t n,
                                                 const Gen2DfsaOptions& options,
                                                 std::uint64_t seed);

struct SplittingConfig {
  rng::HashKind hash = rng::HashKind::kMix64;
  std::uint64_t max_slots = 50000000;  ///< lossy-link safety stop
  unsigned query_bits = 1;
  unsigned feedback_bits = 2;
  unsigned ack_bits = 16;
};

/// Device-level binary-splitting (Capetanakis) identification: the dynamic
/// tree protocol of the paper's reference [3], driven by 1-bit contention
/// slots and 2-bit outcome feedback.
[[nodiscard]] IdentificationResult identify_splitting(
    std::span<const TagId> tags, const SplittingConfig& config,
    std::uint64_t seed);

/// Sampled binary splitting: the contention tree with exact Binomial(k, 1/2)
/// coin-flip splits, no per-tag state.
[[nodiscard]] IdentificationResult identify_splitting_sampled(
    std::uint64_t n, const SplittingConfig& config, std::uint64_t seed);

struct TreeWalkConfig {
  rng::HashKind hash = rng::HashKind::kMix64;
  unsigned id_bits = 64;
  unsigned query_bits = 64;  ///< worst-case prefix broadcast
  unsigned ack_bits = 16;
};

/// Device-level binary tree walking identification.
[[nodiscard]] IdentificationResult identify_treewalk(
    std::span<const TagId> tags, const TreeWalkConfig& config);

/// Sampled tree walking: splits the population with exact Binomial(k, 1/2)
/// draws instead of real IDs.
[[nodiscard]] IdentificationResult identify_treewalk_sampled(
    std::uint64_t n, const TreeWalkConfig& config, std::uint64_t seed);

}  // namespace pet::proto
