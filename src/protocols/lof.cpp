#include "protocols/lof.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "rng/prng.hpp"
#include "stats/normal.hpp"

namespace pet::proto {

void LofConfig::validate() const {
  expects(frame_size >= 2 && frame_size <= 64,
          "LoF: frame size must be in [2, 64]");
}

LofEstimator::LofEstimator(LofConfig config,
                           stats::AccuracyRequirement requirement)
    : config_(config), requirement_(requirement) {
  config_.validate();
  requirement_.validate();
  const double c = stats::two_sided_normal_constant(requirement_.delta);
  const double lo =
      c * kFmSigma / std::abs(std::log2(1.0 - requirement_.epsilon));
  const double hi = c * kFmSigma / std::log2(1.0 + requirement_.epsilon);
  planned_rounds_ =
      static_cast<std::uint64_t>(std::ceil(std::max(lo * lo, hi * hi)));
}

core::EstimateResult LofEstimator::estimate(chan::FrameChannel& channel,
                                            std::uint64_t seed) const {
  return estimate_with_rounds(channel, planned_rounds_, seed);
}

core::EstimateResult LofEstimator::estimate_with_rounds(
    chan::FrameChannel& channel, std::uint64_t rounds,
    std::uint64_t seed) const {
  expects(rounds >= 1, "LoF: need at least one round");

  const sim::SlotLedger before = channel.ledger();
  core::EstimateResult result;
  result.depths.reserve(rounds);

  double zero_index_sum = 0.0;  // 0-based first-zero positions R_i
  std::uint64_t informative = 0;

  for (std::uint64_t i = 0; i < rounds; ++i) {
    const auto& outcomes = channel.run_frame(chan::FrameConfig{
        rng::derive_seed(seed, i), config_.frame_size, 1.0,
        /*geometric=*/true, config_.begin_bits, config_.poll_bits});
    // NOTE on early_stop: the FrameChannel interface polls whole frames;
    // the early-stop ablation is accounted by crediting back the slots
    // after the first idle one (their outcomes are provably unused).
    unsigned first_zero = config_.frame_size;  // saturated frame
    for (unsigned s = 0; s < outcomes.size(); ++s) {
      if (outcomes[s] == SlotOutcome::kIdle) {
        first_zero = s;
        break;
      }
    }
    if (first_zero == 0) {
      // Slot 1 idle: with geometric levels half the tags land there, so an
      // idle first slot certifies a (near-)empty region this round.
      result.depths.push_back(0);
      ++informative;
      continue;
    }
    zero_index_sum += static_cast<double>(first_zero);
    ++informative;
    result.depths.push_back(first_zero);
  }

  result.rounds = rounds;
  invariant(informative == rounds, "LoF rounds must all be informative");
  const double r_bar = zero_index_sum / static_cast<double>(rounds);
  result.mean_depth = r_bar;
  result.n_hat = std::exp2(r_bar) / kFmPhi;

  result.ledger = channel.ledger() - before;
  if (config_.early_stop) {
    // Credit back unobserved tail slots: an early-stopping reader leaves
    // the frame after its first idle slot (R_i + 1 slots used).
    std::uint64_t used = 0;
    for (const unsigned r : result.depths) {
      used += std::min<std::uint64_t>(r + 1, config_.frame_size);
    }
    const std::uint64_t polled =
        static_cast<std::uint64_t>(config_.frame_size) * rounds;
    const std::uint64_t credit = polled - used;
    // All credited slots come after the first idle slot; their outcome mix
    // is unknown to the early-stopping reader, so we only adjust totals by
    // removing idle slots first (conservative for cost comparisons).
    std::uint64_t remaining = credit;
    const std::uint64_t idle_credit =
        std::min(result.ledger.idle_slots, remaining);
    result.ledger.idle_slots -= idle_credit;
    remaining -= idle_credit;
    const std::uint64_t coll_credit =
        std::min(result.ledger.collision_slots, remaining);
    result.ledger.collision_slots -= coll_credit;
    remaining -= coll_credit;
    result.ledger.singleton_slots -= remaining;
  }
  return result;
}

}  // namespace pet::proto
