#include "protocols/upe.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "rng/prng.hpp"
#include "stats/normal.hpp"

namespace pet::proto {

void UpeConfig::validate() const {
  expects(frame_size >= 8, "UPE: frame must hold >= 8 slots");
  expects(expected_n >= 1.0, "UPE: expected_n must be >= 1");
  expects(target_load > 0.0, "UPE: target load must be positive");
}

double UpeConfig::persistence() const noexcept {
  const double p =
      target_load * static_cast<double>(frame_size) / expected_n;
  return std::clamp(p, 1e-9, 1.0);
}

UpeEstimator::UpeEstimator(UpeConfig config,
                           stats::AccuracyRequirement requirement)
    : config_(config), requirement_(requirement) {
  config_.validate();
  requirement_.validate();
  const double c = stats::two_sided_normal_constant(requirement_.delta);
  const double f = static_cast<double>(config_.frame_size);
  const double rho =
      config_.persistence() * config_.expected_n / f;
  const double rel_sigma =
      std::sqrt(std::expm1(rho)) / (rho * std::sqrt(f));
  const double m = c * rel_sigma / requirement_.epsilon;
  planned_rounds_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(m * m)));
}

double invert_collision_fraction(double fraction) {
  expects(fraction >= 0.0 && fraction < 1.0,
          "collision fraction must be in [0, 1)");
  if (fraction == 0.0) return 0.0;
  // c(rho) = 1 - e^-rho (1 + rho) is strictly increasing on [0, inf);
  // Newton from a bracketing start, with bisection safeguarding.
  double lo = 0.0;
  double hi = 1.0;
  while (1.0 - std::exp(-hi) * (1.0 + hi) < fraction) hi *= 2.0;
  double rho = 0.5 * (lo + hi);
  for (int iter = 0; iter < 100; ++iter) {
    const double c = 1.0 - std::exp(-rho) * (1.0 + rho);
    const double dc = rho * std::exp(-rho);
    if (c > fraction) {
      hi = rho;
    } else {
      lo = rho;
    }
    double next = dc > 0.0 ? rho - (c - fraction) / dc : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::abs(next - rho) < 1e-12) return next;
    rho = next;
  }
  return rho;
}

core::EstimateResult UpeEstimator::estimate(chan::FrameChannel& channel,
                                            std::uint64_t seed) const {
  return estimate_with_rounds(channel, planned_rounds_, seed);
}

core::EstimateResult UpeEstimator::estimate_with_rounds(
    chan::FrameChannel& channel, std::uint64_t rounds,
    std::uint64_t seed) const {
  expects(rounds >= 1, "UPE: need at least one frame");

  const sim::SlotLedger before = channel.ledger();
  core::EstimateResult result;

  const double p = config_.persistence();
  std::uint64_t idle_total = 0;
  std::uint64_t collision_total = 0;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    const auto& outcomes = channel.run_frame(chan::FrameConfig{
        rng::derive_seed(seed, i), config_.frame_size, p,
        /*geometric=*/false, config_.begin_bits, config_.poll_bits});
    for (const SlotOutcome o : outcomes) {
      if (o == SlotOutcome::kIdle) ++idle_total;
      if (o == SlotOutcome::kCollision) ++collision_total;
    }
  }

  const double f = static_cast<double>(config_.frame_size);
  const double slots = f * static_cast<double>(rounds);
  // Clamp extreme observations: both estimators diverge at the edges (the
  // prior-mismatch failure mode UPE documents).
  const double idle_fraction =
      std::max(0.5, static_cast<double>(idle_total)) / slots;
  const double collision_fraction =
      std::min(slots - 0.5, static_cast<double>(collision_total)) / slots;

  const double n_zero = -f / p * std::log(idle_fraction);
  const double n_coll = f / p * invert_collision_fraction(collision_fraction);
  switch (config_.variant) {
    case UpeVariant::kZeroEstimator:
      result.n_hat = n_zero;
      break;
    case UpeVariant::kCollisionEstimator:
      result.n_hat = n_coll;
      break;
    case UpeVariant::kCombined:
      result.n_hat = 0.5 * (n_zero + n_coll);
      break;
  }
  result.rounds = rounds;
  result.ledger = channel.ledger() - before;
  return result;
}

}  // namespace pet::proto
