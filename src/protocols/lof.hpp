// LoF baseline — "Cardinality Estimation for Large-Scale RFID Systems"
// (Qian et al., PerCom 2008), the second comparison target of Section 5.3.
//
// Per round, every tag draws a geometric "lottery" level (P(level = i) =
// 2^-i) and replies in that slot of an L-slot frame; the reader scans the
// frame and records the position of the first idle slot, exactly the
// Flajolet-Martin first-zero statistic.  Averaging over m rounds yields
// n̂ = 2^(Zbar - 1) / 0.77351.  Each round costs the full frame (L slots,
// L = 32 accommodates 2^32 tags), which is the O(log n) the paper cites.
#pragma once

#include <cstdint>

#include "channel/channel.hpp"
#include "core/estimator.hpp"
#include "stats/accuracy.hpp"

namespace pet::proto {

/// Flajolet-Martin bias constant: E[first-zero index (0-based)] ~=
/// log2(kFmPhi * n).
inline constexpr double kFmPhi = 0.77351;

/// Asymptotic per-round standard deviation of the first-zero statistic
/// (Flajolet & Martin 1985).
inline constexpr double kFmSigma = 1.12127;

struct LofConfig {
  unsigned frame_size = 32;   ///< lottery levels per frame
  /// Stop polling a frame at its first idle slot instead of scanning all L
  /// slots (an ablation; the published protocol scans the whole frame).
  bool early_stop = false;
  unsigned begin_bits = 32;
  unsigned poll_bits = 1;

  void validate() const;
};

class LofEstimator {
 public:
  LofEstimator(LofConfig config, stats::AccuracyRequirement requirement);

  /// Eq. (20)-style round count with the FM deviation:
  /// m = ceil((c * kFmSigma / log2(1 +/- eps))^2).
  [[nodiscard]] std::uint64_t planned_rounds() const noexcept {
    return planned_rounds_;
  }

  [[nodiscard]] const LofConfig& config() const noexcept { return config_; }

  [[nodiscard]] core::EstimateResult estimate(chan::FrameChannel& channel,
                                              std::uint64_t seed) const;
  [[nodiscard]] core::EstimateResult estimate_with_rounds(
      chan::FrameChannel& channel, std::uint64_t rounds,
      std::uint64_t seed) const;

 private:
  LofConfig config_;
  stats::AccuracyRequirement requirement_;
  std::uint64_t planned_rounds_;
};

}  // namespace pet::proto
