#include "protocols/ezb.hpp"

#include <cmath>
#include <vector>

#include "common/ensure.hpp"
#include "rng/prng.hpp"
#include "stats/normal.hpp"

namespace pet::proto {

void EzbConfig::validate() const {
  expects(frame_size >= 8, "EZB: frame must hold >= 8 slots");
  expects(persistence_ladder >= 1 && persistence_ladder <= 40,
          "EZB: ladder must have 1..40 rungs");
  expects(min_idle_fraction > 0.0 && max_idle_fraction < 1.0 &&
              min_idle_fraction < max_idle_fraction,
          "EZB: idle-fraction band must be a proper subinterval of (0, 1)");
}

EzbEstimator::EzbEstimator(EzbConfig config,
                           stats::AccuracyRequirement requirement)
    : config_(config), requirement_(requirement) {
  config_.validate();
  requirement_.validate();
  // At least one ladder rung lands near the variance-optimal load; treat
  // each sweep like one near-optimal UPE frame (rel. deviation ~
  // sqrt(e^rho - 1)/(rho sqrt(f)) at rho ~= 1.59) and repeat sweeps to
  // reach the contract.
  const double c = stats::two_sided_normal_constant(requirement_.delta);
  const double rho = 1.59;
  const double rel_sigma = std::sqrt(std::expm1(rho)) /
                           (rho * std::sqrt(static_cast<double>(
                                      config_.frame_size)));
  const double m = c * rel_sigma / requirement_.epsilon;
  planned_sweeps_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(m * m)));
}

core::EstimateResult EzbEstimator::estimate(chan::FrameChannel& channel,
                                            std::uint64_t seed) const {
  return estimate_with_sweeps(channel, planned_sweeps_, seed);
}

core::EstimateResult EzbEstimator::estimate_with_sweeps(
    chan::FrameChannel& channel, std::uint64_t sweeps,
    std::uint64_t seed) const {
  expects(sweeps >= 1, "EZB: need at least one sweep");

  const sim::SlotLedger before = channel.ledger();
  core::EstimateResult result;

  // Fuse informative frames: each contributes an estimate
  // n̂_k = -(f / p_k) ln(idle_fraction_k), weighted by its Fisher
  // information (inverse delta-method variance).
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  const double f = static_cast<double>(config_.frame_size);
  bool any_tags_seen = false;

  for (std::uint64_t s = 0; s < sweeps; ++s) {
    for (unsigned k = 0; k < config_.persistence_ladder; ++k) {
      const double p = std::ldexp(1.0, -static_cast<int>(k));
      const auto& outcomes = channel.run_frame(chan::FrameConfig{
          rng::derive_seed(seed, s * config_.persistence_ladder + k),
          config_.frame_size, p, /*geometric=*/false, config_.begin_bits,
          config_.poll_bits});
      std::uint64_t idle = 0;
      for (const SlotOutcome o : outcomes) {
        if (o == SlotOutcome::kIdle) ++idle;
      }
      const double idle_fraction = static_cast<double>(idle) / f;
      if (idle_fraction < 1.0) any_tags_seen = true;
      if (idle_fraction < config_.min_idle_fraction ||
          idle_fraction > config_.max_idle_fraction) {
        continue;  // saturated or near-empty frame: uninformative
      }
      const double rho = -std::log(idle_fraction);
      const double estimate = f * rho / p;
      // Var(n̂) ~ f (e^rho - 1) / p^2  =>  weight = p^2 / (f (e^rho - 1)).
      const double weight = p * p / (f * std::expm1(rho));
      weighted_sum += weight * estimate;
      weight_total += weight;
    }
  }

  result.rounds = sweeps * config_.persistence_ladder;
  if (weight_total > 0.0) {
    result.n_hat = weighted_sum / weight_total;
  } else {
    // No informative frame: either the region is empty, or every frame
    // saturated even at the smallest persistence (population beyond the
    // ladder's reach).
    result.n_hat = any_tags_seen
                       ? f * std::ldexp(1.0, static_cast<int>(
                                                 config_.persistence_ladder))
                       : 0.0;
  }
  result.ledger = channel.ledger() - before;
  return result;
}

}  // namespace pet::proto
