#include "protocols/fneb.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "rng/prng.hpp"
#include "stats/normal.hpp"

namespace pet::proto {

void FnebConfig::validate() const {
  expects(initial_frame_size >= 2, "FNEB: initial frame must hold >= 2 slots");
  expects(min_frame_size >= 2 && min_frame_size <= initial_frame_size,
          "FNEB: min frame size must be in [2, initial]");
  expects(adaptive_headroom >= 1.0, "FNEB: headroom must be >= 1");
}

FnebEstimator::FnebEstimator(FnebConfig config,
                             stats::AccuracyRequirement requirement)
    : config_(config), requirement_(requirement) {
  config_.validate();
  requirement_.validate();
  const double c = stats::two_sided_normal_constant(requirement_.delta);
  const double m = (c / requirement_.epsilon) * (c / requirement_.epsilon);
  planned_rounds_ = static_cast<std::uint64_t>(std::ceil(m));
}

std::uint64_t FnebEstimator::find_first_nonempty(
    chan::RangeChannel& channel, std::uint64_t frame_size) const {
  // The probe predicate busy(b) = "any slot <= b occupied" is monotone in b,
  // so the first nonempty slot is the smallest b with busy(b).
  if (!channel.query_range(frame_size)) {
    return frame_size + 1;  // empty frame: no tags at all
  }
  std::uint64_t lo = 1;
  std::uint64_t hi = frame_size;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (channel.query_range(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

core::EstimateResult FnebEstimator::estimate(chan::RangeChannel& channel,
                                             std::uint64_t seed) const {
  return estimate_with_rounds(channel, planned_rounds_, seed);
}

core::EstimateResult FnebEstimator::estimate_with_rounds(
    chan::RangeChannel& channel, std::uint64_t rounds,
    std::uint64_t seed) const {
  expects(rounds >= 1, "FNEB: need at least one round");

  const sim::SlotLedger before = channel.ledger();
  core::EstimateResult result;
  result.depths.reserve(rounds);

  std::uint64_t frame = config_.initial_frame_size;
  double normalized_sum = 0.0;   // sum of X_i / (f_i + 1), E = 1/(n+1)
  std::uint64_t informative = 0;
  std::uint64_t empty_rounds = 0;

  for (std::uint64_t i = 0; i < rounds; ++i) {
    channel.begin_range_frame(chan::RangeFrameConfig{
        rng::derive_seed(seed, i), frame, config_.begin_bits,
        config_.query_bits});
    const std::uint64_t x = find_first_nonempty(channel, frame);
    if (x > frame) {
      ++empty_rounds;
      continue;
    }
    normalized_sum +=
        static_cast<double>(x) / (static_cast<double>(frame) + 1.0);
    ++informative;
    result.depths.push_back(static_cast<unsigned>(
        std::min<std::uint64_t>(x, 0xffffffffULL)));

    if (config_.adaptive && informative > 0) {
      const double t_bar = normalized_sum / static_cast<double>(informative);
      const double running_n = std::max(1.0, 1.0 / t_bar - 1.0);
      const auto target = static_cast<std::uint64_t>(
          std::ceil(config_.adaptive_headroom * running_n));
      frame = std::clamp(target, config_.min_frame_size,
                         config_.initial_frame_size);
    }
  }

  result.rounds = rounds;
  if (informative == 0) {
    result.n_hat = 0.0;  // every frame certified empty
  } else {
    const double t_bar = normalized_sum / static_cast<double>(informative);
    result.n_hat = std::max(0.0, 1.0 / t_bar - 1.0);
    (void)empty_rounds;  // static populations cannot mix the two cases
  }

  result.ledger = channel.ledger() - before;
  return result;
}

}  // namespace pet::proto
