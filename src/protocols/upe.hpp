// UPE/USE-style estimator — "Fast and Reliable Estimation Schemes in RFID
// Systems" (Kodialam & Nandagopal, MobiCom 2006), the framed-slotted-ALOHA
// estimators discussed in the paper's related work (Section 2).
//
// Tags participate in an f-slot frame with persistence probability p; the
// reader counts idle slots.  With load rho = p*n/f the expected idle
// fraction is e^-rho, so n̂ = -(f/p) * ln(idle_fraction).  This "zero
// estimator" (the USE part; UPE additionally uses collision counts) needs a
// rough prior of n to pick p — the drawback PET removes.
#pragma once

#include <cstdint>

#include "channel/channel.hpp"
#include "core/estimator.hpp"
#include "stats/accuracy.hpp"

namespace pet::proto {

/// Which of UPE's sub-estimators to use.  The zero estimator (USE) counts
/// idle slots; the collision estimator inverts the expected collision
/// fraction 1 - e^-rho (1 + rho); UPE proper combines both.
enum class UpeVariant : std::uint8_t {
  kZeroEstimator,
  kCollisionEstimator,
  kCombined,
};

struct UpeConfig {
  std::uint64_t frame_size = 512;
  /// Prior magnitude of n used to pick the persistence probability so that
  /// the frame load is near the variance-optimal ~1.59 (UPE Sec. 4).
  double expected_n = 50000.0;
  double target_load = 1.59;
  UpeVariant variant = UpeVariant::kZeroEstimator;
  unsigned begin_bits = 32;
  unsigned poll_bits = 1;

  void validate() const;

  [[nodiscard]] double persistence() const noexcept;
};

/// Invert the collision-fraction law c(rho) = 1 - e^-rho (1 + rho) for
/// rho >= 0 (monotone; Newton with a bisection fallback).  Exposed for
/// testing.
[[nodiscard]] double invert_collision_fraction(double fraction);

class UpeEstimator {
 public:
  UpeEstimator(UpeConfig config, stats::AccuracyRequirement requirement);

  /// Frames needed for the accuracy contract, from the delta-method
  /// per-frame relative deviation sqrt(e^rho - 1) / (rho * sqrt(f)).
  [[nodiscard]] std::uint64_t planned_rounds() const noexcept {
    return planned_rounds_;
  }

  [[nodiscard]] const UpeConfig& config() const noexcept { return config_; }

  [[nodiscard]] core::EstimateResult estimate(chan::FrameChannel& channel,
                                              std::uint64_t seed) const;
  [[nodiscard]] core::EstimateResult estimate_with_rounds(
      chan::FrameChannel& channel, std::uint64_t rounds,
      std::uint64_t seed) const;

 private:
  UpeConfig config_;
  stats::AccuracyRequirement requirement_;
  std::uint64_t planned_rounds_;
};

}  // namespace pet::proto
