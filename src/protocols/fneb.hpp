// FNEB baseline — "Counting RFID Tags Efficiently and Anonymously"
// (Han et al., INFOCOM 2010), the first of the two O(log n) estimators the
// paper compares against (Section 5.3).
//
// Per round, every tag hashes itself to a uniform slot of a conceptual
// frame of size f; the reader locates the *first nonempty slot* X by binary
// search with "slot <= bound?" range probes (log2 f + 1 slots).  Since
// E[X] = (f+1)/(n+1), averaging the normalized observations over m rounds
// estimates n.  FNEB's adaptive-shrinking refinement (also modeled here)
// lowers per-round cost by shrinking the frame toward the running estimate.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.hpp"
#include "core/estimator.hpp"
#include "stats/accuracy.hpp"

namespace pet::proto {

struct FnebConfig {
  /// Initial conceptual frame size; must upper-bound the population.  The
  /// frame is never polled slot by slot, so a huge value costs only probe
  /// count (log2 f).
  std::uint64_t initial_frame_size = std::uint64_t{1} << 32;
  /// Shrink the frame toward headroom * running-estimate after each round
  /// (the paper's "adaptive shrinking" speed-up).
  bool adaptive = true;
  double adaptive_headroom = 16.0;
  std::uint64_t min_frame_size = 64;
  unsigned begin_bits = 32;
  unsigned query_bits = 32;

  void validate() const;
};

class FnebEstimator {
 public:
  FnebEstimator(FnebConfig config, stats::AccuracyRequirement requirement);

  /// Rounds needed for the (epsilon, delta) contract.  The per-round
  /// normalized observation has unit relative deviation (the minimum of n
  /// uniforms is asymptotically exponential), giving m = ceil((c/eps)^2).
  [[nodiscard]] std::uint64_t planned_rounds() const noexcept {
    return planned_rounds_;
  }

  [[nodiscard]] const FnebConfig& config() const noexcept { return config_; }

  [[nodiscard]] core::EstimateResult estimate(chan::RangeChannel& channel,
                                              std::uint64_t seed) const;
  [[nodiscard]] core::EstimateResult estimate_with_rounds(
      chan::RangeChannel& channel, std::uint64_t rounds,
      std::uint64_t seed) const;

  /// One round on an already-begun frame: binary-search the first nonempty
  /// slot.  Returns frame_size + 1 when the frame is entirely empty.
  [[nodiscard]] std::uint64_t find_first_nonempty(
      chan::RangeChannel& channel, std::uint64_t frame_size) const;

 private:
  FnebConfig config_;
  stats::AccuracyRequirement requirement_;
  std::uint64_t planned_rounds_;
};

}  // namespace pet::proto
