#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/ensure.hpp"
#include "core/confidence.hpp"
#include "core/estimator.hpp"
#include "core/robust_estimator.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"
#include "rng/prng.hpp"
#include "service/metrics_export.hpp"

namespace pet::svc {

namespace {

/// Seed-stream tags for the per-request derivations (rng::derive_seed
/// contract: distinct stream ids never collide across subsystems).
constexpr std::uint64_t kBackoffStream = 0x5bacull;

[[nodiscard]] Frame ready_error(CommandId command, StatusCode status,
                                std::string_view detail) {
  return make_error(command, static_cast<std::uint16_t>(status), detail);
}

[[nodiscard]] std::future<Frame> ready_future(Frame frame) {
  std::promise<Frame> promise;
  promise.set_value(std::move(frame));
  return promise.get_future();
}

[[nodiscard]] bool valid_fraction(double v) noexcept {
  return std::isfinite(v) && v > 0.0 && v < 1.0;
}

[[nodiscard]] std::vector<std::uint8_t> utf8_bytes(const std::string& text) {
  return {text.begin(), text.end()};
}

[[nodiscard]] std::uint64_t f64_bits(double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Typed-error estimate outcome: fold what the attempt consumed into the
/// population's cells (and their obs mirror) so failed requests are just
/// as visible as successes.
void note_estimate_failure(PopulationStats& pop, const RequestRecord& record) {
  pop.errors.fetch_add(1, std::memory_order_relaxed);
  pop.retries.fetch_add(record.retries, std::memory_order_relaxed);
  pop.backoff_slots.fetch_add(record.backoff_slots,
                              std::memory_order_relaxed);
  pop.observe_latency_slots(record.latency_slots);
  if (obs::counters_enabled()) {
    const obs::SvcPopInstruments& bundle = obs::svc_pop_instruments();
    bundle.errors.add();
    bundle.retries.add(record.retries);
    bundle.backoff_slots.add(record.backoff_slots);
    bundle.latency_slots.observe(static_cast<double>(record.latency_slots));
  }
}

}  // namespace

void ServiceConfig::validate() const {
  retry.validate();
  link_faults.validate();
  expects(max_inflight >= 1, "ServiceConfig: max_inflight must be >= 1");
  expects(shards <= 64, "ServiceConfig: shards must be in [0, 64]");
  expects(vote_reads >= 1 && vote_reads <= 15,
          "ServiceConfig: vote_reads must be in [1, 15]");
  expects(vote_quorum >= 1 && vote_quorum <= vote_reads,
          "ServiceConfig: vote_quorum must be in [1, vote_reads]");
  // 88 bytes per record + 4-byte count must fit one kFlightDump payload.
  expects(flight_capacity >= 1 && flight_capacity <= 8192,
          "ServiceConfig: flight_capacity must be in [1, 8192]");
}

unsigned ServiceConfig::resolved_worker_threads() const noexcept {
  return worker_threads != 0 ? worker_threads
                             : runtime::ThreadPool::hardware_threads();
}

unsigned ServiceConfig::resolved_shards() const noexcept {
  return shards != 0 ? shards : derive_shard_count(resolved_worker_threads());
}

EstimationService::EstimationService(ServiceConfig config)
    : config_(std::move(config)),
      registry_(config_.registry, config_.resolved_shards()),
      cache_(ResultCacheConfig{config_.cache_entries, config_.cache_bytes}),
      flight_(config_.flight_capacity) {
  config_.validate();
  shards_ = std::make_unique<ShardSet>(config_.resolved_shards(),
                                       config_.resolved_worker_threads(),
                                       config_.max_inflight);
#if PET_OBS_COMPILED
  // Touch the service bundles so their names exist (at zero) in every
  // export — obscheck's --require probes and Prometheus scrapes see the
  // full catalogue even before the first request.
  (void)obs::svc_instruments();
  (void)obs::svc_pop_instruments();
  (void)obs::svc_conn_instruments();
  (void)obs::svc_cache_instruments();
  (void)obs::svc_shard_instruments();
#endif
}

EstimationService::~EstimationService() {
  begin_shutdown();
  // ~ShardSet drains every shard pool: all submitted requests resolve
  // before we return.
  shards_.reset();
}

void EstimationService::begin_shutdown() noexcept {
  draining_.store(true, std::memory_order_release);
}

void EstimationService::note_malformed_frame() noexcept {
  malformed_.fetch_add(1, std::memory_order_relaxed);
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  if (obs::counters_enabled()) {
    obs::svc_instruments().frame_malformed.add();
    obs::svc_conn_instruments().resyncs.add();
  }
}

void EstimationService::note_connection_opened() noexcept {
  conn_opened_.fetch_add(1, std::memory_order_relaxed);
  if (obs::counters_enabled()) obs::svc_conn_instruments().opened.add();
}

void EstimationService::note_connection_closed() noexcept {
  conn_closed_.fetch_add(1, std::memory_order_relaxed);
  if (obs::counters_enabled()) obs::svc_conn_instruments().closed.add();
}

void EstimationService::note_bytes_received(std::size_t bytes) noexcept {
  bytes_rx_.fetch_add(bytes, std::memory_order_relaxed);
  if (obs::counters_enabled()) obs::svc_conn_instruments().bytes_rx.add(bytes);
}

void EstimationService::note_frame_received() noexcept {
  frames_rx_.fetch_add(1, std::memory_order_relaxed);
  if (obs::counters_enabled()) obs::svc_conn_instruments().frames_rx.add();
}

void EstimationService::note_frame_sent(std::size_t wire_bytes) noexcept {
  frames_tx_.fetch_add(1, std::memory_order_relaxed);
  bytes_tx_.fetch_add(wire_bytes, std::memory_order_relaxed);
  if (obs::counters_enabled()) {
    obs::svc_conn_instruments().frames_tx.add();
    obs::svc_conn_instruments().bytes_tx.add(wire_bytes);
  }
}

EstimationService::ConnectionTotals EstimationService::connection_totals()
    const noexcept {
  ConnectionTotals totals;
  totals.opened = conn_opened_.load(std::memory_order_relaxed);
  totals.closed = conn_closed_.load(std::memory_order_relaxed);
  totals.frames_rx = frames_rx_.load(std::memory_order_relaxed);
  totals.frames_tx = frames_tx_.load(std::memory_order_relaxed);
  totals.bytes_rx = bytes_rx_.load(std::memory_order_relaxed);
  totals.bytes_tx = bytes_tx_.load(std::memory_order_relaxed);
  totals.resyncs = resyncs_.load(std::memory_order_relaxed);
  return totals;
}

EstimationService::InflightHold::InflightHold(EstimationService& service,
                                              std::size_t slots) noexcept
    : service_(service), slots_(slots), all_shards_(true) {
  for (unsigned shard = 0; shard < service_.shards_->count(); ++shard) {
    for (std::size_t i = 0; i < slots_; ++i) {
      (void)service_.shards_->acquire(shard);
    }
  }
}

EstimationService::InflightHold::InflightHold(
    EstimationService& service, std::size_t slots,
    std::uint64_t population_id) noexcept
    : service_(service),
      slots_(slots),
      shard_(service.shards_->route(population_id)) {
  for (std::size_t i = 0; i < slots_; ++i) {
    (void)service_.shards_->acquire(shard_);
  }
}

EstimationService::InflightHold::~InflightHold() {
  if (all_shards_) {
    for (unsigned shard = 0; shard < service_.shards_->count(); ++shard) {
      for (std::size_t i = 0; i < slots_; ++i) {
        service_.shards_->release(shard);
      }
    }
  } else {
    for (std::size_t i = 0; i < slots_; ++i) {
      service_.shards_->release(shard_);
    }
  }
}

unsigned EstimationService::route_shard(const Frame& request) const noexcept {
  switch (static_cast<CommandId>(request.command)) {
    case CommandId::kEstimate:
    case CommandId::kRegister:
    case CommandId::kUnregister: {
      // All three payloads lead with the population id (u64 LE); peeking it
      // here instead of fully parsing keeps routing O(1).  Short payloads
      // fall through to shard 0 and fail parsing inside the handler.
      if (request.payload.size() >= 8) {
        std::uint64_t id = 0;
        std::memcpy(&id, request.payload.data(), sizeof(id));
        return shards_->route(id);
      }
      return 0;
    }
    default:
      return 0;  // control plane
  }
}

std::string EstimationService::note_shed(const Frame& request,
                                         StatusCode status, unsigned shard) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  if (status == StatusCode::kResourceExhausted) {
    shards_->note_shed(shard);
    if (obs::counters_enabled()) obs::svc_shard_instruments().shed.add();
  }
  if (obs::counters_enabled()) obs::svc_instruments().req_shed.add();

  RequestRecord record;
  record.request_id = derive_request_id(request);
  record.command = request.command;
  record.status = static_cast<std::uint16_t>(status);
  record.degrade_mask = kDegradeShed;
  record.shard = static_cast<std::uint16_t>(shard);
  if (static_cast<CommandId>(request.command) == CommandId::kEstimate) {
    if (const auto req = parse_estimate_request(request.payload)) {
      record.population_id = req->population_id;
      if (const auto entry = registry_.find(req->population_id)) {
        entry->stats.shed.fetch_add(1, std::memory_order_relaxed);
        if (obs::counters_enabled()) obs::svc_pop_instruments().shed.add();
      }
    }
  }
#if PET_OBS_COMPILED
  flight_.record(record);
#endif
  return " [request-id=" + format_request_id(record.request_id) + "]";
}

std::future<Frame> EstimationService::submit(Frame request) {
  const auto command = static_cast<CommandId>(request.command);
  const unsigned shard = route_shard(request);
  if (draining()) {
    const std::string suffix =
        note_shed(request, StatusCode::kShuttingDown, shard);
    return ready_future(ready_error(command, StatusCode::kShuttingDown,
                                    "service draining" + suffix));
  }
  // Optimistic admission against the routed shard's budget: grab a slot,
  // give it back if the shard was over its cap.  Monitor/ping and the
  // observability exports are control-plane and always admitted — an
  // operator must be able to observe an overloaded server.
  const bool control_plane =
      command == CommandId::kPing || command == CommandId::kMonitor ||
      command == CommandId::kMetrics || command == CommandId::kFlightDump;
  const std::size_t occupied = shards_->acquire(shard);
  if (!control_plane && occupied > shards_->max_inflight_per_shard()) {
    shards_->release(shard);
    const std::string suffix =
        note_shed(request, StatusCode::kResourceExhausted, shard);
    if (obs::counters_enabled()) {
      obs::svc_instruments().queue_depth.set(
          static_cast<double>(shards_->total_inflight()));
      obs::svc_shard_instruments().depth.set(
          static_cast<double>(shards_->max_inflight_depth()));
    }
    return ready_future(
        ready_error(command, StatusCode::kResourceExhausted,
                    "shard inflight cap reached; retry with backoff" + suffix));
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::counters_enabled()) {
    obs::svc_instruments().req_accepted.add();
    obs::svc_instruments().queue_depth.set(
        static_cast<double>(shards_->total_inflight()));
    obs::svc_shard_instruments().depth.set(
        static_cast<double>(shards_->max_inflight_depth()));
  }

  auto promise = std::make_shared<std::promise<Frame>>();
  std::future<Frame> future = promise->get_future();
  const auto enqueued = std::chrono::steady_clock::now();
  shards_->submit(shard, [this, promise, enqueued, shard,
                          request = std::move(request)]() mutable {
    const auto queue_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - enqueued);
    Frame response = handle_request(
        request, static_cast<std::uint64_t>(queue_us.count()), shard);
    // All service-state bookkeeping must precede set_value: the moment the
    // promise is fulfilled the caller's future.get() returns and the caller
    // may destroy the service — ~EstimationService nulls shards_ before the
    // pool drain joins this worker, so touching `this` after set_value is a
    // use-after-reset race.
    shards_->release(shard);
    if (obs::counters_enabled()) {
      obs::svc_instruments().queue_depth.set(
          static_cast<double>(shards_->total_inflight()));
      obs::svc_shard_instruments().depth.set(
          static_cast<double>(shards_->max_inflight_depth()));
      obs::svc_shard_instruments().steal.set(
          static_cast<double>(shards_->stolen_total()));
    }
    promise->set_value(std::move(response));
  });
  return future;
}

Frame EstimationService::handle(const Frame& request) {
  // Direct path: route the same way submit() would so flight records carry
  // the same shard stamp either way.
  return handle_request(request, 0, route_shard(request));
}

Frame EstimationService::handle_request(const Frame& request,
                                        std::uint64_t queue_us,
                                        unsigned shard) {
  const auto started = std::chrono::steady_clock::now();
  const auto command = static_cast<CommandId>(request.command);

  // Every request gets a deterministic content-addressed ID (flight.hpp)
  // and leaves one flight-recorder record behind; under full tracing the
  // ID also becomes the span's trial coordinate so JSONL traces and
  // kFlightDump records join on it.
  RequestRecord record;
  record.request_id = derive_request_id(request);
  record.command = request.command;
  record.queue_us = queue_us;
  record.shard = static_cast<std::uint16_t>(shard);
  std::optional<obs::ScopedSpan> span;
  if (obs::full_enabled()) {
    obs::set_trace_trial(record.request_id);
    span.emplace("svc.request");
    span->add("request_id",
              obs::json_token(format_request_id(record.request_id)));
    span->add("command", obs::json_token(to_string(command)));
  }

  Frame response;
  if (request.ver_major != kProtocolMajor) {
    if (obs::counters_enabled()) {
      obs::svc_instruments().frame_version_skew.add();
      obs::svc_instruments().req_rejected.add();
    }
    response = ready_error(command, StatusCode::kIncompatibleVersion,
                           "protocol major version mismatch");
  } else {
    switch (command) {
      case CommandId::kPing: response = handle_ping(request); break;
      case CommandId::kRegister: response = handle_register(request); break;
      case CommandId::kUnregister:
        response = handle_unregister(request);
        break;
      case CommandId::kEstimate:
        response = handle_estimate(request, record);
        break;
      case CommandId::kMonitor: response = handle_monitor(request); break;
      case CommandId::kMetrics:
        response = handle_metrics(request, record);
        break;
      case CommandId::kFlightDump:
        response = handle_flight_dump(request);
        break;
      default:
        if (obs::counters_enabled()) obs::svc_instruments().req_rejected.add();
        response = ready_error(command, StatusCode::kUnknownCommand,
                               "unknown command id");
        break;
    }
  }

  record.status = response.status;
  if (record.status ==
      static_cast<std::uint16_t>(StatusCode::kResourceExhausted)) {
    record.degrade_mask |= kDegradeShed;
  }

  completed_.fetch_add(1, std::memory_order_relaxed);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);
  record.handle_us = static_cast<std::uint64_t>(elapsed.count());
  if (obs::counters_enabled()) {
    obs::svc_instruments().req_completed.add();
    obs::svc_instruments().latency_us.observe(
        static_cast<double>(elapsed.count()));
  }
  if (span) {
    span->add("status", obs::json_token(to_string(
                            static_cast<StatusCode>(record.status))));
    span->add("population", std::to_string(record.population_id));
    span->add("degrade_mask", std::to_string(record.degrade_mask));
  }
#if PET_OBS_COMPILED
  flight_.record(record);
#endif
  return response;
}

Frame EstimationService::handle_ping(const Frame& request) {
  (void)request;
  return make_response(CommandId::kPing,
                       static_cast<std::uint16_t>(StatusCode::kOk));
}

Frame EstimationService::handle_register(const Frame& request) {
  const auto req = parse_register_request(request.payload);
  if (!req) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::counters_enabled()) obs::svc_instruments().frame_malformed.add();
    return ready_error(CommandId::kRegister, StatusCode::kMalformedFrame,
                       "register payload did not parse");
  }
  switch (registry_.register_population(req->population_id, req->tag_count,
                                        req->population_seed)) {
    case PopulationRegistry::RegisterOutcome::kRegistered: {
      RegisterReply reply;
      reply.population_id = req->population_id;
      reply.tag_count = req->tag_count;
      return make_response(CommandId::kRegister,
                           static_cast<std::uint16_t>(StatusCode::kOk),
                           encode(reply));
    }
    case PopulationRegistry::RegisterOutcome::kAlreadyExists:
      if (obs::counters_enabled()) obs::svc_instruments().req_rejected.add();
      return ready_error(CommandId::kRegister, StatusCode::kAlreadyExists,
                         "population id already registered");
    case PopulationRegistry::RegisterOutcome::kFull:
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (obs::counters_enabled()) obs::svc_instruments().req_shed.add();
      return ready_error(CommandId::kRegister, StatusCode::kResourceExhausted,
                         "population registry full");
    case PopulationRegistry::RegisterOutcome::kInvalidRequest:
      if (obs::counters_enabled()) obs::svc_instruments().req_rejected.add();
      return ready_error(CommandId::kRegister, StatusCode::kInvalidArgument,
                         "tag count out of range");
  }
  return ready_error(CommandId::kRegister, StatusCode::kInternal,
                     "unreachable register outcome");
}

Frame EstimationService::handle_unregister(const Frame& request) {
  const auto req = parse_unregister_request(request.payload);
  if (!req) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::counters_enabled()) obs::svc_instruments().frame_malformed.add();
    return ready_error(CommandId::kUnregister, StatusCode::kMalformedFrame,
                       "unregister payload did not parse");
  }
  if (!registry_.unregister_population(req->population_id)) {
    if (obs::counters_enabled()) obs::svc_instruments().req_rejected.add();
    return ready_error(CommandId::kUnregister, StatusCode::kNotFound,
                       "population id not registered");
  }
  return make_response(CommandId::kUnregister,
                       static_cast<std::uint16_t>(StatusCode::kOk));
}

Frame EstimationService::handle_monitor(const Frame& request) {
  (void)request;
  return make_response(CommandId::kMonitor,
                       static_cast<std::uint16_t>(StatusCode::kOk),
                       encode(stats()));
}

MonitorReply EstimationService::stats() const {
  // Single source of truth: the degraded / deadline-miss / retry totals
  // are folded from the same per-population cells the kMetrics export
  // renders, so the two commands can never drift apart.
  const PopulationStatsSnapshot pops = registry_.fold_stats();
  MonitorReply reply;
  reply.populations = registry_.size();
  reply.inflight = shards_->total_inflight();
  reply.accepted = accepted_.load(std::memory_order_relaxed);
  reply.completed = completed_.load(std::memory_order_relaxed);
  reply.shed = shed_.load(std::memory_order_relaxed);
  reply.degraded = pops.degraded;
  reply.deadline_misses = pops.deadline_misses;
  reply.retries = pops.retries;
  reply.malformed_frames = malformed_.load(std::memory_order_relaxed);
  return reply;
}

Frame EstimationService::handle_metrics(const Frame& request,
                                        RequestRecord& record) {
#if !PET_OBS_COMPILED
  (void)record;
  (void)request;
  if (obs::counters_enabled()) obs::svc_instruments().req_rejected.add();
  return ready_error(CommandId::kMetrics, StatusCode::kUnsupported,
                     "metrics export compiled out (PET_OBS=OFF)");
#else
  const auto req = parse_metrics_request(request.payload);
  if (!req) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::counters_enabled()) obs::svc_instruments().frame_malformed.add();
    return ready_error(CommandId::kMetrics, StatusCode::kMalformedFrame,
                       "metrics payload did not parse");
  }
  switch (static_cast<MetricsScope>(req->scope)) {
    case MetricsScope::kFull:
      return make_response(
          CommandId::kMetrics, static_cast<std::uint16_t>(StatusCode::kOk),
          utf8_bytes(render_metrics_document(*this, false)));
    case MetricsScope::kDeterministic:
      return make_response(
          CommandId::kMetrics, static_cast<std::uint16_t>(StatusCode::kOk),
          utf8_bytes(render_metrics_document(*this, true)));
    case MetricsScope::kPopulation: {
      record.population_id = req->population_id;
      const auto entry = registry_.find(req->population_id);
      if (entry == nullptr) {
        if (obs::counters_enabled()) obs::svc_instruments().req_rejected.add();
        return ready_error(CommandId::kMetrics, StatusCode::kNotFound,
                           "population id not registered");
      }
      PopulationStatsSnapshot snap;
      snap.accumulate(entry->stats);
      return make_response(
          CommandId::kMetrics, static_cast<std::uint16_t>(StatusCode::kOk),
          utf8_bytes(render_population_document(req->population_id, snap)));
    }
  }
  if (obs::counters_enabled()) obs::svc_instruments().req_rejected.add();
  return ready_error(CommandId::kMetrics, StatusCode::kInvalidArgument,
                     "unknown metrics scope");
#endif
}

Frame EstimationService::handle_flight_dump(const Frame& request) {
#if !PET_OBS_COMPILED
  (void)request;
  if (obs::counters_enabled()) obs::svc_instruments().req_rejected.add();
  return ready_error(CommandId::kFlightDump, StatusCode::kUnsupported,
                     "flight recorder compiled out (PET_OBS=OFF)");
#else
  const auto req = parse_flight_dump_request(request.payload);
  if (!req) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::counters_enabled()) obs::svc_instruments().frame_malformed.add();
    return ready_error(CommandId::kFlightDump, StatusCode::kMalformedFrame,
                       "flight-dump payload did not parse");
  }
  FlightDumpReply reply;
  reply.records = flight_.dump(req->request_id, req->max_records);
  return make_response(CommandId::kFlightDump,
                       static_cast<std::uint16_t>(StatusCode::kOk),
                       encode(reply));
#endif
}

void EstimationService::replay_cache_hit(PopulationStats& pop,
                                         const ResultCache::Replay& rep,
                                         std::uint64_t budget,
                                         RequestRecord& record) {
  // Mirror the miss path's flight-record and per-population fold exactly
  // (handle_estimate's success tail) so every fold-derived surface —
  // kMonitor, kMetrics stats objects, BENCH fold rows — is cache-invariant.
  // Only the channel work (chan.* / core.robust.* counters) is skipped.
  record.planned_rounds = rep.planned_rounds;
  record.rounds = rep.rounds;
  record.retries = rep.retries;
  record.backoff_slots = rep.backoff_slots;
  record.query_slots = rep.query_slots;
  record.latency_slots = rep.backoff_slots + rep.query_slots;
  record.degrade_mask = rep.degrade_mask;

  pop.ok.fetch_add(1, std::memory_order_relaxed);
  pop.retries.fetch_add(rep.retries, std::memory_order_relaxed);
  pop.backoff_slots.fetch_add(rep.backoff_slots, std::memory_order_relaxed);
  pop.query_slots.fetch_add(rep.query_slots, std::memory_order_relaxed);
  pop.rounds.fetch_add(rep.rounds, std::memory_order_relaxed);
  pop.rounds_planned.fetch_add(rep.planned_rounds, std::memory_order_relaxed);
  pop.cache_hits.fetch_add(1, std::memory_order_relaxed);
  pop.observe_latency_slots(record.latency_slots);
  if (rep.truncated != 0) {
    pop.truncated.fetch_add(1, std::memory_order_relaxed);
  }
  if (rep.truncated != 0 && budget > 0) {
    pop.deadline_misses.fetch_add(1, std::memory_order_relaxed);
    if (obs::counters_enabled()) obs::svc_instruments().deadline_misses.add();
  }
  if (rep.degraded != 0) {
    pop.degraded.fetch_add(1, std::memory_order_relaxed);
    if (obs::counters_enabled()) obs::svc_instruments().req_degraded.add();
  }
  if (obs::counters_enabled()) {
    const obs::SvcPopInstruments& bundle = obs::svc_pop_instruments();
    bundle.ok.add();
    bundle.retries.add(rep.retries);
    bundle.backoff_slots.add(rep.backoff_slots);
    bundle.query_slots.add(rep.query_slots);
    bundle.rounds.add(rep.rounds);
    bundle.rounds_planned.add(rep.planned_rounds);
    bundle.cache_hits.add();
    bundle.latency_slots.observe(static_cast<double>(record.latency_slots));
    if (rep.truncated != 0) bundle.truncated.add();
    if (rep.truncated != 0 && budget > 0) bundle.deadline_misses.add();
    if (rep.degraded != 0) bundle.degraded.add();
  }
}

Frame EstimationService::handle_estimate(const Frame& request,
                                         RequestRecord& record) {
  const auto req = parse_estimate_request(request.payload);
  if (!req) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::counters_enabled()) obs::svc_instruments().frame_malformed.add();
    return ready_error(CommandId::kEstimate, StatusCode::kMalformedFrame,
                       "estimate payload did not parse");
  }
  record.population_id = req->population_id;
  const std::string id_suffix =
      " [request-id=" + format_request_id(record.request_id) + "]";
  if (!valid_fraction(req->epsilon) || !valid_fraction(req->delta) ||
      req->robust > 1) {
    if (obs::counters_enabled()) obs::svc_instruments().req_rejected.add();
    return ready_error(CommandId::kEstimate, StatusCode::kInvalidArgument,
                       "epsilon/delta must be in (0, 1); robust in {0, 1}");
  }
  const auto entry = registry_.find(req->population_id);
  if (entry == nullptr) {
    if (obs::counters_enabled()) obs::svc_instruments().req_rejected.add();
    return ready_error(CommandId::kEstimate, StatusCode::kNotFound,
                       "population id not registered");
  }
  PopulationStats& pop = entry->stats;
  pop.requests.fetch_add(1, std::memory_order_relaxed);
  if (obs::counters_enabled()) obs::svc_pop_instruments().requests.add();

  const std::uint64_t budget = req->deadline_slots;  // 0 = unlimited

  // --- Result cache: epoch-pinned exact-payload lookup --------------------
  // The key captures every input the response bytes depend on; the entry's
  // epoch pins the population *content*, so a re-registered id can never
  // serve stale bytes (registry.hpp).  A hit replays the fold and returns
  // the stored payload; a miss falls through to the real estimate and
  // publishes its payload on success.
  ResultCache::Key cache_key;
  cache_key.epoch = entry->epoch;
  cache_key.population_id = req->population_id;
  cache_key.seed = req->seed;
  cache_key.epsilon_bits = f64_bits(req->epsilon);
  cache_key.delta_bits = f64_bits(req->delta);
  cache_key.deadline_slots = req->deadline_slots;
  cache_key.robust = req->robust;
  cache_key.vote_reads = config_.vote_reads;
  cache_key.vote_quorum = config_.vote_quorum;
  if (cache_.enabled()) {
    std::vector<std::uint8_t> cached_payload;
    ResultCache::Replay cached_replay;
    if (cache_.lookup(cache_key, cached_payload, cached_replay)) {
      record.cache_hit = 1;
      replay_cache_hit(pop, cached_replay, budget, record);
      if (obs::counters_enabled()) {
        obs::svc_cache_instruments().hits.add();
        obs::svc_cache_instruments().bytes.set(
            static_cast<double>(cache_.stats().bytes));
      }
      if (obs::full_enabled()) {
        obs::trace_event("svc.estimate",
                         {{"population", std::to_string(req->population_id)},
                          {"rounds", std::to_string(record.rounds)},
                          {"planned", std::to_string(record.planned_rounds)},
                          {"degraded",
                           std::to_string(record.degrade_mask != 0 ? 1 : 0)},
                          {"retries", std::to_string(record.retries)},
                          {"cache_hit", "1"}});
      }
      return make_response(CommandId::kEstimate,
                           static_cast<std::uint16_t>(StatusCode::kOk),
                           std::move(cached_payload));
    }
    if (obs::counters_enabled()) obs::svc_cache_instruments().misses.add();
  }

  // --- Transient link faults: seeded retry with capped backoff -----------
  // One FaultModel per request, seeded from (service fault seed, request
  // seed): the fault sequence — and therefore the retry schedule — is a
  // pure function of the request, independent of arrival order or pool
  // width.  Backoff is virtual (slots charged against the deadline budget,
  // not slept): petd must not burn a worker thread idling.
  sim::ChannelImpairments link = config_.link_faults;
  link.seed = rng::derive_seed(config_.link_faults.seed, req->seed);
  sim::FaultModel fault_model(link);
  BackoffSchedule schedule(config_.retry,
                           rng::derive_seed(req->seed, kBackoffStream));
  std::uint64_t backoff_spent = 0;
  for (std::uint32_t attempt = 1;; ++attempt) {
    fault_model.begin_slot();
    const bool link_fault =
        fault_model.reader_down() || fault_model.erases_reply();
    if (!link_fault) break;
    if (!schedule.allows_retry(attempt)) {
      record.retries = schedule.retries();
      record.backoff_slots = backoff_spent;
      record.latency_slots = backoff_spent;
      note_estimate_failure(pop, record);
      if (obs::counters_enabled()) {
        obs::svc_instruments().retry_exhausted.add();
        obs::svc_instruments().req_rejected.add();
      }
      return ready_error(
          CommandId::kEstimate, StatusCode::kUnavailable,
          "transient link faults outlasted the retry policy" + id_suffix);
    }
    const std::uint64_t wait = schedule.next_backoff_slots();
    backoff_spent += wait;
    if (obs::counters_enabled()) {
      obs::svc_instruments().retry_attempts.add();
      obs::svc_instruments().retry_backoff_slots.add(wait);
    }
    if (budget > 0 && backoff_spent >= budget) {
      record.retries = schedule.retries();
      record.backoff_slots = backoff_spent;
      record.latency_slots = backoff_spent;
      note_estimate_failure(pop, record);
      pop.deadline_misses.fetch_add(1, std::memory_order_relaxed);
      if (obs::counters_enabled()) {
        obs::svc_pop_instruments().deadline_misses.add();
        obs::svc_instruments().deadline_misses.add();
        obs::svc_instruments().req_rejected.add();
      }
      return ready_error(
          CommandId::kEstimate, StatusCode::kDeadlineExceeded,
          "retry backoff consumed the deadline budget" + id_suffix);
    }
  }
  record.retries = schedule.retries();
  record.backoff_slots = backoff_spent;

  // --- Deadline fit: decide the degrade level before estimating ----------
  const stats::AccuracyRequirement requirement{req->epsilon, req->delta};
  const unsigned tree_height = config_.registry.tree_height;
  core::PetConfig base;
  base.tree_height = tree_height;
  const bool robust = req->robust == 1;

  std::uint64_t planned = 0;
  std::uint64_t slots_per_round = 0;
  std::optional<core::RobustPetEstimator> robust_estimator;
  std::optional<core::PetEstimator> vanilla_estimator;
  if (robust) {
    core::RobustPetConfig rc;
    rc.base = base;
    rc.vote_reads = config_.vote_reads;
    rc.vote_quorum = config_.vote_quorum;
    robust_estimator.emplace(rc, requirement);
    planned = robust_estimator->planned_rounds();
    // Worst case every probe goes to a full m-read vote.
    slots_per_round =
        static_cast<std::uint64_t>(base.worst_case_slots_per_round()) *
        config_.vote_reads;
  } else {
    vanilla_estimator.emplace(base, requirement);
    planned = vanilla_estimator->planned_rounds();
    slots_per_round = base.worst_case_slots_per_round();
  }

  record.planned_rounds = planned;
  const std::uint64_t remaining = budget > 0 ? budget - backoff_spent : 0;
  std::uint64_t fit_rounds = planned;
  if (budget > 0) {
    fit_rounds = std::min<std::uint64_t>(planned, remaining / slots_per_round);
    if (fit_rounds == 0) {
      record.latency_slots = backoff_spent;
      note_estimate_failure(pop, record);
      pop.deadline_misses.fetch_add(1, std::memory_order_relaxed);
      if (obs::counters_enabled()) {
        obs::svc_pop_instruments().deadline_misses.add();
        obs::svc_instruments().deadline_misses.add();
        obs::svc_instruments().req_rejected.add();
      }
      return ready_error(
          CommandId::kEstimate, StatusCode::kDeadlineExceeded,
          "deadline budget cannot fit a single round" + id_suffix);
    }
  }

  // Wall-clock backstop (daemon only; breaks determinism, see config).
  std::optional<std::chrono::steady_clock::time_point> wall_deadline;
  if (budget > 0 && config_.slot_us > 0) {
    wall_deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(budget * config_.slot_us);
  }

  // --- Run, serialized per population over its long-lived channel --------
  EstimateReply reply;
  reply.population_id = req->population_id;
  reply.planned_rounds = planned;
  reply.retries = schedule.retries();
  reply.backoff_slots = backoff_spent;
  {
    std::lock_guard lock(entry->mutex);
    chan::SortedPetChannel& channel = *entry->channel;
    channel.reset_ledger();
    const core::RoundGate gate =
        [&](std::uint64_t /*rounds_done*/) -> bool {
      if (draining_.load(std::memory_order_relaxed)) return false;
      if (budget > 0) {
        const sim::SlotLedger& led = channel.ledger();
        if (led.total_slots() + led.retry_slots >= remaining) return false;
      }
      if (wall_deadline &&
          std::chrono::steady_clock::now() >= *wall_deadline) {
        return false;
      }
      return true;
    };

    if (robust) {
      const core::RobustEstimateResult result =
          robust_estimator->estimate_with_rounds(channel, fit_rounds,
                                                 req->seed, gate);
      reply.n_hat = result.base.n_hat;
      reply.ci_lo = result.interval.lo;
      reply.ci_hi = result.interval.hi;
      reply.rounds = result.base.rounds;
      reply.truncated = result.base.truncated ? 1 : 0;
      reply.health = static_cast<std::uint8_t>(result.diagnostic.health);
      const sim::SlotLedger& led = result.base.ledger;
      reply.query_slots = led.total_slots() + led.retry_slots;
      if (result.base.truncated) record.degrade_mask |= kDegradeTruncated;
      if (fit_rounds < planned) record.degrade_mask |= kDegradeFitShort;
      if (result.retry_budget_exhausted) {
        record.degrade_mask |= kDegradeRetryBudget;
      }
      if (result.diagnostic.contract_at_risk()) {
        record.degrade_mask |= kDegradeHealth;
      }
    } else {
      const core::EstimateResult result =
          vanilla_estimator->estimate_with_rounds(channel, fit_rounds,
                                                  req->seed, gate);
      reply.n_hat = result.n_hat;
      const core::ConfidenceInterval interval =
          core::confidence_interval(result, req->delta);
      reply.ci_lo = interval.lo;
      reply.ci_hi = interval.hi;
      reply.rounds = result.rounds;
      reply.truncated = result.truncated ? 1 : 0;
      reply.query_slots = result.ledger.total_slots();
      if (result.truncated) record.degrade_mask |= kDegradeTruncated;
      if (fit_rounds < planned) record.degrade_mask |= kDegradeFitShort;
    }
    reply.degraded = record.degrade_mask != 0 ? 1 : 0;
    channel.flush_obs();
  }

  record.rounds = reply.rounds;
  record.query_slots = reply.query_slots;
  record.latency_slots = reply.backoff_slots + reply.query_slots;

  // --- Per-population fold (the cells kMonitor and kMetrics both read) ----
  pop.ok.fetch_add(1, std::memory_order_relaxed);
  pop.retries.fetch_add(reply.retries, std::memory_order_relaxed);
  pop.backoff_slots.fetch_add(reply.backoff_slots, std::memory_order_relaxed);
  pop.query_slots.fetch_add(reply.query_slots, std::memory_order_relaxed);
  pop.rounds.fetch_add(reply.rounds, std::memory_order_relaxed);
  pop.rounds_planned.fetch_add(planned, std::memory_order_relaxed);
  pop.observe_latency_slots(record.latency_slots);
  if (reply.truncated != 0) {
    pop.truncated.fetch_add(1, std::memory_order_relaxed);
  }
  if (reply.truncated != 0 && budget > 0) {
    // The slot budget stopped the round loop early: a deadline miss that
    // still produced a (degraded) answer.
    pop.deadline_misses.fetch_add(1, std::memory_order_relaxed);
    if (obs::counters_enabled()) obs::svc_instruments().deadline_misses.add();
  }
  if (reply.degraded != 0) {
    pop.degraded.fetch_add(1, std::memory_order_relaxed);
    if (obs::counters_enabled()) obs::svc_instruments().req_degraded.add();
  }
  if (obs::counters_enabled()) {
    const obs::SvcPopInstruments& bundle = obs::svc_pop_instruments();
    bundle.ok.add();
    bundle.retries.add(reply.retries);
    bundle.backoff_slots.add(reply.backoff_slots);
    bundle.query_slots.add(reply.query_slots);
    bundle.rounds.add(reply.rounds);
    bundle.rounds_planned.add(planned);
    bundle.latency_slots.observe(static_cast<double>(record.latency_slots));
    if (reply.truncated != 0) bundle.truncated.add();
    if (reply.truncated != 0 && budget > 0) bundle.deadline_misses.add();
    if (reply.degraded != 0) bundle.degraded.add();
  }
  if (obs::full_enabled()) {
    obs::trace_event("svc.estimate",
                     {{"population", std::to_string(req->population_id)},
                      {"rounds", std::to_string(reply.rounds)},
                      {"planned", std::to_string(planned)},
                      {"degraded", std::to_string(reply.degraded)},
                      {"retries", std::to_string(reply.retries)}});
  }

  std::vector<std::uint8_t> payload = encode(reply);
  // Publish only replies that are pure functions of the request: a round
  // loop stopped by the drain flag or the wall-clock backstop produced
  // bytes an identical future request would not reproduce.
  const bool impure_truncation =
      reply.truncated != 0 && (draining_.load(std::memory_order_relaxed) ||
                               wall_deadline.has_value());
  if (cache_.enabled() && !impure_truncation) {
    ResultCache::Replay publish;
    publish.planned_rounds = planned;
    publish.rounds = reply.rounds;
    publish.query_slots = reply.query_slots;
    publish.backoff_slots = reply.backoff_slots;
    publish.retries = reply.retries;
    publish.degrade_mask = record.degrade_mask;
    publish.degraded = reply.degraded;
    publish.truncated = reply.truncated;
    const std::size_t evicted = cache_.insert(cache_key, payload, publish);
    if (obs::counters_enabled()) {
      if (evicted > 0) obs::svc_cache_instruments().evictions.add(evicted);
      obs::svc_cache_instruments().bytes.set(
          static_cast<double>(cache_.stats().bytes));
    }
  }
  return make_response(CommandId::kEstimate,
                       static_cast<std::uint16_t>(StatusCode::kOk),
                       std::move(payload));
}

}  // namespace pet::svc
