#include "service/registry.hpp"

#include <algorithm>
#include <utility>

#include "common/ensure.hpp"
#include "rng/prng.hpp"
#include "service/shard.hpp"
#include "tags/population.hpp"

namespace pet::svc {

void PopulationStats::observe_latency_slots(std::uint64_t slots) noexcept {
  std::size_t bucket = 0;
  while (bucket < obs::kSvcLatencySlotBounds.size() &&
         static_cast<double>(slots) > obs::kSvcLatencySlotBounds[bucket]) {
    ++bucket;
  }
  latency_slots[bucket].fetch_add(1, std::memory_order_relaxed);
}

void PopulationStatsSnapshot::accumulate(const PopulationStats& stats) noexcept {
  const auto load = [](const std::atomic<std::uint64_t>& cell) {
    return cell.load(std::memory_order_relaxed);
  };
  requests += load(stats.requests);
  ok += load(stats.ok);
  degraded += load(stats.degraded);
  truncated += load(stats.truncated);
  errors += load(stats.errors);
  shed += load(stats.shed);
  deadline_misses += load(stats.deadline_misses);
  retries += load(stats.retries);
  backoff_slots += load(stats.backoff_slots);
  query_slots += load(stats.query_slots);
  rounds += load(stats.rounds);
  rounds_planned += load(stats.rounds_planned);
  cache_hits += load(stats.cache_hits);
  for (std::size_t i = 0; i < latency_slots.size(); ++i) {
    latency_slots[i] += load(stats.latency_slots[i]);
  }
}

namespace {

void accumulate_snapshot(PopulationStatsSnapshot& into,
                         const PopulationStatsSnapshot& from) noexcept {
  into.requests += from.requests;
  into.ok += from.ok;
  into.degraded += from.degraded;
  into.truncated += from.truncated;
  into.errors += from.errors;
  into.shed += from.shed;
  into.deadline_misses += from.deadline_misses;
  into.retries += from.retries;
  into.backoff_slots += from.backoff_slots;
  into.query_slots += from.query_slots;
  into.rounds += from.rounds;
  into.rounds_planned += from.rounds_planned;
  into.cache_hits += from.cache_hits;
  for (std::size_t i = 0; i < into.latency_slots.size(); ++i) {
    into.latency_slots[i] += from.latency_slots[i];
  }
}

}  // namespace

PopulationRegistry::PopulationRegistry(RegistryConfig config, unsigned slices)
    : config_(config) {
  expects(config_.max_populations >= 1,
          "RegistryConfig: max_populations must be >= 1");
  expects(config_.tree_height >= 2 && config_.tree_height <= 64,
          "RegistryConfig: tree_height must be in [2, 64]");
  expects(slices >= 1, "PopulationRegistry: slices must be >= 1");
  slices_.reserve(slices);
  for (unsigned s = 0; s < slices; ++s) {
    slices_.push_back(std::make_unique<Slice>());
  }
}

PopulationRegistry::Slice& PopulationRegistry::slice_for(
    std::uint64_t id) noexcept {
  return *slices_[shard_of(id, static_cast<std::uint32_t>(slices_.size()))];
}

const PopulationRegistry::Slice& PopulationRegistry::slice_for(
    std::uint64_t id) const noexcept {
  return *slices_[shard_of(id, static_cast<std::uint32_t>(slices_.size()))];
}

PopulationRegistry::RegisterOutcome PopulationRegistry::register_population(
    std::uint64_t id, std::uint64_t tag_count, std::uint64_t population_seed) {
  if (tag_count > config_.max_tags_per_population) {
    return RegisterOutcome::kInvalidRequest;
  }

  // Generate tags and build the sorted channel *outside* the slice lock:
  // registration of a million-tag population must not stall lookups.
  auto entry = std::make_shared<Entry>();
  entry->id = id;
  const auto population = tags::TagPopulation::generate(
      static_cast<std::size_t>(tag_count), population_seed);
  entry->tags.assign(population.ids().begin(), population.ids().end());
  chan::SortedPetChannelConfig channel_config;
  channel_config.tree_height = config_.tree_height;
  channel_config.manufacturing_seed = rng::derive_seed(population_seed, 1);
  entry->channel = std::make_unique<chan::SortedPetChannel>(entry->tags,
                                                            channel_config);

  Slice& slice = slice_for(id);
  std::lock_guard lock(slice.mutex);
  if (slice.entries.find(id) != slice.entries.end()) {
    return RegisterOutcome::kAlreadyExists;
  }
  // Capacity is global across slices: claim a slot atomically, hand it back
  // if the claim overshot the cap (two racing registrations on different
  // slices cannot both squeeze past the limit).
  if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 >
      config_.max_populations) {
    count_.fetch_sub(1, std::memory_order_acq_rel);
    return RegisterOutcome::kFull;
  }
  entry->epoch = epoch_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  slice.entries.emplace(id, std::move(entry));
  return RegisterOutcome::kRegistered;
}

bool PopulationRegistry::unregister_population(std::uint64_t id) {
  Slice& slice = slice_for(id);
  std::lock_guard lock(slice.mutex);
  const auto it = slice.entries.find(id);
  if (it == slice.entries.end()) return false;
  // Fold the leaving population's totals into the retired accumulator so
  // fold_stats() (and therefore kMonitor) is monotone across churn.
  slice.retired.accumulate(it->second->stats);
  slice.entries.erase(it);
  count_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

std::shared_ptr<PopulationRegistry::Entry> PopulationRegistry::find(
    std::uint64_t id) const {
  const Slice& slice = slice_for(id);
  std::lock_guard lock(slice.mutex);
  const auto it = slice.entries.find(id);
  return it == slice.entries.end() ? nullptr : it->second;
}

std::size_t PopulationRegistry::size() const {
  return count_.load(std::memory_order_acquire);
}

PopulationStatsSnapshot PopulationRegistry::fold_stats() const {
  PopulationStatsSnapshot total;
  for (const auto& slice : slices_) {
    std::lock_guard lock(slice->mutex);
    accumulate_snapshot(total, slice->retired);
    for (const auto& [id, entry] : slice->entries) {
      (void)id;
      total.accumulate(entry->stats);
    }
  }
  return total;
}

std::vector<std::pair<std::uint64_t, PopulationStatsSnapshot>>
PopulationRegistry::snapshot_stats() const {
  std::vector<std::pair<std::uint64_t, PopulationStatsSnapshot>> out;
  for (const auto& slice : slices_) {
    std::lock_guard lock(slice->mutex);
    out.reserve(out.size() + slice->entries.size());
    for (const auto& [id, entry] : slice->entries) {
      PopulationStatsSnapshot snap;
      snap.accumulate(entry->stats);
      out.emplace_back(id, snap);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace pet::svc
