#include "service/registry.hpp"

#include <utility>

#include "common/ensure.hpp"
#include "rng/prng.hpp"
#include "tags/population.hpp"

namespace pet::svc {

PopulationRegistry::PopulationRegistry(RegistryConfig config)
    : config_(config) {
  expects(config_.max_populations >= 1,
          "RegistryConfig: max_populations must be >= 1");
  expects(config_.tree_height >= 2 && config_.tree_height <= 64,
          "RegistryConfig: tree_height must be in [2, 64]");
}

PopulationRegistry::RegisterOutcome PopulationRegistry::register_population(
    std::uint64_t id, std::uint64_t tag_count, std::uint64_t population_seed) {
  if (tag_count > config_.max_tags_per_population) {
    return RegisterOutcome::kInvalidRequest;
  }

  // Generate tags and build the sorted channel *outside* the registry lock:
  // registration of a million-tag population must not stall lookups.
  auto entry = std::make_shared<Entry>();
  entry->id = id;
  const auto population = tags::TagPopulation::generate(
      static_cast<std::size_t>(tag_count), population_seed);
  entry->tags.assign(population.ids().begin(), population.ids().end());
  chan::SortedPetChannelConfig channel_config;
  channel_config.tree_height = config_.tree_height;
  channel_config.manufacturing_seed = rng::derive_seed(population_seed, 1);
  entry->channel = std::make_unique<chan::SortedPetChannel>(entry->tags,
                                                            channel_config);

  std::lock_guard lock(mutex_);
  if (entries_.size() >= config_.max_populations) {
    return RegisterOutcome::kFull;
  }
  const auto [it, inserted] = entries_.emplace(id, std::move(entry));
  (void)it;
  return inserted ? RegisterOutcome::kRegistered
                  : RegisterOutcome::kAlreadyExists;
}

bool PopulationRegistry::unregister_population(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  return entries_.erase(id) > 0;
}

std::shared_ptr<PopulationRegistry::Entry> PopulationRegistry::find(
    std::uint64_t id) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second;
}

std::size_t PopulationRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace pet::svc
