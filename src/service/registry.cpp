#include "service/registry.hpp"

#include <algorithm>
#include <utility>

#include "common/ensure.hpp"
#include "rng/prng.hpp"
#include "tags/population.hpp"

namespace pet::svc {

void PopulationStats::observe_latency_slots(std::uint64_t slots) noexcept {
  std::size_t bucket = 0;
  while (bucket < obs::kSvcLatencySlotBounds.size() &&
         static_cast<double>(slots) > obs::kSvcLatencySlotBounds[bucket]) {
    ++bucket;
  }
  latency_slots[bucket].fetch_add(1, std::memory_order_relaxed);
}

void PopulationStatsSnapshot::accumulate(const PopulationStats& stats) noexcept {
  const auto load = [](const std::atomic<std::uint64_t>& cell) {
    return cell.load(std::memory_order_relaxed);
  };
  requests += load(stats.requests);
  ok += load(stats.ok);
  degraded += load(stats.degraded);
  truncated += load(stats.truncated);
  errors += load(stats.errors);
  shed += load(stats.shed);
  deadline_misses += load(stats.deadline_misses);
  retries += load(stats.retries);
  backoff_slots += load(stats.backoff_slots);
  query_slots += load(stats.query_slots);
  rounds += load(stats.rounds);
  rounds_planned += load(stats.rounds_planned);
  for (std::size_t i = 0; i < latency_slots.size(); ++i) {
    latency_slots[i] += load(stats.latency_slots[i]);
  }
}

PopulationRegistry::PopulationRegistry(RegistryConfig config)
    : config_(config) {
  expects(config_.max_populations >= 1,
          "RegistryConfig: max_populations must be >= 1");
  expects(config_.tree_height >= 2 && config_.tree_height <= 64,
          "RegistryConfig: tree_height must be in [2, 64]");
}

PopulationRegistry::RegisterOutcome PopulationRegistry::register_population(
    std::uint64_t id, std::uint64_t tag_count, std::uint64_t population_seed) {
  if (tag_count > config_.max_tags_per_population) {
    return RegisterOutcome::kInvalidRequest;
  }

  // Generate tags and build the sorted channel *outside* the registry lock:
  // registration of a million-tag population must not stall lookups.
  auto entry = std::make_shared<Entry>();
  entry->id = id;
  const auto population = tags::TagPopulation::generate(
      static_cast<std::size_t>(tag_count), population_seed);
  entry->tags.assign(population.ids().begin(), population.ids().end());
  chan::SortedPetChannelConfig channel_config;
  channel_config.tree_height = config_.tree_height;
  channel_config.manufacturing_seed = rng::derive_seed(population_seed, 1);
  entry->channel = std::make_unique<chan::SortedPetChannel>(entry->tags,
                                                            channel_config);

  std::lock_guard lock(mutex_);
  if (entries_.size() >= config_.max_populations) {
    return RegisterOutcome::kFull;
  }
  const auto [it, inserted] = entries_.emplace(id, std::move(entry));
  (void)it;
  return inserted ? RegisterOutcome::kRegistered
                  : RegisterOutcome::kAlreadyExists;
}

bool PopulationRegistry::unregister_population(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  // Fold the leaving population's totals into the retired accumulator so
  // fold_stats() (and therefore kMonitor) is monotone across churn.
  retired_.accumulate(it->second->stats);
  entries_.erase(it);
  return true;
}

std::shared_ptr<PopulationRegistry::Entry> PopulationRegistry::find(
    std::uint64_t id) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second;
}

std::size_t PopulationRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

PopulationStatsSnapshot PopulationRegistry::fold_stats() const {
  std::lock_guard lock(mutex_);
  PopulationStatsSnapshot total = retired_;
  for (const auto& [id, entry] : entries_) {
    (void)id;
    total.accumulate(entry->stats);
  }
  return total;
}

std::vector<std::pair<std::uint64_t, PopulationStatsSnapshot>>
PopulationRegistry::snapshot_stats() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::uint64_t, PopulationStatsSnapshot>> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    PopulationStatsSnapshot snap;
    snap.accumulate(entry->stats);
    out.emplace_back(id, snap);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace pet::svc
