#include "service/messages.hpp"

#include <cstring>

namespace pet::svc {

std::string_view to_string(CommandId command) noexcept {
  switch (command) {
    case CommandId::kPing: return "ping";
    case CommandId::kRegister: return "register";
    case CommandId::kUnregister: return "unregister";
    case CommandId::kEstimate: return "estimate";
    case CommandId::kMonitor: return "monitor";
    case CommandId::kMetrics: return "metrics";
    case CommandId::kFlightDump: return "flight-dump";
  }
  return "unknown";
}

// --- WireWriter ------------------------------------------------------------

void WireWriter::u8(std::uint8_t v) { out_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v & 0xFF));
  u8(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void WireWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v & 0xFFFF));
  u16(static_cast<std::uint16_t>((v >> 16) & 0xFFFF));
}

void WireWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  u32(static_cast<std::uint32_t>((v >> 32) & 0xFFFFFFFFu));
}

void WireWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

// --- WireReader ------------------------------------------------------------

bool WireReader::take(std::size_t n) noexcept {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t WireReader::u8() noexcept {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t WireReader::u16() noexcept {
  if (!take(2)) return 0;
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() noexcept {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t WireReader::u64() noexcept {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double WireReader::f64() noexcept {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// --- encode ----------------------------------------------------------------

std::vector<std::uint8_t> encode(const RegisterRequest& msg) {
  WireWriter w;
  w.u64(msg.population_id);
  w.u64(msg.tag_count);
  w.u64(msg.population_seed);
  return w.take();
}

std::vector<std::uint8_t> encode(const RegisterReply& msg) {
  WireWriter w;
  w.u64(msg.population_id);
  w.u64(msg.tag_count);
  return w.take();
}

std::vector<std::uint8_t> encode(const UnregisterRequest& msg) {
  WireWriter w;
  w.u64(msg.population_id);
  return w.take();
}

std::vector<std::uint8_t> encode(const EstimateRequest& msg) {
  WireWriter w;
  w.u64(msg.population_id);
  w.u64(msg.seed);
  w.f64(msg.epsilon);
  w.f64(msg.delta);
  w.u64(msg.deadline_slots);
  w.u8(msg.robust);
  return w.take();
}

std::vector<std::uint8_t> encode(const EstimateReply& msg) {
  WireWriter w;
  w.u64(msg.population_id);
  w.f64(msg.n_hat);
  w.f64(msg.ci_lo);
  w.f64(msg.ci_hi);
  w.u64(msg.rounds);
  w.u64(msg.planned_rounds);
  w.u64(msg.query_slots);
  w.u32(msg.retries);
  w.u64(msg.backoff_slots);
  w.u8(msg.degraded);
  w.u8(msg.truncated);
  w.u8(msg.health);
  return w.take();
}

std::vector<std::uint8_t> encode(const MonitorReply& msg) {
  WireWriter w;
  w.u64(msg.populations);
  w.u64(msg.inflight);
  w.u64(msg.accepted);
  w.u64(msg.completed);
  w.u64(msg.shed);
  w.u64(msg.degraded);
  w.u64(msg.deadline_misses);
  w.u64(msg.retries);
  w.u64(msg.malformed_frames);
  return w.take();
}

std::vector<std::uint8_t> encode(const MetricsRequest& msg) {
  WireWriter w;
  w.u8(msg.scope);
  w.u64(msg.population_id);
  return w.take();
}

std::vector<std::uint8_t> encode(const FlightDumpRequest& msg) {
  WireWriter w;
  w.u64(msg.request_id);
  w.u32(msg.max_records);
  return w.take();
}

std::vector<std::uint8_t> encode(const FlightDumpReply& msg) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(msg.records.size()));
  for (const RequestRecord& rec : msg.records) {
    w.u64(rec.request_id);
    w.u64(rec.population_id);
    w.u16(rec.command);
    w.u16(rec.status);
    w.u32(rec.degrade_mask);
    w.u64(rec.planned_rounds);
    w.u64(rec.rounds);
    w.u32(rec.retries);
    w.u64(rec.backoff_slots);
    w.u64(rec.query_slots);
    w.u64(rec.latency_slots);
    w.u64(rec.queue_us);
    w.u64(rec.handle_us);
    w.u16(rec.shard);
    w.u8(rec.cache_hit != 0 ? std::uint8_t{1} : std::uint8_t{0});
    w.u8(0);  // reserved (keeps the record u32-aligned for future flags)
  }
  return w.take();
}

// --- parse -----------------------------------------------------------------

namespace {

/// Shared tail check: the message parsed AND consumed the payload exactly.
template <typename T>
std::optional<T> finish(const WireReader& r, const T& msg) {
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

}  // namespace

std::optional<RegisterRequest> parse_register_request(
    const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  RegisterRequest msg;
  msg.population_id = r.u64();
  msg.tag_count = r.u64();
  msg.population_seed = r.u64();
  return finish(r, msg);
}

std::optional<RegisterReply> parse_register_reply(
    const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  RegisterReply msg;
  msg.population_id = r.u64();
  msg.tag_count = r.u64();
  return finish(r, msg);
}

std::optional<UnregisterRequest> parse_unregister_request(
    const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  UnregisterRequest msg;
  msg.population_id = r.u64();
  return finish(r, msg);
}

std::optional<EstimateRequest> parse_estimate_request(
    const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  EstimateRequest msg;
  msg.population_id = r.u64();
  msg.seed = r.u64();
  msg.epsilon = r.f64();
  msg.delta = r.f64();
  msg.deadline_slots = r.u64();
  msg.robust = r.u8();
  return finish(r, msg);
}

std::optional<EstimateReply> parse_estimate_reply(
    const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  EstimateReply msg;
  msg.population_id = r.u64();
  msg.n_hat = r.f64();
  msg.ci_lo = r.f64();
  msg.ci_hi = r.f64();
  msg.rounds = r.u64();
  msg.planned_rounds = r.u64();
  msg.query_slots = r.u64();
  msg.retries = r.u32();
  msg.backoff_slots = r.u64();
  msg.degraded = r.u8();
  msg.truncated = r.u8();
  msg.health = r.u8();
  return finish(r, msg);
}

std::optional<MonitorReply> parse_monitor_reply(
    const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  MonitorReply msg;
  msg.populations = r.u64();
  msg.inflight = r.u64();
  msg.accepted = r.u64();
  msg.completed = r.u64();
  msg.shed = r.u64();
  msg.degraded = r.u64();
  msg.deadline_misses = r.u64();
  msg.retries = r.u64();
  msg.malformed_frames = r.u64();
  return finish(r, msg);
}

std::optional<MetricsRequest> parse_metrics_request(
    const std::vector<std::uint8_t>& payload) {
  // An empty payload is the v1.1 shorthand for "full snapshot" so monitor-
  // style callers don't need to build a body.
  if (payload.empty()) return MetricsRequest{};
  WireReader r(payload);
  MetricsRequest msg;
  msg.scope = r.u8();
  msg.population_id = r.u64();
  return finish(r, msg);
}

std::optional<FlightDumpRequest> parse_flight_dump_request(
    const std::vector<std::uint8_t>& payload) {
  if (payload.empty()) return FlightDumpRequest{};
  WireReader r(payload);
  FlightDumpRequest msg;
  msg.request_id = r.u64();
  msg.max_records = r.u32();
  return finish(r, msg);
}

std::optional<FlightDumpReply> parse_flight_dump_reply(
    const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  FlightDumpReply msg;
  const std::uint32_t count = r.u32();
  // Record size is fixed (88 bytes), so a hostile count field is caught
  // before reserving: the payload must be exactly 4 + 88 * count bytes.
  if (payload.size() != 4 + static_cast<std::size_t>(count) * 88) {
    return std::nullopt;
  }
  msg.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RequestRecord rec;
    rec.request_id = r.u64();
    rec.population_id = r.u64();
    rec.command = r.u16();
    rec.status = r.u16();
    rec.degrade_mask = r.u32();
    rec.planned_rounds = r.u64();
    rec.rounds = r.u64();
    rec.retries = r.u32();
    rec.backoff_slots = r.u64();
    rec.query_slots = r.u64();
    rec.latency_slots = r.u64();
    rec.queue_us = r.u64();
    rec.handle_us = r.u64();
    rec.shard = r.u16();
    rec.cache_hit = r.u8() & 1;
    (void)r.u8();  // reserved
    msg.records.push_back(rec);
  }
  return finish(r, msg);
}

// --- frame helpers ---------------------------------------------------------

Frame make_request(CommandId command, std::vector<std::uint8_t> payload) {
  Frame frame;
  frame.command = static_cast<std::uint16_t>(command);
  frame.status = 0;
  frame.payload = std::move(payload);
  return frame;
}

Frame make_response(CommandId command, std::uint16_t status,
                    std::vector<std::uint8_t> payload) {
  Frame frame;
  frame.command = static_cast<std::uint16_t>(command);
  frame.status = status;
  frame.payload = std::move(payload);
  return frame;
}

Frame make_error(CommandId command, std::uint16_t status,
                 std::string_view detail) {
  std::vector<std::uint8_t> payload(detail.begin(), detail.end());
  return make_response(command, status, std::move(payload));
}

std::string error_detail(const Frame& frame) {
  return std::string(frame.payload.begin(), frame.payload.end());
}

}  // namespace pet::svc
