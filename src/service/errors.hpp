// pet::svc error taxonomy (docs/service.md).
//
// Every response frame carries one StatusCode; fault handling in petd is
// *typed* end to end — a shed request says RESOURCE_EXHAUSTED, a blown
// deadline says DEADLINE_EXCEEDED, a retry-exhausted channel says
// UNAVAILABLE — never a silent hang, never a silently wrong answer.
// Degradation is deliberately NOT a status: a degraded estimate is still a
// success (kOk) whose payload carries an explicit `degraded` flag and a
// widened interval, so clients can't mistake it for a full-contract answer
// but also don't lose the best-effort value.
#pragma once

#include <cstdint>
#include <string_view>

namespace pet::svc {

enum class StatusCode : std::uint16_t {
  kOk = 0,

  // Protocol / session errors.
  kMalformedFrame = 1,       ///< framing decoded but payload didn't parse
  kIncompatibleVersion = 2,  ///< semver major mismatch (see frame.hpp)
  kUnknownCommand = 3,
  kInvalidArgument = 4,

  // Registry errors.
  kNotFound = 5,       ///< population id not registered
  kAlreadyExists = 6,  ///< duplicate registration

  // Fault-tolerance lifecycle errors.
  kResourceExhausted = 7,  ///< bounded queue full / registry full: shed
  kDeadlineExceeded = 8,   ///< deadline can't fit even a degraded answer
  kUnavailable = 9,        ///< transient faults outlasted the retry policy
  kShuttingDown = 10,      ///< drain in progress; no new work accepted
  kInternal = 11,          ///< invariant failure inside the service

  // Capability errors.
  kUnsupported = 12,  ///< command compiled out of this build (PET_OBS=OFF)
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kMalformedFrame: return "MALFORMED_FRAME";
    case StatusCode::kIncompatibleVersion: return "INCOMPATIBLE_VERSION";
    case StatusCode::kUnknownCommand: return "UNKNOWN_COMMAND";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kShuttingDown: return "SHUTTING_DOWN";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnsupported: return "UNSUPPORTED";
  }
  return "UNKNOWN_STATUS";
}

/// Client-side retry guidance: transient conditions worth retrying with
/// backoff against a *different* moment in time (shed, drain, transient
/// channel faults); everything else is either success or a caller bug.
[[nodiscard]] constexpr bool is_retryable(StatusCode code) noexcept {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable ||
         code == StatusCode::kShuttingDown;
}

}  // namespace pet::svc
