#include "service/cache.hpp"

#include <utility>

#include "common/ensure.hpp"

namespace pet::svc {

namespace {

void hash_mix(std::size_t& h, std::uint64_t v) noexcept {
  // boost::hash_combine-style fold over a SplitMix64-mixed word.
  std::uint64_t x = v + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  h ^= static_cast<std::size_t>(x) + 0x9e3779b9u + (h << 6) + (h >> 2);
}

}  // namespace

std::size_t ResultCache::KeyHash::operator()(const Key& key) const noexcept {
  std::size_t h = 0;
  hash_mix(h, key.epoch);
  hash_mix(h, key.population_id);
  hash_mix(h, key.seed);
  hash_mix(h, key.epsilon_bits);
  hash_mix(h, key.delta_bits);
  hash_mix(h, key.deadline_slots);
  hash_mix(h, (static_cast<std::uint64_t>(key.robust) << 32) |
                  (static_cast<std::uint64_t>(key.vote_reads) << 16) |
                  key.vote_quorum);
  return h;
}

ResultCache::ResultCache(ResultCacheConfig config) : config_(config) {
  if (config_.max_entries > 0) {
    expects(config_.max_bytes > kEntryOverhead,
            "ResultCacheConfig: max_bytes too small to hold any entry");
  }
}

bool ResultCache::lookup(const Key& key, std::vector<std::uint8_t>& payload,
                         Replay& replay) {
  if (!enabled()) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  payload = it->second.payload;
  replay = it->second.replay;
  ++hits_;
  return true;
}

std::size_t ResultCache::insert(const Key& key,
                                const std::vector<std::uint8_t>& payload,
                                const Replay& replay) {
  if (!enabled()) return 0;
  const std::size_t cost = entry_bytes(payload);
  if (cost > config_.max_bytes) return 0;  // would never fit; don't thrash
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t evicted_before = evictions_;

  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh in place (identical bytes for a deterministic service, but
    // keep the accounting honest either way).
    bytes_ -= entry_bytes(it->second.payload);
    it->second.payload = payload;
    it->second.replay = replay;
    bytes_ += cost;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  } else {
    lru_.push_front(key);
    Node node;
    node.payload = payload;
    node.replay = replay;
    node.lru = lru_.begin();
    map_.emplace(key, std::move(node));
    bytes_ += cost;
  }

  while (map_.size() > config_.max_entries || bytes_ > config_.max_bytes) {
    evict_one_locked();
  }
  return static_cast<std::size_t>(evictions_ - evicted_before);
}

void ResultCache::evict_one_locked() {
  const Key victim = lru_.back();
  const auto it = map_.find(victim);
  bytes_ -= entry_bytes(it->second.payload);
  map_.erase(it);
  lru_.pop_back();
  ++evictions_;
}

ResultCacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ResultCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.entries = map_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace pet::svc
