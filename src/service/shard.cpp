#include "service/shard.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace pet::svc {

std::uint32_t shard_of(std::uint64_t population_id,
                       std::uint32_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  // SplitMix64 finalizer: full-avalanche mix so low-entropy id schemes
  // (sequential, stride-64, ...) still spread across shards.
  std::uint64_t x = population_id + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % shard_count);
}

unsigned derive_shard_count(unsigned worker_threads) noexcept {
  const unsigned workers = std::max(1u, worker_threads);
  return std::clamp(workers / 2, 1u, 8u);
}

ShardSet::ShardSet(unsigned shard_count, unsigned total_threads,
                   std::size_t total_inflight_cap) {
  expects(shard_count >= 1, "ShardSet: shard_count must be >= 1");
  threads_per_shard_ = std::max(1u, total_threads / shard_count);
  max_inflight_per_shard_ =
      std::max<std::size_t>(1, total_inflight_cap / shard_count);
  shards_.reserve(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->pool = std::make_unique<runtime::ThreadPool>(threads_per_shard_);
    shards_.push_back(std::move(shard));
  }
}

ShardSet::~ShardSet() {
  // Destroy pools explicitly before the inflight cells they reference via
  // queued tasks go away (~ThreadPool drains, so this blocks until every
  // submitted request has resolved).
  for (auto& shard : shards_) shard->pool.reset();
}

std::size_t ShardSet::acquire(unsigned shard) noexcept {
  return shards_[shard]->inflight.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void ShardSet::release(unsigned shard) noexcept {
  shards_[shard]->inflight.fetch_sub(1, std::memory_order_acq_rel);
}

std::future<void> ShardSet::submit(unsigned shard,
                                   std::function<void()> task) {
  return shards_[shard]->pool->submit(std::move(task));
}

void ShardSet::note_shed(unsigned shard) noexcept {
  shards_[shard]->shed.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ShardSet::inflight(unsigned shard) const noexcept {
  return shards_[shard]->inflight.load(std::memory_order_acquire);
}

std::size_t ShardSet::total_inflight() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->inflight.load(std::memory_order_acquire);
  }
  return total;
}

std::size_t ShardSet::max_inflight_depth() const noexcept {
  std::size_t depth = 0;
  for (const auto& shard : shards_) {
    depth = std::max(depth, shard->inflight.load(std::memory_order_acquire));
  }
  return depth;
}

std::uint64_t ShardSet::shed(unsigned shard) const noexcept {
  return shards_[shard]->shed.load(std::memory_order_relaxed);
}

std::uint64_t ShardSet::stolen_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->pool->stolen_total();
  return total;
}

std::vector<ShardSet::Snapshot> ShardSet::snapshot() const {
  std::vector<Snapshot> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const runtime::ThreadPool::Stats pool = shard->pool->stats();
    Snapshot snap;
    snap.inflight = shard->inflight.load(std::memory_order_acquire);
    snap.shed = shard->shed.load(std::memory_order_relaxed);
    snap.submitted = pool.submitted;
    snap.stolen = pool.stolen;
    out.push_back(snap);
  }
  return out;
}

}  // namespace pet::svc
