#include "service/metrics_export.hpp"

#include "obs/export.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "runtime/json.hpp"
#include "service/service.hpp"

namespace pet::svc {

namespace {

constexpr int kBoundPrecision = 6;

void append_field(std::string& out, const char* key, std::uint64_t value,
                  bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

std::string latency_histogram_object(
    const std::array<std::uint64_t, PopulationStats::kLatencyBuckets>&
        counts) {
  std::string out = "{\"bounds\":[";
  for (std::size_t i = 0; i < obs::kSvcLatencySlotBounds.size(); ++i) {
    if (i != 0) out += ',';
    out += runtime::json_number(obs::kSvcLatencySlotBounds[i],
                                kBoundPrecision);
  }
  out += "],\"counts\":[";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(counts[i]);
  }
  out += "]}";
  return out;
}

std::string stats_object(const PopulationStatsSnapshot& s) {
  std::string out = "{";
  bool first = true;
  append_field(out, "requests", s.requests, first);
  append_field(out, "ok", s.ok, first);
  append_field(out, "degraded", s.degraded, first);
  append_field(out, "truncated", s.truncated, first);
  append_field(out, "errors", s.errors, first);
  append_field(out, "shed", s.shed, first);
  append_field(out, "deadline_misses", s.deadline_misses, first);
  append_field(out, "retries", s.retries, first);
  append_field(out, "backoff_slots", s.backoff_slots, first);
  append_field(out, "query_slots", s.query_slots, first);
  append_field(out, "rounds", s.rounds, first);
  append_field(out, "rounds_planned", s.rounds_planned, first);
  append_field(out, "cache_hits", s.cache_hits, first);
  out += ",\"latency_slots\":";
  out += latency_histogram_object(s.latency_slots);
  out += "}";
  return out;
}

}  // namespace

std::string render_service_member(const EstimationService& service,
                                  bool include_profile) {
  const PopulationRegistry& registry = service.registry();
  std::string out = "\"service\":{\"populations\":{";
  bool first = true;
  for (const auto& [id, snap] : registry.snapshot_stats()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += std::to_string(id);
    out += "\":";
    out += stats_object(snap);
  }
  out += "},\"totals\":";
  out += stats_object(registry.fold_stats());
  const EstimationService::ConnectionTotals conn =
      service.connection_totals();
  out += ",\"connections\":{";
  bool cfirst = true;
  append_field(out, "opened", conn.opened, cfirst);
  append_field(out, "closed", conn.closed, cfirst);
  append_field(out, "frames_rx", conn.frames_rx, cfirst);
  append_field(out, "frames_tx", conn.frames_tx, cfirst);
  append_field(out, "bytes_rx", conn.bytes_rx, cfirst);
  append_field(out, "bytes_tx", conn.bytes_tx, cfirst);
  append_field(out, "resyncs", conn.resyncs, cfirst);
  out += "},\"cache\":{";
  const ResultCacheStats cache = service.cache_stats();
  bool hfirst = true;
  append_field(out, "hits", cache.hits, hfirst);
  append_field(out, "misses", cache.misses, hfirst);
  append_field(out, "evictions", cache.evictions, hfirst);
  append_field(out, "entries", cache.entries, hfirst);
  append_field(out, "bytes", cache.bytes, hfirst);
  append_field(out, "capacity_entries", service.cache().config().max_entries,
               hfirst);
  append_field(out, "capacity_bytes", service.cache().config().max_bytes,
               hfirst);
  out += "},\"flight\":{";
  bool ffirst = true;
  append_field(out, "capacity", service.flight().capacity(), ffirst);
  append_field(out, "recorded", service.flight().recorded(), ffirst);
  out += "}";
  if (include_profile) {
    // Per-shard breakdown: values depend on the configured shard count and
    // (for inflight/stolen) on live scheduling, so this member is
    // kFull-only — the deterministic document must stay byte-identical at
    // shards 1/2/8 (docs/service.md).
    const ShardSet& shards = service.shards();
    out += ",\"shards\":{";
    bool sfirst = true;
    append_field(out, "count", shards.count(), sfirst);
    append_field(out, "threads_per_shard", shards.threads_per_shard(), sfirst);
    append_field(out, "max_inflight_per_shard",
                 shards.max_inflight_per_shard(), sfirst);
    out += ",\"per_shard\":[";
    bool pfirst = true;
    for (const ShardSet::Snapshot& snap : shards.snapshot()) {
      if (!pfirst) out += ',';
      pfirst = false;
      out += "{";
      bool efirst = true;
      append_field(out, "inflight", snap.inflight, efirst);
      append_field(out, "shed", snap.shed, efirst);
      append_field(out, "submitted", snap.submitted, efirst);
      append_field(out, "stolen", snap.stolen, efirst);
      out += "}";
    }
    out += "]}";
  }
  out += "}";
  return out;
}

std::string render_metrics_document(const EstimationService& service,
                                    bool deterministic_only) {
  const obs::Snapshot snapshot = obs::MetricsRegistry::instance().snapshot();
  const std::string service_member =
      render_service_member(service, /*include_profile=*/!deterministic_only);
  if (!deterministic_only) {
    return obs::metrics_json(snapshot, {}, std::nullopt, service_member);
  }
  std::string out = "{\"schema\":\"pet.obs.v1\",\"level\":\"";
  out += obs::to_string(obs::level());
  out += "\",";
  out += obs::deterministic_json(snapshot);
  out += ',';
  out += service_member;
  out += "}";
  return out;
}

std::string render_population_document(
    std::uint64_t population_id, const PopulationStatsSnapshot& stats) {
  std::string out = "{\"schema\":\"pet.obs.v1\",\"level\":\"";
  out += obs::to_string(obs::level());
  out += "\",\"population\":";
  out += std::to_string(population_id);
  out += ",\"counters\":{";
  bool first = true;
  append_field(out, "pet.svc.pop.requests", stats.requests, first);
  append_field(out, "pet.svc.pop.ok", stats.ok, first);
  append_field(out, "pet.svc.pop.degraded", stats.degraded, first);
  append_field(out, "pet.svc.pop.truncated", stats.truncated, first);
  append_field(out, "pet.svc.pop.errors", stats.errors, first);
  append_field(out, "pet.svc.pop.shed", stats.shed, first);
  append_field(out, "pet.svc.pop.deadline_misses", stats.deadline_misses,
               first);
  append_field(out, "pet.svc.pop.retries", stats.retries, first);
  append_field(out, "pet.svc.pop.backoff_slots", stats.backoff_slots, first);
  append_field(out, "pet.svc.pop.query_slots", stats.query_slots, first);
  append_field(out, "pet.svc.pop.rounds", stats.rounds, first);
  append_field(out, "pet.svc.pop.rounds_planned", stats.rounds_planned,
               first);
  append_field(out, "pet.svc.pop.cache_hits", stats.cache_hits, first);
  out += "},\"gauges\":{},\"histograms\":{\"pet.svc.pop.latency_slots\":";
  out += latency_histogram_object(stats.latency_slots);
  out += "}}";
  return out;
}

}  // namespace pet::svc
