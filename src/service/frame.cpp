#include "service/frame.hpp"

#include <algorithm>
#include <cstring>

#include "common/ensure.hpp"

namespace pet::svc {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

[[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint8_t lrc(const std::uint8_t* data, std::size_t size) noexcept {
  std::uint8_t sum = 0;
  for (std::size_t i = 0; i < size; ++i) sum += data[i];
  return static_cast<std::uint8_t>(0x100u - sum);
}

std::string_view to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kFrame: return "frame";
    case DecodeStatus::kNeedMoreData: return "need-more-data";
    case DecodeStatus::kBadSof: return "bad-sof";
    case DecodeStatus::kBadHeaderLrc: return "bad-header-lrc";
    case DecodeStatus::kBadPayloadLrc: return "bad-payload-lrc";
    case DecodeStatus::kOversized: return "oversized";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  expects(frame.payload.size() <= kMaxPayload,
          "encode_frame: payload exceeds kMaxPayload");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + frame.payload.size() + 1);
  out.push_back(kSof);
  out.push_back(frame.ver_major);
  out.push_back(frame.ver_minor);
  put_u16(out, frame.command);
  put_u16(out, frame.status);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.push_back(lrc(out.data(), out.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  out.push_back(lrc(frame.payload.data(), frame.payload.size()));
  return out;
}

void Decoder::feed(const std::uint8_t* data, std::size_t size) {
  compact();
  buffer_.insert(buffer_.end(), data, data + size);
}

void Decoder::discard(std::size_t n) noexcept {
  consumed_ = std::min(consumed_ + n, buffer_.size());
}

void Decoder::compact() {
  // Drop already-consumed bytes so the buffer never grows past one frame's
  // worth of unconsumed data plus whatever the peer just sent.
  if (consumed_ == 0) return;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
}

DecodeStatus Decoder::next(Frame& out) {
  const std::uint8_t* base = buffer_.data() + consumed_;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail == 0) return DecodeStatus::kNeedMoreData;

  // Resync: skip to the next SOF byte.  Reported as one error per garbage
  // run so the caller can count it, then decoding continues at the SOF.
  if (base[0] != kSof) {
    const std::uint8_t* sof =
        static_cast<const std::uint8_t*>(std::memchr(base, kSof, avail));
    discard(sof == nullptr ? avail : static_cast<std::size_t>(sof - base));
    return DecodeStatus::kBadSof;
  }

  if (avail < kHeaderSize) return DecodeStatus::kNeedMoreData;

  // Header integrity first: a corrupt length field must never drive
  // buffering decisions.  On mismatch, skip only the SOF byte — the real
  // frame boundary may be just inside the bytes we mistook for a header.
  if (lrc(base, kHeaderSize - 1) != base[kHeaderSize - 1]) {
    discard(1);
    return DecodeStatus::kBadHeaderLrc;
  }

  const std::uint32_t len = get_u32(base + 7);
  if (len > kMaxPayload) {
    discard(1);
    return DecodeStatus::kOversized;
  }

  const std::size_t total = kHeaderSize + static_cast<std::size_t>(len) + 1;
  if (avail < total) return DecodeStatus::kNeedMoreData;

  const std::uint8_t* payload = base + kHeaderSize;
  if (lrc(payload, len) != payload[len]) {
    // Header verified, so the frame boundary is trustworthy: drop the whole
    // frame rather than rescanning byte by byte through its payload.
    discard(total);
    return DecodeStatus::kBadPayloadLrc;
  }

  out.ver_major = base[1];
  out.ver_minor = base[2];
  out.command = get_u16(base + 3);
  out.status = get_u16(base + 5);
  out.payload.assign(payload, payload + len);
  discard(total);
  return DecodeStatus::kFrame;
}

}  // namespace pet::svc
