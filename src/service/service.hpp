// pet::svc EstimationService: the fault-tolerant request engine behind petd
// (docs/service.md).
//
// Lifecycle of an estimate request:
//
//   submit() ─ route ─ admission ──> shard worker ── handle() ──> response
//              │       │                            │
//              │       ├ drain?   -> SHUTTING_DOWN  │├ cache hit -> stored
//              │       └ shard    -> RESOURCE_      ││  payload, fold replay
//              │         inflight    EXHAUSTED      │├ link fault? -> seeded
//              │         > budget    (shed)         ││  retry w/ capped exp.
//              │                                    ││  backoff; dry budget
//              └ shard = shard_of(population_id)    ││  -> UNAVAILABLE
//                                                   │├ deadline (slot budget)
//                                                   ││  can't fit plan ->
//                                                   ││  fewer rounds + Round-
//                                                   ││  Gate truncation ->
//                                                   ││  degraded=1, wider CI
//                                                   │└ budget gone before
//                                                   │   round 1 -> DEADLINE_
//                                                   │   EXCEEDED
//
// The service is partitioned into N population-affine *shards* (shard.hpp):
// each owns a slice of the registry's lock space, its own worker pool, and
// its own inflight-admission budget, so overload shedding and queueing are
// charged per shard and a hot population cannot inflate a cold population's
// latency.  In front of the shards sits a bounded LRU *result cache*
// (cache.hpp) keyed on (population epoch, request seed, accuracy contract,
// deadline, vote params); hits return the stored wire payload and replay
// the per-population fold, so every deterministic export is cache-invariant.
//
// Determinism contract: given the same request (id, seed, ε, δ, deadline)
// against the same registered population and service seeds, the response —
// estimate, CI, retry schedule, degraded/truncated flags — is byte-identical
// at any pool size, any shard count, and with the cache on or off.
// Everything time-like is measured in reply-window slots (backoff slots,
// deadline slot budgets); wall-clock deadline enforcement exists only as an
// opt-in daemon backstop and is off wherever determinism is asserted.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>

#include "service/cache.hpp"
#include "service/errors.hpp"
#include "service/flight.hpp"
#include "service/frame.hpp"
#include "service/messages.hpp"
#include "service/registry.hpp"
#include "service/retry.hpp"
#include "service/shard.hpp"
#include "sim/faults.hpp"

namespace pet::svc {

struct ServiceConfig {
  RegistryConfig registry{};
  RetryPolicy retry{};

  /// Transient link-fault model consulted once per estimate attempt (the
  /// "connection" to the tag field, not per-probe impairments).  Inert by
  /// default; chaos runs turn the knobs.  Each request draws from a private
  /// FaultModel seeded derive(link_faults.seed, request seed), so fault
  /// sequences replay per request regardless of arrival order.
  sim::ChannelImpairments link_faults{};

  /// Admission cap: split evenly across the shards into per-shard budgets
  /// (max(1, max_inflight / shards) each); requests in flight (queued +
  /// executing) beyond their shard's budget are shed immediately with
  /// RESOURCE_EXHAUSTED.
  std::size_t max_inflight = 256;

  /// Pool width for request execution; 0 picks hardware_threads().  The
  /// resolved width is split max(1, width / shards) threads per shard.
  unsigned worker_threads = 0;

  /// Population-affine shard count (shard = shard_of(population_id, N));
  /// 0 derives from the resolved worker width (derive_shard_count).
  unsigned shards = 0;

  /// Result-cache bounds (cache.hpp).  cache_entries == 0 disables the
  /// cache entirely — the default, so tests and benches opt in explicitly.
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = std::size_t{1} << 22;

  /// k-of-m voting parameters forwarded to RobustPetEstimator for
  /// robust=1 requests.
  unsigned vote_reads = 3;
  unsigned vote_quorum = 2;

  /// Worst-case slot cost of one estimation round, used to decide how many
  /// rounds fit a deadline budget *before* running (the degrade decision
  /// must not depend on outcomes it hasn't computed yet).
  /// Wall-clock backstop (daemon only): when > 0, a request's slot budget
  /// is also mapped to a steady-clock deadline at slot_us microseconds per
  /// slot and the round gate additionally stops on wall overrun.  Breaks
  /// bit-determinism by design; keep 0 in tests and benches.
  std::uint64_t slot_us = 0;

  /// Ring size of the flight recorder (last N per-request records, see
  /// flight.hpp).  Capped so a full kFlightDump reply always fits
  /// kMaxPayload.
  std::size_t flight_capacity = 256;

  void validate() const;

  /// Worker width after the 0 -> hardware_threads() default.
  [[nodiscard]] unsigned resolved_worker_threads() const noexcept;
  /// Shard count after the 0 -> derive_shard_count(workers) default.
  [[nodiscard]] unsigned resolved_shards() const noexcept;
};

class EstimationService {
 public:
  explicit EstimationService(ServiceConfig config = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Admission-controlled asynchronous execution.  Always returns a ready
  /// or eventually-ready future — shed/drain outcomes resolve immediately
  /// with the typed error frame, accepted requests resolve when their
  /// shard's worker finishes handle().
  [[nodiscard]] std::future<Frame> submit(Frame request);

  /// Synchronous request execution (the shard task body; also the direct
  /// path for tests and single-threaded tools).  Total: every input frame,
  /// however malformed, yields exactly one response frame.
  [[nodiscard]] Frame handle(const Frame& request);

  /// Enter drain: new submissions are refused with SHUTTING_DOWN, round
  /// gates of in-flight estimates trip at the next round boundary (they
  /// finish quickly as degraded best-effort responses).  Idempotent.
  void begin_shutdown() noexcept;
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Service-wide lifecycle totals (the kMonitor payload).  The degraded /
  /// deadline-miss / retry totals are folded from the per-population cells
  /// in the registry — the same cells the kMetrics export renders — so
  /// kMonitor and kMetrics cannot disagree.
  [[nodiscard]] MonitorReply stats() const;

  [[nodiscard]] PopulationRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const PopulationRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const FlightRecorder& flight() const noexcept {
    return flight_;
  }
  [[nodiscard]] const ShardSet& shards() const noexcept { return *shards_; }
  [[nodiscard]] unsigned shard_count() const noexcept {
    return shards_->count();
  }
  [[nodiscard]] const ResultCache& cache() const noexcept { return cache_; }
  [[nodiscard]] ResultCacheStats cache_stats() const { return cache_.stats(); }

  /// Count a malformed *frame* (decode-level garbage the session layer
  /// already resynced past); parse-level errors are counted inside handle().
  /// Every such event is also a decoder resync, so it feeds
  /// pet.svc.conn.resyncs.
  void note_malformed_frame() noexcept;

  // Transport accounting hooks for the session layer (petd's accept loop).
  // They feed the always-on connection totals plus the pet.svc.conn.*
  // bundle; a transport that doesn't call them simply exports zeros.
  void note_connection_opened() noexcept;
  void note_connection_closed() noexcept;
  void note_bytes_received(std::size_t bytes) noexcept;
  void note_frame_received() noexcept;
  void note_frame_sent(std::size_t wire_bytes) noexcept;

  /// Plain-value snapshot of the transport counters (kMetrics "connections"
  /// member).
  struct ConnectionTotals {
    std::uint64_t opened = 0;
    std::uint64_t closed = 0;
    std::uint64_t frames_rx = 0;
    std::uint64_t frames_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t resyncs = 0;
  };
  [[nodiscard]] ConnectionTotals connection_totals() const noexcept;

  /// Test hook: RAII occupation of `slots` admission slots, for driving the
  /// shed path deterministically without timing games.  The two-argument
  /// form holds `slots` on EVERY shard (any subsequent estimate competes
  /// with the hold); the population form holds only on that population's
  /// shard, which is how per-shard isolation is asserted.
  class [[nodiscard]] InflightHold {
   public:
    InflightHold(EstimationService& service, std::size_t slots) noexcept;
    InflightHold(EstimationService& service, std::size_t slots,
                 std::uint64_t population_id) noexcept;
    ~InflightHold();
    InflightHold(const InflightHold&) = delete;
    InflightHold& operator=(const InflightHold&) = delete;

   private:
    EstimationService& service_;
    std::size_t slots_;
    unsigned shard_ = 0;
    bool all_shards_ = false;
  };

 private:
  Frame handle_request(const Frame& request, std::uint64_t queue_us,
                       unsigned shard);
  Frame handle_ping(const Frame& request);
  Frame handle_register(const Frame& request);
  Frame handle_unregister(const Frame& request);
  Frame handle_estimate(const Frame& request, RequestRecord& record);
  Frame handle_monitor(const Frame& request);
  Frame handle_metrics(const Frame& request, RequestRecord& record);
  Frame handle_flight_dump(const Frame& request);

  /// Population-affine routing: estimate/register/unregister frames lead
  /// with their population id, which picks the shard; control-plane and
  /// unparseable frames land on shard 0.
  [[nodiscard]] unsigned route_shard(const Frame& request) const noexcept;

  /// Shed bookkeeping shared by the drain and inflight-cap paths: counts,
  /// population attribution, flight record; returns the " [request-id=...]"
  /// suffix for the error detail.
  std::string note_shed(const Frame& request, StatusCode status,
                        unsigned shard);

  /// Replay a cache hit: fill the flight record, charge the per-population
  /// fold deltas the miss path would have charged, bump the obs mirrors.
  void replay_cache_hit(PopulationStats& pop, const ResultCache::Replay& rep,
                        std::uint64_t budget, RequestRecord& record);

  ServiceConfig config_;
  PopulationRegistry registry_;
  ResultCache cache_;
  std::unique_ptr<ShardSet> shards_;
  FlightRecorder flight_;

  std::atomic<bool> draining_{false};

  // Lifecycle totals (relaxed: monotone counters, snapshot via stats()).
  // Degraded/deadline/retry totals live in the registry's per-population
  // cells, not here — stats() folds them so there is one source of truth.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> malformed_{0};

  // Transport totals fed by the note_connection_* / note_frame_* hooks.
  std::atomic<std::uint64_t> conn_opened_{0};
  std::atomic<std::uint64_t> conn_closed_{0};
  std::atomic<std::uint64_t> frames_rx_{0};
  std::atomic<std::uint64_t> frames_tx_{0};
  std::atomic<std::uint64_t> bytes_rx_{0};
  std::atomic<std::uint64_t> bytes_tx_{0};
  std::atomic<std::uint64_t> resyncs_{0};
};

}  // namespace pet::svc
