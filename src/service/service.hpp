// pet::svc EstimationService: the fault-tolerant request engine behind petd
// (docs/service.md).
//
// Lifecycle of an estimate request:
//
//   submit() ── admission ──> pool worker ── handle() ──> response frame
//               │                           │
//               ├ drain?    -> SHUTTING_DOWN│├ link fault?  -> seeded retry
//               └ inflight  -> RESOURCE_    ││  w/ capped exp. backoff; dry
//                 > cap        EXHAUSTED    ││  budget -> UNAVAILABLE
//                              (shed)       │├ deadline (slot budget) can't
//                                           ││  fit plan -> fewer rounds +
//                                           ││  RoundGate truncation ->
//                                           ││  degraded=1, widened CI
//                                           │└ budget gone before round 1
//                                           │   -> DEADLINE_EXCEEDED
//
// Determinism contract: given the same request (id, seed, ε, δ, deadline)
// against the same registered population and service seeds, the response —
// estimate, CI, retry schedule, degraded/truncated flags — is byte-identical
// at any pool size.  Everything time-like is measured in reply-window slots
// (backoff slots, deadline slot budgets); wall-clock deadline enforcement
// exists only as an opt-in daemon backstop and is off wherever determinism
// is asserted.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>

#include "runtime/thread_pool.hpp"
#include "service/errors.hpp"
#include "service/flight.hpp"
#include "service/frame.hpp"
#include "service/messages.hpp"
#include "service/registry.hpp"
#include "service/retry.hpp"
#include "sim/faults.hpp"

namespace pet::svc {

struct ServiceConfig {
  RegistryConfig registry{};
  RetryPolicy retry{};

  /// Transient link-fault model consulted once per estimate attempt (the
  /// "connection" to the tag field, not per-probe impairments).  Inert by
  /// default; chaos runs turn the knobs.  Each request draws from a private
  /// FaultModel seeded derive(link_faults.seed, request seed), so fault
  /// sequences replay per request regardless of arrival order.
  sim::ChannelImpairments link_faults{};

  /// Admission cap: requests in flight (queued + executing) beyond this are
  /// shed immediately with RESOURCE_EXHAUSTED.
  std::size_t max_inflight = 256;

  /// Pool width for request execution; 0 picks hardware_threads().
  unsigned worker_threads = 0;

  /// k-of-m voting parameters forwarded to RobustPetEstimator for
  /// robust=1 requests.
  unsigned vote_reads = 3;
  unsigned vote_quorum = 2;

  /// Worst-case slot cost of one estimation round, used to decide how many
  /// rounds fit a deadline budget *before* running (the degrade decision
  /// must not depend on outcomes it hasn't computed yet).
  /// Wall-clock backstop (daemon only): when > 0, a request's slot budget
  /// is also mapped to a steady-clock deadline at slot_us microseconds per
  /// slot and the round gate additionally stops on wall overrun.  Breaks
  /// bit-determinism by design; keep 0 in tests and benches.
  std::uint64_t slot_us = 0;

  /// Ring size of the flight recorder (last N per-request records, see
  /// flight.hpp).  Capped so a full kFlightDump reply always fits
  /// kMaxPayload.
  std::size_t flight_capacity = 256;

  void validate() const;
};

class EstimationService {
 public:
  explicit EstimationService(ServiceConfig config = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Admission-controlled asynchronous execution.  Always returns a ready
  /// or eventually-ready future — shed/drain outcomes resolve immediately
  /// with the typed error frame, accepted requests resolve when a pool
  /// worker finishes handle().
  [[nodiscard]] std::future<Frame> submit(Frame request);

  /// Synchronous request execution (the pool task body; also the direct
  /// path for tests and single-threaded tools).  Total: every input frame,
  /// however malformed, yields exactly one response frame.
  [[nodiscard]] Frame handle(const Frame& request);

  /// Enter drain: new submissions are refused with SHUTTING_DOWN, round
  /// gates of in-flight estimates trip at the next round boundary (they
  /// finish quickly as degraded best-effort responses).  Idempotent.
  void begin_shutdown() noexcept;
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Service-wide lifecycle totals (the kMonitor payload).  The degraded /
  /// deadline-miss / retry totals are folded from the per-population cells
  /// in the registry — the same cells the kMetrics export renders — so
  /// kMonitor and kMetrics cannot disagree.
  [[nodiscard]] MonitorReply stats() const;

  [[nodiscard]] PopulationRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const PopulationRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const FlightRecorder& flight() const noexcept {
    return flight_;
  }

  /// Count a malformed *frame* (decode-level garbage the session layer
  /// already resynced past); parse-level errors are counted inside handle().
  /// Every such event is also a decoder resync, so it feeds
  /// pet.svc.conn.resyncs.
  void note_malformed_frame() noexcept;

  // Transport accounting hooks for the session layer (petd's accept loop).
  // They feed the always-on connection totals plus the pet.svc.conn.*
  // bundle; a transport that doesn't call them simply exports zeros.
  void note_connection_opened() noexcept;
  void note_connection_closed() noexcept;
  void note_bytes_received(std::size_t bytes) noexcept;
  void note_frame_received() noexcept;
  void note_frame_sent(std::size_t wire_bytes) noexcept;

  /// Plain-value snapshot of the transport counters (kMetrics "connections"
  /// member).
  struct ConnectionTotals {
    std::uint64_t opened = 0;
    std::uint64_t closed = 0;
    std::uint64_t frames_rx = 0;
    std::uint64_t frames_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t resyncs = 0;
  };
  [[nodiscard]] ConnectionTotals connection_totals() const noexcept;

  /// Test hook: RAII occupation of `slots` admission slots, for driving the
  /// shed path deterministically without timing games.
  class [[nodiscard]] InflightHold {
   public:
    InflightHold(EstimationService& service, std::size_t slots) noexcept;
    ~InflightHold();
    InflightHold(const InflightHold&) = delete;
    InflightHold& operator=(const InflightHold&) = delete;

   private:
    EstimationService& service_;
    std::size_t slots_;
  };

 private:
  Frame handle_request(const Frame& request, std::uint64_t queue_us);
  Frame handle_ping(const Frame& request);
  Frame handle_register(const Frame& request);
  Frame handle_unregister(const Frame& request);
  Frame handle_estimate(const Frame& request, RequestRecord& record);
  Frame handle_monitor(const Frame& request);
  Frame handle_metrics(const Frame& request, RequestRecord& record);
  Frame handle_flight_dump(const Frame& request);

  /// Shed bookkeeping shared by the drain and inflight-cap paths: counts,
  /// population attribution, flight record; returns the " [request-id=...]"
  /// suffix for the error detail.
  std::string note_shed(const Frame& request, StatusCode status);

  ServiceConfig config_;
  PopulationRegistry registry_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  FlightRecorder flight_;

  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> inflight_{0};

  // Lifecycle totals (relaxed: monotone counters, snapshot via stats()).
  // Degraded/deadline/retry totals live in the registry's per-population
  // cells, not here — stats() folds them so there is one source of truth.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> malformed_{0};

  // Transport totals fed by the note_connection_* / note_frame_* hooks.
  std::atomic<std::uint64_t> conn_opened_{0};
  std::atomic<std::uint64_t> conn_closed_{0};
  std::atomic<std::uint64_t> frames_rx_{0};
  std::atomic<std::uint64_t> frames_tx_{0};
  std::atomic<std::uint64_t> bytes_rx_{0};
  std::atomic<std::uint64_t> bytes_tx_{0};
  std::atomic<std::uint64_t> resyncs_{0};
};

}  // namespace pet::svc
