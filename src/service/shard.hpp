// pet::svc population-affine sharding: the worker-pool partition behind
// EstimationService (docs/service.md).
//
// Every population id maps to exactly one shard (shard_of: a SplitMix64
// finalizer over the id, mod N), and every shard owns its own ThreadPool,
// inflight-admission budget, and shed accounting.  Routing is a pure
// function of the request content, so the shard a request lands on — and
// therefore the response bytes — is identical at any shard count and any
// pool width; only wall-clock interference changes.  That is the point: a
// hot population saturates its own shard's run queue and admission budget
// while the other shards' populations keep their latency.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace pet::svc {

/// Deterministic population -> shard map: SplitMix64 finalizer mix of the
/// id, reduced mod `shard_count`.  The mix step keeps sequential ids from
/// landing on sequential shards (registering ids 0..N-1 still spreads).
[[nodiscard]] std::uint32_t shard_of(std::uint64_t population_id,
                                     std::uint32_t shard_count) noexcept;

/// Default shard count for a service resolved to `worker_threads` workers:
/// half the workers, clamped to [1, 8] (a shard narrower than 2 threads
/// just adds queue-hop overhead; beyond 8 shards the per-shard inflight
/// budgets get too small to absorb bursts).
[[nodiscard]] unsigned derive_shard_count(unsigned worker_threads) noexcept;

/// The set of shards an EstimationService runs on.  Owns one ThreadPool per
/// shard plus the per-shard inflight/shed cells; admission (acquire /
/// release) and task submission are both per-shard.
class ShardSet {
 public:
  /// `total_threads` workers are split max(1, total/shards) per shard;
  /// `total_inflight_cap` splits the same way into per-shard admission
  /// budgets (so N shards can hold at most ~cap requests in flight overall,
  /// but no single shard can consume another's share).
  ShardSet(unsigned shard_count, unsigned total_threads,
           std::size_t total_inflight_cap);
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  [[nodiscard]] unsigned count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] unsigned threads_per_shard() const noexcept {
    return threads_per_shard_;
  }
  [[nodiscard]] std::size_t max_inflight_per_shard() const noexcept {
    return max_inflight_per_shard_;
  }

  /// Route a population id to its shard index.
  [[nodiscard]] unsigned route(std::uint64_t population_id) const noexcept {
    return shard_of(population_id, count());
  }

  /// Take one admission slot on `shard`; returns the occupancy *including*
  /// this request.  The caller sheds (and calls release) when the return
  /// value exceeds max_inflight_per_shard() and the request is not
  /// control-plane.
  std::size_t acquire(unsigned shard) noexcept;
  void release(unsigned shard) noexcept;

  /// Enqueue a task on `shard`'s pool.
  std::future<void> submit(unsigned shard, std::function<void()> task);

  void note_shed(unsigned shard) noexcept;

  [[nodiscard]] std::size_t inflight(unsigned shard) const noexcept;
  [[nodiscard]] std::size_t total_inflight() const noexcept;
  /// Deepest per-shard occupancy right now (the pet.svc.shard.depth gauge).
  [[nodiscard]] std::size_t max_inflight_depth() const noexcept;
  [[nodiscard]] std::uint64_t shed(unsigned shard) const noexcept;
  /// Tasks stolen between workers inside the shard pools, summed (the
  /// pet.svc.shard.steal gauge; strictly profile-domain).
  [[nodiscard]] std::uint64_t stolen_total() const noexcept;

  /// Plain-value per-shard snapshot for the kMetrics "shards" member.
  struct Snapshot {
    std::size_t inflight = 0;
    std::uint64_t shed = 0;
    std::uint64_t submitted = 0;
    std::uint64_t stolen = 0;
  };
  [[nodiscard]] std::vector<Snapshot> snapshot() const;

 private:
  struct alignas(64) Shard {
    std::unique_ptr<runtime::ThreadPool> pool;
    std::atomic<std::size_t> inflight{0};
    std::atomic<std::uint64_t> shed{0};
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  unsigned threads_per_shard_ = 1;
  std::size_t max_inflight_per_shard_ = 1;
};

}  // namespace pet::svc
