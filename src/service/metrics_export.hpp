// Rendering of the kMetrics wire command's JSON payloads (docs/service.md).
//
// Three document shapes, all under the pet.obs.v1 schema tag:
//
//   scope kFull          — the standard obs::metrics_json document with one
//                          extra top-level "service" member,
//   scope kDeterministic — schema/level + the Domain::kDeterministic
//                          fragments + "service"; no "profile".  This is
//                          the payload compared byte-for-byte across
//                          worker_threads in service_test,
//   scope kPopulation    — one population's pet.svc.pop.* slice rendered
//                          from its registry cells.
//
// The "service" member is rendered from the always-on service/registry
// cells (PopulationStats, ConnectionTotals, FlightRecorder), which are the
// same cells kMonitor folds — one source of truth on both commands.
#pragma once

#include <cstdint>
#include <string>

#include "service/registry.hpp"

namespace pet::svc {

class EstimationService;

/// The `"service":{...}` top-level member fragment: per-population stats,
/// fold totals, connection totals, result-cache counters, flight-recorder
/// occupancy.  `include_profile` additionally renders the per-shard
/// breakdown ("shards"), which depends on the configured shard count and
/// on scheduling — it rides only in scope-kFull documents so the
/// deterministic export stays byte-identical at shards 1/2/8.
[[nodiscard]] std::string render_service_member(
    const EstimationService& service, bool include_profile);

/// Full pet.obs.v1 document for scope kFull (deterministic_only=false) or
/// kDeterministic (=true).
[[nodiscard]] std::string render_metrics_document(
    const EstimationService& service, bool deterministic_only);

/// Single-population document for scope kPopulation.
[[nodiscard]] std::string render_population_document(
    std::uint64_t population_id, const PopulationStatsSnapshot& stats);

}  // namespace pet::svc
