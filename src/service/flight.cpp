#include "service/flight.hpp"

#include <array>
#include <cstdio>
#include <utility>

namespace pet::svc {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_byte(std::uint64_t& hash, std::uint8_t byte) noexcept {
  hash ^= byte;
  hash *= kFnvPrime;
}

}  // namespace

std::uint64_t derive_request_id(const Frame& frame) noexcept {
  std::uint64_t hash = kFnvOffset;
  fnv_byte(hash, static_cast<std::uint8_t>(frame.command & 0xFF));
  fnv_byte(hash, static_cast<std::uint8_t>(frame.command >> 8));
  for (const std::uint8_t byte : frame.payload) fnv_byte(hash, byte);
  return hash == 0 ? 1 : hash;
}

std::string format_request_id(std::uint64_t request_id) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(request_id));
  return buf;
}

std::string degrade_mask_to_string(std::uint32_t mask) {
  static constexpr std::array<std::pair<std::uint32_t, const char*>, 5> kBits =
      {{{kDegradeTruncated, "truncated"},
        {kDegradeFitShort, "fit-short"},
        {kDegradeRetryBudget, "retry-budget"},
        {kDegradeHealth, "health"},
        {kDegradeShed, "shed"}}};
  std::string out;
  for (const auto& [bit, name] : kBits) {
    if ((mask & bit) == 0) continue;
    if (!out.empty()) out += '|';
    out += name;
  }
  return out.empty() ? "-" : out;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(const RequestRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_] = record;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<RequestRecord> FlightRecorder::dump(
    std::uint64_t request_id, std::size_t max_records) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RequestRecord> out;
  out.reserve(ring_.size());
  // Oldest record is at next_ once wrapped, at 0 before that.
  const std::size_t count = ring_.size();
  const std::size_t start = count < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < count; ++i) {
    const RequestRecord& rec = ring_[(start + i) % count];
    if (request_id != 0 && rec.request_id != request_id) continue;
    out.push_back(rec);
  }
  if (max_records != 0 && out.size() > max_records) {
    out.erase(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(out.size() - max_records));
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

}  // namespace pet::svc
