// pet::svc retry policy: capped exponential backoff with seeded jitter.
//
// Retries here defend against *transient channel faults* — a request whose
// attempt hit a fault burst (sim::FaultModel reader outage / loss burst) is
// re-run under a fresh attempt seed after a backoff measured in reply-window
// slots.  Both the decision to retry and the backoff lengths are functions
// of (policy, schedule seed) only, so the full retry schedule — attempt
// count, per-attempt waits, final outcome — replays byte-for-byte at any
// --threads, which is what tests/service_test.cpp pins.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/prng.hpp"

namespace pet::svc {

struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  std::uint32_t max_attempts = 4;
  /// Backoff before retry k (1-based): min(base << (k-1), max), then
  /// jittered downward by up to `jitter` of itself ("decorrelated" enough
  /// to spread synchronized retriers, deterministic given the seed).
  std::uint64_t base_backoff_slots = 8;
  std::uint64_t max_backoff_slots = 256;
  double jitter = 0.5;  ///< in [0, 1]; 0 = fully deterministic ladder

  void validate() const;
};

/// One request's backoff stream.  Owns a private PRNG seeded from the
/// request, so concurrent requests never share jitter state — the property
/// that makes retry schedules independent of scheduling order.
class BackoffSchedule {
 public:
  BackoffSchedule(const RetryPolicy& policy, std::uint64_t seed) noexcept
      : policy_(policy), rng_(seed) {}

  /// Backoff (in slots) to wait before the next retry; call once per retry.
  [[nodiscard]] std::uint64_t next_backoff_slots() noexcept;

  /// Retries granted so far (== next_backoff_slots() calls).
  [[nodiscard]] std::uint32_t retries() const noexcept { return retries_; }

  /// True while the policy allows another attempt after `attempts_done`.
  [[nodiscard]] bool allows_retry(std::uint32_t attempts_done) const noexcept {
    return attempts_done < policy_.max_attempts;
  }

 private:
  RetryPolicy policy_;
  rng::Xoshiro256ss rng_;
  std::uint32_t retries_ = 0;
};

/// The full schedule a (policy, seed) pair produces, for tests and docs:
/// element k is the backoff before retry k+1.
[[nodiscard]] std::vector<std::uint64_t> materialize_schedule(
    const RetryPolicy& policy, std::uint64_t seed);

}  // namespace pet::svc
