// pet::svc result cache: a bounded LRU over finished estimate replies.
//
// The service's estimates are pure functions of (population content,
// request seed, accuracy contract, deadline budget, vote parameters) — the
// whole determinism contract of docs/service.md.  That purity is what makes
// caching sound: a cache entry stores the *exact wire payload* of a kOk
// estimate reply, so a hit returns bytes indistinguishable from re-running
// the estimate.
//
// The key embeds the population's registration *epoch* (a registry-global
// counter bumped on every register), not just its id: re-registering an id
// mints a fresh epoch, so entries cached against the old population content
// can never match again — invalidation is implicit and stale entries simply
// age out of the LRU.
//
// Alongside the payload each entry carries the per-population fold deltas
// (rounds, slots, retries, degrade mask) the miss path would have charged,
// so a hit replays the same PopulationStats mutations and kMonitor /
// kMetrics / BENCH fold rows are cache-invariant.  What a hit deliberately
// skips is the channel work itself — chan.* and core.robust.* obs counters
// do NOT accumulate on hits (that is the saving being measured).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pet::svc {

struct ResultCacheConfig {
  std::size_t max_entries = 0;  ///< 0 disables the cache entirely
  std::size_t max_bytes = std::size_t{1} << 22;  ///< payload + overhead cap
};

/// Plain-value counters for the kMetrics "cache" member and petctl top.
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

class ResultCache {
 public:
  /// Everything an estimate's response bytes depend on, besides the
  /// population content (pinned by `epoch`).
  struct Key {
    std::uint64_t epoch = 0;
    std::uint64_t population_id = 0;
    std::uint64_t seed = 0;
    std::uint64_t epsilon_bits = 0;  ///< IEEE-754 bits of the request ε
    std::uint64_t delta_bits = 0;    ///< IEEE-754 bits of the request δ
    std::uint64_t deadline_slots = 0;
    std::uint8_t robust = 0;
    std::uint32_t vote_reads = 0;
    std::uint32_t vote_quorum = 0;

    [[nodiscard]] bool operator==(const Key& other) const noexcept = default;
  };

  /// The fold deltas a hit replays into PopulationStats / RequestRecord —
  /// exactly what the miss path charged when the entry was created.
  struct Replay {
    std::uint64_t planned_rounds = 0;
    std::uint64_t rounds = 0;
    std::uint64_t query_slots = 0;
    std::uint64_t backoff_slots = 0;
    std::uint32_t retries = 0;
    std::uint32_t degrade_mask = 0;
    std::uint8_t degraded = 0;
    std::uint8_t truncated = 0;
  };

  explicit ResultCache(ResultCacheConfig config);

  [[nodiscard]] bool enabled() const noexcept {
    return config_.max_entries > 0;
  }
  [[nodiscard]] const ResultCacheConfig& config() const noexcept {
    return config_;
  }

  /// On hit: copies the stored payload + replay out, promotes the entry to
  /// most-recently-used, counts a hit.  On miss: counts a miss.  Always
  /// false when the cache is disabled (without counting anything).
  [[nodiscard]] bool lookup(const Key& key, std::vector<std::uint8_t>& payload,
                            Replay& replay);

  /// Insert (or refresh) an entry; evicts least-recently-used entries until
  /// both the entry and byte bounds hold.  Returns the number of evictions
  /// this insert caused.  A payload too large for max_bytes on its own is
  /// not cached.  No-op when disabled.
  std::size_t insert(const Key& key, const std::vector<std::uint8_t>& payload,
                     const Replay& replay);

  [[nodiscard]] ResultCacheStats stats() const;

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& key) const noexcept;
  };
  struct Node {
    std::vector<std::uint8_t> payload;
    Replay replay;
    std::list<Key>::iterator lru;  ///< position in lru_ (front = newest)
  };

  /// Fixed per-entry accounting overhead on top of the payload bytes (key,
  /// node bookkeeping, LRU link) so max_bytes bounds real memory, not just
  /// payload volume.
  static constexpr std::size_t kEntryOverhead =
      sizeof(Key) * 2 + sizeof(Node) + 48;

  [[nodiscard]] static std::size_t entry_bytes(
      const std::vector<std::uint8_t>& payload) noexcept {
    return payload.size() + kEntryOverhead;
  }

  /// Pop the LRU tail; caller holds mutex_.
  void evict_one_locked();

  ResultCacheConfig config_;
  mutable std::mutex mutex_;
  std::list<Key> lru_;
  std::unordered_map<Key, Node, KeyHash> map_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace pet::svc
