// pet::svc message schemas: the payloads carried inside svc::Frame.
//
// Encoding discipline: fixed little-endian primitives appended in field
// order, no padding, doubles as IEEE-754 bit patterns.  Every decode is
// bounds-checked through WireReader — a short or trailing-garbage payload
// fails parsing (-> MALFORMED_FRAME at the session layer) instead of
// reading uninitialized memory.  Requests leave Frame::status zero; the
// response echoes the request's command with the outcome StatusCode, and
// error responses carry a UTF-8 detail string as their payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/flight.hpp"
#include "service/frame.hpp"

namespace pet::svc {

enum class CommandId : std::uint16_t {
  kPing = 1,        ///< liveness + version probe; empty payload both ways
  kRegister = 2,    ///< RegisterRequest -> RegisterReply
  kUnregister = 3,  ///< UnregisterRequest -> empty
  kEstimate = 4,    ///< EstimateRequest -> EstimateReply
  kMonitor = 5,     ///< empty -> MonitorReply (service-wide stats)
  // v1.1 additions (observability plane; UNSUPPORTED under PET_OBS=OFF).
  kMetrics = 6,     ///< MetricsRequest -> pet.obs.v1 JSON payload (UTF-8)
  kFlightDump = 7,  ///< FlightDumpRequest -> FlightDumpReply
};

[[nodiscard]] std::string_view to_string(CommandId command) noexcept;

// --- primitive wire I/O ----------------------------------------------------

class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Cursor over a payload.  Every read either succeeds or trips `ok()`
/// permanently; reads after a failure return zeros, so parse functions can
/// read all fields unconditionally and check ok() once at the end.
class WireReader {
 public:
  explicit WireReader(const std::vector<std::uint8_t>& payload) noexcept
      : data_(payload.data()), size_(payload.size()) {}

  [[nodiscard]] std::uint8_t u8() noexcept;
  [[nodiscard]] std::uint16_t u16() noexcept;
  [[nodiscard]] std::uint32_t u32() noexcept;
  [[nodiscard]] std::uint64_t u64() noexcept;
  [[nodiscard]] double f64() noexcept;

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True iff every payload byte was consumed (trailing garbage is a
  /// malformed message, not forward compatibility — versioning lives in the
  /// frame header, not in payload slack).
  [[nodiscard]] bool exhausted() const noexcept {
    return ok_ && pos_ == size_;
  }

 private:
  [[nodiscard]] bool take(std::size_t n) noexcept;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- message structs -------------------------------------------------------

struct RegisterRequest {
  std::uint64_t population_id = 0;
  std::uint64_t tag_count = 0;       ///< tags generated deterministically...
  std::uint64_t population_seed = 0; ///< ...from this seed (factory EPCs)
};

struct RegisterReply {
  std::uint64_t population_id = 0;
  std::uint64_t tag_count = 0;
};

struct UnregisterRequest {
  std::uint64_t population_id = 0;
};

struct EstimateRequest {
  std::uint64_t population_id = 0;
  std::uint64_t seed = 0;       ///< estimation seed (derives paths/rounds)
  double epsilon = 0.10;        ///< (ε, δ) accuracy contract requested
  double delta = 0.05;
  /// Deadline as a *slot budget*: the estimate may consume at most this
  /// many reply-window slots, 0 = unlimited.  Slots, not microseconds, so
  /// the degrade decision replays bit-for-bit (docs/service.md explains the
  /// slot_us conversion for wall-clock callers).
  std::uint64_t deadline_slots = 0;
  std::uint8_t robust = 1;      ///< 1: RobustPetEstimator; 0: vanilla PET
};

struct EstimateReply {
  std::uint64_t population_id = 0;
  double n_hat = 0.0;
  double ci_lo = 0.0;  ///< (1 - δ) interval, widened when degraded
  double ci_hi = 0.0;
  std::uint64_t rounds = 0;          ///< rounds actually executed
  std::uint64_t planned_rounds = 0;  ///< rounds the (ε, δ) plan wanted
  std::uint64_t query_slots = 0;     ///< reply-window slots consumed
  std::uint32_t retries = 0;         ///< transient-fault attempts beyond the first
  std::uint64_t backoff_slots = 0;   ///< total backoff the retries waited
  /// Best-effort flag: set when the reply does NOT carry the full (ε, δ)
  /// contract — the deadline truncated rounds, the retry budget ran dry, or
  /// the channel-health diagnostic widened the interval past ε.
  std::uint8_t degraded = 0;
  std::uint8_t truncated = 0;  ///< deadline stopped the round loop early
  std::uint8_t health = 0;     ///< core::ChannelHealth of the winning attempt
};

/// Wire layout FROZEN at the v1.0 shape (9 u64 fields, 72 bytes): minor
/// version bumps may add commands but never grow this payload, so a v1.0
/// client's exhaustion-checking parser keeps working against a v1.1 petd
/// (pinned by Messages.MonitorReplyWireLayoutFrozenForOldClients).
struct MonitorReply {
  std::uint64_t populations = 0;
  std::uint64_t inflight = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t retries = 0;
  std::uint64_t malformed_frames = 0;
};

/// What slice of the observability plane a kMetrics call wants.
enum class MetricsScope : std::uint8_t {
  kFull = 0,           ///< whole pet.obs.v1 document (deterministic + profile)
  kDeterministic = 1,  ///< Domain::kDeterministic only — byte-identical at
                       ///< any worker_threads for the same request script
  kPopulation = 2,     ///< one population's pet.svc.pop.* slice
};

/// Empty payload is a valid kMetrics request and means scope kFull.
struct MetricsRequest {
  std::uint8_t scope = 0;           ///< MetricsScope
  std::uint64_t population_id = 0;  ///< used by kPopulation, 0 otherwise
};

struct FlightDumpRequest {
  std::uint64_t request_id = 0;   ///< 0: every record; else exact match
  std::uint32_t max_records = 0;  ///< 0: no cap; else newest N matches
};

/// RequestRecord (flight.hpp) has the fixed encoding used here: each record
/// is 88 bytes — the fixed little-endian fields in declaration order, then
/// the v1.2 stamp (u16 shard, u8 flags with bit 0 = cache-hit, u8
/// reserved-zero) — prefixed by a u32 record count.
struct FlightDumpReply {
  std::vector<RequestRecord> records;  ///< oldest to newest
};

// --- encode / decode -------------------------------------------------------
// encode_* returns the payload bytes; parse_* returns nullopt on any
// short/overlong/corrupt payload.

[[nodiscard]] std::vector<std::uint8_t> encode(const RegisterRequest& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const RegisterReply& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const UnregisterRequest& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const EstimateRequest& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const EstimateReply& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const MonitorReply& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const MetricsRequest& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const FlightDumpRequest& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const FlightDumpReply& msg);

[[nodiscard]] std::optional<RegisterRequest> parse_register_request(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::optional<RegisterReply> parse_register_reply(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::optional<UnregisterRequest> parse_unregister_request(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::optional<EstimateRequest> parse_estimate_request(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::optional<EstimateReply> parse_estimate_reply(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::optional<MonitorReply> parse_monitor_reply(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::optional<MetricsRequest> parse_metrics_request(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::optional<FlightDumpRequest> parse_flight_dump_request(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::optional<FlightDumpReply> parse_flight_dump_reply(
    const std::vector<std::uint8_t>& payload);

/// Build a request frame (status 0) around an encoded payload.
[[nodiscard]] Frame make_request(CommandId command,
                                 std::vector<std::uint8_t> payload = {});

/// Build a response frame echoing `command` with `status`; error statuses
/// conventionally carry a UTF-8 detail string as payload.
[[nodiscard]] Frame make_response(CommandId command, std::uint16_t status,
                                  std::vector<std::uint8_t> payload = {});
[[nodiscard]] Frame make_error(CommandId command, std::uint16_t status,
                               std::string_view detail);

/// Interpret an error frame's payload as its detail string.
[[nodiscard]] std::string error_detail(const Frame& frame);

}  // namespace pet::svc
