#include "service/retry.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace pet::svc {

void RetryPolicy::validate() const {
  expects(max_attempts >= 1, "RetryPolicy: max_attempts must be >= 1");
  expects(base_backoff_slots >= 1,
          "RetryPolicy: base_backoff_slots must be >= 1");
  expects(max_backoff_slots >= base_backoff_slots,
          "RetryPolicy: max_backoff_slots must be >= base_backoff_slots");
  expects(jitter >= 0.0 && jitter <= 1.0,
          "RetryPolicy: jitter must be in [0, 1]");
}

std::uint64_t BackoffSchedule::next_backoff_slots() noexcept {
  // Exponential ladder with a shift-overflow guard: past 63 doublings the
  // cap has long since taken over.
  const std::uint32_t k = retries_;  // 0-based retry index
  std::uint64_t backoff = policy_.max_backoff_slots;
  if (k < 63) {
    const std::uint64_t raw = policy_.base_backoff_slots << k;
    const bool overflowed = (raw >> k) != policy_.base_backoff_slots;
    backoff = overflowed ? policy_.max_backoff_slots
                         : std::min(raw, policy_.max_backoff_slots);
  }
  ++retries_;
  if (policy_.jitter > 0.0 && backoff > 1) {
    // Shave up to jitter * backoff slots, never below 1.  Map the PRNG draw
    // through a 53-bit mantissa for an unbiased [0, 1) uniform.
    const double u =
        static_cast<double>(rng_() >> 11) * 0x1.0p-53;
    const auto shave =
        static_cast<std::uint64_t>(u * policy_.jitter *
                                   static_cast<double>(backoff));
    backoff = std::max<std::uint64_t>(1, backoff - shave);
  }
  return backoff;
}

std::vector<std::uint64_t> materialize_schedule(const RetryPolicy& policy,
                                                std::uint64_t seed) {
  policy.validate();
  BackoffSchedule schedule(policy, seed);
  std::vector<std::uint64_t> slots;
  if (policy.max_attempts == 0) return slots;
  slots.reserve(policy.max_attempts - 1);
  for (std::uint32_t retry = 1; retry < policy.max_attempts; ++retry) {
    slots.push_back(schedule.next_backoff_slots());
  }
  return slots;
}

}  // namespace pet::svc
