// pet::svc chaos link: connection-level fault injection for petd.
//
// Reuses sim::FaultModel — the same seeded machinery that impairs the air
// interface — at the *transport* layer: each frame crossing the link is a
// "slot", and the model's verdicts map to connection mischief:
//
//   reader_down()          -> close the connection mid-stream
//   erases_reply()         -> drop the frame silently
//   raises_noise_floor()   -> flip one bit (the LRC must catch it)
//
// Seeded => every chaos run replays bit-for-bit, so the soak harness
// (scripts/service_soak.sh) and tests/service_test.cpp can assert exact
// outcomes, not just "nothing crashed".
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "rng/prng.hpp"
#include "sim/faults.hpp"

namespace pet::svc {

class ChaosLink {
 public:
  enum class Action : std::uint8_t {
    kDeliver,     ///< frame passes untouched
    kDropFrame,   ///< frame vanishes (peer sees silence, then the next one)
    kCorruptBit,  ///< one bit flipped; framing layer must reject, resync
    kCloseLink,   ///< connection torn down under the peer
  };

  explicit ChaosLink(const sim::ChannelImpairments& impairments)
      : model_(impairments),
        corrupt_rng_(rng::derive_seed(impairments.seed, 0xc0a5ull)) {}

  /// Decide this frame's fate and, for kCorruptBit, mutate `frame_bytes`
  /// in place.  One FaultModel slot per call.
  Action apply(std::vector<std::uint8_t>& frame_bytes);

  [[nodiscard]] std::uint64_t frames() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t corrupted() const noexcept { return corrupted_; }
  [[nodiscard]] std::uint64_t closes() const noexcept { return closes_; }

 private:
  sim::FaultModel model_;
  rng::Xoshiro256ss corrupt_rng_;  ///< bit-position stream, private to chaos
  std::uint64_t frames_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t closes_ = 0;
};

[[nodiscard]] std::string_view to_string(ChaosLink::Action action) noexcept;

}  // namespace pet::svc
