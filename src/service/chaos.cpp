#include "service/chaos.hpp"

namespace pet::svc {

std::string_view to_string(ChaosLink::Action action) noexcept {
  switch (action) {
    case ChaosLink::Action::kDeliver: return "deliver";
    case ChaosLink::Action::kDropFrame: return "drop-frame";
    case ChaosLink::Action::kCorruptBit: return "corrupt-bit";
    case ChaosLink::Action::kCloseLink: return "close-link";
  }
  return "unknown";
}

ChaosLink::Action ChaosLink::apply(std::vector<std::uint8_t>& frame_bytes) {
  ++frames_;
  model_.begin_slot();
  if (model_.reader_down()) {
    ++closes_;
    return Action::kCloseLink;
  }
  if (model_.erases_reply()) {
    ++dropped_;
    return Action::kDropFrame;
  }
  if (model_.raises_noise_floor() && !frame_bytes.empty()) {
    const std::uint64_t draw = corrupt_rng_();
    const std::size_t byte_index =
        static_cast<std::size_t>(draw % frame_bytes.size());
    const unsigned bit = static_cast<unsigned>((draw >> 32) % 8);
    frame_bytes[byte_index] ^= static_cast<std::uint8_t>(1u << bit);
    ++corrupted_;
    return Action::kCorruptBit;
  }
  return Action::kDeliver;
}

}  // namespace pet::svc
