// pet::svc wire framing: length-prefixed SOF/LRC binary frames.
//
// Layout (all integers little-endian, docs/service.md has the diagram):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     1  SOF (0xA5)
//        1     1  version major   } semver: major must match, minor
//        2     1  version minor   } may trail (forward compatible)
//        3     2  command  (CommandId)
//        5     2  status   (StatusCode; 0 in requests)
//        7     4  payload length (<= kMaxPayload)
//       11     1  header LRC  (over bytes [0, 11))
//       12   LEN  payload
//   12+LEN     1  payload LRC (over the payload bytes)
//
// The decoder is incremental and *total*: any byte sequence — truncated,
// corrupted, oversized, or adversarial — produces either complete frames or
// typed DecodeStatus errors, never UB and never unbounded buffering.  After
// an error it resyncs by scanning forward for the next SOF byte, so a
// corrupted frame costs exactly one frame, not the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pet::svc {

inline constexpr std::uint8_t kSof = 0xA5;
inline constexpr std::uint8_t kProtocolMajor = 1;
/// Minor 1 added kMetrics / kFlightDump (additive commands only; every
/// v1.0 payload layout is frozen, so v1.0 clients parse v1.1 replies).
/// Minor 2 stamped flight records with the shard id and a cache-hit flag,
/// growing the kFlightDump record from 84 to 88 bytes.  Every v1.0 payload
/// stays frozen (MonitorReply in particular); a v1.1 client keeps working
/// except that its kFlightDump parser — a diagnostic surface — reports
/// MALFORMED until it learns the 88-byte record.
inline constexpr std::uint8_t kProtocolMinor = 2;
inline constexpr std::size_t kHeaderSize = 12;  ///< SOF through header LRC
/// Ceiling on a frame payload.  Large enough for any pet::svc message
/// (responses are O(100) bytes), small enough that a hostile length field
/// cannot make the decoder buffer unbounded memory.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

/// Longitudinal redundancy check: the byte that makes the sum over
/// `data` plus the LRC itself vanish mod 256.
[[nodiscard]] std::uint8_t lrc(const std::uint8_t* data,
                               std::size_t size) noexcept;

struct Frame {
  std::uint8_t ver_major = kProtocolMajor;
  std::uint8_t ver_minor = kProtocolMinor;
  std::uint16_t command = 0;
  std::uint16_t status = 0;
  std::vector<std::uint8_t> payload;
};

/// Serialize a frame (header + LRCs computed here).  The inverse of
/// Decoder::next for every well-formed frame: encode ∘ decode == identity.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

enum class DecodeStatus : std::uint8_t {
  kFrame,         ///< a complete frame was produced
  kNeedMoreData,  ///< buffer holds only a frame prefix; feed more bytes
  kBadSof,        ///< garbage before the next SOF was skipped
  kBadHeaderLrc,  ///< header checksum mismatch; resynced past the SOF
  kBadPayloadLrc, ///< payload checksum mismatch; whole frame dropped
  kOversized,     ///< length field exceeds kMaxPayload; resynced
};

[[nodiscard]] std::string_view to_string(DecodeStatus status) noexcept;

/// True for the statuses a session should surface as MALFORMED_FRAME (the
/// decoder already resynced; the caller only needs to count and report).
[[nodiscard]] constexpr bool is_decode_error(DecodeStatus status) noexcept {
  return status != DecodeStatus::kFrame &&
         status != DecodeStatus::kNeedMoreData;
}

/// Incremental frame decoder.  feed() appends raw bytes; next() consumes at
/// most one frame (or one error's worth of garbage) per call:
///
///   Frame frame;
///   decoder.feed(bytes, size);
///   for (;;) {
///     const DecodeStatus st = decoder.next(frame);
///     if (st == DecodeStatus::kNeedMoreData) break;
///     if (st == DecodeStatus::kFrame) handle(frame); else count_malformed(st);
///   }
class Decoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  void feed(const std::vector<std::uint8_t>& data) {
    feed(data.data(), data.size());
  }

  /// Decode the next frame into `out`.  Never blocks; never reads past the
  /// fed bytes; after any error the internal cursor has already advanced so
  /// repeated calls make progress (no livelock on garbage input).
  [[nodiscard]] DecodeStatus next(Frame& out);

  /// Bytes buffered but not yet consumed (diagnostics/tests).
  [[nodiscard]] std::size_t pending() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  void discard(std::size_t n) noexcept;
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace pet::svc
