// pet::svc population registry: the server-side state petd answers from.
//
// Each registered population owns its tag set and a long-lived
// chan::SortedPetChannel over it — the per-population *channel arena*.
// Building the sorted code array costs O(n log n) once at registration;
// every estimate after that reuses it (reset_ledger per request), which is
// what lets petd hold thousands of concurrent populations.  A per-entry
// mutex serializes estimates against the same population (the channel is
// stateful across rounds); different populations proceed in parallel.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "channel/sorted_pet_channel.hpp"
#include "common/types.hpp"

namespace pet::svc {

struct RegistryConfig {
  std::size_t max_populations = 65536;  ///< register beyond this is shed
  std::size_t max_tags_per_population = 1u << 24;
  unsigned tree_height = 32;  ///< H for every population's channel
};

class PopulationRegistry {
 public:
  /// One registered population.  The tag vector must not be mutated while
  /// the channel is alive (rebuild() rehashes through the reference).
  struct Entry {
    std::uint64_t id = 0;
    std::vector<TagId> tags;
    std::unique_ptr<chan::SortedPetChannel> channel;
    std::mutex mutex;  ///< serializes channel use across requests
  };

  explicit PopulationRegistry(RegistryConfig config = {});

  enum class RegisterOutcome : std::uint8_t {
    kRegistered,
    kAlreadyExists,
    kFull,            ///< max_populations reached: typed shed, not a crash
    kInvalidRequest,  ///< tag count out of range
  };

  /// Create a population of `tag_count` deterministically-generated tags
  /// (factory EPCs derived from `population_seed`) and build its channel.
  RegisterOutcome register_population(std::uint64_t id,
                                      std::uint64_t tag_count,
                                      std::uint64_t population_seed);

  /// Remove a population.  In-flight estimates holding the entry keep it
  /// alive (shared ownership); new lookups fail immediately.
  bool unregister_population(std::uint64_t id);

  /// Shared handle, or nullptr when unknown.  Callers lock entry->mutex for
  /// the duration of channel use.
  [[nodiscard]] std::shared_ptr<Entry> find(std::uint64_t id) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const RegistryConfig& config() const noexcept {
    return config_;
  }

 private:
  RegistryConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> entries_;
};

}  // namespace pet::svc
