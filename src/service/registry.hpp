// pet::svc population registry: the server-side state petd answers from.
//
// Each registered population owns its tag set and a long-lived
// chan::SortedPetChannel over it — the per-population *channel arena*.
// Building the sorted code array costs O(n log n) once at registration;
// every estimate after that reuses it (reset_ledger per request), which is
// what lets petd hold thousands of concurrent populations.  A per-entry
// mutex serializes estimates against the same population (the channel is
// stateful across rounds); different populations proceed in parallel.
//
// The registry is internally *sliced* to mirror the service's
// population-affine shards (shard.hpp): slice index = shard_of(id, slices),
// so a shard's workers only ever contend on their own slice's mutex and a
// registration storm against one shard cannot stall lookups on another.
// Slicing is invisible in every output: fold_stats sums are
// order-independent and snapshot_stats sorts by id, so all exports are
// byte-identical at any slice count.
//
// Every successful registration is stamped with a registry-global *epoch*
// (monotone counter, never reused).  The epoch names the population
// *content*, not the id: re-registering an id mints a fresh epoch, which is
// what lets the service's result cache key on (epoch, seed, ...) and treat
// unregister/re-register as implicit invalidation (cache.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "channel/sorted_pet_channel.hpp"
#include "common/types.hpp"
#include "obs/instruments.hpp"

namespace pet::svc {

/// Per-population request totals, updated by the service on every estimate
/// that resolved to this entry.  Always compiled (unlike the pet.svc.pop.*
/// obs mirror): kMonitor's aggregate counters and the kMetrics export both
/// fold THESE cells, so the two commands can never disagree.  Everything
/// here is in slot units or event counts — deterministic for a given
/// request script at any worker_threads.
struct PopulationStats {
  /// Bucket count of the slot-unit latency histogram (shared bounds in
  /// obs::kSvcLatencySlotBounds; last bucket is overflow).
  static constexpr std::size_t kLatencyBuckets =
      obs::kSvcLatencySlotBounds.size() + 1;

  std::atomic<std::uint64_t> requests{0};   ///< estimates that found the entry
  std::atomic<std::uint64_t> ok{0};         ///< kOk replies (incl. degraded)
  std::atomic<std::uint64_t> degraded{0};   ///< kOk with a nonzero degrade mask
  std::atomic<std::uint64_t> truncated{0};  ///< deadline stopped the round loop
  std::atomic<std::uint64_t> errors{0};     ///< typed error replies
  std::atomic<std::uint64_t> shed{0};       ///< refused at admission
  std::atomic<std::uint64_t> deadline_misses{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> backoff_slots{0};
  std::atomic<std::uint64_t> query_slots{0};
  std::atomic<std::uint64_t> rounds{0};
  std::atomic<std::uint64_t> rounds_planned{0};
  std::atomic<std::uint64_t> cache_hits{0};  ///< ok replies served from cache
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> latency_slots{};

  /// Bucket (backoff + query) slots into the latency histogram.
  void observe_latency_slots(std::uint64_t slots) noexcept;
};

/// Plain-value snapshot of PopulationStats, addable so the registry can
/// fold live entries plus already-unregistered ones into one total.
struct PopulationStatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t truncated = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t retries = 0;
  std::uint64_t backoff_slots = 0;
  std::uint64_t query_slots = 0;
  std::uint64_t rounds = 0;
  std::uint64_t rounds_planned = 0;
  std::uint64_t cache_hits = 0;
  std::array<std::uint64_t, PopulationStats::kLatencyBuckets> latency_slots{};

  void accumulate(const PopulationStats& stats) noexcept;
};

struct RegistryConfig {
  std::size_t max_populations = 65536;  ///< register beyond this is shed
  std::size_t max_tags_per_population = 1u << 24;
  unsigned tree_height = 32;  ///< H for every population's channel
};

class PopulationRegistry {
 public:
  /// One registered population.  The tag vector must not be mutated while
  /// the channel is alive (rebuild() rehashes through the reference).
  struct Entry {
    std::uint64_t id = 0;
    std::uint64_t epoch = 0;  ///< registration epoch (set once, never 0)
    std::vector<TagId> tags;
    std::unique_ptr<chan::SortedPetChannel> channel;
    std::mutex mutex;  ///< serializes channel use across requests
    PopulationStats stats;  ///< request totals (lock-free, always compiled)
  };

  /// `slices` is normally the owning service's shard count so a shard's
  /// lock traffic stays on its own slice; 1 (the default) reproduces the
  /// single-mutex registry exactly.
  explicit PopulationRegistry(RegistryConfig config = {}, unsigned slices = 1);

  enum class RegisterOutcome : std::uint8_t {
    kRegistered,
    kAlreadyExists,
    kFull,            ///< max_populations reached: typed shed, not a crash
    kInvalidRequest,  ///< tag count out of range
  };

  /// Create a population of `tag_count` deterministically-generated tags
  /// (factory EPCs derived from `population_seed`) and build its channel.
  RegisterOutcome register_population(std::uint64_t id,
                                      std::uint64_t tag_count,
                                      std::uint64_t population_seed);

  /// Remove a population.  In-flight estimates holding the entry keep it
  /// alive (shared ownership); new lookups fail immediately.  The entry's
  /// epoch is retired with it — no future registration reuses it, so cache
  /// entries keyed on it can never match again.
  bool unregister_population(std::uint64_t id);

  /// Shared handle, or nullptr when unknown.  Callers lock entry->mutex for
  /// the duration of channel use.
  [[nodiscard]] std::shared_ptr<Entry> find(std::uint64_t id) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const RegistryConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] unsigned slices() const noexcept {
    return static_cast<unsigned>(slices_.size());
  }
  /// Epochs handed out so far (diagnostics; the next registration gets
  /// epochs() + 1).
  [[nodiscard]] std::uint64_t epochs() const noexcept {
    return epoch_counter_.load(std::memory_order_relaxed);
  }

  /// Grand total over every population this registry has ever served:
  /// live entries plus the retired accumulator (folded on unregister), so
  /// aggregate counters never go backwards when a population leaves.
  [[nodiscard]] PopulationStatsSnapshot fold_stats() const;

  /// Per-live-population snapshots sorted by id (deterministic iteration
  /// order for the kMetrics JSON export).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, PopulationStatsSnapshot>>
  snapshot_stats() const;

 private:
  /// One shard-affine partition of the id space: its own mutex, map, and
  /// retired accumulator.
  struct Slice {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> entries;
    PopulationStatsSnapshot retired;  ///< totals of unregistered populations
  };

  [[nodiscard]] Slice& slice_for(std::uint64_t id) noexcept;
  [[nodiscard]] const Slice& slice_for(std::uint64_t id) const noexcept;

  RegistryConfig config_;
  std::vector<std::unique_ptr<Slice>> slices_;
  std::atomic<std::size_t> count_{0};          ///< live entries, all slices
  std::atomic<std::uint64_t> epoch_counter_{0};
};

}  // namespace pet::svc
