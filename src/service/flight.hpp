// pet::svc flight recorder: a fixed-size ring of per-request records.
//
// Every request the service handles — including shed ones that never
// reached a handler — leaves one RequestRecord behind.  The ring keeps the
// last `capacity` records so an operator can ask "what happened to request
// X?" after the fact (`petctl trace <request-id>`, wire command
// kFlightDump) without any always-on log volume.
//
// Request IDs are deterministic: FNV-1a over the frame's command and
// payload bytes.  Two byte-identical requests therefore share an ID — the
// ID names the *request content*, not the submission event, which is what
// makes replay-based debugging possible ("re-send the exact frame and you
// get the exact record").  Error replies for shed/degraded requests embed
// the ID in their detail string so a client can quote it back.
//
// The deterministic/profile split from pet::obs carries through: slot-unit
// fields (latency_slots, query_slots, backoff_slots, rounds) replay
// bit-for-bit at any worker_threads; queue_us/handle_us are wall-clock
// profile data and vary run to run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "service/frame.hpp"

namespace pet::svc {

// Degradation reason bitmask carried by RequestRecord::degrade_mask.
// A degraded kOk reply sets at least one bit; a full-contract reply sets
// none.  kDegradeShed marks requests refused at admission.
inline constexpr std::uint32_t kDegradeTruncated = 1u << 0;    ///< deadline stopped the round loop
inline constexpr std::uint32_t kDegradeFitShort = 1u << 1;     ///< budget planned fewer rounds than (ε, δ) wanted
inline constexpr std::uint32_t kDegradeRetryBudget = 1u << 2;  ///< transient-fault retries ran dry
inline constexpr std::uint32_t kDegradeHealth = 1u << 3;       ///< channel-health diagnostic widened the interval
inline constexpr std::uint32_t kDegradeShed = 1u << 4;         ///< refused at admission (overload / drain)

/// "truncated|fit-short" rendering of a degrade bitmask ("-" when clean).
[[nodiscard]] std::string degrade_mask_to_string(std::uint32_t mask);

/// One handled (or shed) request.  Fixed-width fields only — the record
/// has a frozen wire encoding (see FlightDumpReply in messages.hpp).
struct RequestRecord {
  std::uint64_t request_id = 0;
  std::uint64_t population_id = 0;  ///< 0 when the command has no population
  std::uint16_t command = 0;
  std::uint16_t status = 0;            ///< StatusCode of the reply
  std::uint32_t degrade_mask = 0;      ///< kDegrade* bits
  std::uint64_t planned_rounds = 0;    ///< rounds the (ε, δ) plan wanted
  std::uint64_t rounds = 0;            ///< rounds actually executed
  std::uint32_t retries = 0;           ///< attempts beyond the first
  std::uint64_t backoff_slots = 0;     ///< slot budget burned waiting
  std::uint64_t query_slots = 0;       ///< reply-window slots consumed
  std::uint64_t latency_slots = 0;     ///< backoff + query (kDeterministic)
  std::uint64_t queue_us = 0;          ///< submit -> handler start (kProfile)
  std::uint64_t handle_us = 0;         ///< handler wall time (kProfile)
  // v1.2 stamps (grew the wire record from 84 to 88 bytes).
  std::uint16_t shard = 0;             ///< population-affine shard (shard.hpp)
  std::uint8_t cache_hit = 0;          ///< 1: reply served from the result cache
};

/// Deterministic, content-addressed request ID for a frame (never 0 — 0 is
/// the kFlightDump wildcard filter).
[[nodiscard]] std::uint64_t derive_request_id(const Frame& frame) noexcept;

/// Render an ID the way error details and petctl print it ("0x" + 16 hex).
[[nodiscard]] std::string format_request_id(std::uint64_t request_id);

/// Fixed-capacity ring of the most recent records.  Thread-safe; record()
/// is a short critical section (no allocation once the ring is full).
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  void record(const RequestRecord& record);

  /// Oldest-to-newest snapshot.  `request_id` 0 matches every record;
  /// `max_records` 0 means no cap, otherwise the *newest* max_records
  /// matches are returned.
  [[nodiscard]] std::vector<RequestRecord> dump(
      std::uint64_t request_id = 0, std::size_t max_records = 0) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total records ever recorded (monotone; exceeds capacity() once the
  /// ring has wrapped).
  [[nodiscard]] std::uint64_t recorded() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<RequestRecord> ring_;
  std::size_t next_ = 0;        ///< slot the next record overwrites
  std::uint64_t recorded_ = 0;  ///< lifetime total
};

}  // namespace pet::svc
