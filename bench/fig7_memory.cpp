// Fig. 7 — per-tag memory for storing preloaded random codes (log scale):
//   (a) vs confidence interval eps (delta = 1%),
//   (b) vs error probability delta (eps = 5%).
//
// Passive tags must preload every random value they will consume: one
// 32-bit code total for PET (Algorithm 4) vs one 32-bit value per round for
// FNEB and LoF.  Expected shape: PET flat at 32 bits; baselines at
// 32 x rounds (10^3..10^5 bits), shrinking as the contract loosens.
#include <cmath>
#include <cstdint>

#include "core/planner.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "protocols/fneb.hpp"
#include "protocols/lof.hpp"
#include "tags/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Fig. 7: per-tag memory (bits) for preloaded random codes, PET vs "
      "FNEB vs LoF.");
  bench::BenchSession session(options, "fig7_memory");

  auto memory_rows = [&](bench::TablePrinter& table, double x_value,
                         double eps, double delta) {
    const stats::AccuracyRequirement req{eps, delta};
    const core::PetPlan pet = core::plan(core::PetConfig{}, req);
    const proto::FnebEstimator fneb(proto::FnebConfig{}, req);
    const proto::LofEstimator lof(proto::LofConfig{}, req);

    const std::uint64_t pet_bits =
        tags::preload_memory_bits(tags::ProtocolKind::kPet, pet.rounds);
    const std::uint64_t fneb_bits = tags::preload_memory_bits(
        tags::ProtocolKind::kFneb, fneb.planned_rounds());
    const std::uint64_t lof_bits = tags::preload_memory_bits(
        tags::ProtocolKind::kLof, lof.planned_rounds());
    table.add_row({bench::TablePrinter::num(x_value, 3),
                   bench::TablePrinter::num(pet_bits),
                   bench::TablePrinter::num(fneb_bits),
                   bench::TablePrinter::num(lof_bits),
                   bench::TablePrinter::num(std::log10(
                       static_cast<double>(fneb_bits)), 2),
                   bench::TablePrinter::num(std::log10(
                       static_cast<double>(lof_bits)), 2)});
  };

  {
    bench::TablePrinter table(
        "Fig. 7a: per-tag memory bits vs eps (delta = 1%)",
        {"eps", "PET bits", "FNEB bits", "LoF bits", "log10 FNEB",
         "log10 LoF"},
        options.csv);
    table.bind(&session.report());
    for (const double eps : {0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20}) {
      memory_rows(table, eps, eps, 0.01);
    }
    table.print();
  }
  {
    bench::TablePrinter table(
        "Fig. 7b: per-tag memory bits vs delta (eps = 5%)",
        {"delta", "PET bits", "FNEB bits", "LoF bits", "log10 FNEB",
         "log10 LoF"},
        options.csv);
    table.bind(&session.report());
    for (const double delta : {0.01, 0.025, 0.05, 0.075, 0.10, 0.15}) {
      memory_rows(table, delta, 0.05, delta);
    }
    table.print();
  }
  return 0;
}
