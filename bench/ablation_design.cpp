// Ablation — the design choices DESIGN.md calls out:
//   1. SearchMode: Algorithm 3 verbatim (5 slots) vs strict [0,H] search vs
//      the linear walk — same estimates, different slot budgets;
//   2. CodeMode: preloaded codes (Algorithm 4) vs per-round rehash
//      (Algorithm 2) — near-identical statistics, very different tag cost;
//   3. CommandEncoding (Section 4.6.2): 32-bit mask vs 6-bit mid vs 1-bit
//      feedback — identical slots, ~30x less downlink;
//   4. Tree height H: accuracy degrades only when 2^H stops dwarfing n;
//   5. Depth-fusion rule: Eq. (14) geometric mean vs bias-corrected vs
//      median-of-means;
//   6. LoF early-stop variant (frame-scan cost ablation).
#include <cstdint>

#include "channel/sampled_channel.hpp"
#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "rng/prng.hpp"
#include "runtime/trial_runner.hpp"
#include "tags/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv, "Design ablations: search mode, code mode, command "
                  "encoding, tree height, LoF early stop.");
  bench::BenchSession session(options, "ablation_design");

  const std::uint64_t n = 50000;
  const stats::AccuracyRequirement req{0.05, 0.01};

  {
    bench::TablePrinter table(
        "Ablation 1: search mode (n = 50000, Eq.-20 rounds)",
        {"mode", "slots/estimate", "accuracy", "in-interval"}, options.csv);
    table.bind(&session.report());
    for (const auto mode : {core::SearchMode::kBinaryPaper,
                            core::SearchMode::kBinaryStrict,
                            core::SearchMode::kLinear}) {
      core::PetConfig config;
      config.search = mode;
      const auto set =
          bench::run_pet(n, config, req, 0, options.runs, options.seed);
      table.add_row({std::string(core::to_string(mode)),
                     bench::TablePrinter::num(set.mean_slots_per_estimate, 0),
                     bench::TablePrinter::num(set.summary.accuracy(), 4),
                     bench::TablePrinter::num(
                         set.summary.fraction_within(req.epsilon), 3)});
    }
    table.print();
  }

  {
    // Code mode: the sampled channel is exactly the per-round-rehash
    // process; the sorted channel is exactly the preloaded process.
    bench::TablePrinter table(
        "Ablation 2: code mode (Algorithm 2 vs Algorithm 4)",
        {"mode", "accuracy", "in-interval", "tag hash ops",
         "tag memory bits"},
        options.csv);
    table.bind(&session.report());
    const core::PetEstimator planner(core::PetConfig{}, req);
    const std::uint64_t m = planner.planned_rounds();

    const auto preloaded =
        bench::run_pet(n, core::PetConfig{}, req, 0, options.runs,
                       options.seed);
    stats::TrialSummary rehash(static_cast<double>(n));
    runtime::global_runner().run<double>(
        options.runs,
        [&](std::uint64_t run) {
          chan::SampledChannel channel(n, options.seed + 31 * run);
          return planner.estimate_with_rounds(channel, m, run).n_hat;
        },
        [&](std::uint64_t, double&& n_hat) { rehash.add(n_hat); },
        "PET rehash");
    table.add_row({"preloaded (Alg. 4, passive tags)",
                   bench::TablePrinter::num(preloaded.summary.accuracy(), 4),
                   bench::TablePrinter::num(
                       preloaded.summary.fraction_within(req.epsilon), 3),
                   "0", bench::TablePrinter::num(
                            tags::preload_memory_bits(
                                tags::ProtocolKind::kPet, m))});
    table.add_row({"per-round rehash (Alg. 2, active tags)",
                   bench::TablePrinter::num(rehash.accuracy(), 4),
                   bench::TablePrinter::num(
                       rehash.fraction_within(req.epsilon), 3),
                   bench::TablePrinter::num(m), "0"});
    table.print();
  }

  {
    bench::TablePrinter table(
        "Ablation 3: command encoding (Section 4.6.2), Eq.-20 rounds",
        {"encoding", "slots/estimate", "downlink bits/estimate"},
        options.csv);
    table.bind(&session.report());
    for (const auto encoding : {tags::CommandEncoding::kFullMask,
                                tags::CommandEncoding::kMidIndex,
                                tags::CommandEncoding::kOneBitAck}) {
      core::PetConfig config;
      config.encoding = encoding;
      const auto set =
          bench::run_pet(n, config, req, 0, options.runs, options.seed);
      const char* name = encoding == tags::CommandEncoding::kFullMask
                             ? "32-bit mask"
                             : encoding == tags::CommandEncoding::kMidIndex
                                   ? "6-bit mid index"
                                   : "1-bit feedback";
      table.add_row({name,
                     bench::TablePrinter::num(set.mean_slots_per_estimate, 0),
                     bench::TablePrinter::num(set.mean_reader_bits, 0)});
    }
    table.print();
  }

  {
    bench::TablePrinter table(
        "Ablation 4: tree height H (n = 50000, Eq.-20 rounds)",
        {"H", "slots/estimate", "accuracy", "in-interval"}, options.csv);
    table.bind(&session.report());
    for (const unsigned h : {16u, 20u, 24u, 32u, 48u, 64u}) {
      core::PetConfig config;
      config.tree_height = h;
      const auto set =
          bench::run_pet(n, config, req, 0, options.runs, options.seed);
      table.add_row({bench::TablePrinter::num(static_cast<std::uint64_t>(h)),
                     bench::TablePrinter::num(set.mean_slots_per_estimate, 0),
                     bench::TablePrinter::num(set.summary.accuracy(), 4),
                     bench::TablePrinter::num(
                         set.summary.fraction_within(req.epsilon), 3)});
    }
    table.print();
  }

  {
    // Fusion rules: the paper's geometric mean vs this library's
    // bias-corrected and median-of-means extensions, at a round count low
    // enough for the geometric-mean bias (~e^{(ln2 sigma)^2/2m}) to show.
    bench::TablePrinter table(
        "Ablation 5: depth-fusion rule (n = 50000, m = 64 rounds)",
        {"fusion", "accuracy", "normalized sigma"}, options.csv);
    table.bind(&session.report());
    for (const auto rule : {core::FusionRule::kGeometricMean,
                            core::FusionRule::kBiasCorrected,
                            core::FusionRule::kMedianOfMeans}) {
      core::PetConfig config;
      config.fusion = rule;
      const auto set =
          bench::run_pet(n, config, req, 64, options.runs * 4, options.seed);
      table.add_row({std::string(core::to_string(rule)),
                     bench::TablePrinter::num(set.summary.accuracy(), 4),
                     bench::TablePrinter::num(
                         set.summary.normalized_deviation(), 4)});
    }
    table.print();
  }

  {
    bench::TablePrinter table(
        "Ablation 6: LoF frame scan vs early stop (Eq.-20 rounds)",
        {"variant", "slots/estimate", "accuracy"}, options.csv);
    table.bind(&session.report());
    proto::LofConfig full;
    proto::LofConfig early;
    early.early_stop = true;
    const auto rf = bench::run_lof(n, full, req, 0, options.runs,
                                   options.seed);
    const auto re = bench::run_lof(n, early, req, 0, options.runs,
                                   options.seed);
    table.add_row({"full 32-slot frame",
                   bench::TablePrinter::num(rf.mean_slots_per_estimate, 0),
                   bench::TablePrinter::num(rf.summary.accuracy(), 4)});
    table.add_row({"early stop at first idle",
                   bench::TablePrinter::num(re.mean_slots_per_estimate, 0),
                   bench::TablePrinter::num(re.summary.accuracy(), 4)});
    table.print();
  }
  return 0;
}
