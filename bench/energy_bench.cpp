// Extra bench — energy budgets (in the spirit of the paper's reference
// [38]): reader energy per estimate and per-tag energy for active-tag
// deployments, PET (preloaded and rehash modes) vs FNEB vs LoF.
//
// Runs the device-level simulation so the tag cost ledgers are real, at a
// population small enough for O(n)-per-slot fidelity.
#include <cstdint>

#include "channel/device_channel.hpp"
#include "core/estimator.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "protocols/fneb.hpp"
#include "protocols/lof.hpp"
#include "sim/energy.hpp"
#include "sim/gen2_timing.hpp"
#include "tags/population.hpp"

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Energy per estimate (device-level simulation, n = 2000, "
      "(10%, 5%) contract).");
  bench::BenchSession session(options, "energy_bench");

  const std::uint64_t n = 2000;
  const stats::AccuracyRequirement req{0.10, 0.05};
  const auto pop = tags::TagPopulation::generate(n, 42);
  const sim::EnergyModel model;
  const sim::SlotTiming timing = sim::gen2_slot_timing(sim::Gen2LinkConfig{},
                                                       32);

  bench::TablePrinter table(
      "Energy per (10%, 5%) estimate of 2000 tags (Gen2 fast profile)",
      {"protocol", "slots", "reader mJ", "tag mean uJ (active)",
       "tag hash ops"},
      options.csv);
  table.bind(&session.report());

  auto add_row = [&](const char* name, const sim::SlotLedger& ledger,
                     const tags::TagCostLedger& cost) {
    const auto energy = sim::session_energy(model, ledger, cost, n, true,
                                            timing);
    table.add_row({name, bench::TablePrinter::num(ledger.total_slots()),
                   bench::TablePrinter::num(energy.reader_mj, 1),
                   bench::TablePrinter::num(energy.tag_mean_uj, 2),
                   bench::TablePrinter::num(cost.hash_evaluations)});
  };

  {
    chan::DeviceChannelConfig device;
    device.timing = timing;
    chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet, device);
    const core::PetEstimator estimator(core::PetConfig{}, req);
    (void)estimator.estimate(channel, options.seed);
    add_row("PET preloaded (Alg. 4)", channel.ledger(),
            channel.total_tag_cost());
  }
  {
    chan::DeviceChannelConfig device;
    device.timing = timing;
    device.pet_mode = sim::PetTagDevice::CodeMode::kPerRound;
    chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet, device);
    core::PetConfig config;
    config.tags_rehash = true;
    (void)core::PetEstimator(config, req).estimate(channel, options.seed);
    add_row("PET rehash (Alg. 2)", channel.ledger(),
            channel.total_tag_cost());
  }
  {
    chan::DeviceChannelConfig device;
    device.timing = timing;
    chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kFneb, device);
    const proto::FnebEstimator estimator(proto::FnebConfig{}, req);
    (void)estimator.estimate(channel, options.seed);
    add_row("FNEB", channel.ledger(), channel.total_tag_cost());
  }
  {
    chan::DeviceChannelConfig device;
    device.timing = timing;
    chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kLof, device);
    const proto::LofEstimator estimator(proto::LofConfig{}, req);
    (void)estimator.estimate(channel, options.seed);
    add_row("LoF", channel.ledger(), channel.total_tag_cost());
  }
  table.print();
  return 0;
}
