// Table 3 — "Total time slots needed for PET".
//
// The paper fixes H = 32, so one binary-search round costs exactly five
// query slots and m rounds cost 5m.  This harness runs the real protocol
// (preloaded codes, Algorithm 3) and reports the measured slot totals next
// to the analytic 5m, plus the accuracy the budget buys at n = 50 000.
#include <cstdint>

#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Table 3: PET total time slots as a function of the round count m "
      "(H = 32, 5 slots/round).");
  bench::BenchSession session(options, "table3_pet_slots");

  const std::uint64_t n = 50000;
  const stats::AccuracyRequirement req{0.05, 0.01};
  const core::PetConfig config;  // binary-paper search, preloaded codes

  bench::TablePrinter table(
      "Table 3: total time slots needed for PET (H = 32, n = 50000)",
      {"rounds m", "slots (analytic 5m)", "slots (measured)",
       "accuracy nhat/n", "normalized sigma"},
      options.csv);
  table.bind(&session.report());

  for (const std::uint64_t m : {8ull, 16ull, 32ull, 64ull, 128ull, 256ull,
                                512ull, 1024ull}) {
    const auto set = bench::run_pet(n, config, req, m, options.runs,
                                    options.seed + m);
    table.add_row({bench::TablePrinter::num(m),
                   bench::TablePrinter::num(5 * m),
                   bench::TablePrinter::num(set.mean_slots_per_estimate, 1),
                   bench::TablePrinter::num(set.summary.accuracy(), 4),
                   bench::TablePrinter::num(
                       set.summary.normalized_deviation(), 4)});
  }
  table.print();
  return 0;
}
