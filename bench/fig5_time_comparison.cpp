// Fig. 5 — estimating time comparison at fine granularity:
//   (a) slots vs confidence interval eps (delta = 1%),
//   (b) slots vs error probability delta (eps = 5%),
// for PET, FNEB and LoF at n = 50 000.
//
// Expected shape: PET's curve sits well below both baselines everywhere,
// and the gap widens as the requirement tightens.
#include <cstdint>
#include <vector>

#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Fig. 5: estimating time (slots) of PET / FNEB / LoF vs eps (a) and "
      "vs delta (b), n = 50000.");
  bench::BenchSession session(options, "fig5_time_comparison");

  const std::uint64_t n = 50000;

  {
    bench::TablePrinter table(
        "Fig. 5a: slots vs confidence interval eps (delta = 1%)",
        {"eps", "PET", "FNEB", "LoF"}, options.csv);
    table.bind(&session.report());
    for (const double eps : {0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20}) {
      const stats::AccuracyRequirement req{eps, 0.01};
      const auto pet = bench::run_pet(n, core::PetConfig{}, req, 0,
                                      options.runs, options.seed);
      const auto fneb = bench::run_fneb(n, proto::FnebConfig{}, req, 0,
                                        options.runs, options.seed + 1);
      const auto lof = bench::run_lof(n, proto::LofConfig{}, req, 0,
                                      options.runs, options.seed + 2);
      table.add_row({bench::TablePrinter::num(eps, 3),
                     bench::TablePrinter::num(pet.mean_slots_per_estimate, 0),
                     bench::TablePrinter::num(fneb.mean_slots_per_estimate, 0),
                     bench::TablePrinter::num(lof.mean_slots_per_estimate, 0)});
    }
    table.print();
  }

  {
    bench::TablePrinter table(
        "Fig. 5b: slots vs error probability delta (eps = 5%)",
        {"delta", "PET", "FNEB", "LoF"}, options.csv);
    table.bind(&session.report());
    for (const double delta : {0.01, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20}) {
      const stats::AccuracyRequirement req{0.05, delta};
      const auto pet = bench::run_pet(n, core::PetConfig{}, req, 0,
                                      options.runs, options.seed);
      const auto fneb = bench::run_fneb(n, proto::FnebConfig{}, req, 0,
                                        options.runs, options.seed + 1);
      const auto lof = bench::run_lof(n, proto::LofConfig{}, req, 0,
                                      options.runs, options.seed + 2);
      table.add_row({bench::TablePrinter::num(delta, 3),
                     bench::TablePrinter::num(pet.mean_slots_per_estimate, 0),
                     bench::TablePrinter::num(fneb.mean_slots_per_estimate, 0),
                     bench::TablePrinter::num(lof.mean_slots_per_estimate, 0)});
    }
    table.print();
  }
  return 0;
}
