// Fig. 6 — distribution of the estimates at (eps, delta) = (5%, 1%),
// n = 50 000:
//   (a) theoretical PET (independent rounds from the exact depth law)
//       vs simulated PET (the real preloaded-code protocol);
//   (b) PET vs FNEB given the same estimating-time budget;
//   (c) PET vs LoF given the same estimating-time budget.
//
// Expected shape: >= 99% of PET estimates inside [47 500, 52 500]; FNEB and
// LoF at PET's slot budget only ~90%.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/estimator.hpp"
#include "core/theory.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "rng/prng.hpp"
#include "runtime/trial_runner.hpp"
#include "stats/histogram.hpp"

namespace {

void print_histogram(const char* name, const std::vector<double>& estimates,
                     bool csv) {
  pet::stats::Histogram hist(44000.0, 56000.0, 24);
  for (const double x : estimates) hist.add(x);
  if (csv) {
    std::printf("# Fig6 histogram: %s\n", name);
    for (std::size_t b = 0; b < hist.bins(); ++b) {
      std::printf("%.0f,%llu\n", hist.bin_center(b),
                  static_cast<unsigned long long>(hist.count(b)));
    }
    return;
  }
  std::printf("\n-- %s --\n%s", name, hist.render_ascii(48).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Fig. 6: distribution of estimates for 50000 tags at eps = 5%, "
      "delta = 1%; PET theory/simulation and FNEB/LoF at PET's slot "
      "budget.");
  bench::BenchSession session(options, "fig6_distribution");

  const std::uint64_t n = 50000;
  const stats::AccuracyRequirement req{0.05, 0.01};
  const core::PetConfig pet_config;
  const core::PetEstimator pet_estimator(pet_config, req);
  const std::uint64_t pet_rounds = pet_estimator.planned_rounds();
  const std::uint64_t pet_slot_budget =
      pet_rounds * pet_config.worst_case_slots_per_round();

  // (a) theoretical PET: m independent draws from the exact depth law,
  // one counter-seeded generator per trial (the runtime seeding contract;
  // scheduling-independent, unlike one shared sequential stream).
  std::vector<double> theory;
  {
    const core::TheoreticalPet model(n, pet_config.tree_height, pet_rounds);
    runtime::global_runner().run<double>(
        options.runs,
        [&](std::uint64_t t) {
          rng::Xoshiro256ss gen(rng::derive_seed(options.seed, t));
          return model.sample_estimate(gen);
        },
        [&](std::uint64_t, double&& estimate) { theory.push_back(estimate); },
        "PET theory");
  }
  // Simulated PET: the full preloaded-code protocol.
  const auto pet_set = bench::run_pet(n, pet_config, req, pet_rounds,
                                      options.runs, options.seed + 1);

  // (b) FNEB at PET's budget: pilot-measure its slots/round, then give it
  // budget/slots_per_round rounds.
  const auto fneb_pilot = bench::run_fneb(n, proto::FnebConfig{}, req, 50, 5,
                                          options.seed + 2);
  const auto fneb_rounds = static_cast<std::uint64_t>(
      static_cast<double>(pet_slot_budget) /
      (fneb_pilot.mean_slots_per_estimate / 50.0));
  const auto fneb_set = bench::run_fneb(n, proto::FnebConfig{}, req,
                                        fneb_rounds, options.runs,
                                        options.seed + 3);

  // (c) LoF at PET's budget: 32 slots/round.
  const std::uint64_t lof_rounds = pet_slot_budget / 32;
  const auto lof_set = bench::run_lof(n, proto::LofConfig{}, req, lof_rounds,
                                      options.runs, options.seed + 4);

  bench::TablePrinter table(
      "Fig. 6: estimate concentration at equal estimating time "
      "(n = 50000, interval [47500, 52500])",
      {"series", "rounds", "slots/estimate", "mean nhat",
       "in-interval fraction"},
      options.csv);
  table.bind(&session.report());
  auto add = [&](const char* name, std::uint64_t rounds, double slots,
                 const stats::TrialSummary& summary) {
    table.add_row({name, bench::TablePrinter::num(rounds),
                   bench::TablePrinter::num(slots, 0),
                   bench::TablePrinter::num(summary.accuracy() * n, 0),
                   bench::TablePrinter::num(summary.fraction_within(0.05),
                                            3)});
  };
  stats::TrialSummary theory_summary(static_cast<double>(n));
  for (const double x : theory) theory_summary.add(x);
  add("PET (theory)", pet_rounds, static_cast<double>(pet_slot_budget),
      theory_summary);
  add("PET (simulated)", pet_rounds, pet_set.mean_slots_per_estimate,
      pet_set.summary);
  add("FNEB (equal budget)", fneb_rounds, fneb_set.mean_slots_per_estimate,
      fneb_set.summary);
  add("LoF (equal budget)", lof_rounds, lof_set.mean_slots_per_estimate,
      lof_set.summary);
  table.print();

  print_histogram("Fig. 6a-theory: PET theoretical estimates", theory,
                  options.csv);
  print_histogram("Fig. 6a-sim: PET simulated estimates",
                  pet_set.summary.raw_estimates(), options.csv);
  print_histogram("Fig. 6b: FNEB at PET's slot budget",
                  fneb_set.summary.raw_estimates(), options.csv);
  print_histogram("Fig. 6c: LoF at PET's slot budget",
                  lof_set.summary.raw_estimates(), options.csv);
  return 0;
}
