// Extra bench — the (eps, delta) contract over the measured Gen2 MAC.
//
// EXPERIMENTS.md's headline tables assume perfect idle/busy detection.
// This sweep re-runs PET, FNEB and LoF over gen2::Gen2PrefixChannel — the
// Select+Query encoding on the real EPC C1G2 MAC — under seeded link
// impairments, and reports whether the (10%, 5%) contract survives:
//   * clean          — impairments inert; must match the ideal channel,
//   * capture        — collisions decodable with p = 0.6: PET/FNEB/LoF
//     probes only sense busy vs idle, and a captured collision is still
//     busy, so the contract must hold unchanged,
//   * loss 3%        — busy slots erased: estimates bias low,
//   * noise 1%       — idle slots floored to busy: estimates bias high,
//   * capture+loss   — both at once; capture must not mask the loss bias.
// Per-trial channels use trial-indexed seeds (manufacturing, faults and
// estimator streams all derived from the run index), so every aggregate is
// bit-identical at any --threads (docs/runtime.md).
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/confidence.hpp"
#include "core/estimator.hpp"
#include "gen2/channel.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "protocols/fneb.hpp"
#include "protocols/lof.hpp"
#include "rng/prng.hpp"
#include "runtime/trial_runner.hpp"
#include "stats/accuracy.hpp"
#include "tags/population.hpp"

namespace {

struct Scenario {
  const char* name;
  std::function<void(pet::sim::ChannelImpairments&)> apply;
};

struct ContractTrial {
  double n_hat = 0.0;
  bool covered = false;       ///< PET only: CI contains n
  std::uint64_t slots = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pet;
  auto options = bench::BenchOptions::parse(
      argc, argv,
      "(10%, 5%) contract for PET/FNEB/LoF over the measured Gen2 MAC "
      "under capture, loss and noise (n = 10000).");
  options.runs = std::min<std::uint64_t>(options.runs, 30);
  bench::BenchSession session(options, "gen2_contract_bench");

  const std::uint64_t n = 10000;
  const stats::AccuracyRequirement req{0.10, 0.05};
  const core::PetEstimator pet_estimator(core::PetConfig{}, req);
  const proto::FnebEstimator fneb_estimator(proto::FnebConfig{}, req);
  const proto::LofEstimator lof_estimator(proto::LofConfig{}, req);

  const auto population =
      tags::TagPopulation::generate(n, rng::derive_seed(options.seed, 0xdecaf));
  const std::vector<TagId> tags(population.ids().begin(),
                                population.ids().end());

  const Scenario scenarios[] = {
      {"clean", [](sim::ChannelImpairments&) {}},
      {"capture 0.6",
       [](sim::ChannelImpairments& imp) {
         imp.capture.capture_prob = 0.6;
       }},
      {"loss 3%",
       [](sim::ChannelImpairments& imp) { imp.reply_loss_prob = 0.03; }},
      {"noise 1%",
       [](sim::ChannelImpairments& imp) { imp.false_busy_prob = 0.01; }},
      {"capture+loss",
       [](sim::ChannelImpairments& imp) {
         imp.capture.capture_prob = 0.6;
         imp.reply_loss_prob = 0.03;
       }},
  };

  bench::TablePrinter table(
      "(10%, 5%) contract over gen2::Gen2PrefixChannel, n = 10000",
      {"scenario", "protocol", "nhat/n", "in-eps", "coverage", "slots/run"},
      options.csv);
  table.bind(&session.report());

  // One sweep = one (scenario, protocol) cell; `estimate` owns the
  // estimator call so PET can also report interval coverage.
  auto sweep = [&](const Scenario& scenario, const char* protocol,
                   const std::function<ContractTrial(
                       gen2::Gen2PrefixChannel&, std::uint64_t)>& estimate) {
    stats::TrialSummary summary(static_cast<double>(n));
    std::uint64_t covered = 0;
    std::uint64_t slots = 0;
    runtime::global_runner().run<ContractTrial>(
        options.runs,
        [&](std::uint64_t run) {
          gen2::Gen2ChannelConfig config;
          config.manufacturing_seed = rng::derive_seed(options.seed, run);
          config.impairments.seed =
              rng::derive_seed(options.seed, 500 + run);
          scenario.apply(config.impairments);
          gen2::Gen2PrefixChannel channel(tags, config);
          return estimate(channel, rng::derive_seed(options.seed, 1000 + run));
        },
        [&](std::uint64_t, ContractTrial&& trial) {
          summary.add(trial.n_hat);
          covered += trial.covered ? 1u : 0u;
          slots += trial.slots;
        },
        "gen2-contract");
    const double runs = static_cast<double>(options.runs);
    table.add_row(
        {scenario.name, protocol,
         bench::TablePrinter::num(summary.accuracy(), 4),
         bench::TablePrinter::num(summary.fraction_within(req.epsilon), 3),
         protocol == std::string("PET")
             ? bench::TablePrinter::num(static_cast<double>(covered) / runs, 3)
             : "-",
         bench::TablePrinter::num(static_cast<double>(slots) / runs, 0)});
  };

  for (const Scenario& scenario : scenarios) {
    sweep(scenario, "PET",
          [&](gen2::Gen2PrefixChannel& channel, std::uint64_t seed) {
            const auto result = pet_estimator.estimate(channel, seed);
            ContractTrial trial;
            trial.n_hat = result.n_hat;
            trial.covered = core::confidence_interval(result, req.delta)
                                .contains(static_cast<double>(n));
            trial.slots = result.ledger.total_slots();
            return trial;
          });
    sweep(scenario, "FNEB",
          [&](gen2::Gen2PrefixChannel& channel, std::uint64_t seed) {
            const auto result = fneb_estimator.estimate(channel, seed);
            return ContractTrial{result.n_hat, false,
                                 result.ledger.total_slots()};
          });
    sweep(scenario, "LoF",
          [&](gen2::Gen2PrefixChannel& channel, std::uint64_t seed) {
            const auto result = lof_estimator.estimate(channel, seed);
            return ContractTrial{result.n_hat, false,
                                 result.ledger.total_slots()};
          });
  }

  table.print();
  return 0;
}
