// Extra bench — the pet::svc estimation service under load (docs/service.md).
//
// Four tables:
//   (1) "load": sustained request throughput and client-observed latency
//       percentiles (p50/p99) against >= 1k concurrently registered
//       populations, driven by parallel client threads through the full
//       frame-encode -> submit -> pool -> frame-decode path.  Timing rows:
//       they describe this machine, not the protocol, and are NOT golden
//       (stdout only, unbound from the artifact).
//   (2) "service observability": the registry's per-population fold right
//       after the load phase — request/round/slot totals and slot-unit
//       latency quantiles.  Deterministic at any --threads, so it IS bound
//       to the artifact and golden-gated.
//   (3) "overload": a deliberate burst far past the admission cap; reports
//       how much was shed with typed RESOURCE_EXHAUSTED frames vs served.
//       The served/shed split is timing-dependent: stdout only.
//   (4) "degradation": the deterministic deadline ladder — how the service
//       trades rounds for deadline slack, when it flags degraded, and when
//       it refuses with DEADLINE_EXCEEDED.  Same seed => byte-identical
//       rows at any --threads.
//
// The artifact also carries the obs "metrics" member (benchdiff-ignored),
// which includes the pet.svc.pop.* / pet.svc.conn.* bundles for obscheck.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "obs/instruments.hpp"
#include "rng/prng.hpp"
#include "service/messages.hpp"
#include "service/registry.hpp"
#include "service/service.hpp"
#include "stats/accuracy.hpp"

namespace {

using namespace pet;

[[nodiscard]] double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

[[nodiscard]] svc::Frame estimate_request(std::uint64_t population,
                                          std::uint64_t seed,
                                          std::uint64_t deadline_slots) {
  svc::EstimateRequest request;
  request.population_id = population;
  request.seed = seed;
  request.deadline_slots = deadline_slots;
  return svc::make_request(svc::CommandId::kEstimate, svc::encode(request));
}

/// Quantile over the slot-unit latency histogram: upper bound of the bucket
/// holding quantile q (">B" for the overflow bucket, "-" when empty).
[[nodiscard]] std::string slot_quantile(
    const std::array<std::uint64_t, svc::PopulationStats::kLatencyBuckets>&
        counts,
    double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return "-";
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= target) {
      if (i < obs::kSvcLatencySlotBounds.size()) {
        return bench::TablePrinter::num(obs::kSvcLatencySlotBounds[i], 0);
      }
      return ">" +
             bench::TablePrinter::num(obs::kSvcLatencySlotBounds.back(), 0);
    }
  }
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pet;
  auto options = bench::BenchOptions::parse(
      argc, argv,
      "pet::svc service engine under load: throughput/latency at >= 1k "
      "populations, overload shedding, deterministic deadline degradation.");
  bench::BenchSession session(options, "service_bench");

  // --quick (runs <= 30) shrinks the load phase, not the population count:
  // the 1k-population floor is the point of the bench.
  const bool quick = options.runs <= 30;
  const std::uint64_t populations = 1024;
  const std::uint64_t tags_per_population = quick ? 1000 : 2000;
  const std::uint64_t requests = quick ? 1024 : 8192;
  const unsigned clients =
      std::max(2u, std::min(8u, runtime::ThreadPool::hardware_threads()));

  svc::ServiceConfig config;
  config.max_inflight = 256;
  config.worker_threads = options.threads;
  svc::EstimationService service(config);

  // --- Registration: the 1k-population arena --------------------------------
  const auto register_start = std::chrono::steady_clock::now();
  for (std::uint64_t id = 0; id < populations; ++id) {
    svc::RegisterRequest request;
    request.population_id = id;
    request.tag_count = tags_per_population;
    request.population_seed = rng::derive_seed(options.seed, id);
    const svc::Frame response = service.handle(svc::make_request(
        svc::CommandId::kRegister, svc::encode(request)));
    if (response.status != 0) {
      std::fprintf(stderr, "service_bench: register %llu failed\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
  }
  const double register_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    register_start)
          .count();

  // --- Load: parallel clients, strict request-response ----------------------
  std::vector<std::vector<double>> latencies(clients);
  const auto load_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (unsigned c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        std::vector<double>& mine = latencies[c];
        mine.reserve(requests / clients + 1);
        for (std::uint64_t i = c; i < requests; i += clients) {
          const svc::Frame request = estimate_request(
              i % populations, rng::derive_seed(options.seed, 10000 + i),
              /*deadline_slots=*/0);
          const auto start = std::chrono::steady_clock::now();
          const svc::Frame response = service.submit(request).get();
          const auto elapsed = std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start);
          if (response.status == 0) mine.push_back(elapsed.count());
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  const double load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    load_start)
          .count();

  std::vector<double> all_latencies;
  for (const std::vector<double>& part : latencies) {
    all_latencies.insert(all_latencies.end(), part.begin(), part.end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  const std::uint64_t served = all_latencies.size();

  // Timing table: stdout only.  Binding it would make the artifact diff
  // machine-dependent.
  bench::TablePrinter load_table(
      "service load (timing: NOT golden)",
      {"populations", "clients", "requests", "req/s", "p50 us", "p99 us",
       "register s"},
      options.csv);
  load_table.add_row({bench::TablePrinter::num(populations),
                      bench::TablePrinter::num(std::uint64_t{clients}),
                      bench::TablePrinter::num(served),
                      bench::TablePrinter::num(
                          static_cast<double>(served) / load_seconds, 1),
                      bench::TablePrinter::num(percentile(all_latencies, 0.50),
                                               1),
                      bench::TablePrinter::num(percentile(all_latencies, 0.99),
                                               1),
                      bench::TablePrinter::num(register_seconds, 2)});
  load_table.print();

  // --- Service observability fold (deterministic) ---------------------------
  // Snapshot the registry's per-population fold now: the load phase is a
  // fixed seeded request script, so these totals are byte-identical at any
  // --threads.  The overload burst below is timing-dependent and must not
  // leak into this table — hence the snapshot happens first.
  {
    const svc::PopulationStatsSnapshot fold = service.registry().fold_stats();
    bench::TablePrinter obs_table(
        "service observability fold (deterministic; post-load snapshot)",
        {"requests", "ok", "degraded", "query slots", "rounds",
         "p50 slots", "p99 slots"},
        options.csv);
    obs_table.bind(&session.report());
    obs_table.add_row({bench::TablePrinter::num(fold.requests),
                       bench::TablePrinter::num(fold.ok),
                       bench::TablePrinter::num(fold.degraded),
                       bench::TablePrinter::num(fold.query_slots),
                       bench::TablePrinter::num(fold.rounds),
                       slot_quantile(fold.latency_slots, 0.50),
                       slot_quantile(fold.latency_slots, 0.99)});
    obs_table.print();
  }

  // --- Overload: burst far past the admission cap ---------------------------
  const std::uint64_t burst = config.max_inflight * 4;
  std::vector<std::future<svc::Frame>> pending;
  pending.reserve(burst);
  for (std::uint64_t i = 0; i < burst; ++i) {
    pending.push_back(service.submit(estimate_request(
        i % populations, rng::derive_seed(options.seed, 20000 + i), 0)));
  }
  std::uint64_t burst_ok = 0, burst_shed = 0;
  for (std::future<svc::Frame>& future : pending) {
    const svc::Frame response = future.get();
    if (response.status == 0) {
      ++burst_ok;
    } else if (static_cast<svc::StatusCode>(response.status) ==
               svc::StatusCode::kResourceExhausted) {
      ++burst_shed;
    }
  }
  // Timing-dependent served/shed split: stdout only, like the load table.
  bench::TablePrinter overload_table(
      "overload burst (timing-dependent split; every request answered)",
      {"burst", "served", "shed"}, options.csv);
  overload_table.add_row({bench::TablePrinter::num(burst),
                          bench::TablePrinter::num(burst_ok),
                          bench::TablePrinter::num(burst_shed)});
  overload_table.print();

  // --- Degradation ladder (deterministic) -----------------------------------
  bench::TablePrinter degrade_table(
      "deadline degradation ladder (deterministic; robust, eps=0.1, "
      "delta=0.05)",
      {"deadline slots", "status", "rounds", "planned", "degraded",
       "truncated", "nhat/n", "rel half-width"},
      options.csv);
  degrade_table.bind(&session.report());
  const double true_n = static_cast<double>(tags_per_population);
  for (const std::uint64_t deadline :
       {std::uint64_t{0}, std::uint64_t{4000}, std::uint64_t{2000},
        std::uint64_t{1000}, std::uint64_t{500}, std::uint64_t{250},
        std::uint64_t{120}, std::uint64_t{60}, std::uint64_t{20},
        std::uint64_t{5}}) {
    const svc::Frame response = service.handle(estimate_request(
        0, rng::derive_seed(options.seed, 30000), deadline));
    const auto status = static_cast<svc::StatusCode>(response.status);
    std::string rounds = "-", planned = "-", degraded = "-", truncated = "-",
                accuracy = "-", width = "-";
    if (status == svc::StatusCode::kOk) {
      const auto reply = svc::parse_estimate_reply(response.payload);
      if (!reply) return 1;
      rounds = bench::TablePrinter::num(reply->rounds);
      planned = bench::TablePrinter::num(reply->planned_rounds);
      degraded = reply->degraded != 0 ? "yes" : "no";
      truncated = reply->truncated != 0 ? "yes" : "no";
      accuracy = bench::TablePrinter::num(reply->n_hat / true_n, 4);
      width = bench::TablePrinter::num(
          reply->n_hat > 0.0
              ? (reply->ci_hi - reply->ci_lo) / (2.0 * reply->n_hat)
              : 0.0,
          4);
    }
    degrade_table.add_row({deadline == 0 ? "unlimited"
                                         : bench::TablePrinter::num(deadline),
                           std::string(svc::to_string(status)), rounds,
                           planned, degraded, truncated, accuracy, width});
  }
  degrade_table.print();
  return 0;
}
